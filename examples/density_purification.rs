//! McWeeny density-matrix purification — the paper's motivating
//! computational-chemistry workload (§I refs [7, 9]; the "square" problem
//! class of the evaluation, and the driver algorithm named in §V:
//! "repeated matrix multiplications in density matrix purification").
//!
//! Given a Hamiltonian `H`, the density matrix at zero temperature is the
//! spectral projector onto the occupied states. Purification builds it
//! without diagonalization: start from a linearized guess `P₀` with
//! eigenvalues in [0, 1] and iterate the McWeeny polynomial
//!
//! ```text
//! P ← 3P² − 2P³
//! ```
//!
//! which drives every eigenvalue to 0 or 1. Each iteration is two *square*
//! PGEMMs — exactly the workload CA3DMM's square class models. `P` stays
//! distributed in a 2D block layout between iterations (the layout CA3DMM
//! redistributes from/to), and the idempotency error `‖P² − P‖_F` and the
//! electron count `tr(P)` are tracked distributedly.
//!
//! ```text
//! cargo run --release --example density_purification -- [nprocs] [n] [iters]
//! ```

use ca3dmm::{Ca3dmm, Ca3dmmOptions};
use dense::gemm::GemmOp;
use dense::Mat;
use gridopt::Problem;
use layout::Layout;
use msgpass::collectives::allreduce;
use msgpass::{Comm, World};

/// Dimerized 1D tight-binding Hamiltonian (an SSH chain): alternating
/// hoppings `-1` and `-0.55`, zero diagonal. The dimerization opens a
/// spectral gap at zero energy, so at chemical potential `μ = 0` the system
/// is an insulator with exactly half the states occupied — the regime where
/// density-matrix purification is used in practice (McWeeny iterations
/// repel eigenvalues from the unstable fixed point ½ at only a linear rate,
/// so a gapless metal would converge impractically slowly).
fn hamiltonian(i: usize, j: usize) -> f64 {
    if i.abs_diff(j) == 1 {
        if i.min(j).is_multiple_of(2) {
            -1.0
        } else {
            -0.55
        }
    } else {
        0.0
    }
}

/// Linearized initial guess (Palser–Manolopoulos): `P₀ = ½I − (H − μI)/(2·‖H‖)`,
/// eigenvalues safely inside [0, 1].
fn p0(i: usize, j: usize) -> f64 {
    let h = hamiltonian(i, j);
    let diag = if i == j { 0.5 } else { 0.0 };
    diag - h / (2.0 * 2.5) // ‖H‖₂ ≤ 2 for the chain; 2.5 gives margin
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nprocs: usize = args.first().map(|s| s.parse().unwrap()).unwrap_or(8);
    let n: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(600);
    let iters: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(30);

    println!("McWeeny purification: n = {n}, {nprocs} ranks, {iters} iterations");
    let prob = Problem::new(n, n, n, nprocs);
    let mm = Ca3dmm::new(prob, &Ca3dmmOptions::default());
    let g = mm.stats().grid;
    println!("CA3DMM grid: {} x {} x {}\n", g.pm, g.pn, g.pk);

    // P lives in a 2D block layout between iterations (a "natural"
    // application layout; CA3DMM redistributes it in and out each call).
    let pr = (nprocs as f64).sqrt().floor() as usize;
    let pc = nprocs / pr;
    let layout = Layout::two_d_block(n, n, pr, pc);
    let layout_all = pad_layout(layout, nprocs, n);

    let traces = World::run(nprocs, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        // build my local blocks of P0 from the formula
        let mut p: Vec<Mat<f64>> = layout_all
            .owned(me)
            .iter()
            .map(|r| Mat::from_fn(r.rows, r.cols, |i, j| p0(r.row0 + i, r.col0 + j)))
            .collect();

        let mut history = Vec::new();
        for it in 0..iters {
            // P2 = P * P
            let p2 = mm.multiply(
                ctx,
                &world,
                GemmOp::NoTrans,
                &layout_all,
                &p,
                GemmOp::NoTrans,
                &layout_all,
                &p,
                &layout_all,
            );
            // P3 = P2 * P
            let p3 = mm.multiply(
                ctx,
                &world,
                GemmOp::NoTrans,
                &layout_all,
                &p2,
                GemmOp::NoTrans,
                &layout_all,
                &p,
                &layout_all,
            );
            // local diagnostics before the update: idempotency and trace
            let mut idem2 = 0.0f64;
            let mut trace = 0.0f64;
            for ((rect, p_b), p2_b) in layout_all.owned(me).iter().zip(&p).zip(&p2) {
                for i in 0..rect.rows {
                    for j in 0..rect.cols {
                        let d = p2_b.get(i, j) - p_b.get(i, j);
                        idem2 += d * d;
                        if rect.row0 + i == rect.col0 + j {
                            trace += p_b.get(i, j);
                        }
                    }
                }
            }
            let sums = allreduce(&world, ctx, vec![idem2, trace]);
            if me == 0 {
                history.push((it, sums[0].sqrt(), sums[1]));
            }
            // P <- 3 P2 - 2 P3, blockwise local update
            for ((p_b, p2_b), p3_b) in p.iter_mut().zip(&p2).zip(&p3) {
                for ((pv, &p2v), &p3v) in p_b
                    .as_mut_slice()
                    .iter_mut()
                    .zip(p2_b.as_slice())
                    .zip(p3_b.as_slice())
                {
                    *pv = 3.0 * p2v - 2.0 * p3v;
                }
            }
        }
        history
    });

    println!("iter   ||P^2 - P||_F     tr(P)");
    for &(it, idem, trace) in &traces[0] {
        println!("{it:4}   {idem:12.6e}   {trace:10.4}");
    }
    let (_, final_idem, final_trace) = *traces[0].last().expect("at least one iteration");
    let expect_ne = n as f64 / 2.0;
    println!(
        "\nfinal: idempotency error {final_idem:.3e}, electron count {final_trace:.4} (expected {expect_ne})"
    );
    assert!(
        final_idem < 1e-8,
        "purification failed to converge: idempotency {final_idem:.3e}"
    );
    assert!(
        (final_trace - expect_ne).abs() < 1e-3 * expect_ne,
        "electron count drifted: {final_trace}"
    );
    println!("converged: the distributed purification matches the physics.");
}

/// The 2D block layout only covers `pr·pc` ranks; extend the rank list to
/// the full world (extra ranks own nothing) so every thread participates
/// in the CA3DMM redistribution steps.
fn pad_layout(l: Layout, p: usize, n: usize) -> Layout {
    let mut rects: Vec<Vec<dense::Rect>> = (0..p).map(|_| Vec::new()).collect();
    for (r, slot) in rects.iter_mut().enumerate().take(l.nranks()) {
        *slot = l.owned(r).to_vec();
    }
    Layout::from_rects(n, n, rects)
}
