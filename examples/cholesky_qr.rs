//! CholeskyQR of a tall-and-skinny matrix — the paper's motivating
//! workload for the large-K and large-M problem classes (§IV-A: "the
//! large-K and large-M classes are used in CholeskyQR and Rayleigh–Ritz
//! projection", refs [8, 29, 30]).
//!
//! Given `A ∈ ℝ^{m×n}` with `m ≫ n`:
//!
//! 1. the Gram matrix `G = AᵀA` — a **large-K** PGEMM (`n × n × m`) that
//!    also exercises CA3DMM's transpose-folding redistribution;
//! 2. the Cholesky factorization `G = RᵀR` — a small serial `n × n`
//!    problem, done redundantly on every rank;
//! 3. `Q = A·R⁻¹` — a **large-M** PGEMM (`m × n × n`);
//! 4. verification `‖QᵀQ − I‖` — another large-K PGEMM.
//!
//! ```text
//! cargo run --release --example cholesky_qr -- [nprocs] [m] [n]
//! ```

use ca3dmm::{Ca3dmm, Ca3dmmOptions};
use dense::gemm::GemmOp;
use dense::Mat;
use gridopt::Problem;
use layout::Layout;
use msgpass::{Comm, World};

use dense::linalg::{cholesky_upper, upper_triangular_inverse};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nprocs: usize = args.first().map(|s| s.parse().unwrap()).unwrap_or(8);
    let m: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(20_000);
    let n: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(48);
    println!("CholeskyQR: A is {m} x {n} on {nprocs} ranks");

    // A lives 1D row-partitioned (the natural tall-skinny layout).
    let a_layout = Layout::one_d_row(m, n, nprocs);
    // Small matrices are 1D column partitioned across ranks.
    let g_layout = Layout::one_d_col(n, n, nprocs);

    // Step 1: G = A^T A  (large-K: n x n x m)
    let gram = Ca3dmm::new(Problem::new(n, n, m, nprocs), &Ca3dmmOptions::default());
    let gg = gram.stats().grid;
    println!(
        "Gram PGEMM grid (n x n x m): {} x {} x {}",
        gg.pm, gg.pn, gg.pk
    );
    // Step 3: Q = A R^{-1}  (large-M: m x n x n)
    let apply = Ca3dmm::new(Problem::new(m, n, n, nprocs), &Ca3dmmOptions::default());
    let ga = apply.stats().grid;
    println!(
        "Apply PGEMM grid (m x n x n): {} x {} x {}",
        ga.pm, ga.pn, ga.pk
    );

    let ortho_err = World::run(nprocs, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        // Seeded tall-skinny A; shift the diagonal band up to keep the Gram
        // matrix comfortably positive definite.
        let a_blocks: Vec<Mat<f64>> = a_layout
            .owned(me)
            .iter()
            .map(|r| {
                Mat::from_fn(r.rows, r.cols, |i, j| {
                    let (gi, gj) = (r.row0 + i, r.col0 + j);
                    let noise: f64 = dense::random::global_entry(77, gi, gj);
                    if gi % n == gj {
                        noise + 4.0
                    } else {
                        noise
                    }
                })
            })
            .collect();

        // G = A^T A: op(A) = Trans with the stored A layout for both sides.
        let g_parts = gram.multiply(
            ctx,
            &world,
            GemmOp::Trans,
            &a_layout,
            &a_blocks,
            GemmOp::NoTrans,
            &a_layout,
            &a_blocks,
            &g_layout,
        );
        // replicate G on every rank (it is tiny) and factorize redundantly
        let mine: Vec<f64> = g_parts.iter().flat_map(|b| b.as_slice().to_vec()).collect();
        let counts: Vec<usize> = (0..nprocs).map(|r| g_layout.owned_elems(r)).collect();
        let flat = msgpass::collectives::allgatherv(&world, ctx, mine, &counts);
        let g_full = reassemble_cols(&g_layout, &flat, n);
        let r_up = cholesky_upper(&g_full);
        let r_inv = upper_triangular_inverse(&r_up);

        // Q = A R^{-1}: R^{-1} enters replicated; hand CA3DMM the copy on
        // rank 0 (a single-rank layout) and keep Q in A's row layout.
        let rinv_layout = Layout::on_single_rank(n, n, nprocs, 0);
        let rinv_blocks = if me == 0 { vec![r_inv] } else { vec![] };
        let q_parts = apply.multiply(
            ctx,
            &world,
            GemmOp::NoTrans,
            &a_layout,
            &a_blocks,
            GemmOp::NoTrans,
            &rinv_layout,
            &rinv_blocks,
            &a_layout,
        );

        // Verify: ||Q^T Q - I||_max via one more large-K PGEMM.
        let qtq_parts = gram.multiply(
            ctx,
            &world,
            GemmOp::Trans,
            &a_layout,
            &q_parts,
            GemmOp::NoTrans,
            &a_layout,
            &q_parts,
            &g_layout,
        );
        let mut err = 0.0f64;
        for (rect, blk) in g_layout.owned(me).iter().zip(&qtq_parts) {
            for i in 0..rect.rows {
                for j in 0..rect.cols {
                    let want = if rect.row0 + i == rect.col0 + j {
                        1.0
                    } else {
                        0.0
                    };
                    err = err.max((blk.get(i, j) - want).abs());
                }
            }
        }
        msgpass::collectives::allreduce(&world, ctx, vec![err])[0]
    });

    // allreduce sums the per-rank maxima; each rank's value was its local
    // max, so the sum bounds the true max within a factor nprocs — report
    // the per-rank max from rank 0's world view instead.
    let err = ortho_err[0];
    println!("\n||Q^T Q - I||  <= {err:.3e} (summed per-rank maxima)");
    assert!(err < 1e-10 * m as f64, "Q is not orthonormal: {err:.3e}");
    println!("CholeskyQR succeeded: Q has orthonormal columns.");
}

/// Rebuilds the small `n × n` matrix from the flat allgathered 1D-column
/// pieces.
fn reassemble_cols(layout: &Layout, flat: &[f64], n: usize) -> Mat<f64> {
    let mut g = Mat::<f64>::zeros(n, n);
    let mut pos = 0;
    for r in 0..layout.nranks() {
        for rect in layout.owned(r) {
            let blk = Mat::from_vec(rect.rows, rect.cols, flat[pos..pos + rect.area()].to_vec());
            pos += rect.area();
            g.set_block(*rect, &blk);
        }
    }
    g
}
