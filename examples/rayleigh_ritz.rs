//! Rayleigh–Ritz projection — the paper's second named driver workload
//! (§IV-A: "The large-K and large-M classes are used in CholeskyQR and
//! Rayleigh–Ritz projection"; §V names "the Rayleigh–Ritz step in
//! Chebyshev-filtered subspace iteration" as a target application).
//!
//! Given a symmetric operator `H ∈ ℝ^{n×n}` and a subspace basis
//! `V ∈ ℝ^{n×b}` (`b ≪ n`):
//!
//! 1. orthonormalize `V` by CholeskyQR (one **large-K** PGEMM `VᵀV` and one
//!    **large-M** PGEMM `V·R⁻¹`);
//! 2. apply the operator: `W = H·V` — a **large-M** PGEMM (`n × b × n`);
//! 3. project: `G = VᵀW` — a **large-K** PGEMM (`b × b × n`);
//! 4. solve the small `b × b` symmetric eigenproblem `G = U·Θ·Uᵀ`
//!    (serial Jacobi iteration, redundantly on every rank);
//! 5. form Ritz vectors `X = V·U` (**large-M** PGEMM) and check the
//!    residuals `‖H·xᵢ − θᵢ·xᵢ‖`.
//!
//! With `H` the 1D Laplacian (eigenvalues `2 − 2cos(kπ/(n+1))`), the Ritz
//! values must lie inside `[0, 4]` and converge toward true eigenvalues —
//! which the example verifies.
//!
//! ```text
//! cargo run --release --example rayleigh_ritz -- [nprocs] [n] [b]
//! ```

use ca3dmm::{Ca3dmm, Ca3dmmOptions};
use dense::gemm::GemmOp;
use dense::linalg::{cholesky_upper, upper_triangular_inverse};
use dense::Mat;
use gridopt::Problem;
use layout::Layout;
use msgpass::collectives::{allgatherv, allreduce};
use msgpass::{Comm, World};

/// The 1D Laplacian stencil: `2` on the diagonal, `−1` off-diagonal.
fn laplacian(i: usize, j: usize) -> f64 {
    match i.abs_diff(j) {
        0 => 2.0,
        1 => -1.0,
        _ => 0.0,
    }
}

/// Serial cyclic Jacobi eigenvalue iteration for a small symmetric matrix;
/// returns (eigenvalues ascending, orthogonal U with columns = vectors).
fn jacobi_eig(g: &Mat<f64>) -> (Vec<f64>, Mat<f64>) {
    let b = g.rows();
    let mut a = g.clone();
    let mut u = Mat::from_fn(b, b, |i, j| if i == j { 1.0 } else { 0.0 });
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..b {
            for q in p + 1..b {
                off += a.get(p, q) * a.get(p, q);
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..b {
            for q in p + 1..b {
                let apq = a.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let theta = (a.get(q, q) - a.get(p, p)) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // rotate rows/columns p, q of A and columns of U
                for k in 0..b {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..b {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                for k in 0..b {
                    let ukp = u.get(k, p);
                    let ukq = u.get(k, q);
                    u.set(k, p, c * ukp - s * ukq);
                    u.set(k, q, s * ukp + c * ukq);
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..b).collect();
    order.sort_by(|&x, &y| a.get(x, x).partial_cmp(&a.get(y, y)).unwrap());
    let vals: Vec<f64> = order.iter().map(|&x| a.get(x, x)).collect();
    let vecs = Mat::from_fn(b, b, |i, j| u.get(i, order[j]));
    (vals, vecs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nprocs: usize = args.first().map(|s| s.parse().unwrap()).unwrap_or(8);
    let n: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(4000);
    let b: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(12);
    println!("Rayleigh-Ritz: H is {n} x {n} (1D Laplacian), basis {n} x {b}, {nprocs} ranks");

    // Distributions: H in 2D blocks, the tall-skinny bases 1D row, the
    // small b x b matrices 1D column.
    let pr = (nprocs as f64).sqrt().floor() as usize;
    let h_layout = pad(Layout::two_d_block(n, n, pr, nprocs / pr), nprocs, n, n);
    let v_layout = Layout::one_d_row(n, b, nprocs);
    let s_layout = Layout::one_d_col(b, b, nprocs);

    // Three PGEMM shapes (grids chosen by CA3DMM's search):
    let gram = Ca3dmm::new(Problem::new(b, b, n, nprocs), &Ca3dmmOptions::default()); // large-K
    let tall = Ca3dmm::new(Problem::new(n, b, b, nprocs), &Ca3dmmOptions::default()); // large-M
    let apply = Ca3dmm::new(Problem::new(n, b, n, nprocs), &Ca3dmmOptions::default()); // operator
    for (what, mm) in [
        ("V^T W (large-K)", &gram),
        ("V*U   (large-M)", &tall),
        ("H*V   (apply) ", &apply),
    ] {
        let g = mm.stats().grid;
        println!("grid for {what}: {} x {} x {}", g.pm, g.pn, g.pk);
    }

    let (ritz, max_resid) = World::run(nprocs, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let h_blocks: Vec<Mat<f64>> = h_layout
            .owned(me)
            .iter()
            .map(|r| Mat::from_fn(r.rows, r.cols, |i, j| laplacian(r.row0 + i, r.col0 + j)))
            .collect();
        // random initial basis
        let mut v_blocks: Vec<Mat<f64>> = v_layout
            .owned(me)
            .iter()
            .map(|r| {
                Mat::from_fn(r.rows, r.cols, |i, j| {
                    dense::random::global_entry(55, r.row0 + i, r.col0 + j)
                })
            })
            .collect();

        // Step 1: CholeskyQR orthonormalization of V.
        let g_parts = gram.multiply(
            ctx,
            &world,
            GemmOp::Trans,
            &v_layout,
            &v_blocks,
            GemmOp::NoTrans,
            &v_layout,
            &v_blocks,
            &s_layout,
        );
        let g_full = replicate_small(ctx, &world, &s_layout, &g_parts, b);
        let r_inv = upper_triangular_inverse(&cholesky_upper(&g_full));
        let rinv_layout = Layout::on_single_rank(b, b, world.size(), 0);
        let rinv_blocks = if me == 0 { vec![r_inv] } else { vec![] };
        v_blocks = tall.multiply(
            ctx,
            &world,
            GemmOp::NoTrans,
            &v_layout,
            &v_blocks,
            GemmOp::NoTrans,
            &rinv_layout,
            &rinv_blocks,
            &v_layout,
        );

        // Step 2: W = H V (the operator apply).
        let w_blocks = apply.multiply(
            ctx,
            &world,
            GemmOp::NoTrans,
            &h_layout,
            &h_blocks,
            GemmOp::NoTrans,
            &v_layout,
            &v_blocks,
            &v_layout,
        );

        // Step 3: G = V^T W.
        let g_parts = gram.multiply(
            ctx,
            &world,
            GemmOp::Trans,
            &v_layout,
            &v_blocks,
            GemmOp::NoTrans,
            &v_layout,
            &w_blocks,
            &s_layout,
        );
        let g_full = replicate_small(ctx, &world, &s_layout, &g_parts, b);

        // Step 4: small eigenproblem, redundant on every rank.
        let (theta, u) = jacobi_eig(&g_full);

        // Step 5: Ritz vectors X = V U, residuals R = W U - X diag(theta).
        let u_layout = Layout::on_single_rank(b, b, world.size(), 0);
        let u_blocks = if me == 0 { vec![u.clone()] } else { vec![] };
        let x_blocks = tall.multiply(
            ctx,
            &world,
            GemmOp::NoTrans,
            &v_layout,
            &v_blocks,
            GemmOp::NoTrans,
            &u_layout,
            &u_blocks,
            &v_layout,
        );
        let wu_blocks = tall.multiply(
            ctx,
            &world,
            GemmOp::NoTrans,
            &v_layout,
            &w_blocks,
            GemmOp::NoTrans,
            &u_layout,
            &u_blocks,
            &v_layout,
        );
        // local residual column sums of squares
        let mut local = vec![0.0f64; b];
        for ((rect, x_b), wu_b) in v_layout.owned(me).iter().zip(&x_blocks).zip(&wu_blocks) {
            for i in 0..rect.rows {
                for j in 0..rect.cols {
                    let col = rect.col0 + j;
                    let r = wu_b.get(i, j) - theta[col] * x_b.get(i, j);
                    local[col] += r * r;
                }
            }
        }
        let sums = allreduce(&world, ctx, local);
        let resid: Vec<f64> = sums.iter().map(|s| s.sqrt()).collect();
        let max_resid = resid.iter().cloned().fold(0.0f64, f64::max);
        (theta, max_resid)
    })
    .into_iter()
    .next()
    .expect("at least one rank");

    println!("\nlowest Ritz values: {:?}", &ritz[..ritz.len().min(5)]);
    println!("max residual ||H x - theta x|| = {max_resid:.3e}");
    // Spectrum of the 1D Laplacian lies in (0, 4).
    assert!(
        ritz.iter().all(|&t| t > 0.0 && t < 4.0),
        "Ritz values must lie inside the operator's spectral bounds"
    );
    // One projection step of a random b-dim subspace is a coarse
    // approximation; residuals are bounded by the spectral width.
    assert!(max_resid < 4.0, "residuals out of range: {max_resid}");
    println!("Rayleigh-Ritz projection verified: Ritz pairs within spectral bounds.");
}

/// Extends a layout defined over fewer ranks to the whole world.
fn pad(l: Layout, p: usize, rows: usize, cols: usize) -> Layout {
    let mut rects: Vec<Vec<dense::Rect>> = (0..p).map(|_| Vec::new()).collect();
    for (r, slot) in rects.iter_mut().enumerate().take(l.nranks()) {
        *slot = l.owned(r).to_vec();
    }
    Layout::from_rects(rows, cols, rects)
}

/// Replicates a small 1D-column-distributed `b × b` matrix on every rank.
fn replicate_small(
    ctx: &msgpass::RankCtx,
    world: &Comm,
    layout: &Layout,
    parts: &[Mat<f64>],
    b: usize,
) -> Mat<f64> {
    let mine: Vec<f64> = parts.iter().flat_map(|m| m.as_slice().to_vec()).collect();
    let counts: Vec<usize> = (0..world.size()).map(|r| layout.owned_elems(r)).collect();
    let flat = allgatherv(world, ctx, mine, &counts);
    let mut g = Mat::<f64>::zeros(b, b);
    let mut pos = 0;
    for r in 0..layout.nranks() {
        for rect in layout.owned(r) {
            let blk = Mat::from_vec(rect.rows, rect.cols, flat[pos..pos + rect.area()].to_vec());
            pos += rect.area();
            g.set_block(*rect, &blk);
        }
    }
    g
}
