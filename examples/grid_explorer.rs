//! Grid explorer: how CA3DMM and COSMA choose 3D process grids across the
//! paper's four problem classes and process counts — a console companion
//! to Table II and the reasoning of §III-A/§IV-B.
//!
//! For each shape and P it prints both searches' grids, the process
//! utilization, the communication-volume-to-lower-bound ratio, and the
//! modeled runtime on the paper's cluster (pure MPI placement).
//!
//! ```text
//! cargo run --release --example grid_explorer
//! ```

use ca3dmm::{ca3dmm_schedule, ModelConfig};
use gridopt::{ca3dmm_grid, cosma_grid, GridChoice, Problem, DEFAULT_UTILIZATION_FLOOR};
use netmodel::eval::evaluate;
use netmodel::Machine;

fn main() {
    let machine = Machine::phoenix_cpu();
    let placement = machine.pure_mpi();
    let shapes: [(&str, usize, usize, usize); 4] = [
        ("square  (50k^3)", 50_000, 50_000, 50_000),
        ("large-K (6k,6k,1.2M)", 6_000, 6_000, 1_200_000),
        ("large-M (1.2M,6k,6k)", 1_200_000, 6_000, 6_000),
        ("flat    (100k,100k,5k)", 100_000, 100_000, 5_000),
    ];
    let procs = [192usize, 384, 768, 1536, 2048, 3072];

    for (name, m, n, k) in shapes {
        println!("== {name}: m={m} n={n} k={k} ==");
        println!(
            "{:>6} | {:>14} {:>5} {:>6} {:>9} | {:>14} {:>6}",
            "P", "CA3DMM grid", "util", "Q/LB", "t_model", "COSMA grid", "util"
        );
        for p in procs {
            let prob = Problem::new(m, n, k, p);
            let ca: GridChoice = ca3dmm_grid(&prob, DEFAULT_UTILIZATION_FLOOR);
            let co: GridChoice = cosma_grid(&prob, DEFAULT_UTILIZATION_FLOOR);
            let cfg = ModelConfig {
                placement,
                elem_bytes: 8.0,
                overlap: true,
                include_redist: false,
                collectives: ca3dmm::Collectives::Flat,
            };
            let sched = ca3dmm_schedule(&prob, &ca.grid, &cfg);
            let cost = evaluate(&machine, placement.flops_per_rank, &sched);
            println!(
                "{:>6} | {:>4}x{:<4}x{:<4} {:>4.0}% {:>6.2} {:>8.2}s | {:>4}x{:<4}x{:<4} {:>5.0}%",
                p,
                ca.grid.pm,
                ca.grid.pn,
                ca.grid.pk,
                ca.utilization(p) * 100.0,
                ca.volume_ratio(&prob),
                cost.total_s,
                co.grid.pm,
                co.grid.pn,
                co.grid.pk,
                co.utilization(p) * 100.0,
            );
        }
        println!();
    }
    println!("Q/LB: per-process communication volume over the eq. 9 lower bound.");
    println!("t_model: CA3DMM runtime under the alpha-beta-gamma machine model");
    println!("         ({}; pure MPI, 1 rank per core).", machine.name);
}
