//! Quickstart: the reproduction of the artifact's `example_AB.exe`.
//!
//! The paper's artifact is driven by
//!
//! ```text
//! mpirun -np <nprocs> ./example_AB.exe <M> <N> <K> <transA> <transB>
//!     <validation> <ntest> <dtype> [mp np kp]
//! ```
//!
//! Here ranks are threads, so the process count is a normal argument:
//!
//! ```text
//! cargo run --release --example quickstart -- <nprocs> <M> <N> <K>
//!     [transA transB validation ntest mp np kp]
//! ```
//!
//! With no arguments a small default problem runs. The report mirrors the
//! artifact's: partition info (grid, work cuboid, utilization, comm volume
//! over the eq. 9 lower bound, rank-0 buffer size) and per-phase timings
//! averaged over `ntest` runs, followed by a correctness check against the
//! serial reference. As in the artifact, the input A and B and the output C
//! use a 1D column partitioning.

use ca3dmm::{memory_elements_per_rank, Ca3dmm, Ca3dmmOptions};
use dense::gemm::{gemm, GemmOp};
use dense::part::Rect;
use dense::random::global_block;
use dense::testing::gemm_tolerance;
use dense::Mat;
use gridopt::{Grid, Problem};
use layout::Layout;
use msgpass::{Comm, World};
use std::time::Instant;

fn arg(args: &[String], i: usize, default: usize) -> usize {
    args.get(i)
        .map(|s| s.parse().expect("numeric argument"))
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nprocs = arg(&args, 0, 8);
    let m = arg(&args, 1, 1000);
    let n = arg(&args, 2, 1000);
    let k = arg(&args, 3, 1000);
    let trans_a = GemmOp::from_flag(arg(&args, 4, 0) as u32);
    let trans_b = GemmOp::from_flag(arg(&args, 5, 0) as u32);
    let validate = arg(&args, 6, 1) != 0;
    let ntest = arg(&args, 7, 3).max(1);
    let grid_override = if args.len() >= 11 {
        Some(Grid::new(
            arg(&args, 8, 0),
            arg(&args, 9, 0),
            arg(&args, 10, 0),
        ))
    } else {
        None
    };

    println!("Test problem size m * n * k : {m} * {n} * {k}");
    println!(
        "Transpose A / B             : {} / {}",
        (trans_a == GemmOp::Trans) as u8,
        (trans_b == GemmOp::Trans) as u8
    );
    println!("Number of tests             : {ntest}");
    println!("Check result correctness    : {}", validate as u8);
    println!("Number of ranks (threads)   : {nprocs}");

    let prob = Problem::new(m, n, k, nprocs);
    let t0 = Instant::now();
    let mm = Ca3dmm::new(
        prob,
        &Ca3dmmOptions {
            grid_override,
            ..Default::default()
        },
    );
    let init_ms = t0.elapsed().as_secs_f64() * 1e3;
    let st = mm.stats();
    let grid = st.grid;
    println!("\nCA3DMM partition info:");
    println!(
        "Process grid mp * np * kp   : {} * {} * {}",
        grid.pm, grid.pn, grid.pk
    );
    println!(
        "Work cuboid mb * nb * kb    : {} * {} * {}",
        st.cuboid.0, st.cuboid.1, st.cuboid.2
    );
    println!(
        "Process utilization         : {:.2} %",
        st.utilization * 100.0
    );
    println!("Comm. volume / lower bound  : {:.2}", st.volume_ratio);
    println!(
        "Rank 0 work buffer size     : {:.2} MBytes",
        memory_elements_per_rank(&prob, &grid) * 8.0 / 1048576.0
    );

    // Stored shapes honour the transpose flags, as in the artifact.
    let (ar, ac) = match trans_a {
        GemmOp::NoTrans => (m, k),
        GemmOp::Trans => (k, m),
    };
    let (br, bc) = match trans_b {
        GemmOp::NoTrans => (k, n),
        GemmOp::Trans => (n, k),
    };
    let a_layout = Layout::one_d_col(ar, ac, nprocs);
    let b_layout = Layout::one_d_col(br, bc, nprocs);
    let c_layout = Layout::one_d_col(m, n, nprocs);

    let mut totals_ms: Vec<f64> = Vec::with_capacity(ntest);
    let mut phase_ms: std::collections::BTreeMap<String, f64> = Default::default();
    let mut c_result: Option<Mat<f64>> = None;

    for run in 0..ntest {
        let (parts_and_time, report) = World::run_traced(nprocs, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            // each rank generates its own pieces of the seeded global matrices
            let a_blocks: Vec<Mat<f64>> = a_layout
                .owned(me)
                .iter()
                .map(|r| global_block(1, *r))
                .collect();
            let b_blocks: Vec<Mat<f64>> = b_layout
                .owned(me)
                .iter()
                .map(|r| global_block(2, *r))
                .collect();
            let t = Instant::now();
            let c = mm.multiply(
                ctx, &world, trans_a, &a_layout, &a_blocks, trans_b, &b_layout, &b_blocks,
                &c_layout,
            );
            (c, t.elapsed().as_secs_f64() * 1e3)
        });
        let total = parts_and_time
            .iter()
            .map(|(_, t)| *t)
            .fold(0.0f64, f64::max);
        totals_ms.push(total);
        for ph in report.phases() {
            *phase_ms.entry(ph.clone()).or_insert(0.0) += report.phase_secs_max(&ph) * 1e3;
        }
        if run == 0 && validate {
            let parts: Vec<Vec<Mat<f64>>> = parts_and_time.into_iter().map(|(c, _)| c).collect();
            c_result = Some(c_layout.assemble(&parts));
        }
    }

    let avg = totals_ms.iter().sum::<f64>() / ntest as f64;
    println!("\n================ CA3DMM algorithm engine ================");
    println!("* Initialization            : {init_ms:.2} ms");
    println!("* Number of executions      : {ntest}");
    println!("* Execution time (avg)      : {avg:.2} ms");
    for (label, name) in [
        ("redist", "Redistribute A, B, C"),
        ("replicate_ab", "Allgather A or B  "),
        ("cannon_shift", "2D Cannon         "),
        ("reduce_c", "Reduce-scatter C  "),
    ] {
        println!(
            "* {name}      : {:.2} ms",
            phase_ms.get(label).copied().unwrap_or(0.0) / ntest as f64
        );
    }
    println!("==========================================================");

    if validate {
        let a_stored = global_block::<f64>(1, Rect::new(0, 0, ar, ac));
        let b_stored = global_block::<f64>(2, Rect::new(0, 0, br, bc));
        let mut c_ref = Mat::zeros(m, n);
        gemm(trans_a, trans_b, 1.0, &a_stored, &b_stored, 0.0, &mut c_ref);
        let c_got = c_result.expect("validation requested");
        let tol = gemm_tolerance::<f64>(k) * c_ref.max_abs().max(1.0);
        let diff = c_got.max_abs_diff(&c_ref);
        let errors = if diff <= tol { 0 } else { 1 };
        println!("\nCA3DMM output : {errors} error(s)  (max diff {diff:.3e}, tol {tol:.3e})");
        if errors != 0 {
            std::process::exit(1);
        }
    }
}
