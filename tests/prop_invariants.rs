//! Property-based tests on the workspace invariants (proptest).
//!
//! These are the randomized counterparts of the worked examples in the unit
//! tests: grid-search optimality and feasibility, partition exactness,
//! redistribution losslessness, and end-to-end CA3DMM correctness on
//! arbitrary problem shapes.

use ca3dmm::{Ca3dmm, Ca3dmmOptions, GridContext};
use dense::gemm::{gemm_naive, GemmOp};
use dense::part::Rect;
use dense::random::global_block;
use dense::testing::assert_gemm_close;
use dense::Mat;
use gridopt::{brute_force_grid, ca3dmm_grid, cosma_grid, Problem};
use layout::{redistribute, Layout};
use msgpass::{Comm, World};
use proptest::prelude::*;

/// Strategy: a random problem with small enough dimensions to brute-force.
fn small_problem() -> impl Strategy<Value = Problem> {
    (1usize..120, 1usize..120, 1usize..120, 1usize..28)
        .prop_map(|(m, n, k, p)| Problem::new(m, n, k, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fast divisor-driven grid search equals the brute-force search,
    /// with and without the Cannon constraint, for any problem and any
    /// utilization floor.
    #[test]
    fn grid_search_matches_brute_force(prob in small_problem(), l in 0.80f64..0.999) {
        let fast = ca3dmm_grid(&prob, l);
        let slow = brute_force_grid(&prob, l, true);
        prop_assert_eq!(fast.grid, slow.grid);
        prop_assert_eq!(fast.s_total, slow.s_total);
        let fast = cosma_grid(&prob, l);
        let slow = brute_force_grid(&prob, l, false);
        prop_assert_eq!(fast.grid, slow.grid);
    }

    /// Every chosen grid satisfies the paper's constraints: eq. 7
    /// (divisibility), eq. 5 (floor-semantics utilization), and the
    /// active count never exceeds P.
    #[test]
    fn chosen_grids_satisfy_constraints(prob in small_problem(), l in 0.80f64..0.999) {
        let g = ca3dmm_grid(&prob, l).grid;
        prop_assert!(g.cannon_compatible());
        prop_assert!(g.active() <= prob.p);
        prop_assert!(g.active() >= ((l * prob.p as f64).floor() as usize).max(1));
    }

    /// The per-process volume of the chosen grid respects the eq. 9 lower
    /// bound (evaluated at the active process count).
    #[test]
    fn chosen_grid_volume_at_least_lower_bound(prob in small_problem()) {
        let choice = ca3dmm_grid(&prob, 0.95);
        // eq. 4 / 2 / active >= 3 (mnk/active)^(2/3); allow 1% slack for
        // the integrality of grid dimensions.
        prop_assert!(choice.volume_ratio(&prob) > 0.99);
    }

    /// Standard layouts partition the matrix exactly for any parameters.
    #[test]
    fn standard_layouts_partition(
        rows in 1usize..60,
        cols in 1usize..60,
        p in 1usize..12,
        pr in 1usize..5,
        pc in 1usize..5,
        br in 1usize..8,
        bc in 1usize..8,
    ) {
        Layout::one_d_col(rows, cols, p).validate();
        Layout::one_d_row(rows, cols, p).validate();
        Layout::two_d_block(rows, cols, pr, pc).validate();
        Layout::block_cyclic(rows, cols, pr, pc, br, bc).validate();
    }

    /// CA3DMM's native layouts partition A, B, and C exactly for any
    /// problem (grid chosen by the real search).
    #[test]
    fn ca3dmm_native_layouts_partition(prob in small_problem()) {
        let grid = ca3dmm_grid(&prob, 0.95).grid;
        let gc = GridContext::new(prob, grid);
        gc.layout_a().validate();
        gc.layout_b().validate();
        gc.layout_c().validate();
    }
}

proptest! {
    // The distributed cases spawn threads; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Redistribution between random layout pairs is lossless, with and
    /// without transposition.
    #[test]
    fn redistribution_is_lossless(
        rows in 1usize..30,
        cols in 1usize..30,
        p in 1usize..7,
        src_kind in 0usize..4,
        dst_kind in 0usize..4,
        trans in proptest::bool::ANY,
    ) {
        // largest divisor of p not exceeding sqrt(p), so pr * pc == p
        let pr = (1..=p).rev().find(|d| p % d == 0 && d * d <= p).unwrap_or(1);
        let pc = p / pr;
        let make = |kind: usize, r: usize, c: usize| -> Layout {
            match kind {
                0 => Layout::one_d_col(r, c, p),
                1 => Layout::one_d_row(r, c, p),
                2 => Layout::two_d_block(r, c, pr, pc),
                _ => Layout::block_cyclic(r, c, pr, pc, 3, 4),
            }
        };
        let op = if trans { GemmOp::Trans } else { GemmOp::NoTrans };
        let (dr, dc) = op.apply_shape(rows, cols);
        let src = make(src_kind, rows, cols);
        let dst = make(dst_kind, dr, dc);
        let global = global_block::<f64>(5, Rect::new(0, 0, rows, cols));
        let expect = match op {
            GemmOp::NoTrans => global.clone(),
            GemmOp::Trans => global.transpose(),
        };
        let parts = World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let mine = src.extract(&global, comm.rank());
            redistribute(&comm, ctx, &src, &mine, &dst, op)
        });
        for (rank, got) in parts.iter().enumerate() {
            let want = dst.extract(&expect, rank);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.max_abs_diff(w), 0.0);
            }
        }
    }

    /// CA3DMM (full Algorithm 1, including both redistributions) equals the
    /// serial reference on arbitrary problems, transposes, and P.
    #[test]
    fn ca3dmm_equals_reference(
        m in 1usize..26,
        n in 1usize..26,
        k in 1usize..26,
        p in 1usize..10,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
    ) {
        let op_a = if ta { GemmOp::Trans } else { GemmOp::NoTrans };
        let op_b = if tb { GemmOp::Trans } else { GemmOp::NoTrans };
        let (ar, ac) = match op_a { GemmOp::NoTrans => (m, k), GemmOp::Trans => (k, m) };
        let (br, bc) = match op_b { GemmOp::NoTrans => (k, n), GemmOp::Trans => (n, k) };
        let a_stored = global_block::<f64>(9, Rect::new(0, 0, ar, ac));
        let b_stored = global_block::<f64>(10, Rect::new(0, 0, br, bc));
        let la = Layout::one_d_col(ar, ac, p);
        let lb = Layout::one_d_row(br, bc, p);
        let lc = Layout::one_d_col(m, n, p);
        let mm = Ca3dmm::new(Problem::new(m, n, k, p), &Ca3dmmOptions::default());
        let parts = World::run(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            mm.multiply(
                ctx, &world,
                op_a, &la, &la.extract(&a_stored, me),
                op_b, &lb, &lb.extract(&b_stored, me),
                &lc,
            )
        });
        let mut c_ref = Mat::zeros(m, n);
        gemm_naive(op_a, op_b, 1.0, &a_stored, &b_stored, 0.0, &mut c_ref);
        assert_gemm_close(&lc.assemble(&parts), &c_ref, k, "proptest ca3dmm");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The blocked, thread-parallel local GEMM agrees with the naive
    /// triple loop for arbitrary shapes, ops, and alpha/beta.
    #[test]
    fn local_gemm_matches_naive(
        m in 1usize..50,
        n in 1usize..50,
        k in 0usize..50,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        use dense::gemm::gemm;
        let op_a = if ta { GemmOp::Trans } else { GemmOp::NoTrans };
        let op_b = if tb { GemmOp::Trans } else { GemmOp::NoTrans };
        let (ar, ac) = match op_a { GemmOp::NoTrans => (m, k), GemmOp::Trans => (k, m) };
        let (br, bc) = match op_b { GemmOp::NoTrans => (k, n), GemmOp::Trans => (n, k) };
        let a = global_block::<f64>(21, Rect::new(0, 0, ar, ac));
        let b = global_block::<f64>(22, Rect::new(0, 0, br, bc));
        let c0 = global_block::<f64>(23, Rect::new(0, 0, m, n));
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c1);
        gemm_naive(op_a, op_b, alpha, &a, &b, beta, &mut c2);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-11 * (k.max(1) as f64));
    }
}

/// Pinned regression from `prop_invariants.proptest-regressions` (seed
/// `1356c634…`): redistributing a 1×1 matrix from a `two_d_block` layout on
/// a 1×3 grid into a `one_d_col` layout lost the single element, because
/// the empty-intersection path mishandled ranks whose source rectangle was
/// empty. The local proptest shim does not replay persistence files, so the
/// shrunk case is kept alive here verbatim.
#[test]
fn redistribution_regression_1x1_p3_2d_to_col() {
    let (rows, cols, p) = (1usize, 1usize, 3usize);
    let pr = (1..=p)
        .rev()
        .find(|d| p % d == 0 && d * d <= p)
        .unwrap_or(1);
    let pc = p / pr;
    let src = Layout::two_d_block(rows, cols, pr, pc);
    let dst = Layout::one_d_col(rows, cols, p);
    let global = global_block::<f64>(5, Rect::new(0, 0, rows, cols));
    let parts = World::run(p, |ctx| {
        let comm = Comm::world(ctx);
        let mine = src.extract(&global, comm.rank());
        redistribute(&comm, ctx, &src, &mine, &dst, GemmOp::NoTrans)
    });
    for (rank, got) in parts.iter().enumerate() {
        let want = dst.extract(&global, rank);
        assert_eq!(got.len(), want.len(), "rank {rank} block count");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.max_abs_diff(w), 0.0, "rank {rank} data");
        }
    }
}
