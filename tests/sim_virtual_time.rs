//! End-to-end guarantees of the virtual-time backend (`msgpass::sim`):
//!
//! * a 2-rank ping-pong's virtual makespan equals the closed-form
//!   `2·(α + β·bytes)` — the base charging rule, checked exactly;
//! * virtual timestamps are deterministic: two simulations of the same
//!   CA3DMM problem produce **byte-identical** `RunReport` JSON artifacts,
//!   regardless of how the OS interleaves the rank threads (property test
//!   over random problems);
//! * the simulated executor is still the real executor: CA3DMM at p = 768
//!   virtual ranks with compute executed produces the same numbers as a
//!   serial GEMM;
//! * wait attribution is in *virtual* seconds: an imbalanced 4-rank run
//!   (one rank computes while three wait) shows the imbalance as nonzero
//!   wait% in its dashboard.

use ca3dmm::{Ca3dmm, Ca3dmmOptions};
use dense::gemm::{gemm_naive, GemmOp};
use dense::part::Rect;
use dense::random::global_block;
use dense::testing::assert_gemm_close;
use dense::Mat;
use gridopt::Problem;
use jsonlite::Json;
use layout::Layout;
use msgpass::{Comm, RunReportDoc, SimOptions, World};
use netmodel::Machine;
use proptest::prelude::*;

/// Ping-pong between two ranks: the makespan must be exactly two one-way
/// transfer times, and each rank's blocked time exactly one. The uniform
/// machine places one rank per node, so both messages price as inter-node:
/// `α = 1 µs`, `β = 1 ns/B` at full single-rank bandwidth.
#[test]
fn ping_pong_matches_closed_form() {
    const ELEMS: usize = 64;
    let bytes = (ELEMS * std::mem::size_of::<f64>()) as f64;
    let machine = Machine::uniform();
    let one_way = machine.alpha_inter + machine.beta_inter(1.0) * bytes;

    let (_, report) = World::run_sim(2, &machine, SimOptions::default(), |ctx| {
        let comm = Comm::world(ctx);
        ctx.set_phase("pp");
        if comm.rank() == 0 {
            comm.send(ctx, 1, 0, vec![1.0f64; ELEMS]);
            let _: Vec<f64> = comm.recv(ctx, 1, 1);
        } else {
            let v: Vec<f64> = comm.recv(ctx, 0, 0);
            comm.send(ctx, 0, 1, v);
        }
    });

    let sim = report.sim.as_ref().expect("sim info");
    assert_eq!(sim.makespan_secs, 2.0 * one_way, "makespan = 2(α + β·n)");
    // Rank 1 blocks from virtual 0 until the request arrives at `one_way`;
    // rank 0 blocks from `one_way` until the reply arrives at `2·one_way`.
    assert_eq!(report.traffic.wait_secs(1, "pp"), one_way);
    assert_eq!(report.traffic.wait_secs(0, "pp"), one_way);
}

/// CA3DMM executed on 768 virtual ranks (with the local GEMMs actually
/// performed) must equal the serial reference — the sim backend runs the
/// real algorithm, it does not approximate it.
#[test]
fn ca3dmm_at_p768_sim_matches_serial_gemm() {
    let (m, n, k, p) = (96, 96, 192, 768);
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let a_layout = Layout::one_d_col(m, k, p);
    let b_layout = Layout::one_d_col(k, n, p);
    let c_layout = Layout::one_d_col(m, n, p);
    let mm = Ca3dmm::new(Problem::new(m, n, k, p), &Ca3dmmOptions::default());

    let machine = Machine::phoenix_cpu();
    let (parts, report) = World::run_sim(p, &machine, SimOptions::default(), |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a_blocks = a_layout.extract(&a_full, me);
        let b_blocks = b_layout.extract(&b_full, me);
        mm.multiply(
            ctx,
            &world,
            GemmOp::NoTrans,
            &a_layout,
            &a_blocks,
            GemmOp::NoTrans,
            &b_layout,
            &b_blocks,
            &c_layout,
        )
    });

    let mut c_ref = Mat::zeros(m, n);
    gemm_naive(
        GemmOp::NoTrans,
        GemmOp::NoTrans,
        1.0,
        &a_full,
        &b_full,
        0.0,
        &mut c_ref,
    );
    assert_gemm_close(&c_layout.assemble(&parts), &c_ref, k, "sim p=768");

    let sim = report.sim.as_ref().expect("sim info");
    assert!(sim.execute_compute);
    assert!(sim.makespan_secs > 0.0);
    // Compute was charged, not just executed: virtual time includes γ·flops.
    let gemm_secs = 2.0 * (m * n * k) as f64
        / sim.placement.flops_per_rank
        / (report.traffic.per_rank.len() as f64);
    assert!(sim.makespan_secs > gemm_secs / 2.0);
}

/// The §III-F overlap charging rule: post the transfers, compute, then
/// wait — the round must cost `max(compute, communication)`, not the sum.
/// Both regimes are pinned exactly: compute-bound (transfer fully hidden,
/// zero residual wait) and communication-bound (wait exposes exactly the
/// remainder of the transfer).
#[test]
fn overlap_round_charges_max_of_comm_and_compute() {
    const ELEMS: usize = 4096;
    let machine = Machine::uniform();
    let bytes = (ELEMS * std::mem::size_of::<f64>()) as f64;
    let one_way = machine.alpha_inter + machine.beta_inter(1.0) * bytes;
    // On the uniform machine 1e9 flops = 1 virtual second.
    for comp_secs in [one_way * 4.0, one_way / 4.0] {
        let (_, report) = World::run_sim(2, &machine, SimOptions::default(), |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("round");
            let peer = 1 - comm.rank();
            let req = comm.irecv::<Vec<f64>>(ctx, peer, 0);
            comm.isend(ctx, peer, 0, vec![1.0f64; ELEMS]).wait();
            ctx.charge_flops(comp_secs * 1e9);
            let _ = req.wait(ctx);
        });
        let sim = report.sim.as_ref().expect("sim info");
        let want = comp_secs.max(one_way);
        assert!(
            (sim.makespan_secs - want).abs() < 1e-12,
            "overlap round: makespan {} != max(comp {comp_secs}, comm {one_way})",
            sim.makespan_secs
        );
        // Residual wait: what the compute failed to hide.
        let residual = (one_way - comp_secs).max(0.0);
        assert!(
            (report.traffic.wait_secs(0, "round") - residual).abs() < 1e-12,
            "residual wait {} != {residual}",
            report.traffic.wait_secs(0, "round")
        );
    }
}

/// Back-to-back nonblocking sends serialize on the sender's NIC pipe: two
/// isends posted at virtual t=0 arrive at `1·transfer` and `2·transfer`,
/// not both at `1·transfer` — so overlap cannot fabricate bandwidth.
#[test]
fn isends_serialize_on_the_nic_pipe() {
    const ELEMS: usize = 1024;
    let machine = Machine::uniform();
    let bytes = (ELEMS * std::mem::size_of::<f64>()) as f64;
    let one_way = machine.alpha_inter + machine.beta_inter(1.0) * bytes;
    let (_, report) = World::run_sim(2, &machine, SimOptions::default(), |ctx| {
        let comm = Comm::world(ctx);
        ctx.set_phase("pipe");
        if comm.rank() == 0 {
            comm.isend(ctx, 1, 0, vec![0.0f64; ELEMS]).wait();
            comm.isend(ctx, 1, 1, vec![0.0f64; ELEMS]).wait();
        } else {
            let a = comm.irecv::<Vec<f64>>(ctx, 0, 0);
            let b = comm.irecv::<Vec<f64>>(ctx, 0, 1);
            let _ = a.wait(ctx);
            let _ = b.wait(ctx);
        }
    });
    let sim = report.sim.as_ref().expect("sim info");
    assert!(
        (sim.makespan_secs - 2.0 * one_way).abs() < 1e-12,
        "two isends must drain sequentially: {} != {}",
        sim.makespan_secs,
        2.0 * one_way
    );
}

/// The executed overlap ablation at the CA3DMM level: on the same problem,
/// machine, and grid, the overlapped pipeline's virtual makespan is never
/// worse than the blocking one's (and the traffic is identical).
#[test]
fn overlapped_ca3dmm_sim_is_no_slower_than_blocking() {
    let machine = Machine::phoenix_cpu();
    let prob = Problem::new(96, 96, 192, 48);
    let run = |overlap: bool| {
        let alg = Ca3dmm::new(
            prob,
            &Ca3dmmOptions {
                overlap,
                ..Default::default()
            },
        );
        let report = alg.simulate_native(
            &machine,
            SimOptions {
                execute_compute: false,
                ..Default::default()
            },
        );
        (
            report.sim.as_ref().expect("sim info").makespan_secs,
            report.traffic.max_rank_bytes(),
        )
    };
    let (t_overlap, bytes_overlap) = run(true);
    let (t_blocking, bytes_blocking) = run(false);
    assert_eq!(
        bytes_overlap, bytes_blocking,
        "overlap must not change traffic"
    );
    assert!(
        t_overlap <= t_blocking + 1e-12,
        "overlap {t_overlap} must not exceed blocking {t_blocking}"
    );
    assert!(
        t_overlap < t_blocking,
        "a comm-heavy shape must show a real overlap win ({t_overlap} vs {t_blocking})"
    );
}

/// An imbalanced 4-rank run — rank 0 charges a long local compute before
/// releasing the others — must attribute the idle ranks' time to *virtual*
/// wait, visible as nonzero wait% in the parsed artifact and its dashboard.
#[test]
fn imbalanced_sim_shows_virtual_wait() {
    let machine = Machine::uniform();
    let (_, report) = World::run_sim(4, &machine, SimOptions::default(), |ctx| {
        let comm = Comm::world(ctx);
        ctx.set_phase("imbalance");
        if comm.rank() == 0 {
            ctx.charge_flops(1e9); // 1 virtual second on the uniform machine
            for dst in 1..4 {
                comm.send(ctx, dst, 7, vec![0u8; 8]);
            }
        } else {
            let _: Vec<u8> = comm.recv(ctx, 0, 7);
        }
    });
    let text = report
        .to_json(Json::obj([("name", Json::Str("imbalance".into()))]))
        .to_string_pretty();
    let doc = RunReportDoc::parse(&text).expect("artifact parses");
    assert_eq!(doc.time_domain, "virtual");
    let row = doc
        .phases
        .iter()
        .find(|r| r.phase == "imbalance")
        .expect("phase row");
    assert!(
        row.wait_max > 0.9,
        "idle ranks blocked ~1 virtual second, got {}",
        row.wait_max
    );
    assert!(row.secs_max >= row.wait_max);

    let dash = doc.render_dashboard();
    assert!(dash.contains("virtual time"), "{dash}");
    let line = dash
        .lines()
        .find(|l| l.starts_with("imbalance"))
        .expect("dashboard phase line");
    assert!(
        !line.trim_end().ends_with(" 0.0%"),
        "wait%% must be nonzero: {line}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Determinism: simulating the same problem twice yields byte-identical
    /// artifacts, for arbitrary problem shapes (and therefore arbitrary
    /// grids, group structures, and message interleavings).
    #[test]
    fn sim_artifacts_are_byte_identical(
        m in 8usize..48,
        n in 8usize..48,
        k in 8usize..64,
        p in 2usize..24,
    ) {
        let machine = Machine::phoenix_cpu();
        let alg = Ca3dmm::new(Problem::new(m, n, k, p), &Ca3dmmOptions::default());
        let run = || {
            let report = alg.simulate_native(
                &machine,
                SimOptions {
                    execute_compute: false,
                    ..Default::default()
                },
            );
            report.to_json(alg.report_meta("determinism")).to_string_pretty()
        };
        let (first, second) = (run(), run());
        prop_assert_eq!(first, second);
    }
}
