//! The validation that licenses the paper-scale cost model: the byte volume
//! the analytic schedule predicts must equal what the `msgpass` traffic
//! counters *measure* when the same algorithm runs for real.
//!
//! Problems here are chosen exactly divisible by the grid factors so the
//! ⌈·⌉-based model and the uneven-block executor coincide bit-for-bit; an
//! additional test checks that uneven problems stay within a small
//! tolerance.

use baselines::CosmaLike;
use ca3dmm::{ca3dmm_schedule, Ca3dmm, Ca3dmmOptions, ModelConfig};
use dense::part::Rect;
use dense::random::global_block;
use dense::Mat;
use gridopt::{Grid, Problem};
use msgpass::{Comm, World};
use netmodel::Machine;

/// Runs CA3DMM natively and returns (measured max-rank bytes, measured
/// total bytes, modeled per-rank bytes).
fn measure_ca3dmm(m: usize, n: usize, k: usize, p: usize, grid: Grid) -> (u64, f64) {
    let prob = Problem::new(m, n, k, p);
    let alg = Ca3dmm::new(
        prob,
        &Ca3dmmOptions {
            grid_override: Some(grid),
            ..Default::default()
        },
    );
    let gc = alg.grid_context();
    let (la, lb) = (gc.layout_a(), gc.layout_b());
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let (_, report) = World::run_traced(p, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a = la.extract(&a_full, me).into_iter().next();
        let b = lb.extract(&b_full, me).into_iter().next();
        let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
    });
    let cfg = ModelConfig {
        placement: Machine::uniform().pure_mpi(),
        elem_bytes: 8.0,
        overlap: true,
        include_redist: false,
        collectives: ca3dmm::Collectives::Flat,
    };
    let sched = ca3dmm_schedule(&prob, &grid, &cfg);
    (report.max_rank_bytes(), sched.sent_bytes())
}

#[test]
fn ca3dmm_volume_exact_on_divisible_problems() {
    // (m, n, k, p, grid) with every dimension divisible by its grid factor
    // and by s within the k-blocks.
    let cases = [
        (16usize, 16, 16, 8, Grid::new(2, 2, 2)),
        (32, 32, 64, 16, Grid::new(2, 2, 4)), // paper example 2
        (32, 64, 16, 8, Grid::new(2, 4, 1)),  // paper example 1 (c = 2)
        (64, 32, 16, 8, Grid::new(4, 2, 1)),  // mirrored (B replicated)
        (24, 24, 96, 24, Grid::new(2, 2, 6)),
        (32, 8, 64, 16, Grid::new(1, 1, 16)), // pure 1D-k (mb divisible by pk)
        (64, 8, 8, 8, Grid::new(8, 1, 1)),    // pure 1D-m
        (48, 48, 12, 18, Grid::new(3, 3, 2)),
        (36, 72, 36, 18, Grid::new(3, 6, 1)), // c = 2 with s = 3
    ];
    for (m, n, k, p, grid) in cases {
        let (measured, modeled) = measure_ca3dmm(m, n, k, p, grid);
        assert_eq!(
            measured as f64, modeled,
            "volume mismatch for {m}x{n}x{k} p={p} {grid:?}: measured {measured} modeled {modeled}"
        );
    }
}

#[test]
fn ca3dmm_volume_close_on_uneven_problems() {
    let cases = [
        (17usize, 19, 23, 8, Grid::new(2, 2, 2)),
        (33, 65, 17, 8, Grid::new(2, 4, 1)),
        (29, 31, 37, 12, Grid::new(2, 2, 3)),
    ];
    for (m, n, k, p, grid) in cases {
        let (measured, modeled) = measure_ca3dmm(m, n, k, p, grid);
        let rel = (measured as f64 - modeled).abs() / modeled.max(1.0);
        assert!(
            rel < 0.30,
            "uneven volume off by {rel:.2} for {m}x{n}x{k} p={p} {grid:?}"
        );
        // the model uses ceilings, so it must never undercount badly
        assert!(
            modeled * 1.05 >= measured as f64,
            "model undercounts: measured {measured} modeled {modeled}"
        );
    }
}

#[test]
fn cosma_volume_exact_on_divisible_problems() {
    let cases = [
        (16usize, 16, 16, 8, Grid::new(2, 2, 2)),
        (24, 36, 48, 24, Grid::new(2, 3, 4)),
        (32, 8, 64, 16, Grid::new(1, 1, 16)),
        (60, 12, 12, 6, Grid::new(6, 1, 1)),
    ];
    for (m, n, k, p, grid) in cases {
        let prob = Problem::new(m, n, k, p);
        let alg = CosmaLike::new(prob, Some(grid));
        let (la, lb) = (alg.layout_a(), alg.layout_b());
        let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
        let (_, report) = World::run_traced(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
        });
        let sched = alg.schedule(&Machine::uniform().pure_mpi(), 8.0, false);
        assert_eq!(
            report.max_rank_bytes() as f64,
            sched.sent_bytes(),
            "cosma volume mismatch for {m}x{n}x{k} p={p} {grid:?}"
        );
    }
}

/// The measured message count never exceeds what a ring-based
/// implementation of the butterfly schedule could send, and the measured
/// per-phase byte split matches the schedule's labels.
#[test]
fn phase_labels_match_between_model_and_runtime() {
    let (m, n, k, p) = (32, 64, 16, 8);
    let grid = Grid::new(2, 4, 1);
    let prob = Problem::new(m, n, k, p);
    let alg = Ca3dmm::new(
        prob,
        &Ca3dmmOptions {
            grid_override: Some(grid),
            ..Default::default()
        },
    );
    let gc = alg.grid_context();
    let (la, lb) = (gc.layout_a(), gc.layout_b());
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let (_, report) = World::run_traced(p, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a = la.extract(&a_full, me).into_iter().next();
        let b = lb.extract(&b_full, me).into_iter().next();
        let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
    });
    // replication: allgather of one A block over c=2 -> each rank sends
    // half a block = 16*4 elements
    let repl = report.phase(0, "replicate_ab").bytes;
    assert_eq!(repl as usize, 16 * 4 * 8);
    // reduce_c absent for pk = 1
    assert_eq!(report.phase_total("reduce_c").bytes, 0);
}

/// Per-phase wall-time accounting: the traced report's phase seconds are
/// positive for every phase the algorithm runs and sum to roughly the
/// rank's busy time.
#[test]
fn phase_times_are_recorded() {
    let (m, n, k, p) = (64, 64, 64, 8);
    let grid = Grid::new(2, 2, 2);
    let alg = Ca3dmm::new(
        Problem::new(m, n, k, p),
        &Ca3dmmOptions {
            grid_override: Some(grid),
            ..Default::default()
        },
    );
    let gc = alg.grid_context();
    let (la, lb) = (gc.layout_a(), gc.layout_b());
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let (_, report) = World::run_traced(p, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a = la.extract(&a_full, me).into_iter().next();
        let b = lb.extract(&b_full, me).into_iter().next();
        let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
    });
    assert!(report.phase_secs_max("cannon_shift") > 0.0);
    assert!(report.phase_secs_max("reduce_c") > 0.0);
    assert!(report.phases().contains(&"cannon_shift".to_owned()));
}

/// Schedules serialize (the bench harness dumps them as JSON artifacts).
#[test]
fn schedules_serde_round_trip() {
    let prob = Problem::new(1000, 1000, 1000, 64);
    let grid = Grid::new(4, 4, 4);
    let cfg = ModelConfig {
        placement: Machine::uniform().pure_mpi(),
        elem_bytes: 8.0,
        overlap: true,
        include_redist: true,
        collectives: ca3dmm::Collectives::Flat,
    };
    let sched = ca3dmm_schedule(&prob, &grid, &cfg);
    let json = sched.to_json_string();
    let back = netmodel::Schedule::from_json_str(&json).expect("deserialize");
    assert_eq!(back.items.len(), sched.items.len());
    assert!((back.sent_bytes() - sched.sent_bytes()).abs() < 1e-9);
}
