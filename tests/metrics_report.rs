//! The metrics layer's cross-crate guarantees: the log2 size buckets
//! partition `u64` exactly (property test), and on a real 4-rank CA3DMM run
//! every redundant view of the traffic — per-phase counters, the rank×rank
//! communication matrix, the size histograms, the JSON artifact — reconciles
//! with every other. A profiled run additionally exercises the schema-v3
//! `compute` block end to end: round-trip, reconciliation against the rank
//! GEMM wall time, v2 backward compatibility, and a property test that the
//! profiler's retained spans cover exactly its stated `coverage` fraction
//! of the exact busy time.

use ca3dmm::{Ca3dmm, Ca3dmmOptions};
use dense::part::Rect;
use dense::random::global_block;
use dense::Mat;
use gridopt::{Grid, Problem};
use msgpass::metrics::{bucket_label, size_bucket, HIST_BUCKETS};
use msgpass::{Comm, GatePolicy, RunReport, RunReportDoc, SizeHistogram, World};
use proptest::prelude::*;

/// Strategy: a `u64` with a uniformly chosen significant-bit count, so
/// every one of the 65 buckets (including 0 and the open-ended top one) is
/// exercised rather than only the astronomically large sizes a uniform
/// `u64` draw would produce.
fn any_size() -> impl Strategy<Value = u64> {
    (0usize..65, 0u64..u64::MAX).prop_map(|(bits, raw)| {
        if bits == 0 {
            0
        } else {
            // Force the top bit so the value has exactly `bits` bits.
            (raw | (1u64 << 63)) >> (64 - bits)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every `u64` size lands in exactly one bucket, and that bucket's
    /// stated range actually contains it: bucket 0 is only size 0, bucket
    /// `k ≥ 1` covers `[2^(k-1), 2^k)`, bucket 64 is open-ended.
    #[test]
    fn log2_buckets_partition_u64(size in any_size()) {
        let b = size_bucket(size);
        prop_assert!(b < HIST_BUCKETS);
        if size == 0 {
            prop_assert_eq!(b, 0);
        } else {
            prop_assert!(b >= 1);
            prop_assert!(size >= 1u64 << (b - 1), "size {size} below bucket {b} floor");
            if b < 64 {
                prop_assert!(size < 1u64 << b, "size {size} at or above bucket {b} ceiling");
            }
        }
        // The label machinery must accept every reachable bucket.
        prop_assert!(!bucket_label(b).is_empty());
    }

    /// Recording any batch of sizes preserves the totals: bucket counts sum
    /// to the message count, bytes sum exactly, and the sparse wire form
    /// (`from_parts`) round-trips the histogram.
    #[test]
    fn histogram_totals_reconcile(sizes in proptest::collection::vec(any_size(), 0..64)) {
        let mut h = SizeHistogram::new();
        let (mut bytes, mut msgs) = (0u64, 0u64);
        for &s in &sizes {
            // Overflow of the u64 byte total is out of scope for real runs
            // (it would need 16 EiB of traffic); skip sizes that would.
            let Some(nb) = bytes.checked_add(s) else { continue };
            h.record(s);
            bytes = nb;
            msgs += 1;
        }
        prop_assert_eq!(h.msgs, msgs);
        prop_assert_eq!(h.bytes, bytes);
        let count_sum: u64 = h.nonzero().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(count_sum, h.msgs);
        // The sparse wire form round-trips the histogram exactly.
        let rt = SizeHistogram::from_parts(&h.nonzero(), h.bytes).unwrap();
        prop_assert_eq!(rt, h);
    }
}

#[test]
fn bucket_edges_are_exact() {
    assert_eq!(size_bucket(0), 0);
    assert_eq!(size_bucket(1), 1);
    assert_eq!(size_bucket(2), 2);
    assert_eq!(size_bucket(3), 2);
    assert_eq!(size_bucket(4), 3);
    assert_eq!(size_bucket((1 << 63) - 1), 63);
    assert_eq!(size_bucket(1 << 63), 64);
    assert_eq!(size_bucket(u64::MAX), 64);
}

/// Runs a real 4-rank CA3DMM multiply with tracing and returns its report.
fn traced_ca3dmm_run() -> (Ca3dmm, RunReport) {
    let (m, n, k, p) = (48, 48, 48, 4);
    let prob = Problem::new(m, n, k, p);
    let alg = Ca3dmm::new(
        prob,
        &Ca3dmmOptions {
            grid_override: Some(Grid::new(2, 1, 2)),
            ..Default::default()
        },
    );
    let gc = alg.grid_context();
    let (la, lb) = (gc.layout_a(), gc.layout_b());
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let (_, report) = World::run_traced(p, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a = la.extract(&a_full, me).into_iter().next();
        let b = lb.extract(&b_full, me).into_iter().next();
        let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
    });
    (alg, report)
}

/// On a real CA3DMM run, the communication matrix's row and column sums
/// must equal the per-phase traffic totals: every byte a rank's phase
/// counters claim it sent appears in its matrix row, and every sent byte
/// was received by someone (send columns = recv rows).
#[test]
fn comm_matrix_reconciles_with_phase_totals() {
    let (_, report) = traced_ca3dmm_run();
    let t = &report.traffic;
    t.check_consistency().expect("traffic views reconcile");

    let p = t.matrix.ranks();
    assert_eq!(p, 4);
    let mut run_sent = 0u64;
    for r in 0..p {
        let row_bytes: u64 = (0..p).map(|dst| t.matrix.sent(r, dst).bytes).sum();
        let row_msgs: u64 = (0..p).map(|dst| t.matrix.sent(r, dst).msgs).sum();
        let totals = t.rank_total(r);
        assert_eq!(row_bytes, totals.bytes, "rank {r} send row vs phase totals");
        assert_eq!(row_msgs, totals.msgs, "rank {r} send msgs");
        // Recv side: the matrix recv row equals the rank's recv counters.
        let recv_bytes: u64 = (0..p).map(|src| t.matrix.received(r, src).bytes).sum();
        assert_eq!(recv_bytes, totals.recv_bytes, "rank {r} recv row");
        // Send-side column r = what everyone sent *to* r = what r received.
        let col_bytes: u64 = (0..p).map(|src| t.matrix.sent(src, r).bytes).sum();
        assert_eq!(col_bytes, recv_bytes, "rank {r} send column vs recv row");
        run_sent += row_bytes;
    }
    assert!(run_sent > 0, "a 4-rank CA3DMM run must communicate");
    assert_eq!(run_sent, t.total_bytes());

    // Histograms carry the same totals, keyed both ways.
    let hist_bytes: u64 = t.hist_by_phase.values().map(|h| h.bytes).sum();
    let algo_bytes: u64 = t.hist_by_algo.values().map(|h| h.bytes).sum();
    assert_eq!(hist_bytes, run_sent);
    assert_eq!(algo_bytes, run_sent);

    // Ranks that only receive still show activity (the recv-side counters
    // exist precisely because send-only accounting hid them).
    for r in 0..p {
        let tot = t.rank_total(r);
        assert!(
            tot.bytes + tot.recv_bytes > 0,
            "rank {r} shows no traffic at all"
        );
    }
}

/// A profiled run's schema-v3 artifact: every rank gets a compute row, the
/// pack/compute/idle split reconciles with the rank's GEMM wall time
/// (thread-seconds) within 5%, and the dashboard renders the compute table.
#[test]
fn profiled_run_report_compute_block_reconciles() {
    dense::set_gemm_profiling(true);
    let (alg, report) = traced_ca3dmm_run();
    // `report_meta` snapshots the profiling flag, so build the meta before
    // turning it back off.
    let meta = alg.report_meta("metrics_report_prof");
    dense::set_gemm_profiling(false);
    assert_eq!(report.compute.len(), 4, "all ranks captured");

    let text = report.to_json(meta).to_string_pretty();
    let doc = RunReportDoc::parse(&text).expect("profiled artifact parses");
    assert_eq!(doc.schema_version, msgpass::report::SCHEMA_VERSION);
    assert_eq!(
        doc.meta.get("gemm_prof").and_then(jsonlite::Json::as_bool),
        Some(true),
        "meta records that the run was profiled"
    );
    let compute = doc.compute.as_ref().expect("schema-v3 compute block");
    assert_eq!(compute.len(), 4);
    let mut ranks_with_gemms = 0;
    for (rank, row) in compute.iter().enumerate() {
        let row = row.as_ref().expect("every rank captured");
        if row.gemm_calls == 0 {
            continue;
        }
        ranks_with_gemms += 1;
        // Acceptance: pack + compute + idle rebuild the rank's GEMM
        // thread-seconds (width × wall summed per call) within 5%.
        let rebuilt = row.pack_a_secs + row.pack_b_secs + row.compute_secs + row.idle_secs;
        assert!(
            (rebuilt - row.thread_secs).abs() <= 0.05 * row.thread_secs.max(1e-12),
            "rank {rank}: split {rebuilt} vs thread_secs {}",
            row.thread_secs
        );
        assert!(
            row.thread_secs >= 0.999 * row.gemm_wall_secs,
            "rank {rank}: thread-seconds below single-width wall time"
        );
        assert!((0.0..=1.0 + 1e-9).contains(&row.coverage), "rank {rank}");
        assert!(row.pack_bytes <= row.pack_bound_bytes, "rank {rank}");
        assert!(row.peak_gflops > 0.0 && row.achieved_gflops > 0.0);
    }
    assert!(ranks_with_gemms > 0, "some rank multiplied");
    assert!(doc.render_dashboard().contains("compute attribution"));

    // Self-gate passes with the compute block on both sides.
    msgpass::report::gate(&doc, &doc, &GatePolicy::default()).expect("profiled self gate");
}

/// Backward compatibility: a schema-v2 artifact (written by the previous
/// build, no `compute` key) still parses, implying no compute block.
#[test]
fn v2_artifact_parses_without_compute_block() {
    let v2 = r#"{
        "schema_version": 2,
        "kind": "ca3dmm_run_report",
        "time_domain": "wall",
        "sim": null,
        "meta": {"name": "v2"},
        "machine": {"arch": "x86_64", "os": "linux"},
        "ranks": 1,
        "phases": [],
        "totals": {"sent_bytes": 0, "sent_msgs": 0,
                   "max_rank_bytes": 0, "max_rank_msgs": 0},
        "matrix": {"format": "sparse", "send": [], "recv": []},
        "histograms": {"by_phase": {}, "by_algo": {}},
        "wait_per_rank": [{}],
        "critical_path": null
    }"#;
    let doc = RunReportDoc::parse(v2).expect("v2 artifact parses");
    assert_eq!(doc.schema_version, 2);
    assert!(doc.compute.is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Direct-capture property: for random GEMM shapes, the profiler's
    /// retained busy spans sum to exactly its stated `coverage` fraction of
    /// the exact busy time (both come from the same timestamps), and the
    /// derived idle closes the thread-seconds identity.
    #[test]
    fn profiler_spans_cover_stated_busy_fraction(
        m in 8usize..56,
        n in 8usize..56,
        k in 8usize..56,
    ) {
        dense::set_gemm_profiling(true);
        dense::prof::begin_capture();
        let a = dense::random::random_mat::<f64>(m, k, 3);
        let b = dense::random::random_mat::<f64>(k, n, 4);
        let mut c = Mat::<f64>::zeros(m, n);
        dense::gemm(
            dense::GemmOp::NoTrans,
            dense::GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
        );
        let profile = dense::prof::end_capture().expect("capture was active");
        dense::set_gemm_profiling(false);

        let busy_exact = profile.pack_a_secs + profile.pack_b_secs + profile.compute_secs;
        let span_busy: f64 = profile
            .spans
            .iter()
            .filter(|s| s.phase.is_busy())
            .map(|s| (s.t1_ns - s.t0_ns) as f64 * 1e-9)
            .sum();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&profile.coverage));
        prop_assert!(
            (span_busy - profile.coverage * busy_exact).abs() <= 1e-9 + 1e-6 * busy_exact,
            "span sum {span_busy} vs coverage {} x busy {busy_exact}",
            profile.coverage
        );
        let rebuilt = busy_exact + profile.idle_secs;
        prop_assert!(
            (rebuilt - profile.thread_secs).abs() <= 0.05 * profile.thread_secs.max(1e-12),
            "identity {rebuilt} vs {}",
            profile.thread_secs
        );
    }
}

/// The JSON artifact round-trips losslessly enough to gate against itself,
/// and a perturbed artifact is rejected — either at parse (internal
/// inconsistency) or by the gate.
#[test]
fn run_report_artifact_round_trips_and_gates() {
    let (alg, report) = traced_ca3dmm_run();
    let text = report
        .to_json(alg.report_meta("metrics_report_e2e"))
        .to_string_pretty();
    let doc = RunReportDoc::parse(&text).expect("artifact parses");
    assert_eq!(doc.name(), Some("metrics_report_e2e"));
    assert_eq!(doc.ranks, 4);
    assert_eq!(doc.totals.sent_bytes, report.traffic.total_bytes());
    assert!(
        doc.critical_path.is_some(),
        "traced run has a critical path"
    );

    // Self-gate passes, with and without a time policy.
    msgpass::report::gate(&doc, &doc, &GatePolicy::default()).expect("self gate");
    msgpass::report::gate(
        &doc,
        &doc,
        &GatePolicy {
            max_time_ratio: Some(1.0 + 1e-9),
            ..Default::default()
        },
    )
    .expect("self gate with time ratio");

    // Dashboard renders every section for a real run.
    let dash = doc.render_dashboard();
    for needle in [
        "RunReport",
        "communication matrix",
        "message sizes",
        "bottleneck",
    ] {
        assert!(dash.contains(needle), "dashboard missing {needle:?}");
    }

    // Perturb the busiest phase's byte count in the raw JSON. The redundant
    // views disagree afterwards, so either the parser's consistency check
    // or the gate must reject it — silently passing is the only failure.
    let busiest = doc
        .phases
        .iter()
        .max_by_key(|ph| ph.sent_bytes)
        .expect("phases present");
    let from = format!("\"sent_bytes\": {}", busiest.sent_bytes);
    let to = format!("\"sent_bytes\": {}", busiest.sent_bytes + 64);
    let perturbed = text.replacen(&from, &to, 1);
    assert_ne!(perturbed, text, "perturbation must hit");
    match RunReportDoc::parse(&perturbed) {
        Err(_) => {} // internal consistency caught it
        Ok(bad) => {
            let errs = msgpass::report::gate(&doc, &bad, &GatePolicy::default())
                .expect_err("gate must flag perturbed traffic");
            assert!(!errs.is_empty());
        }
    }
}
