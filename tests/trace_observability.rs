//! End-to-end tests of the event-tracing subsystem: a real CA3DMM run is
//! traced, the resulting timeline must agree with the traffic report's
//! independent phase clock, the Chrome-trace export must be valid JSON with
//! perfectly matched B/E pairs (including the kernel-thread tracks a
//! profiled run merges in), and the critical-path and model-diff reports
//! must be self-consistent.

use ca3dmm::{ca3dmm_schedule, diff_model_vs_measured, Ca3dmm, Ca3dmmOptions, ModelConfig};
use dense::part::Rect;
use dense::random::global_block;
use dense::Mat;
use gridopt::{Grid, Problem};
use jsonlite::Json;
use msgpass::{Comm, RunOptions, RunReport, World};
use netmodel::eval::evaluate;
use netmodel::Machine;

/// Runs CA3DMM (native layouts) traced and returns the report.
fn traced_ca3dmm(m: usize, n: usize, k: usize, p: usize, grid: Grid) -> RunReport {
    let prob = Problem::new(m, n, k, p);
    let alg = Ca3dmm::new(
        prob,
        &Ca3dmmOptions {
            grid_override: Some(grid),
            ..Default::default()
        },
    );
    let gc = alg.grid_context();
    let (la, lb) = (gc.layout_a(), gc.layout_b());
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let (_, report) = World::run_traced(p, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a = la.extract(&a_full, me).into_iter().next();
        let b = lb.extract(&b_full, me).into_iter().next();
        let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
    });
    report
}

/// The timeline's per-phase seconds agree with the traffic report's
/// independent phase clock on every rank — both derive from the same
/// `set_phase` timestamps, so the agreement must be tight.
#[test]
fn timeline_agrees_with_traffic_phase_clock() {
    let report = traced_ca3dmm(64, 64, 64, 8, Grid::new(2, 2, 2));
    assert!(!report.timeline.is_empty());
    for phase in report.timeline.phases() {
        for rank in 0..report.timeline.ranks() {
            let trace_s = report.timeline.phase_secs(rank, &phase);
            let clock_s = report.traffic.phase_secs(rank, &phase);
            assert!(
                (trace_s - clock_s).abs() < 1e-6,
                "rank {rank} phase {phase}: timeline {trace_s} vs traffic {clock_s}"
            );
        }
    }
    // and the per-phase sent bytes match the traffic counters exactly
    for phase in report.timeline.phases() {
        for rank in 0..report.timeline.ranks() {
            assert_eq!(
                report.timeline.phase_sent_bytes(rank, &phase),
                report.traffic.phase(rank, &phase).bytes,
                "rank {rank} phase {phase} bytes"
            );
        }
    }
}

/// The Chrome-trace export parses as JSON and every `B` event has a
/// matching `E` on the same tid, properly nested (golden structural
/// checks, not byte-for-byte goldens — timestamps vary run to run).
#[test]
fn chrome_export_is_valid_and_balanced() {
    let p = 8;
    let report = traced_ca3dmm(48, 48, 96, p, Grid::new(2, 2, 2));
    let text = report.timeline.to_chrome_json();
    let json = Json::parse(&text).expect("chrome trace must be valid JSON");

    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // per-tid stack walk: B pushes, E pops; ts monotone per tid
    let mut stacks: std::collections::BTreeMap<i64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<i64, f64> = Default::default();
    let mut names = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        if ph == "M" {
            continue; // metadata (thread names)
        }
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as i64;
        assert!(tid >= 0 && (tid as usize) < p, "tid {tid} out of range");
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(ts >= *prev, "timestamps must be non-decreasing per tid");
        *prev = ts;
        match ph {
            "B" => {
                let name = ev.get("name").and_then(Json::as_str).expect("name");
                names.insert(name.to_owned());
                stacks.entry(tid).or_default().push(name.to_owned());
            }
            "E" => {
                assert!(
                    stacks.entry(tid).or_default().pop().is_some(),
                    "E without matching B on tid {tid}"
                );
            }
            other => panic!("unexpected event phase {other}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "unclosed B events on tid {tid}: {stack:?}"
        );
    }
    // the phases and at least one collective appear by name
    assert!(names.iter().any(|n| n.contains("cannon_shift")));
    assert!(names.iter().any(|n| n.contains("reduce_c")));
    // pk = 2 means the reduce phase runs its reduce-scatter collective
    assert!(names.iter().any(|n| n.contains("reduce_scatter")));
}

/// A profiled run's `RunReport::to_chrome_json` export merges kernel-thread
/// tracks (tid ≥ 1000, `tid = 1000·(rank+1) + track`) under the comm
/// timeline: the tracks exist, carry the profiler's phase labels, and keep
/// every tid's B/E pairs balanced with monotone timestamps.
#[test]
fn profiled_chrome_export_has_kernel_thread_tracks() {
    let p = 4;
    dense::set_gemm_profiling(true);
    let report = traced_ca3dmm(64, 64, 64, p, Grid::new(2, 1, 2));
    dense::set_gemm_profiling(false);
    assert_eq!(report.compute.len(), p, "all ranks captured");

    let text = report.to_chrome_json();
    let json = Json::parse(&text).expect("profiled chrome trace must be valid JSON");
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    let mut kernel_tids = std::collections::BTreeSet::new();
    let mut kernel_labels = std::collections::BTreeSet::new();
    let mut depth: std::collections::BTreeMap<i64, i64> = Default::default();
    let mut last_ts: std::collections::BTreeMap<i64, f64> = Default::default();
    for ev in events {
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as i64;
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        if tid < 1000 {
            assert!((tid as usize) < p, "comm tid {tid} out of range");
            continue;
        }
        // Kernel track: rank index recoverable from the tid scheme.
        let rank = (tid as usize) / 1000 - 1;
        assert!(rank < p, "kernel tid {tid} maps to bad rank {rank}");
        if ph == "M" {
            continue;
        }
        kernel_tids.insert(tid);
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        assert!(ts >= 0.0, "kernel span before the run epoch");
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(ts >= *prev, "kernel timestamps monotone per tid");
        *prev = ts;
        let d = depth.entry(tid).or_insert(0);
        match ph {
            "B" => {
                *d += 1;
                let name = ev.get("name").and_then(Json::as_str).expect("name");
                kernel_labels.insert(name.to_owned());
            }
            "E" => *d -= 1,
            other => panic!("unexpected kernel event phase {other}"),
        }
        assert!((0..=1).contains(d), "kernel tracks must be flat");
    }
    for (tid, d) in &depth {
        assert_eq!(*d, 0, "unbalanced kernel B/E on tid {tid}");
    }
    assert!(
        !kernel_tids.is_empty(),
        "a profiled run must emit kernel-thread tracks"
    );
    // The GEMMs here run below the parallel cutoff, so the rank thread
    // itself records pack/compute spans — those labels must appear.
    assert!(
        kernel_labels.contains("compute"),
        "kernel labels: {kernel_labels:?}"
    );
    assert!(
        kernel_labels.iter().any(|l| l.starts_with("pack")),
        "kernel labels: {kernel_labels:?}"
    );
}

/// The critical-path analyzer names a real phase, its per-phase split sums
/// sensibly, and comm never exceeds the phase total.
#[test]
fn critical_path_report_is_consistent() {
    let report = traced_ca3dmm(64, 64, 128, 8, Grid::new(2, 2, 2));
    let crit = report.timeline.critical_path();
    let bottleneck = crit.bottleneck().expect("nonempty critical path");
    assert!(report.timeline.phases().contains(&bottleneck.phase));
    for pc in &crit.phases {
        assert!(
            pc.crit_secs > 0.0,
            "phase {} has zero critical time",
            pc.phase
        );
        assert!(pc.crit_rank < report.timeline.ranks());
        assert!(
            pc.comm_secs <= pc.crit_secs + 1e-9,
            "phase {}: comm {} exceeds total {}",
            pc.phase,
            pc.comm_secs,
            pc.crit_secs
        );
        assert!((pc.comm_secs + pc.comp_secs - pc.crit_secs).abs() < 1e-9);
    }
    assert!(crit.render().contains("bottleneck"));
}

/// The model-vs-measured diff covers every runtime phase and produces a
/// positive measured total; the modeled side prices the same labels.
#[test]
fn model_diff_covers_all_phases() {
    let (m, n, k, p) = (32, 32, 64, 8);
    let grid = Grid::new(2, 2, 2);
    let report = traced_ca3dmm(m, n, k, p, grid);
    let machine = Machine::uniform();
    let placement = machine.pure_mpi();
    let cfg = ModelConfig {
        placement,
        elem_bytes: 8.0,
        overlap: true,
        include_redist: false,
        collectives: ca3dmm::Collectives::Flat,
    };
    let prob = Problem::new(m, n, k, p);
    let cost = evaluate(
        &machine,
        placement.flops_per_rank,
        &ca3dmm_schedule(&prob, &grid, &cfg),
    );
    let diff = diff_model_vs_measured(&report, &cost);
    assert!(diff.measured_total_s > 0.0);
    assert!(diff.modeled_total_s > 0.0);
    for phase in report.timeline.phases() {
        let label = ca3dmm::model_phase_label(&phase);
        assert!(
            diff.phases.iter().any(|d| d.phase == label),
            "phase {phase} (label {label}) missing"
        );
    }
}

/// Tracing overhead: an untraced run and a traced run of the same problem
/// complete and agree on traffic byte counts (tracing must not perturb
/// what is sent).
#[test]
fn tracing_does_not_change_traffic() {
    let (m, n, k, p) = (48, 48, 48, 8);
    let grid = Grid::new(2, 2, 2);
    let traced = traced_ca3dmm(m, n, k, p, grid);

    let prob = Problem::new(m, n, k, p);
    let alg = Ca3dmm::new(
        prob,
        &Ca3dmmOptions {
            grid_override: Some(grid),
            ..Default::default()
        },
    );
    let gc = alg.grid_context();
    let (la, lb) = (gc.layout_a(), gc.layout_b());
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let (_, untraced) = World::run_opts(p, RunOptions::default(), |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a = la.extract(&a_full, me).into_iter().next();
        let b = lb.extract(&b_full, me).into_iter().next();
        let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
    });
    assert!(untraced.timeline.is_empty());
    assert_eq!(untraced.max_rank_bytes(), traced.max_rank_bytes());
    assert_eq!(untraced.total_bytes(), traced.total_bytes());
}
