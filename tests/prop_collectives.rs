//! Property tests for the `msgpass` collectives: every collective must
//! agree with its obvious serial specification for arbitrary group sizes,
//! payload sizes, and roots — including empty contributions. These are the
//! foundations everything else stands on.

use msgpass::collectives::{
    allgatherv, allreduce, alltoallv, barrier, bcast_large, gatherv, reduce_scatter,
};
use msgpass::{Comm, World};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allgatherv_concatenates(p in 1usize..9, sizes in proptest::collection::vec(0usize..7, 1..9)) {
        let counts: Vec<usize> = (0..p).map(|r| sizes[r % sizes.len()]).collect();
        let counts2 = counts.clone();
        let got = World::run(p, move |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let mine: Vec<u64> = (0..counts2[me]).map(|i| (me * 100 + i) as u64).collect();
            allgatherv(&comm, ctx, mine, &counts2)
        });
        let want: Vec<u64> = (0..p)
            .flat_map(|r| (0..counts[r]).map(move |i| (r * 100 + i) as u64))
            .collect();
        for g in got {
            prop_assert_eq!(&g, &want);
        }
    }

    #[test]
    fn reduce_scatter_matches_serial(p in 1usize..9, seg in 0usize..6) {
        let counts: Vec<usize> = (0..p).map(|r| seg + r % 2).collect();
        let total: usize = counts.iter().sum();
        let counts2 = counts.clone();
        let got = World::run(p, move |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let data: Vec<f64> = (0..total).map(|i| (me * 31 + i) as f64).collect();
            reduce_scatter(&comm, ctx, data, &counts2)
        });
        // serial: sum over ranks of each index
        let sums: Vec<f64> = (0..total)
            .map(|i| (0..p).map(|r| (r * 31 + i) as f64).sum())
            .collect();
        let mut off = 0;
        for (r, g) in got.iter().enumerate() {
            prop_assert_eq!(g.len(), counts[r]);
            for (k, v) in g.iter().enumerate() {
                prop_assert!((v - sums[off + k]).abs() < 1e-9);
            }
            off += counts[r];
        }
    }

    #[test]
    fn allreduce_matches_serial(p in 1usize..9, n in 0usize..40) {
        let got = World::run(p, move |ctx| {
            let comm = Comm::world(ctx);
            let data: Vec<f64> = (0..n).map(|i| (comm.rank() + 1) as f64 * i as f64).collect();
            allreduce(&comm, ctx, data)
        });
        let scale: f64 = (1..=p).map(|r| r as f64).sum();
        for g in got {
            for (i, v) in g.iter().enumerate() {
                prop_assert!((v - scale * i as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn alltoallv_transposes(p in 1usize..8, w in 0usize..5) {
        let got = World::run(p, move |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            // send to rank j a vector of length (j + w) % (w+2) tagged with (me, j)
            let sends: Vec<Vec<u64>> = (0..p)
                .map(|j| vec![(me * 1000 + j) as u64; (j + w) % (w + 2)])
                .collect();
            alltoallv(&comm, ctx, sends)
        });
        for (me, recvs) in got.iter().enumerate() {
            for (src, r) in recvs.iter().enumerate() {
                prop_assert_eq!(r.len(), (me + w) % (w + 2));
                prop_assert!(r.iter().all(|&v| v == (src * 1000 + me) as u64));
            }
        }
    }

    #[test]
    fn bcast_large_any_root_any_len(p in 1usize..9, len in 0usize..50, root_sel in 0usize..8) {
        let root = root_sel % p;
        let got = World::run(p, move |ctx| {
            let comm = Comm::world(ctx);
            let want: Vec<u32> = (0..len as u32).map(|i| i * 3 + 1).collect();
            let mine = (comm.rank() == root).then(|| want.clone());
            bcast_large(&comm, ctx, root, mine, len)
        });
        let want: Vec<u32> = (0..len as u32).map(|i| i * 3 + 1).collect();
        for g in got {
            prop_assert_eq!(&g, &want);
        }
    }

    #[test]
    fn gatherv_collects_in_order(p in 1usize..8, root_sel in 0usize..8) {
        let root = root_sel % p;
        let got = World::run(p, move |ctx| {
            let comm = Comm::world(ctx);
            let mine = vec![comm.rank() as u16; comm.rank()];
            gatherv(&comm, ctx, mine, root)
        });
        for (r, g) in got.iter().enumerate() {
            if r == root {
                let g = g.as_ref().unwrap();
                for (src, v) in g.iter().enumerate() {
                    prop_assert_eq!(v.len(), src);
                    prop_assert!(v.iter().all(|&x| x as usize == src));
                }
            } else {
                prop_assert!(g.is_none());
            }
        }
    }

    #[test]
    fn barrier_any_size(p in 1usize..12) {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            barrier(&comm, ctx);
            barrier(&comm, ctx);
        });
    }
}
