//! Cross-crate end-to-end battery: every distributed algorithm in the
//! workspace, across the paper's problem classes, versus the serial
//! reference.

use baselines::{C25d, CosmaLike, Orig3d, SummaPgemm};
use ca3dmm::summa2d::Ca3dmmSumma;
use ca3dmm::{Ca3dmm, Ca3dmmOptions};
use dense::gemm::{gemm, GemmOp};
use dense::part::Rect;
use dense::random::global_block;
use dense::testing::assert_gemm_close;
use dense::Mat;
use gridopt::Problem;
use layout::Layout;
use msgpass::{Comm, World};

fn reference(m: usize, n: usize, k: usize) -> Mat<f64> {
    let a = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let mut c = Mat::zeros(m, n);
    gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
    c
}

/// Runs one algorithm through its native layouts and compares to serial.
fn run_native<F>(m: usize, n: usize, k: usize, p: usize, name: &str, f: F)
where
    F: Fn() -> (Layout, Layout, Layout, AlgFn) + Sync,
{
    let (la, lb, lc, alg) = f();
    la.validate();
    lb.validate();
    lc.validate();
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let parts = World::run(p, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a = la.extract(&a_full, me).into_iter().next();
        let b = lb.extract(&b_full, me).into_iter().next();
        alg(ctx, &world, a, b)
            .into_iter()
            .filter(|m: &Mat<f64>| !m.is_empty())
            .collect::<Vec<_>>()
    });
    let got = lc.assemble(&parts);
    assert_gemm_close(
        &got,
        &reference(m, n, k),
        k,
        &format!("{name} {m}x{n}x{k} p={p}"),
    );
}

type AlgFn = Box<
    dyn Fn(&msgpass::RankCtx, &Comm, Option<Mat<f64>>, Option<Mat<f64>>) -> Option<Mat<f64>> + Sync,
>;

/// The paper's four problem classes at test scale, plus degenerate shapes.
const SHAPES: &[(usize, usize, usize)] = &[
    (40, 40, 40), // square
    (6, 6, 200),  // large-K
    (200, 6, 6),  // large-M
    (48, 48, 6),  // flat
    (33, 17, 29), // awkward primes
];

#[test]
fn ca3dmm_native_all_shapes_all_p() {
    for &(m, n, k) in SHAPES {
        for p in [1usize, 4, 7, 12, 16] {
            run_native(m, n, k, p, "ca3dmm", || {
                let alg = Ca3dmm::new(Problem::new(m, n, k, p), &Ca3dmmOptions::default());
                let gc = alg.grid_context();
                let (la, lb, lc) = (gc.layout_a(), gc.layout_b(), gc.layout_c());
                (
                    la,
                    lb,
                    lc,
                    Box::new(move |ctx: &msgpass::RankCtx, world: &Comm, a, b| {
                        alg.multiply_native(ctx, world, a, b)
                    }) as AlgFn,
                )
            });
        }
    }
}

#[test]
fn cosma_like_all_shapes() {
    for &(m, n, k) in SHAPES {
        for p in [1usize, 6, 12, 16] {
            run_native(m, n, k, p, "cosma", || {
                let alg = CosmaLike::new(Problem::new(m, n, k, p), None);
                let (la, lb, lc) = (alg.layout_a(), alg.layout_b(), alg.layout_c());
                (
                    la,
                    lb,
                    lc,
                    Box::new(move |ctx: &msgpass::RankCtx, world: &Comm, a, b| {
                        alg.multiply_native(ctx, world, a, b)
                    }) as AlgFn,
                )
            });
        }
    }
}

#[test]
fn summa_all_shapes() {
    for &(m, n, k) in SHAPES {
        for p in [1usize, 6, 12, 16] {
            run_native(m, n, k, p, "summa", || {
                let alg = SummaPgemm::new(Problem::new(m, n, k, p), None);
                let (la, lb, lc) = (alg.layout_a(), alg.layout_b(), alg.layout_c());
                (
                    la,
                    lb,
                    lc,
                    Box::new(move |ctx: &msgpass::RankCtx, world: &Comm, a, b| {
                        alg.multiply_native(ctx, world, a, b)
                    }) as AlgFn,
                )
            });
        }
    }
}

#[test]
fn orig3d_all_shapes() {
    for &(m, n, k) in SHAPES {
        for p in [1usize, 8, 27] {
            run_native(m, n, k, p, "orig3d", || {
                let alg = Orig3d::new(Problem::new(m, n, k, p));
                let (la, lb, lc) = (alg.layout_a(), alg.layout_b(), alg.layout_c());
                (
                    la,
                    lb,
                    lc,
                    Box::new(move |ctx: &msgpass::RankCtx, world: &Comm, a, b| {
                        alg.multiply_native(ctx, world, a, b)
                    }) as AlgFn,
                )
            });
        }
    }
}

#[test]
fn c25d_all_shapes() {
    for &(m, n, k) in SHAPES {
        for p in [1usize, 8, 16, 18] {
            run_native(m, n, k, p, "c25d", || {
                let alg = C25d::new(Problem::new(m, n, k, p), None);
                let (la, lb, lc) = (alg.layout_a(), alg.layout_b(), alg.layout_c());
                (
                    la,
                    lb,
                    lc,
                    Box::new(move |ctx: &msgpass::RankCtx, world: &Comm, a, b| {
                        alg.multiply_native(ctx, world, a, b)
                    }) as AlgFn,
                )
            });
        }
    }
}

#[test]
fn ca3dmm_s_all_shapes() {
    for &(m, n, k) in SHAPES {
        for p in [1usize, 6, 12] {
            run_native(m, n, k, p, "ca3dmm-s", || {
                let alg = Ca3dmmSumma::new(Problem::new(m, n, k, p), None);
                let (la, lb, lc) = (alg.layout_a(), alg.layout_b(), alg.layout_c());
                (
                    la,
                    lb,
                    lc,
                    Box::new(move |ctx: &msgpass::RankCtx, world: &Comm, a, b| {
                        alg.multiply_native(ctx, world, a, b)
                    }) as AlgFn,
                )
            });
        }
    }
}

/// Full pipeline with user layouts and every transpose combination, across
/// several user layout kinds — the complete Algorithm 1.
#[test]
fn ca3dmm_full_pipeline_layout_matrix() {
    let (m, n, k, p) = (26, 22, 30, 12);
    for (op_a, op_b) in [
        (GemmOp::NoTrans, GemmOp::NoTrans),
        (GemmOp::Trans, GemmOp::NoTrans),
        (GemmOp::NoTrans, GemmOp::Trans),
        (GemmOp::Trans, GemmOp::Trans),
    ] {
        let (ar, ac) = match op_a {
            GemmOp::NoTrans => (m, k),
            GemmOp::Trans => (k, m),
        };
        let (br, bc) = match op_b {
            GemmOp::NoTrans => (k, n),
            GemmOp::Trans => (n, k),
        };
        let user_layouts_a = [
            Layout::one_d_col(ar, ac, p),
            Layout::one_d_row(ar, ac, p),
            Layout::block_cyclic(ar, ac, 3, 4, 5, 3),
        ];
        let user_layouts_b = [
            Layout::one_d_row(br, bc, p),
            Layout::two_d_block(br, bc, 4, 3),
            Layout::block_cyclic(br, bc, 2, 6, 4, 4),
        ];
        for (la, lb) in user_layouts_a.iter().zip(user_layouts_b.iter()) {
            let lc = Layout::two_d_block(m, n, 3, 4);
            let a_stored = global_block::<f64>(1, Rect::new(0, 0, ar, ac));
            let b_stored = global_block::<f64>(2, Rect::new(0, 0, br, bc));
            let mm = Ca3dmm::new(Problem::new(m, n, k, p), &Ca3dmmOptions::default());
            let parts = World::run(p, |ctx| {
                let world = Comm::world(ctx);
                let me = world.rank();
                mm.multiply(
                    ctx,
                    &world,
                    op_a,
                    la,
                    &la.extract(&a_stored, me),
                    op_b,
                    lb,
                    &lb.extract(&b_stored, me),
                    &lc,
                )
            });
            let mut c_ref = Mat::zeros(m, n);
            gemm(op_a, op_b, 1.0, &a_stored, &b_stored, 0.0, &mut c_ref);
            assert_gemm_close(
                &lc.assemble(&parts),
                &c_ref,
                k,
                &format!("pipeline {op_a:?}/{op_b:?}"),
            );
        }
    }
}

/// All algorithms agree with each other on the same problem.
#[test]
fn algorithms_agree() {
    let (m, n, k, p) = (24, 28, 32, 8);
    let c_ref = reference(m, n, k);
    let compare = |name: &str, got: Mat<f64>| {
        assert_gemm_close(&got, &c_ref, k, name);
    };

    let alg = Ca3dmm::new(Problem::new(m, n, k, p), &Ca3dmmOptions::default());
    let gc = alg.grid_context();
    let (la, lb, lc) = (gc.layout_a(), gc.layout_b(), gc.layout_c());
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let parts = World::run(p, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a = la.extract(&a_full, me).into_iter().next();
        let b = lb.extract(&b_full, me).into_iter().next();
        alg.multiply_native(ctx, &world, a, b)
            .into_iter()
            .filter(|m: &Mat<f64>| !m.is_empty())
            .collect::<Vec<_>>()
    });
    compare("ca3dmm", lc.assemble(&parts));
}

/// Baseline full pipelines (user layouts + redistribution) also match the
/// serial reference — COSMA's "internal matrix redistribution library" and
/// ScaLAPACK-style SUMMA conversions.
#[test]
fn baseline_full_pipelines() {
    let (m, n, k, p) = (22usize, 26, 30, 12);
    let a_stored = global_block::<f64>(1, Rect::new(0, 0, k, m)); // transposed store
    let b_stored = global_block::<f64>(2, Rect::new(0, 0, k, n));
    let la = Layout::one_d_row(k, m, p);
    let lb = Layout::block_cyclic(k, n, 3, 4, 4, 5);
    let lc = Layout::one_d_col(m, n, p);
    let mut c_ref = Mat::zeros(m, n);
    gemm(
        GemmOp::Trans,
        GemmOp::NoTrans,
        1.0,
        &a_stored,
        &b_stored,
        0.0,
        &mut c_ref,
    );

    let cosma = CosmaLike::new(gridopt::Problem::new(m, n, k, p), None);
    let parts = World::run(p, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        cosma.multiply(
            ctx,
            &world,
            GemmOp::Trans,
            &la,
            &la.extract(&a_stored, me),
            GemmOp::NoTrans,
            &lb,
            &lb.extract(&b_stored, me),
            &lc,
        )
    });
    assert_gemm_close(&lc.assemble(&parts), &c_ref, k, "cosma full pipeline");

    let summa = SummaPgemm::new(gridopt::Problem::new(m, n, k, p), None);
    let parts = World::run(p, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        summa.multiply(
            ctx,
            &world,
            GemmOp::Trans,
            &la,
            &la.extract(&a_stored, me),
            GemmOp::NoTrans,
            &lb,
            &lb.extract(&b_stored, me),
            &lc,
        )
    });
    assert_gemm_close(&lc.assemble(&parts), &c_ref, k, "summa full pipeline");
}
