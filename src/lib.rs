//! Umbrella crate for the CA3DMM reproduction workspace.
//!
//! This root package exists to host the workspace-level `examples/` and
//! `tests/` directories; all functionality lives in the member crates and is
//! re-exported here for convenience.

pub use baselines;
pub use ca3dmm;
pub use dense;
pub use gridopt;
pub use layout;
pub use msgpass;
pub use netmodel;
