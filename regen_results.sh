#!/usr/bin/env bash
# Regenerates every experiment artifact in results/ (text + CSV).
#
# `--sim-only` regenerates only the deterministic virtual-time artifacts
# (REPORT_fig3_sim*.json and fig3_sim*.csv). Those are exact functions of
# the algorithm, the machine model, and the placement — no host timing
# enters them — so CI's artifact-freshness job re-runs this mode and fails
# if the committed copies drift from what HEAD produces. The text tables
# carry a host wall-clock column and are left untouched in this mode.
set -e
cd "$(dirname "$0")"
export BENCH_CSV_DIR=results

SIM_ONLY=0
if [ "${1:-}" = "--sim-only" ]; then
  SIM_ONLY=1
fi

# In --sim-only mode, stdout tables (which embed wall times) go to /dev/null.
sim_txt() {
  if [ "$SIM_ONLY" = 1 ]; then echo /dev/null; else echo "results/$1"; fi
}

if [ "$SIM_ONLY" = 0 ]; then
  for b in fig3_strong_scaling fig4_hybrid fig5_breakdown table1_memory \
           table2_grids table3_gpu ablation_l ablation_2d_algo ablation_design; do
    echo "== $b"
    cargo run --release -q -p bench --bin $b > results/$b.txt
  done
  cargo run --release -q --example grid_explorer > results/grid_explorer.txt

  # Local GEMM thread-tier sweep -> results/BENCH_gemm.json. The absolute
  # gflops are host-specific; what the committed artifact pins is the tier
  # contract (t1/t2/t4/tauto + scaling_efficiency for every shape/type),
  # which CI checks structurally via `validate_bench_json --gemm-tiers`.
  echo "== local_gemm (BENCH_gemm.json)"
  # Absolute path: `cargo bench` runs the binary from crates/bench, not here.
  # A failed JSON write panics the bench (nonzero exit), so stderr can stay
  # on the terminal and the committed txt stays free of compiler warnings.
  BENCH_JSON_DIR="$PWD/results" BENCH_SAMPLES="${BENCH_SAMPLES:-5}" \
    cargo bench -q -p bench --bench local_gemm > results/local_gemm.txt

  # Grid-search + serving-plan construction cost -> BENCH_grid_search.json.
  # The plan_build/ entries record what one ca3dmm-serve cache miss costs
  # (and therefore what every subsequent hit on that shape saves).
  echo "== grid_search (BENCH_grid_search.json)"
  BENCH_JSON_DIR="$PWD/results" BENCH_SAMPLES="${BENCH_SAMPLES:-5}" \
    cargo bench -q -p bench --bench grid_search > results/grid_search.txt
fi

# Executed (virtual-time) strong scaling; also refreshes the schema-v2
# RunReport that CI's sim-smoke job gates exactly. Deterministic: the
# regenerated artifact only changes when the algorithm's traffic or the
# machine model does.
echo "== fig3_sim"
cargo run --release -q -p bench --bin fig3_sim -- \
  --report-out results/REPORT_fig3_sim.json > "$(sim_txt fig3_sim.txt)"

# Collectives ablation on fat nodes (384 ranks/node = 8 nodes at p = 3072):
# flat vs two-level node-aware collectives, same problem and sweep. The
# paper's 24/node placement puts every reduce-group member on a distinct
# node, so the hierarchical variants only engage — and their inter-node
# win only shows — when several members share a node. CI's sim-smoke job
# recomputes both artifacts and gates that hier moves strictly fewer
# inter-node bytes (and at most half the inter-node messages) than flat.
echo "== fig3_sim collectives ablation (flat vs hier, 384 ranks/node)"
cargo run --release -q -p bench --bin fig3_sim -- \
  --ranks-per-node 384 --collectives flat \
  --report-out results/REPORT_fig3_sim_flat_r384.json \
  > "$(sim_txt fig3_sim_flat_r384.txt)"
cargo run --release -q -p bench --bin fig3_sim -- \
  --ranks-per-node 384 --collectives hier \
  --report-out results/REPORT_fig3_sim_hier_r384.json \
  > "$(sim_txt fig3_sim_hier_r384.txt)"

if [ "$SIM_ONLY" = 0 ]; then
  # The small traced-run RunReport that CI's report-smoke job gates exactly.
  # Traffic is deterministic; only the (ungated) wall times vary run to run.
  echo "== REPORT_fig5_small"
  cargo run --release -q -p bench --bin fig5_breakdown -- \
    --report-out results/REPORT_fig5_small.json --trace-ranks 4 --trace-size 96 \
    > /dev/null

  # The profiled counterpart: the same 4-rank run with the dense::prof
  # kernel profiler capturing, so the committed artifact carries a
  # schema-v3 compute block (per-rank pack/compute/idle attribution and
  # roofline numbers). CI's artifact-freshness job regenerates this to
  # /tmp and gates the *traffic* exactly against the committed copy —
  # compute timings are host-specific and are only checked for presence
  # and internal reconciliation (which RunReportDoc::parse enforces).
  echo "== REPORT_fig5_prof"
  DENSE_GEMM_PROF=1 cargo run --release -q -p bench --bin fig5_breakdown -- \
    --report-out results/REPORT_fig5_prof.json --trace-ranks 4 --trace-size 96 \
    > /dev/null
fi
echo "done; artifacts in results/"
