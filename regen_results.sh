#!/usr/bin/env bash
# Regenerates every experiment artifact in results/ (text + CSV).
set -e
cd "$(dirname "$0")"
export BENCH_CSV_DIR=results
for b in fig3_strong_scaling fig4_hybrid fig5_breakdown table1_memory \
         table2_grids table3_gpu ablation_l ablation_2d_algo ablation_design; do
  echo "== $b"
  cargo run --release -q -p bench --bin $b > results/$b.txt
done
cargo run --release -q --example grid_explorer > results/grid_explorer.txt
# Executed (virtual-time) strong scaling; also refreshes the schema-v2
# RunReport that CI's sim-smoke job gates exactly. Deterministic: the
# regenerated artifact only changes when the algorithm's traffic or the
# machine model does.
echo "== fig3_sim"
cargo run --release -q -p bench --bin fig3_sim -- \
  --report-out results/REPORT_fig3_sim.json > results/fig3_sim.txt
# The small traced-run RunReport that CI's report-smoke job gates exactly.
# Traffic is deterministic; only the (ungated) wall times vary run to run.
echo "== REPORT_fig5_small"
cargo run --release -q -p bench --bin fig5_breakdown -- \
  --report-out results/REPORT_fig5_small.json --trace-ranks 4 --trace-size 96 \
  > /dev/null
echo "done; artifacts in results/"
