#!/usr/bin/env bash
# Regenerates every experiment artifact in results/ (text + CSV).
set -e
cd "$(dirname "$0")"
export BENCH_CSV_DIR=results
for b in fig3_strong_scaling fig4_hybrid fig5_breakdown table1_memory \
         table2_grids table3_gpu ablation_l ablation_2d_algo ablation_design; do
  echo "== $b"
  cargo run --release -q -p bench --bin $b > results/$b.txt
done
cargo run --release -q --example grid_explorer > results/grid_explorer.txt
echo "done; artifacts in results/"
