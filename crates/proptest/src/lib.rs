//! An offline, API-compatible subset of the `proptest` crate.
//!
//! This workspace builds in containers with no crates.io access, so the
//! real `proptest` cannot be downloaded. This shim implements exactly the
//! surface the workspace's property tests use — the [`proptest!`] macro,
//! range/tuple/bool/vec strategies, `prop_map`, and the `prop_assert*`
//! macros — on a deterministic SplitMix64 generator.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (every
//!   argument is `Debug`-formatted before the body runs) but is not
//!   minimized.
//! * **No persistence.** `*.proptest-regressions` seed files are written by
//!   the real proptest's PRNG and cannot be replayed here; regressions are
//!   instead pinned as explicit unit tests (see
//!   `tests/prop_invariants.rs`). The files stay in-tree so the cases
//!   survive a future switch back to upstream proptest.
//! * **Deterministic by default.** The stream is seeded from the test's
//!   module path and name, so failures always reproduce; set
//!   `PROPTEST_SEED=<u64>` to explore a different stream.

use std::ops::Range;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 stream used to generate cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test identifier (stable across runs) unless
    /// `PROPTEST_SEED` overrides it.
    pub fn for_test(test_id: &str) -> TestRng {
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            return TestRng { state: seed };
        }
        // FNV-1a over the test id.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * bound,
        // irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Something that can generate values: the core abstraction, matching the
/// used subset of proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(width) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i64, i32, i16, i8, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// `proptest::bool`: the boolean strategy.
pub mod bool {
    use super::{Strategy, TestRng};

    /// A 50/50 boolean strategy (the value of [`ANY`]).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;
}

/// `proptest::collection`: container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (panics; no shrinking here,
/// so this is plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases. A leading
/// `#![proptest_config(...)]` sets the case count for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let described = format!(
                    concat!($(stringify!($arg), " = {:?}, "),*),
                    $(&$arg),*
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {}/{} failed with inputs: {}",
                        case + 1,
                        config.cases,
                        described
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_id() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        let mut c = crate::TestRng::for_test("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        // different ids give different streams (overwhelmingly likely)
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (1usize..5, 1usize..5).prop_map(|(a, b)| a * 10 + b);
        let mut rng = crate::TestRng::for_test("compose");
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((11..=44).contains(&v));
        }
    }

    #[test]
    fn collection_vec_lengths() {
        let strat = crate::collection::vec(0usize..3, 2..6);
        let mut rng = crate::TestRng::for_test("vecs");
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: generated args are in range and the body runs.
        #[test]
        fn macro_generates_cases(a in 1usize..10, flip in crate::bool::ANY) {
            prop_assert!((1..10).contains(&a));
            let _ = flip;
        }
    }
}
