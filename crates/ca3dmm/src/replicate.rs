//! Replication of A or B across Cannon groups (Algorithm 1 step 5).
//!
//! When `c > 1`, the `c` Cannon groups of a k-task group all need the same
//! blocks of one operand. Initially each of the `c` peer ranks (same Cannon
//! position, different group) holds a distinct `1/c` column-slice of the
//! shared block; one allgather completes the block on every peer. This
//! keeps the pre-replication storage of the operand at one copy, 2D
//! partitioned over all active ranks, with balanced memory (§III-B).

use dense::part::{offsets, split_even};
use dense::{Mat, Scalar};
use msgpass::collectives::{allgatherv_mode, Collectives};
use msgpass::{Comm, RankCtx};

/// Completes a replicated block from its column-slices.
///
/// `group` orders the `c` peers by Cannon-group index; `my_slice` is this
/// rank's `rows × widths[group.rank()]` column-slice. Returns the full
/// `rows × Σwidths` block. `mode` picks the allgather family; the
/// hierarchical one falls back to flat when the group fits one node or no
/// topology is attached.
pub fn replicate_block<T: Scalar>(
    ctx: &RankCtx,
    group: &Comm,
    my_slice: Mat<T>,
    rows: usize,
    widths: &[usize],
    mode: Collectives,
) -> Mat<T> {
    let c = group.size();
    assert_eq!(widths.len(), c, "one slice width per group member");
    let me = group.rank();
    assert_eq!(
        my_slice.shape(),
        (rows, widths[me]),
        "slice shape disagrees with widths"
    );
    if c == 1 {
        return my_slice;
    }
    let counts: Vec<usize> = widths.iter().map(|w| rows * w).collect();
    let gathered = allgatherv_mode(mode, group, ctx, my_slice.into_vec(), &counts);
    // Reassemble column-slices into one block.
    let offs = offsets(widths);
    let total_cols = offs[c];
    let mut out = Mat::zeros(rows, total_cols);
    let mut pos = 0;
    for (g, &w) in widths.iter().enumerate() {
        let slice = Mat::from_vec(rows, w, gathered[pos..pos + rows * w].to_vec());
        pos += rows * w;
        if w > 0 {
            out.set_block(dense::Rect::new(0, offs[g], rows, w), &slice);
        }
    }
    out
}

/// The slice widths of a block of `cols` columns split across `c` peers —
/// the same ⌈/⌋ split used everywhere else.
pub fn slice_widths(cols: usize, c: usize) -> Vec<usize> {
    split_even(cols, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::part::Rect;
    use dense::random::global_block;
    use msgpass::World;

    #[test]
    fn slices_reassemble_to_block() {
        let rows = 5;
        let cols = 11;
        let c = 3;
        let widths = slice_widths(cols, c);
        let offs = offsets(&widths);
        let full = global_block::<f64>(9, Rect::new(0, 0, rows, cols));
        let results = World::run(c, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let slice = full.block(Rect::new(0, offs[me], rows, widths[me]));
            replicate_block(ctx, &comm, slice, rows, &widths, Collectives::Flat)
        });
        for r in results {
            assert_eq!(r.max_abs_diff(&full), 0.0);
        }
    }

    #[test]
    fn hier_mode_reassembles_identically() {
        let rows = 5;
        let cols = 11;
        let c = 4;
        let widths = slice_widths(cols, c);
        let offs = offsets(&widths);
        let full = global_block::<f64>(9, Rect::new(0, 0, rows, cols));
        // Two nodes of two ranks each — the hierarchical path engages.
        let opts = msgpass::RunOptions {
            ranks_per_node: Some(2),
            ..Default::default()
        };
        let (results, _) = World::run_opts(c, opts, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let slice = full.block(Rect::new(0, offs[me], rows, widths[me]));
            replicate_block(ctx, &comm, slice, rows, &widths, Collectives::Hier)
        });
        for r in results {
            assert_eq!(r.max_abs_diff(&full), 0.0);
        }
    }

    #[test]
    fn single_group_is_identity() {
        let full = global_block::<f32>(3, Rect::new(0, 0, 4, 4));
        let results = World::run(1, |ctx| {
            let comm = Comm::world(ctx);
            replicate_block(ctx, &comm, full.clone(), 4, &[4], Collectives::Flat)
        });
        assert_eq!(results[0].max_abs_diff(&full), 0.0);
    }

    #[test]
    fn empty_slices_allowed() {
        // cols < c: some peers hold nothing
        let rows = 3;
        let cols = 2;
        let c = 4;
        let widths = slice_widths(cols, c);
        let offs = offsets(&widths);
        let full = global_block::<f64>(5, Rect::new(0, 0, rows, cols));
        let results = World::run(c, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let slice = full.block(Rect::new(0, offs[me], rows, widths[me]));
            replicate_block(ctx, &comm, slice, rows, &widths, Collectives::Flat)
        });
        for r in results {
            assert_eq!(r.max_abs_diff(&full), 0.0);
        }
    }

    #[test]
    fn replication_volume_matches_allgather() {
        // per-rank sent bytes = (sum of others' slices? no: ring allgather
        // sends own accumulated segments) = (c-1) * my slice bytes for even
        // slices.
        let rows = 4;
        let cols = 8;
        let c = 4;
        let widths = slice_widths(cols, c);
        let offs = offsets(&widths);
        let full = global_block::<f64>(5, Rect::new(0, 0, rows, cols));
        let (_, report) = World::run_traced(c, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("replicate_ab");
            let me = comm.rank();
            let slice = full.block(Rect::new(0, offs[me], rows, widths[me]));
            replicate_block(ctx, &comm, slice, rows, &widths, Collectives::Flat)
        });
        for r in 0..c {
            assert_eq!(
                report.phase(r, "replicate_ab").bytes as usize,
                (c - 1) * rows * 2 * 8
            );
        }
    }
}
