//! The CA3DMM executor: Algorithm 1, steps 1–8, on the `msgpass` runtime.

use crate::cannon::cannon_multi_shift;
use crate::grid_ctx::GridContext;
use crate::reduce::reduce_partial_c;
use crate::replicate::{replicate_block, slice_widths};
use dense::gemm::GemmOp;
use dense::{Mat, Scalar};
use gridopt::{ca3dmm_grid_timed, Grid, Problem};
use layout::{redistribute, Layout};
use msgpass::collectives::Collectives;
use msgpass::{Comm, RankCtx};

/// Tuning knobs of a CA3DMM run.
#[derive(Clone, Copy, Debug)]
pub struct Ca3dmmOptions {
    /// Force a specific process grid (the artifact CLI's optional
    /// `mp np kp` arguments, used by Table II); `None` runs the step-1
    /// search.
    pub grid_override: Option<Grid>,
    /// The utilization floor `l` of eq. 5.
    pub utilization_floor: f64,
    /// §III-F multi-shift batching: when the Cannon blocks' k-extent is
    /// below this, several shifts feed one local GEMM. 0 disables.
    pub multi_shift_min_k: usize,
    /// §III-F communication/computation overlap: run the Cannon shifts as
    /// a double-buffered nonblocking pipeline (default). `false` is the
    /// blocking ablation — every shift completes before its GEMM starts.
    pub overlap: bool,
    /// Which collective algorithms the replication and reduction phases
    /// use. `Hier` routes them through the two-level node-aware entry
    /// points (which fall back to flat per communicator when the topology
    /// doesn't engage); `Flat` (default) forces the single-level baselines.
    pub collectives: Collectives,
}

impl Default for Ca3dmmOptions {
    fn default() -> Self {
        Ca3dmmOptions {
            grid_override: None,
            utilization_floor: gridopt::DEFAULT_UTILIZATION_FLOOR,
            multi_shift_min_k: 0,
            overlap: true,
            collectives: Collectives::Flat,
        }
    }
}

/// Summary of a configured CA3DMM run (the artifact's "CA3DMM partition
/// info" report).
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// The chosen (or forced) grid.
    pub grid: Grid,
    /// Active fraction of the `P` ranks.
    pub utilization: f64,
    /// Per-process communication volume over the eq. 9 lower bound.
    pub volume_ratio: f64,
    /// Work cuboid block sizes `⌈m/pm⌉ × ⌈n/pn⌉ × ⌈k/pk⌉`.
    pub cuboid: (usize, usize, usize),
}

/// A configured CA3DMM multiplication `C = op(A) × op(B)` on `P` ranks.
///
/// Construction (grid search + geometry) is pure arithmetic and identical
/// on every rank, so a `Ca3dmm` can be built either once outside
/// [`msgpass::World::run`] and shared, or independently inside each rank.
pub struct Ca3dmm {
    gc: GridContext,
    multi_shift_min_k: usize,
    overlap: bool,
    collectives: Collectives,
    /// Wall seconds the step-1 grid search took (0 for a forced grid).
    /// Re-running the search is exactly the cost a plan cache amortizes.
    grid_search_secs: f64,
    /// Precomputed sub-communicator membership (steps 2–3). Pure
    /// arithmetic, identical on every rank — solved once at construction
    /// instead of once per multiply.
    groups: SubgroupLists,
}

/// The three sub-communicator group lists of one grid: every Cannon group,
/// replication group, and reduction group, as world-rank lists.
#[derive(Clone, Debug)]
struct SubgroupLists {
    cannon: Vec<Vec<usize>>,
    repl: Vec<Vec<usize>>,
    reduce: Vec<Vec<usize>>,
}

impl SubgroupLists {
    fn new(gc: &GridContext) -> Self {
        let grid = gc.grid();
        let (pk, c, s) = (grid.pk, gc.c, gc.s);
        let cannon: Vec<Vec<usize>> = (0..pk)
            .flat_map(|kt| (0..c).map(move |cg| gc.cannon_group(kt, cg)))
            .collect();
        let repl: Vec<Vec<usize>> = (0..pk)
            .flat_map(|kt| {
                (0..s * s).map(move |idx| {
                    gc.replication_group(&crate::grid_ctx::RankCoord {
                        i: idx % s,
                        j: idx / s,
                        cg: 0,
                        kt,
                    })
                })
            })
            .collect();
        let reduce: Vec<Vec<usize>> = (0..c)
            .flat_map(|cg| {
                (0..s * s).map(move |idx| {
                    gc.reduce_group(&crate::grid_ctx::RankCoord {
                        i: idx % s,
                        j: idx / s,
                        cg,
                        kt: 0,
                    })
                })
            })
            .collect();
        SubgroupLists {
            cannon,
            repl,
            reduce,
        }
    }
}

/// The sub-communicators of one multiply, built collectively by
/// [`Ca3dmm::comms`]. Building them is itself collective over the world, so
/// a batch of same-shape multiplies can share one set instead of paying
/// three `subgroup` exchanges per multiply.
pub struct MultiplyComms {
    cannon: Option<Comm>,
    repl: Option<Comm>,
    reduce: Option<Comm>,
}

impl Ca3dmm {
    /// Chooses the process grid for `prob` (Algorithm 1 step 1) and builds
    /// the geometry.
    ///
    /// # Panics
    /// If a forced grid violates eq. 7 or exceeds `P`.
    pub fn new(prob: Problem, opts: &Ca3dmmOptions) -> Self {
        let (grid, search_secs) = match opts.grid_override {
            Some(g) => (g, 0.0),
            None => {
                let solved = ca3dmm_grid_timed(&prob, opts.utilization_floor);
                (solved.choice.grid, solved.search_secs)
            }
        };
        let gc = GridContext::new(prob, grid);
        let groups = SubgroupLists::new(&gc);
        Ca3dmm {
            gc,
            multi_shift_min_k: opts.multi_shift_min_k,
            overlap: opts.overlap,
            collectives: opts.collectives,
            grid_search_secs: search_secs,
            groups,
        }
    }

    /// The geometry of this run.
    pub fn grid_context(&self) -> &GridContext {
        &self.gc
    }

    /// Wall seconds Algorithm 1 step 1 (the grid enumeration) took at
    /// construction; 0 when the grid was forced. This is the dominant
    /// per-construction cost a plan cache saves on repeat shapes.
    pub fn grid_search_secs(&self) -> f64 {
        self.grid_search_secs
    }

    /// The `meta` block for a `RunReport` artifact
    /// ([`msgpass::RunReport::to_json`]): enough of the problem and grid
    /// that `ca3dmm-report netdiff` can rebuild the schedule this run
    /// executed and price it on a model machine — without any side-channel
    /// beyond the report file itself.
    pub fn report_meta(&self, name: &str) -> jsonlite::Json {
        let prob = self.gc.problem();
        let grid = self.gc.grid();
        jsonlite::Json::obj([
            ("name", jsonlite::Json::Str(name.to_owned())),
            ("m", jsonlite::Json::Num(prob.m as f64)),
            ("n", jsonlite::Json::Num(prob.n as f64)),
            ("k", jsonlite::Json::Num(prob.k as f64)),
            ("p", jsonlite::Json::Num(prob.p as f64)),
            ("overlap", jsonlite::Json::Bool(self.overlap)),
            (
                "gemm_prof",
                jsonlite::Json::Bool(dense::profiling_enabled()),
            ),
            (
                "collectives",
                jsonlite::Json::Str(self.collectives.as_str().to_owned()),
            ),
            (
                "grid",
                jsonlite::Json::obj([
                    ("pm", jsonlite::Json::Num(grid.pm as f64)),
                    ("pn", jsonlite::Json::Num(grid.pn as f64)),
                    ("pk", jsonlite::Json::Num(grid.pk as f64)),
                ]),
            ),
        ])
    }

    /// [`Ca3dmm::report_meta`] plus plan-construction provenance: the wall
    /// seconds the grid search took (`grid_search_secs`), whether this run
    /// reused a cached plan (when the caller ran through a plan cache), and
    /// the local-GEMM microkernel the dispatcher selected. Kept separate
    /// from `report_meta` because these are host-dependent — the
    /// deterministic figure artifacts (which CI diffs byte-for-byte) must
    /// not embed them, while serving reports want them front and center.
    pub fn report_meta_serving(&self, name: &str, plan_cached: Option<bool>) -> jsonlite::Json {
        let mut meta = self.report_meta(name);
        if let jsonlite::Json::Obj(m) = &mut meta {
            m.insert(
                "grid_search_secs".to_owned(),
                jsonlite::Json::Num(self.grid_search_secs),
            );
            if let Some(hit) = plan_cached {
                m.insert("plan_cached".to_owned(), jsonlite::Json::Bool(hit));
            }
            m.insert(
                "gemm_kernel".to_owned(),
                jsonlite::Json::Str(dense::kernel::gemm_kernel().name().to_owned()),
            );
        }
        meta
    }

    /// The partition-info summary.
    pub fn stats(&self) -> RunStats {
        let prob = *self.gc.problem();
        let grid = *self.gc.grid();
        let choice = gridopt::GridChoice {
            grid,
            s_total: grid.surface(prob.m, prob.n, prob.k),
        };
        RunStats {
            grid,
            utilization: choice.utilization(prob.p),
            volume_ratio: choice.volume_ratio(&prob),
            cuboid: (
                prob.m.div_ceil(grid.pm),
                prob.n.div_ceil(grid.pn),
                prob.k.div_ceil(grid.pk),
            ),
        }
    }

    /// The full Algorithm 1: redistributes `A` and `B` from the caller's
    /// layouts into the native distributions (applying `op_a`/`op_b` on the
    /// way), multiplies, and redistributes `C` into `c_layout`. Collective
    /// over `world` (which must have `P` ranks); idle ranks participate in
    /// the redistribution steps only, as in the paper.
    ///
    /// `a_layout` describes the *stored* `A` (shape `k×m` when
    /// `op_a == Trans`), and `a_blocks` are this rank's local blocks in
    /// that layout; likewise for `B`. Returns this rank's blocks of `C` in
    /// `c_layout`.
    #[allow(clippy::too_many_arguments)]
    pub fn multiply<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        op_a: GemmOp,
        a_layout: &Layout,
        a_blocks: &[Mat<T>],
        op_b: GemmOp,
        b_layout: &Layout,
        b_blocks: &[Mat<T>],
        c_layout: &Layout,
    ) -> Vec<Mat<T>> {
        let prob = self.gc.problem();
        assert_eq!(
            world.size(),
            prob.p,
            "world size must equal the problem's P"
        );
        assert_eq!(
            c_layout.shape(),
            (prob.m, prob.n),
            "C layout shape mismatch"
        );
        let comms = self.comms(ctx, world);

        // Step 4: redistribute inputs into the native layouts.
        ctx.set_phase("redist");
        let la = self.gc.layout_a();
        let lb = self.gc.layout_b();
        let a_local = redistribute(world, ctx, a_layout, a_blocks, &la, op_a);
        let b_local = redistribute(world, ctx, b_layout, b_blocks, &lb, op_b);

        // Steps 5–7 on the active ranks.
        let c_strip = self.multiply_native_in(
            ctx,
            world,
            &comms,
            a_local.into_iter().next(),
            b_local.into_iter().next(),
        );

        // Step 8: redistribute C to the caller's layout.
        ctx.set_phase("redist");
        let lc = self.gc.layout_c();
        let c_blocks: Vec<Mat<T>> = c_strip.into_iter().filter(|m| !m.is_empty()).collect();
        redistribute(world, ctx, &lc, &c_blocks, c_layout, GemmOp::NoTrans)
    }

    /// Builds the three sub-communicators of this grid (Cannon, replication
    /// and reduction groups). Collective over `world`; the membership lists
    /// were already solved at construction, so this only performs the
    /// `subgroup` context exchanges. A batch of multiplies on the same grid
    /// can reuse one [`MultiplyComms`] across every item — that is the
    /// "same-shape requests share one grid launch" half of the serving
    /// batcher.
    pub fn comms(&self, ctx: &RankCtx, world: &Comm) -> MultiplyComms {
        MultiplyComms {
            cannon: world.subgroup(ctx, &self.groups.cannon),
            repl: world.subgroup(ctx, &self.groups.repl),
            reduce: world.subgroup(ctx, &self.groups.reduce),
        }
    }

    /// Steps 5–7 only: inputs already in the native layouts
    /// ([`GridContext::layout_a`] / [`GridContext::layout_b`]), output left
    /// in the native C layout. This is the configuration §III-D analyses
    /// (steps 4/8 skipped) and the one the strong-scaling figures call
    /// "library-native partitioning".
    ///
    /// Collective over `world`. Active ranks pass their initial block
    /// (`None` if their native rectangle is empty) and receive their final
    /// C strip; idle ranks pass `None` and receive `None`.
    pub fn multiply_native<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        a_init: Option<Mat<T>>,
        b_init: Option<Mat<T>>,
    ) -> Option<Mat<T>> {
        let comms = self.comms(ctx, world);
        self.multiply_native_in(ctx, world, &comms, a_init, b_init)
    }

    /// Steps 5–7 with caller-provided sub-communicators (see
    /// [`Ca3dmm::comms`]). Collective over `world`.
    pub fn multiply_native_in<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        comms: &MultiplyComms,
        a_init: Option<Mat<T>>,
        b_init: Option<Mat<T>>,
    ) -> Option<Mat<T>> {
        let gc = &self.gc;
        let c = gc.c;
        let s = gc.s;
        let MultiplyComms {
            cannon: cannon_comm,
            repl: repl_comm,
            reduce: reduce_comm,
        } = comms;

        if !gc.is_active(world.rank()) {
            return None;
        }
        let coord = gc.coord_of(world.rank());

        let a_init_rect = gc.a_init(&coord);
        let a_blk = a_init.unwrap_or_else(|| Mat::zeros(a_init_rect.rows, a_init_rect.cols));
        assert_eq!(
            a_blk.shape(),
            (a_init_rect.rows, a_init_rect.cols),
            "A block shape disagrees with the native layout"
        );
        let b_init_rect = gc.b_init(&coord);
        let b_blk = b_init.unwrap_or_else(|| Mat::zeros(b_init_rect.rows, b_init_rect.cols));
        assert_eq!(
            b_blk.shape(),
            (b_init_rect.rows, b_init_rect.cols),
            "B block shape disagrees with the native layout"
        );

        // Step 5: replicate A or B across the Cannon groups.
        ctx.set_phase("replicate_ab");
        let (a_full, b_full) = if c > 1 {
            let rc = repl_comm
                .as_ref()
                .expect("active rank has a replication group");
            if gc.a_replicated {
                let blk = gc.a_block(&coord);
                let a = replicate_block(
                    ctx,
                    rc,
                    a_blk,
                    blk.rows,
                    &slice_widths(blk.cols, c),
                    self.collectives,
                );
                (a, b_blk)
            } else {
                let blk = gc.b_block(&coord);
                let b = replicate_block(
                    ctx,
                    rc,
                    b_blk,
                    blk.rows,
                    &slice_widths(blk.cols, c),
                    self.collectives,
                );
                (a_blk, b)
            }
        } else {
            (a_blk, b_blk)
        };

        // Step 6: Cannon within the group.
        ctx.set_phase("cannon_shift");
        let c_rect = gc.c_block(&coord);
        let mut c_partial = Mat::zeros(c_rect.rows, c_rect.cols);
        cannon_multi_shift(
            ctx,
            cannon_comm
                .as_ref()
                .expect("active rank has a Cannon group"),
            s,
            coord.i,
            coord.j,
            a_full,
            b_full,
            &mut c_partial,
            self.multi_shift_min_k,
            self.overlap,
        );

        // Step 7: reduce the pk partial results.
        ctx.set_phase("reduce_c");
        let strip = reduce_partial_c(
            ctx,
            reduce_comm
                .as_ref()
                .expect("active rank has a reduce group"),
            c_partial,
            self.collectives,
        );
        Some(strip)
    }

    /// Runs steps 5–7 under the virtual-time backend
    /// ([`msgpass::World::run_sim`]): the *same* [`Ca3dmm::multiply_native`]
    /// closure every wall-clock test executes, but on `P` simulated ranks
    /// whose sends, receives, and local GEMMs are charged against
    /// `machine`. This is how the strong-scaling figures run CA3DMM at
    /// paper-scale process counts (`p` in the thousands) on one host.
    ///
    /// Each active rank starts from zero-filled blocks in the native
    /// layouts — the communication pattern, which is what virtual time
    /// measures, does not depend on the matrix values. Numerical output is
    /// therefore meaningless here; use `opts.execute_compute = false` at
    /// scale to skip the arithmetic entirely (the flops are still charged).
    pub fn simulate_native(
        &self,
        machine: &netmodel::Machine,
        opts: msgpass::SimOptions,
    ) -> msgpass::RunReport {
        let gc = &self.gc;
        let p = gc.problem().p;
        let (_, report) = msgpass::World::run_sim(p, machine, opts, |ctx| {
            let world = Comm::world(ctx);
            let (a_init, b_init) = if gc.is_active(world.rank()) {
                let coord = gc.coord_of(world.rank());
                let ra = gc.a_init(&coord);
                let rb = gc.b_init(&coord);
                (
                    Some(Mat::<f64>::zeros(ra.rows, ra.cols)),
                    Some(Mat::<f64>::zeros(rb.rows, rb.cols)),
                )
            } else {
                (None, None)
            };
            self.multiply_native(ctx, &world, a_init, b_init);
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gemm::gemm_naive;
    use dense::part::Rect;
    use dense::random::global_block;
    use dense::testing::assert_gemm_close;
    use msgpass::World;

    /// End-to-end CA3DMM vs serial reference, with 1D-column user layouts
    /// (the artifact example program's configuration).
    fn check(m: usize, n: usize, k: usize, p: usize, op_a: GemmOp, op_b: GemmOp) {
        check_opts(m, n, k, p, op_a, op_b, &Ca3dmmOptions::default());
    }

    fn check_opts(
        m: usize,
        n: usize,
        k: usize,
        p: usize,
        op_a: GemmOp,
        op_b: GemmOp,
        opts: &Ca3dmmOptions,
    ) {
        // stored shapes
        let (ar, ac) = match op_a {
            GemmOp::NoTrans => (m, k),
            GemmOp::Trans => (k, m),
        };
        let (br, bc) = match op_b {
            GemmOp::NoTrans => (k, n),
            GemmOp::Trans => (n, k),
        };
        let a_stored = global_block::<f64>(11, Rect::new(0, 0, ar, ac));
        let b_stored = global_block::<f64>(22, Rect::new(0, 0, br, bc));
        let a_layout = Layout::one_d_col(ar, ac, p);
        let b_layout = Layout::one_d_col(br, bc, p);
        let c_layout = Layout::one_d_col(m, n, p);

        let mm = Ca3dmm::new(Problem::new(m, n, k, p), opts);
        let parts = World::run(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a_blocks = a_layout.extract(&a_stored, me);
            let b_blocks = b_layout.extract(&b_stored, me);
            mm.multiply(
                ctx, &world, op_a, &a_layout, &a_blocks, op_b, &b_layout, &b_blocks, &c_layout,
            )
        });

        let mut c_ref = Mat::zeros(m, n);
        gemm_naive(op_a, op_b, 1.0, &a_stored, &b_stored, 0.0, &mut c_ref);
        let c_got = c_layout.assemble(&parts);
        assert_gemm_close(
            &c_got,
            &c_ref,
            k,
            &format!("ca3dmm m={m} n={n} k={k} p={p} {op_a:?}{op_b:?}"),
        );
    }

    #[test]
    fn paper_example_1_shape() {
        check(32, 64, 16, 8, GemmOp::NoTrans, GemmOp::NoTrans);
    }

    #[test]
    fn paper_example_2_shape() {
        check(32, 32, 64, 16, GemmOp::NoTrans, GemmOp::NoTrans);
    }

    #[test]
    fn paper_example_3_idle_rank() {
        check(32, 32, 64, 17, GemmOp::NoTrans, GemmOp::NoTrans);
    }

    #[test]
    fn uneven_dimensions() {
        check(33, 65, 17, 8, GemmOp::NoTrans, GemmOp::NoTrans);
        check(29, 31, 37, 12, GemmOp::NoTrans, GemmOp::NoTrans);
    }

    #[test]
    fn transposes() {
        check(20, 24, 28, 8, GemmOp::Trans, GemmOp::NoTrans);
        check(20, 24, 28, 8, GemmOp::NoTrans, GemmOp::Trans);
        check(20, 24, 28, 8, GemmOp::Trans, GemmOp::Trans);
    }

    #[test]
    fn single_process() {
        check(9, 7, 5, 1, GemmOp::NoTrans, GemmOp::NoTrans);
    }

    #[test]
    fn prime_process_count() {
        check(24, 24, 24, 7, GemmOp::NoTrans, GemmOp::NoTrans);
        check(24, 24, 24, 13, GemmOp::NoTrans, GemmOp::NoTrans);
    }

    #[test]
    fn degenerate_problems() {
        // rank-1 update
        check(16, 16, 1, 8, GemmOp::NoTrans, GemmOp::NoTrans);
        // matrix-vector
        check(32, 1, 32, 8, GemmOp::NoTrans, GemmOp::NoTrans);
        // inner product
        check(1, 1, 64, 8, GemmOp::NoTrans, GemmOp::NoTrans);
    }

    #[test]
    fn tall_skinny_classes() {
        // large-K
        check(6, 6, 240, 12, GemmOp::NoTrans, GemmOp::NoTrans);
        // large-M
        check(240, 6, 6, 12, GemmOp::NoTrans, GemmOp::NoTrans);
        // flat
        check(48, 48, 4, 12, GemmOp::NoTrans, GemmOp::NoTrans);
    }

    #[test]
    fn forced_grids() {
        // Table II scenario: run the same problem under several explicit
        // grids, all must be correct.
        for grid in [
            Grid::new(2, 2, 4),
            Grid::new(4, 2, 2),
            Grid::new(2, 4, 2),
            Grid::new(4, 4, 1),
            Grid::new(1, 1, 16),
            Grid::new(16, 1, 1),
        ] {
            check_opts(
                24,
                20,
                28,
                16,
                GemmOp::NoTrans,
                GemmOp::NoTrans,
                &Ca3dmmOptions {
                    grid_override: Some(grid),
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn f32_end_to_end() {
        let p = 8;
        let (m, n, k) = (16, 20, 24);
        let a = global_block::<f32>(1, Rect::new(0, 0, m, k));
        let b = global_block::<f32>(2, Rect::new(0, 0, k, n));
        let la = Layout::one_d_col(m, k, p);
        let lb = Layout::one_d_col(k, n, p);
        let lc = Layout::one_d_col(m, n, p);
        let mm = Ca3dmm::new(Problem::new(m, n, k, p), &Ca3dmmOptions::default());
        let parts = World::run(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            mm.multiply(
                ctx,
                &world,
                GemmOp::NoTrans,
                &la,
                &la.extract(&a, me),
                GemmOp::NoTrans,
                &lb,
                &lb.extract(&b, me),
                &lc,
            )
        });
        let mut c_ref = Mat::<f32>::zeros(m, n);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a,
            &b,
            0.0,
            &mut c_ref,
        );
        assert_gemm_close(&lc.assemble(&parts), &c_ref, k, "f32");
    }

    #[test]
    fn stats_report() {
        let mm = Ca3dmm::new(Problem::new(32, 32, 64, 17), &Ca3dmmOptions::default());
        let st = mm.stats();
        assert_eq!(st.grid, Grid::new(2, 2, 4));
        assert!(st.utilization < 1.0 && st.utilization > 0.9);
        assert!(st.volume_ratio >= 0.99);
        assert_eq!(st.cuboid, (16, 16, 16));
    }

    #[test]
    fn phases_are_labelled() {
        // traffic report must contain the paper's phase names
        let p = 8;
        let (m, n, k) = (32, 64, 16); // example 1: c=2 -> replication happens
        let a = global_block::<f64>(1, Rect::new(0, 0, m, k));
        let b = global_block::<f64>(2, Rect::new(0, 0, k, n));
        let la = Layout::one_d_col(m, k, p);
        let lb = Layout::one_d_col(k, n, p);
        let lc = Layout::one_d_col(m, n, p);
        let mm = Ca3dmm::new(Problem::new(m, n, k, p), &Ca3dmmOptions::default());
        let (_, report) = World::run_traced(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            mm.multiply(
                ctx,
                &world,
                GemmOp::NoTrans,
                &la,
                &la.extract(&a, me),
                GemmOp::NoTrans,
                &lb,
                &lb.extract(&b, me),
                &lc,
            )
        });
        assert!(report.phase_total("redist").bytes > 0);
        assert!(
            report.phase_total("replicate_ab").bytes > 0,
            "c=2 must replicate"
        );
        assert!(report.phase_total("cannon_shift").bytes > 0);
        // pk = 1 here: no reduce traffic
        assert_eq!(report.phase_total("reduce_c").bytes, 0);
    }
}
