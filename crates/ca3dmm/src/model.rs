//! The CA3DMM cost model: the same structure as [`crate::exec`], expressed
//! as a [`netmodel::Schedule`] and priced analytically (§III-D), plus the
//! eq. 11 memory model. This is what the paper-scale experiments evaluate.

use gridopt::{Grid, Problem};
use msgpass::collectives::Collectives;
use netmodel::machine::Placement;
use netmodel::{NetGroup, Phase, Schedule};

/// Configuration of a modeled CA3DMM run.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Rank↦node mapping and per-rank compute rate.
    pub placement: Placement,
    /// Bytes per matrix element (8 for f64).
    pub elem_bytes: f64,
    /// Dual-buffered communication/computation overlap in Cannon (§III-F).
    /// Turning it off is one of the DESIGN.md ablations.
    pub overlap: bool,
    /// Model the step-4/8 layout conversions from/to a non-native user
    /// layout (the "custom layout" series of Fig. 3). `false` is the
    /// library-native configuration §III-D analyses.
    pub include_redist: bool,
    /// Which collective family the run used. Must match the executed
    /// configuration (`Ca3dmmOptions::collectives`): the model applies the
    /// same structural rule as the runtime — a hierarchical phase is
    /// emitted only where [`NetGroup::hier_engages`] — so measured and
    /// modeled byte/message counts stay exact either way.
    pub collectives: Collectives,
}

/// Geometry quantities shared by the schedule and memory models.
struct Geo {
    s: usize,
    c: usize,
    a_replicated: bool,
    /// Per-rank block sizes (ceil), elements.
    mb: f64,
    nb: f64,
    kb: f64,
    /// Cannon-block sizes.
    a_blk: f64,
    b_blk: f64,
}

fn geo(prob: &Problem, grid: &Grid) -> Geo {
    let s = grid.cannon_s();
    let c = grid.cannon_c();
    let mb = (prob.m as f64 / grid.pm as f64).ceil();
    let nb = (prob.n as f64 / grid.pn as f64).ceil();
    let kb = (prob.k as f64 / grid.pk as f64).ceil();
    let kbs = (kb / s as f64).ceil();
    Geo {
        s,
        c,
        a_replicated: grid.pn > grid.pm,
        mb,
        nb,
        kb,
        a_blk: mb * kbs,
        b_blk: kbs * nb,
    }
}

/// Builds the CA3DMM schedule for one multiplication. The modeled rank is
/// the maximally loaded one: it sends both skews and participates in every
/// phase.
pub fn ca3dmm_schedule(prob: &Problem, grid: &Grid, cfg: &ModelConfig) -> Schedule {
    let g = geo(prob, grid);
    let eb = cfg.elem_bytes;
    let active = grid.active();
    let rpn = cfg.placement.ranks_per_node;
    let mut sched = Schedule::new();

    if cfg.include_redist {
        // Steps 4: nearly every element of the local A and B shares moves.
        let send =
            (prob.m as f64 * prob.k as f64 + prob.k as f64 * prob.n as f64) / prob.p as f64 * eb;
        sched.push(
            "redist",
            Phase::Alltoallv {
                grp: NetGroup::scattered(prob.p, rpn),
                send_bytes: send,
                peers: prob.p.min(2 * (grid.pm + grid.pn + grid.pk)),
            },
        );
    }

    // Step 5: replicate A or B across the c Cannon groups (rank stride s²).
    if g.c > 1 {
        let blk = if g.a_replicated { g.a_blk } else { g.b_blk };
        let grp = NetGroup::strided(g.c, g.s * g.s, rpn);
        let total_bytes = blk * eb;
        sched.push(
            "replicate_ab",
            if cfg.collectives == Collectives::Hier && grp.hier_engages() {
                Phase::HierAllgather { grp, total_bytes }
            } else {
                Phase::Allgather { grp, total_bytes }
            },
        );
    }

    // Step 6: Cannon — initial skew + s−1 overlapped shifts. Cannon groups
    // are contiguous ranks; shift partners are mostly a few ranks away, so
    // model them as a stride-s ring (the column-shift distance) — unless
    // the whole s² contiguous group fits on one node, where the stride-s
    // encoding would overstate the group's span and invent node crossings
    // that the runtime (whose group occupies s² consecutive ranks) never
    // makes.
    let cannon_grp = if g.s * g.s <= rpn.max(1) {
        NetGroup::contiguous(g.s * g.s, rpn.max(1))
    } else {
        NetGroup::strided(g.s * g.s, g.s.min(rpn.max(1)), rpn)
    };
    let shift_bytes = (g.a_blk + g.b_blk) * eb;
    let flops = 2.0 * g.mb * g.nb * g.kb;
    if g.s > 1 {
        // The skew round is part of Cannon proper (eq. 10 counts p_s
        // rounds = 1 skew + s−1 shifts), and the runtime measures it under
        // "cannon_shift" — so the model prices it under "cannon" too. The
        // runtime ships the A and B blocks of every round as two separate
        // messages, so each round pays two α terms and counts two toward
        // the latency measure L.
        sched.push(
            "cannon",
            Phase::ShiftRounds {
                grp: cannon_grp,
                rounds: 1,
                bytes_per_round: shift_bytes,
                msgs_per_round: 2,
            },
        );
        if cfg.overlap {
            sched.push(
                "cannon",
                Phase::CannonOverlap {
                    grp: cannon_grp,
                    rounds: g.s - 1,
                    bytes_per_round: shift_bytes,
                    msgs_per_round: 2,
                    flops,
                },
            );
        } else {
            sched.push(
                "cannon",
                Phase::ShiftRounds {
                    grp: cannon_grp,
                    rounds: g.s - 1,
                    bytes_per_round: shift_bytes,
                    msgs_per_round: 2,
                },
            );
            sched.push("cannon", Phase::LocalGemm { flops });
        }
    } else {
        sched.push("cannon", Phase::LocalGemm { flops });
    }

    // Step 7: reduce-scatter the pk partial C results.
    if grid.pk > 1 {
        // Reduce groups stride by a whole k-task group (pm·pn ranks).
        let grp = NetGroup::strided(grid.pk, grid.pm * grid.pn, rpn);
        let total_bytes = g.mb * g.nb * eb;
        sched.push(
            "reduce_c",
            if cfg.collectives == Collectives::Hier && grp.hier_engages() {
                Phase::HierReduceScatter { grp, total_bytes }
            } else {
                Phase::ReduceScatter {
                    grp,
                    total_bytes,
                    custom_impl: false,
                }
            },
        );
    }

    if cfg.include_redist {
        // Step 8: the C strip moves out to the user layout.
        let send = (prob.m as f64 * prob.n as f64) / active as f64 * eb;
        sched.push(
            "redist",
            Phase::Alltoallv {
                grp: NetGroup::scattered(prob.p, rpn),
                send_bytes: send,
                peers: prob.p.min(2 * (grid.pm + grid.pn + grid.pk)),
            },
        );
    }

    sched
}

/// The eq. 11 memory model, in elements per active rank:
/// `S = 2(c·|A| + |B|)/G + pk·|C|/G` with the `c` factor on whichever
/// operand is replicated (the paper writes the `m ≤ n` case). The factor 2
/// is the dual buffer of §III-F.
pub fn memory_elements_per_rank(prob: &Problem, grid: &Grid) -> f64 {
    let c = grid.cannon_c() as f64;
    let g_active = grid.active() as f64;
    let amk = prob.m as f64 * prob.k as f64;
    let bkn = prob.k as f64 * prob.n as f64;
    let cmn = prob.m as f64 * prob.n as f64;
    let (ca, cb) = if grid.pn > grid.pm {
        (c, 1.0)
    } else {
        (1.0, c)
    };
    2.0 * (ca * amk + cb * bkn) / g_active + grid.pk as f64 * cmn / g_active
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::eval::evaluate;
    use netmodel::Machine;

    fn cfg() -> ModelConfig {
        ModelConfig {
            placement: Machine::uniform().pure_mpi(),
            elem_bytes: 8.0,
            overlap: true,
            include_redist: false,
            collectives: Collectives::Flat,
        }
    }

    #[test]
    fn schedule_volume_matches_eq9_at_balance() {
        // For m=n=k and a perfect cube grid, per-rank volume should be
        // close to the lower bound 3 (mnk/P)^(2/3) elements.
        let prob = Problem::new(1024, 1024, 1024, 64);
        let grid = Grid::new(4, 4, 4);
        let sched = ca3dmm_schedule(&prob, &grid, &cfg());
        let elems = sched.sent_bytes() / 8.0;
        let lb = prob.comm_lower_bound();
        // Sent volume counts A+B shift traffic and the C reduction; it is
        // within a small constant of the bound.
        assert!(
            elems > 0.5 * lb && elems < 2.0 * lb,
            "elems={elems} lb={lb}"
        );
    }

    #[test]
    fn latency_matches_eq10() {
        // L = log2(c) + p_s + pk - 1 (eq. 10) counts *rounds*; our runtime
        // ships A and B as two separate messages per round, so the modeled
        // message count is log2(c) + 2·p_s + pk - 1 — the skew round +
        // (s-1) shifts = s = p_s rounds at 2 messages each, log2(c) for
        // the allgather, pk-1 for the reduce-scatter.
        let prob = Problem::new(4096, 4096, 4096, 128);
        let grid = Grid::new(8, 4, 4); // c=2, s=4, pk=4
        let sched = ca3dmm_schedule(&prob, &grid, &cfg());
        let want = 1.0 /*log2 c*/ + 2.0 * 4.0 /*2·s*/ + 3.0 /*pk-1*/;
        assert!((sched.message_count() - want).abs() < 1e-9);
    }

    #[test]
    fn hier_mode_mirrors_structural_selection() {
        // The ablation geometry: p = 3072 (grid 8×16×24) on 384-rank nodes.
        // Reduce groups (stride pm·pn = 128, size pk = 24) span 8 nodes of
        // 3 members → hierarchical; replicate pairs (stride s² = 64,
        // size c = 2) always land inside one node → flat fallback even in
        // hier mode, exactly like the runtime's node_map rule.
        let prob = Problem::new(3072, 3072, 6144, 3072);
        let grid = Grid::new(8, 16, 24);
        let placement = Placement {
            ranks_per_node: 384,
            flops_per_rank: 1e9,
        };
        let hier_cfg = ModelConfig {
            placement,
            collectives: Collectives::Hier,
            ..cfg()
        };
        let sched = ca3dmm_schedule(&prob, &grid, &hier_cfg);
        let phase_of = |label: &str| {
            sched
                .items
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, p)| p)
                .unwrap_or_else(|| panic!("phase {label} missing"))
        };
        assert!(matches!(
            phase_of("reduce_c"),
            Phase::HierReduceScatter { .. }
        ));
        assert!(matches!(phase_of("replicate_ab"), Phase::Allgather { .. }));
        // Flat mode on the same placement keeps the flat reduce-scatter.
        let flat_cfg = ModelConfig { placement, ..cfg() };
        let flat = ca3dmm_schedule(&prob, &grid, &flat_cfg);
        assert!(flat
            .items
            .iter()
            .all(|(_, p)| !matches!(p, Phase::HierReduceScatter { .. })));
    }

    #[test]
    fn memory_square_matches_asymptotics() {
        // m=n=k: S = 4 m^2/P + m^2/P^(2/3) (c=1, pk=P^(1/3))
        let m = 1 << 12;
        let p = 512;
        let prob = Problem::new(m, m, m, p);
        let grid = Grid::new(8, 8, 8);
        let s = memory_elements_per_rank(&prob, &grid);
        let m2 = (m * m) as f64;
        let want = 4.0 * m2 / p as f64 + m2 / (p as f64).powf(2.0 / 3.0);
        assert!((s - want).abs() / want < 1e-9);
    }

    #[test]
    fn memory_counts_replication() {
        // Replicating the large operand (B: k×n = 100k elements) must cost
        // more than replicating the small one (A: m×k = 10k elements).
        let prob = Problem::new(100, 1000, 100, 20);
        let rep_a = Grid::new(2, 10, 1); // c=5 copies of A
        let rep_b = Grid::new(10, 2, 1); // c=5 copies of B
        assert!(memory_elements_per_rank(&prob, &rep_b) > memory_elements_per_rank(&prob, &rep_a));
        // exact eq. 11 values
        let s = memory_elements_per_rank(&prob, &rep_a);
        assert!((s - (2.0 * (5.0 * 10_000.0 + 100_000.0) / 20.0 + 100_000.0 / 20.0)).abs() < 1e-9);
    }

    #[test]
    fn overlap_reduces_total_time() {
        let prob = Problem::new(2048, 2048, 2048, 64);
        let grid = Grid::new(4, 4, 4);
        let m = Machine::uniform();
        let with = evaluate(
            &m,
            m.pure_mpi().flops_per_rank,
            &ca3dmm_schedule(&prob, &grid, &cfg()),
        );
        let without = evaluate(
            &m,
            m.pure_mpi().flops_per_rank,
            &ca3dmm_schedule(
                &prob,
                &grid,
                &ModelConfig {
                    overlap: false,
                    ..cfg()
                },
            ),
        );
        assert!(with.total_s <= without.total_s);
        // byte volume is identical either way
        assert!((with.sent_bytes - without.sent_bytes).abs() < 1e-6);
    }

    #[test]
    fn redist_adds_cost() {
        let prob = Problem::new(512, 512, 4096, 32);
        let grid = Grid::new(2, 2, 8);
        let m = Machine::uniform();
        let native = evaluate(&m, 1e9, &ca3dmm_schedule(&prob, &grid, &cfg()));
        let custom = evaluate(
            &m,
            1e9,
            &ca3dmm_schedule(
                &prob,
                &grid,
                &ModelConfig {
                    include_redist: true,
                    ..cfg()
                },
            ),
        );
        assert!(custom.total_s > native.total_s);
        assert!(custom.label_s("redist") > 0.0);
    }

    #[test]
    fn degenerate_grids_have_no_collective_phases() {
        // 1D k-split: no replication, no shifts, only reduce + gemm
        let prob = Problem::new(6, 6, 1200, 16);
        let grid = Grid::new(1, 1, 16);
        let sched = ca3dmm_schedule(&prob, &grid, &cfg());
        let labels: Vec<&str> = sched.items.iter().map(|(l, _)| l.as_str()).collect();
        assert!(!labels.contains(&"replicate_ab"));
        assert!(labels.contains(&"reduce_c"));
        assert!(labels.contains(&"cannon"));
    }
}
