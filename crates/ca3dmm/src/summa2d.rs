//! SUMMA and the CA3DMM-S variant (§III-E).
//!
//! The paper argues for Cannon over SUMMA inside the k-task groups by a
//! latency comparison (`L_SUMMA − L ≥ (pm−1)log₂pm + pm² − 2pm ≥ 0`) and
//! keeps SUMMA as the "conventional choice" baseline. This module provides:
//!
//! * [`summa`] — the SUMMA kernel on a `pr × pc` grid: panel broadcasts of
//!   `A` along grid rows and `B` along grid columns with a stationary `C`;
//! * [`Ca3dmmSumma`] — CA3DMM with SUMMA replacing Cannon in each k-task
//!   group (the paper's hypothetical CA3DMM-S, §III-E): no eq. 7
//!   constraint, no replication step, same reduce-scatter. Built as an
//!   ablation target.

use crate::reduce::reduce_partial_c;
use dense::gemm::{gemm, GemmOp};
use dense::part::{even_range, offsets, split_even, Rect};
use dense::{Mat, Scalar};
use gridopt::{cosma_grid, Grid, Problem};
use layout::Layout;
use msgpass::collectives::bcast_large;
use msgpass::{Comm, RankCtx};

/// SUMMA on a `pr × pc` grid (stationary C).
///
/// * `row_comm` connects the ranks of one grid row, ordered by column
///   (size `pc`, this rank at index `j`);
/// * `col_comm` connects one grid column, ordered by row (size `pr`, this
///   rank at index `i`);
/// * `a_blk` is this rank's `(m_i × ka_j)` block of `A`, where the
///   k-dimension is split `pc` ways for `A`;
/// * `b_blk` is the `(kb_i × n_j)` block of `B`, k split `pr` ways.
///
/// Panels are the refinement of the two k-partitions, so `pr` and `pc` may
/// be arbitrary (and k need not divide either). The product is accumulated
/// into `c_out`.
pub fn summa<T: Scalar>(
    ctx: &RankCtx,
    row_comm: &Comm,
    col_comm: &Comm,
    k_total: usize,
    a_blk: &Mat<T>,
    b_blk: &Mat<T>,
    c_out: &mut Mat<T>,
) {
    let pc = row_comm.size();
    let pr = col_comm.size();
    let j = row_comm.rank();
    let i = col_comm.rank();
    let a_offs = offsets(&split_even(k_total, pc));
    let b_offs = offsets(&split_even(k_total, pr));
    assert_eq!(a_blk.cols(), a_offs[j + 1] - a_offs[j], "A block k-width");
    assert_eq!(b_blk.rows(), b_offs[i + 1] - b_offs[i], "B block k-height");

    // Fine panels: union of both partitions' boundaries.
    let mut bounds: Vec<usize> = a_offs.iter().chain(b_offs.iter()).copied().collect();
    bounds.sort_unstable();
    bounds.dedup();

    let owner = |offs: &[usize], k0: usize| -> usize {
        // index of the part whose [start, end) contains k0
        match offs.binary_search(&k0) {
            Ok(idx) => idx.min(offs.len() - 2),
            Err(idx) => idx - 1,
        }
    };

    for w in bounds.windows(2) {
        let (k0, k1) = (w[0], w[1]);
        if k0 == k1 {
            continue;
        }
        // Broadcast the A panel within the grid row (every member of the
        // row has the same block height, so the panel shape is known
        // locally and the large-message scatter+allgather broadcast — the
        // one `T_broadcast` prices — applies).
        let ca = owner(&a_offs, k0);
        let a_panel = {
            let mine = (ca == j).then(|| {
                let local = Rect::new(0, k0 - a_offs[j], a_blk.rows(), k1 - k0);
                a_blk.block(local).into_vec()
            });
            let data = bcast_large(row_comm, ctx, ca, mine, a_blk.rows() * (k1 - k0));
            Mat::from_vec(a_blk.rows(), k1 - k0, data)
        };
        // Broadcast the B panel within the grid column.
        let rb = owner(&b_offs, k0);
        let b_panel = {
            let mine = (rb == i).then(|| {
                let local = Rect::new(k0 - b_offs[i], 0, k1 - k0, b_blk.cols());
                b_blk.block(local).into_vec()
            });
            let data = bcast_large(col_comm, ctx, rb, mine, (k1 - k0) * b_blk.cols());
            Mat::from_vec(k1 - k0, b_blk.cols(), data)
        };
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            T::ONE,
            &a_panel,
            &b_panel,
            T::ONE,
            c_out,
        );
    }
}

/// CA3DMM-S: the §III-E variant with SUMMA inside each k-task group.
///
/// Rank order: `world = kt·(pm·pn) + i + j·pm` (column-major 2D grids,
/// contiguous k-task groups). No Cannon groups exist, so eq. 7 is not
/// required and the grid comes from the unconstrained search.
pub struct Ca3dmmSumma {
    prob: Problem,
    grid: Grid,
}

impl Ca3dmmSumma {
    /// Chooses the (unconstrained) grid and builds the geometry.
    pub fn new(prob: Problem, grid_override: Option<Grid>) -> Self {
        let grid = grid_override
            .unwrap_or_else(|| cosma_grid(&prob, gridopt::DEFAULT_UTILIZATION_FLOOR).grid);
        assert!(grid.active() <= prob.p, "grid exceeds P");
        Ca3dmmSumma { prob, grid }
    }

    /// The grid in use.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    fn coord(&self, world_rank: usize) -> (usize, usize, usize) {
        let per_kt = self.grid.pm * self.grid.pn;
        let kt = world_rank / per_kt;
        let r = world_rank % per_kt;
        (r % self.grid.pm, r / self.grid.pm, kt) // (i, j, kt)
    }

    fn k_outer(&self, kt: usize) -> (usize, usize) {
        even_range(self.prob.k, self.grid.pk, kt)
    }

    /// Native layout of `A` (`m × k`): block `(m_i, ka_j)` inside k-task
    /// group `kt`'s k-range, split `pn` ways.
    pub fn layout_a(&self) -> Layout {
        self.layout_of(
            |s, i, j, kt| {
                let (r0, r1) = even_range(s.prob.m, s.grid.pm, i);
                let (ks, ke) = s.k_outer(kt);
                let (a, b) = even_range(ke - ks, s.grid.pn, j);
                Rect::new(r0, ks + a, r1 - r0, b - a)
            },
            self.prob.m,
            self.prob.k,
        )
    }

    /// Native layout of `B` (`k × n`): block `(kb_i, n_j)`, k split `pm`
    /// ways inside the group's range.
    pub fn layout_b(&self) -> Layout {
        self.layout_of(
            |s, i, j, kt| {
                let (ks, ke) = s.k_outer(kt);
                let (a, b) = even_range(ke - ks, s.grid.pm, i);
                let (c0, c1) = even_range(s.prob.n, s.grid.pn, j);
                Rect::new(ks + a, c0, b - a, c1 - c0)
            },
            self.prob.k,
            self.prob.n,
        )
    }

    /// Native output layout of `C`: row-strip `kt` of block `(m_i, n_j)`.
    pub fn layout_c(&self) -> Layout {
        self.layout_of(
            |s, i, j, kt| {
                let (r0, r1) = even_range(s.prob.m, s.grid.pm, i);
                let (c0, c1) = even_range(s.prob.n, s.grid.pn, j);
                let (o0, o1) = even_range(r1 - r0, s.grid.pk, kt);
                Rect::new(r0 + o0, c0, o1 - o0, c1 - c0)
            },
            self.prob.m,
            self.prob.n,
        )
    }

    fn layout_of(
        &self,
        f: impl Fn(&Self, usize, usize, usize) -> Rect,
        rows: usize,
        cols: usize,
    ) -> Layout {
        let rects = (0..self.prob.p)
            .map(|r| {
                if r < self.grid.active() {
                    let (i, j, kt) = self.coord(r);
                    let rect = f(self, i, j, kt);
                    if rect.is_empty() {
                        vec![]
                    } else {
                        vec![rect]
                    }
                } else {
                    vec![]
                }
            })
            .collect();
        Layout::from_rects(rows, cols, rects)
    }

    /// The full pipeline (Algorithm 1 with SUMMA inside the k-task
    /// groups): redistribute from the caller's layouts, multiply,
    /// redistribute `C` out — mirroring [`crate::Ca3dmm::multiply`].
    #[allow(clippy::too_many_arguments)]
    pub fn multiply<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        op_a: GemmOp,
        a_layout: &layout::Layout,
        a_blocks: &[Mat<T>],
        op_b: GemmOp,
        b_layout: &layout::Layout,
        b_blocks: &[Mat<T>],
        c_layout: &layout::Layout,
    ) -> Vec<Mat<T>> {
        assert_eq!(world.size(), self.prob.p, "world size must equal P");
        ctx.set_phase("redist");
        let la = self.layout_a();
        let lb = self.layout_b();
        let a_local = layout::redistribute(world, ctx, a_layout, a_blocks, &la, op_a);
        let b_local = layout::redistribute(world, ctx, b_layout, b_blocks, &lb, op_b);
        let c_strip = self.multiply_native(
            ctx,
            world,
            a_local.into_iter().next(),
            b_local.into_iter().next(),
        );
        ctx.set_phase("redist");
        let lc = self.layout_c();
        let c_blocks: Vec<Mat<T>> = c_strip.into_iter().filter(|m| !m.is_empty()).collect();
        layout::redistribute(world, ctx, &lc, &c_blocks, c_layout, GemmOp::NoTrans)
    }

    /// Steps 5–7 with SUMMA: native-layout multiply. Collective over
    /// `world`; idle ranks pass `None`.
    pub fn multiply_native<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        a_init: Option<Mat<T>>,
        b_init: Option<Mat<T>>,
    ) -> Option<Mat<T>> {
        let (pm, pn, pk) = (self.grid.pm, self.grid.pn, self.grid.pk);
        let active = self.grid.active();

        // Row comms: same (i, kt), j varies. Column comms: same (j, kt).
        let row_groups: Vec<Vec<usize>> = (0..pk)
            .flat_map(|kt| {
                (0..pm).map(move |i| {
                    (0..pn)
                        .map(|j| kt * pm * pn + i + j * pm)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let row_comm = world.subgroup(ctx, &row_groups);
        let col_groups: Vec<Vec<usize>> = (0..pk)
            .flat_map(|kt| {
                (0..pn).map(move |j| {
                    (0..pm)
                        .map(|i| kt * pm * pn + i + j * pm)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let col_comm = world.subgroup(ctx, &col_groups);
        let reduce_groups: Vec<Vec<usize>> = (0..pm * pn)
            .map(|idx| (0..pk).map(|kt| kt * pm * pn + idx).collect())
            .collect();
        let reduce_comm = world.subgroup(ctx, &reduce_groups);

        if world.rank() >= active {
            return None;
        }
        let (i, j, kt) = self.coord(world.rank());
        let (ks, ke) = self.k_outer(kt);
        let kb = ke - ks;
        let (r0, r1) = even_range(self.prob.m, pm, i);
        let (c0, c1) = even_range(self.prob.n, pn, j);
        let (ka0, ka1) = even_range(kb, pn, j);
        let (kb0, kb1) = even_range(kb, pm, i);
        let a_blk = a_init.unwrap_or_else(|| Mat::zeros(r1 - r0, ka1 - ka0));
        let b_blk = b_init.unwrap_or_else(|| Mat::zeros(kb1 - kb0, c1 - c0));
        assert_eq!(a_blk.shape(), (r1 - r0, ka1 - ka0), "A block shape");
        assert_eq!(b_blk.shape(), (kb1 - kb0, c1 - c0), "B block shape");

        ctx.set_phase("summa_bcast");
        let mut c_partial = Mat::zeros(r1 - r0, c1 - c0);
        summa(
            ctx,
            row_comm.as_ref().expect("active rank has a row comm"),
            col_comm.as_ref().expect("active rank has a col comm"),
            kb,
            &a_blk,
            &b_blk,
            &mut c_partial,
        );

        ctx.set_phase("reduce_c");
        Some(reduce_partial_c(
            ctx,
            reduce_comm.as_ref().expect("active rank has a reduce comm"),
            c_partial,
            msgpass::collectives::Collectives::Flat,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gemm::gemm_naive;
    use dense::random::global_block;
    use dense::testing::assert_gemm_close;
    use msgpass::World;

    fn check_summa_kernel(m: usize, n: usize, k: usize, pr: usize, pc: usize) {
        let results = World::run(pr * pc, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let (i, j) = (me % pr, me / pr);
            let row_groups: Vec<Vec<usize>> = (0..pr)
                .map(|ri| (0..pc).map(|cj| ri + cj * pr).collect())
                .collect();
            let col_groups: Vec<Vec<usize>> = (0..pc)
                .map(|cj| (0..pr).map(|ri| ri + cj * pr).collect())
                .collect();
            let row_comm = world.subgroup(ctx, &row_groups).unwrap();
            let col_comm = world.subgroup(ctx, &col_groups).unwrap();
            let (r0, r1) = even_range(m, pr, i);
            let (c0, c1) = even_range(n, pc, j);
            let (ka0, ka1) = even_range(k, pc, j);
            let (kb0, kb1) = even_range(k, pr, i);
            let a = global_block::<f64>(5, Rect::new(r0, ka0, r1 - r0, ka1 - ka0));
            let b = global_block::<f64>(6, Rect::new(kb0, c0, kb1 - kb0, c1 - c0));
            let mut c = Mat::zeros(r1 - r0, c1 - c0);
            summa(ctx, &row_comm, &col_comm, k, &a, &b, &mut c);
            (i, j, c)
        });
        let a_full = global_block::<f64>(5, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(6, Rect::new(0, 0, k, n));
        let mut c_ref = Mat::zeros(m, n);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a_full,
            &b_full,
            0.0,
            &mut c_ref,
        );
        for (i, j, c) in results {
            let (r0, r1) = even_range(m, pr, i);
            let (c0, c1) = even_range(n, pc, j);
            let want = c_ref.block(Rect::new(r0, c0, r1 - r0, c1 - c0));
            assert_gemm_close(&c, &want, k, &format!("summa ({i},{j})"));
        }
    }

    #[test]
    fn summa_square_grid() {
        check_summa_kernel(12, 12, 12, 2, 2);
    }

    #[test]
    fn summa_rect_grids() {
        check_summa_kernel(10, 14, 9, 2, 3);
        check_summa_kernel(14, 10, 9, 3, 2);
        check_summa_kernel(8, 8, 21, 1, 4);
        check_summa_kernel(8, 8, 21, 4, 1);
    }

    #[test]
    fn summa_uneven_k() {
        check_summa_kernel(7, 9, 17, 3, 2);
    }

    fn check_ca3dmm_s(m: usize, n: usize, k: usize, p: usize, grid: Option<Grid>) {
        let alg = Ca3dmmSumma::new(Problem::new(m, n, k, p), grid);
        let la = alg.layout_a();
        let lb = alg.layout_b();
        let lc = alg.layout_c();
        la.validate();
        lb.validate();
        lc.validate();
        let a_full = global_block::<f64>(7, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(8, Rect::new(0, 0, k, n));
        let parts = World::run(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            let c = alg.multiply_native(ctx, &world, a, b);
            c.into_iter()
                .filter(|m: &Mat<f64>| !m.is_empty())
                .collect::<Vec<_>>()
        });
        let mut c_ref = Mat::zeros(m, n);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a_full,
            &b_full,
            0.0,
            &mut c_ref,
        );
        let got = lc.assemble(&parts);
        assert_gemm_close(&got, &c_ref, k, &format!("ca3dmm-s {m}x{n}x{k} p={p}"));
    }

    #[test]
    fn ca3dmm_s_end_to_end() {
        check_ca3dmm_s(24, 20, 28, 16, None);
        check_ca3dmm_s(16, 16, 64, 12, None);
    }

    #[test]
    fn ca3dmm_s_forced_grids_including_non_eq7() {
        // 2x3 grids are illegal for Cannon (eq. 7) but fine for SUMMA.
        check_ca3dmm_s(14, 15, 16, 6, Some(Grid::new(2, 3, 1)));
        check_ca3dmm_s(14, 15, 16, 12, Some(Grid::new(2, 3, 2)));
    }

    #[test]
    fn ca3dmm_s_idle_ranks() {
        check_ca3dmm_s(12, 12, 12, 5, Some(Grid::new(2, 2, 1)));
    }

    #[test]
    fn ca3dmm_s_full_pipeline_with_transposes() {
        let (m, n, k, p) = (18usize, 14, 22, 8);
        for (op_a, op_b) in [
            (GemmOp::NoTrans, GemmOp::NoTrans),
            (GemmOp::Trans, GemmOp::Trans),
        ] {
            let (ar, ac) = match op_a {
                GemmOp::NoTrans => (m, k),
                GemmOp::Trans => (k, m),
            };
            let (br, bc) = match op_b {
                GemmOp::NoTrans => (k, n),
                GemmOp::Trans => (n, k),
            };
            let a_stored = global_block::<f64>(3, Rect::new(0, 0, ar, ac));
            let b_stored = global_block::<f64>(4, Rect::new(0, 0, br, bc));
            let la = Layout::one_d_col(ar, ac, p);
            let lb = Layout::one_d_row(br, bc, p);
            let lc = Layout::one_d_col(m, n, p);
            let alg = Ca3dmmSumma::new(Problem::new(m, n, k, p), None);
            let parts = World::run(p, |ctx| {
                let world = Comm::world(ctx);
                let me = world.rank();
                alg.multiply(
                    ctx,
                    &world,
                    op_a,
                    &la,
                    &la.extract(&a_stored, me),
                    op_b,
                    &lb,
                    &lb.extract(&b_stored, me),
                    &lc,
                )
            });
            let mut c_ref = Mat::zeros(m, n);
            gemm_naive(op_a, op_b, 1.0, &a_stored, &b_stored, 0.0, &mut c_ref);
            assert_gemm_close(&lc.assemble(&parts), &c_ref, k, "ca3dmm-s pipeline");
        }
    }
}
