//! Process-grid geometry: who sits where, and which block of which matrix
//! each rank touches (Algorithm 1 steps 2–3 and the partitionings of
//! §III-B).
//!
//! Rank order is "column-major" as in the paper: all ranks of the same
//! k-task group are contiguous, and within it all ranks of the same Cannon
//! group are contiguous:
//!
//! ```text
//! world_rank = kt·(pm·pn) + cg·s² + (i + j·s)
//! ```
//!
//! with `kt` the k-task group, `cg` the Cannon group, `(i, j)` the position
//! in the `s × s` Cannon grid (`i` along m, `j` along n). Ranks
//! `≥ pm·pn·pk` are idle outside the redistribution steps.

use dense::part::{even_range, Rect};
use gridopt::{Grid, Problem};
use layout::Layout;

/// A rank's position in the 3D organization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankCoord {
    /// Row in the Cannon grid (m-direction), `0..s`.
    pub i: usize,
    /// Column in the Cannon grid (n-direction), `0..s`.
    pub j: usize,
    /// Cannon group within the k-task group, `0..c`.
    pub cg: usize,
    /// k-task group, `0..pk`.
    pub kt: usize,
}

/// All the geometry of one CA3DMM run: grid, group structure, and the
/// global rectangles of every block. Everything here is pure arithmetic —
/// every rank computes the same answers with no communication, which is why
/// CA3DMM needs no membership negotiation.
#[derive(Clone, Debug)]
pub struct GridContext {
    prob: Problem,
    grid: Grid,
    /// Cannon grid side `s = min(pm, pn)`.
    pub s: usize,
    /// Cannon groups per k-task group, `c = max(pm,pn)/min(pm,pn)` (eq. 8).
    pub c: usize,
    /// True when `pn > pm`: the Cannon groups partition the n-dimension and
    /// `A` is the replicated operand; otherwise `B` is (when `c > 1`).
    pub a_replicated: bool,
}

impl GridContext {
    /// Builds the geometry.
    ///
    /// # Panics
    /// If the grid violates eq. 7 or uses more ranks than the problem has.
    pub fn new(prob: Problem, grid: Grid) -> Self {
        assert!(grid.cannon_compatible(), "grid violates eq. 7: {grid:?}");
        assert!(
            grid.active() <= prob.p,
            "grid {grid:?} needs more ranks than P = {}",
            prob.p
        );
        GridContext {
            prob,
            grid,
            s: grid.cannon_s(),
            c: grid.cannon_c(),
            a_replicated: grid.pn > grid.pm,
        }
    }

    /// The problem this geometry was built for.
    pub fn problem(&self) -> &Problem {
        &self.prob
    }

    /// The process grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of active ranks `pm·pn·pk`.
    pub fn active(&self) -> usize {
        self.grid.active()
    }

    /// Whether a world rank participates beyond redistribution.
    pub fn is_active(&self, world_rank: usize) -> bool {
        world_rank < self.active()
    }

    /// Coordinates of an active world rank.
    ///
    /// # Panics
    /// If the rank is idle.
    pub fn coord_of(&self, world_rank: usize) -> RankCoord {
        assert!(self.is_active(world_rank), "rank {world_rank} is idle");
        let per_kt = self.grid.pm * self.grid.pn;
        let kt = world_rank / per_kt;
        let rem = world_rank % per_kt;
        let cg = rem / (self.s * self.s);
        let idx = rem % (self.s * self.s);
        RankCoord {
            i: idx % self.s,
            j: idx / self.s,
            cg,
            kt,
        }
    }

    /// World rank of a coordinate (inverse of [`GridContext::coord_of`]).
    pub fn rank_of(&self, c: RankCoord) -> usize {
        debug_assert!(c.i < self.s && c.j < self.s && c.cg < self.c && c.kt < self.grid.pk);
        c.kt * self.grid.pm * self.grid.pn + c.cg * self.s * self.s + c.i + c.j * self.s
    }

    /// Index of this rank's row block in the global `pm`-way m-partition.
    pub fn row_part(&self, c: &RankCoord) -> usize {
        if self.a_replicated {
            c.i // pm == s
        } else {
            c.cg * self.s + c.i
        }
    }

    /// Index of this rank's column block in the global `pn`-way n-partition.
    pub fn col_part(&self, c: &RankCoord) -> usize {
        if self.a_replicated {
            c.cg * self.s + c.j
        } else {
            c.j // pn == s
        }
    }

    /// Row range `[start, end)` of m-part `idx`.
    pub fn m_range(&self, idx: usize) -> (usize, usize) {
        even_range(self.prob.m, self.grid.pm, idx)
    }

    /// Column range of n-part `idx`.
    pub fn n_range(&self, idx: usize) -> (usize, usize) {
        even_range(self.prob.n, self.grid.pn, idx)
    }

    /// The k-range `[start, end)` of k-task group `kt` (the rank-`k/pk`
    /// update it owns).
    pub fn k_outer(&self, kt: usize) -> (usize, usize) {
        even_range(self.prob.k, self.grid.pk, kt)
    }

    /// The `l`-th of the `s` k-sub-ranges Cannon circulates within k-task
    /// group `kt`, in global k coordinates.
    pub fn k_inner(&self, kt: usize, l: usize) -> (usize, usize) {
        let (ks, ke) = self.k_outer(kt);
        let (a, b) = even_range(ke - ks, self.s, l);
        (ks + a, ks + b)
    }

    /// Global rectangle of the (skew-free) Cannon block of `A` at a
    /// coordinate: row part × k-sub-range `j`.
    pub fn a_block(&self, c: &RankCoord) -> Rect {
        let (r0, r1) = self.m_range(self.row_part(c));
        let (k0, k1) = self.k_inner(c.kt, c.j);
        Rect::new(r0, k0, r1 - r0, k1 - k0)
    }

    /// Global rectangle of the (skew-free) Cannon block of `B`:
    /// k-sub-range `i` × column part.
    pub fn b_block(&self, c: &RankCoord) -> Rect {
        let (k0, k1) = self.k_inner(c.kt, c.i);
        let (c0, c1) = self.n_range(self.col_part(c));
        Rect::new(k0, c0, k1 - k0, c1 - c0)
    }

    /// Global rectangle of this rank's C block (the partial result its
    /// Cannon run produces).
    pub fn c_block(&self, c: &RankCoord) -> Rect {
        let (r0, r1) = self.m_range(self.row_part(c));
        let (c0, c1) = self.n_range(self.col_part(c));
        Rect::new(r0, c0, r1 - r0, c1 - c0)
    }

    /// The initially stored slice of the A block: when `A` is replicated
    /// (`pn > pm`, `c > 1`) each of the `c` peer ranks holds a distinct
    /// `1/c` column-slice, completed by allgather (step 5); otherwise the
    /// full block.
    pub fn a_init(&self, c: &RankCoord) -> Rect {
        let blk = self.a_block(c);
        if self.a_replicated && self.c > 1 {
            let (o0, o1) = even_range(blk.cols, self.c, c.cg);
            Rect::new(blk.row0, blk.col0 + o0, blk.rows, o1 - o0)
        } else {
            blk
        }
    }

    /// The initially stored slice of the B block (symmetric to
    /// [`GridContext::a_init`]).
    pub fn b_init(&self, c: &RankCoord) -> Rect {
        let blk = self.b_block(c);
        if !self.a_replicated && self.c > 1 {
            let (o0, o1) = even_range(blk.cols, self.c, c.cg);
            Rect::new(blk.row0, blk.col0 + o0, blk.rows, o1 - o0)
        } else {
            blk
        }
    }

    /// The final C strip this rank owns after the reduce-scatter (step 7):
    /// row-strip `kt` of its C block.
    pub fn c_final(&self, c: &RankCoord) -> Rect {
        let blk = self.c_block(c);
        let (o0, o1) = even_range(blk.rows, self.grid.pk, c.kt);
        Rect::new(blk.row0 + o0, blk.col0, o1 - o0, blk.cols)
    }

    /// World ranks holding slices of the same replicated block as `c` (the
    /// allgather group of step 5): same `(i, j, kt)`, all Cannon groups.
    pub fn replication_group(&self, c: &RankCoord) -> Vec<usize> {
        (0..self.c)
            .map(|cg| self.rank_of(RankCoord { cg, ..*c }))
            .collect()
    }

    /// World ranks holding partial results of the same C block (the
    /// reduce-scatter group of step 7): same `(i, j, cg)`, all k-task
    /// groups.
    pub fn reduce_group(&self, c: &RankCoord) -> Vec<usize> {
        (0..self.grid.pk)
            .map(|kt| self.rank_of(RankCoord { kt, ..*c }))
            .collect()
    }

    /// World ranks of a Cannon group, in `idx = i + j·s` order.
    pub fn cannon_group(&self, kt: usize, cg: usize) -> Vec<usize> {
        (0..self.s * self.s)
            .map(|idx| {
                self.rank_of(RankCoord {
                    i: idx % self.s,
                    j: idx / self.s,
                    cg,
                    kt,
                })
            })
            .collect()
    }

    /// Native input layout of `op(A)` (`m × k`) over all `P` world ranks
    /// (idle ranks own nothing). This is the distribution Algorithm 1
    /// step 4 redistributes into.
    pub fn layout_a(&self) -> Layout {
        self.layout_of(|ctx, coord| ctx.a_init(coord), self.prob.m, self.prob.k)
    }

    /// Native input layout of `op(B)` (`k × n`).
    pub fn layout_b(&self) -> Layout {
        self.layout_of(|ctx, coord| ctx.b_init(coord), self.prob.k, self.prob.n)
    }

    /// Native output layout of `C` (`m × n`) — the distribution step 8
    /// redistributes out of.
    pub fn layout_c(&self) -> Layout {
        self.layout_of(|ctx, coord| ctx.c_final(coord), self.prob.m, self.prob.n)
    }

    fn layout_of(
        &self,
        rect_of: impl Fn(&GridContext, &RankCoord) -> Rect,
        rows: usize,
        cols: usize,
    ) -> Layout {
        let rects = (0..self.prob.p)
            .map(|r| {
                if self.is_active(r) {
                    let coord = self.coord_of(r);
                    let rect = rect_of(self, &coord);
                    if rect.is_empty() {
                        vec![]
                    } else {
                        vec![rect]
                    }
                } else {
                    vec![]
                }
            })
            .collect();
        Layout::from_rects(rows, cols, rects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(m: usize, n: usize, k: usize, p: usize, pm: usize, pn: usize, pk: usize) -> GridContext {
        GridContext::new(Problem::new(m, n, k, p), Grid::new(pm, pn, pk))
    }

    #[test]
    fn coord_rank_round_trip() {
        let g = ctx(64, 64, 64, 24, 4, 2, 3);
        for r in 0..g.active() {
            assert_eq!(g.rank_of(g.coord_of(r)), r);
        }
    }

    #[test]
    fn column_major_contiguity() {
        // Same k-task group and Cannon group => contiguous ranks.
        let g = ctx(64, 64, 64, 24, 4, 2, 3);
        assert_eq!(g.s, 2);
        assert_eq!(g.c, 2);
        for kt in 0..3 {
            for cg in 0..2 {
                let ranks = g.cannon_group(kt, cg);
                for w in ranks.windows(2) {
                    assert_eq!(w[1], w[0] + 1);
                }
            }
        }
    }

    #[test]
    fn example1_geometry() {
        // Paper Example 1: m=32, k=16, n=64, P=8, grid pm=2, pn=4, pk=1.
        let g = ctx(32, 64, 16, 8, 2, 4, 1);
        assert_eq!(g.s, 2);
        assert_eq!(g.c, 2);
        assert!(g.a_replicated);
        // rank 0 = (i=0,j=0,cg=0): C block = rows 0..16, cols 0..16
        let c0 = g.coord_of(0);
        assert_eq!(g.c_block(&c0), Rect::new(0, 0, 16, 16));
        // rank 4 = first rank of Cannon group 1: C cols 32..48
        let c4 = g.coord_of(4);
        assert_eq!(c4.cg, 1);
        assert_eq!(g.c_block(&c4), Rect::new(0, 32, 16, 16));
        // A block of rank 0: rows 0..16, k 0..8; its initial slice is half
        // of that (c = 2), and rank 4 holds the other slice of ITS block.
        assert_eq!(g.a_block(&c0), Rect::new(0, 0, 16, 8));
        assert_eq!(g.a_init(&c0), Rect::new(0, 0, 16, 4));
        assert_eq!(g.a_init(&c4), Rect::new(0, 4, 16, 4));
        // replication group of rank 0 = {0, 4}
        assert_eq!(g.replication_group(&c0), vec![0, 4]);
    }

    #[test]
    fn example2_geometry() {
        // Paper Example 2: m=n=32, k=64, P=16, grid 2x2x4.
        let g = ctx(32, 32, 64, 16, 2, 2, 4);
        assert_eq!((g.s, g.c), (2, 1));
        // k-task group kt computes A(:, kt*16..) x B(kt*16.., :)
        assert_eq!(g.k_outer(0), (0, 16));
        assert_eq!(g.k_outer(3), (48, 64));
        // ranks 0,4,8,12 share C(0..16, 0..16)
        let c0 = g.coord_of(0);
        assert_eq!(g.reduce_group(&c0), vec![0, 4, 8, 12]);
        for kt in 0..4 {
            let c = g.coord_of(kt * 4);
            assert_eq!(g.c_block(&c), Rect::new(0, 0, 16, 16));
            // final strip: row-partitioned into pk=4 strips of 4 rows
            assert_eq!(g.c_final(&c), Rect::new(kt * 4, 0, 4, 16));
        }
    }

    #[test]
    fn example3_idle_rank() {
        let g = ctx(32, 32, 64, 17, 2, 2, 4);
        assert!(g.is_active(15));
        assert!(!g.is_active(16));
        // idle rank owns nothing in every native layout
        assert_eq!(g.layout_a().owned(16), &[] as &[Rect]);
        assert_eq!(g.layout_c().owned(16), &[] as &[Rect]);
    }

    #[test]
    fn native_layouts_tile_exactly() {
        // Layout::from_rects validates disjointness + coverage; exercising
        // it across shapes, both replication directions, and uneven sizes
        // is the strongest geometry test we have.
        let cases = [
            (32, 64, 16, 8, 2, 4, 1),  // paper ex. 1 (A replicated)
            (64, 32, 16, 8, 4, 2, 1),  // mirrored (B replicated)
            (32, 32, 64, 16, 2, 2, 4), // paper ex. 2
            (32, 32, 64, 17, 2, 2, 4), // paper ex. 3 (idle rank)
            (33, 65, 17, 8, 2, 4, 1),  // uneven everything
            (7, 5, 11, 13, 2, 2, 3),   // tiny, idle rank
            (10, 3, 40, 12, 1, 1, 12), // pure 1D-k
            (40, 3, 3, 12, 12, 1, 1),  // pure 1D-m
            (3, 40, 3, 12, 1, 12, 1),  // pure 1D-n
            (13, 17, 19, 24, 6, 2, 2), // c = 3, B replicated
            (17, 13, 19, 24, 2, 6, 2), // c = 3, A replicated
            (2, 2, 2, 30, 2, 2, 2),    // dims smaller than some splits
        ];
        for &(m, n, k, p, pm, pn, pk) in &cases {
            let g = ctx(m, n, k, p, pm, pn, pk);
            g.layout_a().validate();
            g.layout_b().validate();
            g.layout_c().validate();
        }
    }

    #[test]
    fn a_blocks_cover_a_within_ktask_group() {
        // For a fixed kt, the union of a_block over (i, j, cg) covers
        // m × kb with multiplicity c when A is replicated, 1 otherwise.
        let g = ctx(33, 65, 17, 8, 2, 4, 1);
        let mut count = vec![0u32; 33 * 17];
        for r in 0..g.active() {
            let coord = g.coord_of(r);
            let blk = g.a_block(&coord);
            for i in blk.row0..blk.row_end() {
                for j in blk.col0..blk.col_end() {
                    count[i * 17 + j] += 1;
                }
            }
        }
        assert!(count.iter().all(|&v| v == g.c as u32));
    }

    #[test]
    fn replication_groups_partition_blocks() {
        // The c members of a replication group hold disjoint slices whose
        // union is the block.
        let g = ctx(17, 13, 19, 24, 2, 6, 2);
        for r in 0..g.active() {
            let coord = g.coord_of(r);
            let blk = g.a_block(&coord);
            let group = g.replication_group(&coord);
            assert_eq!(group.len(), 3);
            let slices: Vec<Rect> = group.iter().map(|&w| g.a_init(&g.coord_of(w))).collect();
            let area: usize = slices.iter().map(Rect::area).sum();
            assert_eq!(area, blk.area());
            for s in &slices {
                assert!(blk.contains(s) || s.is_empty());
            }
        }
    }

    #[test]
    fn k_inner_ranges_tile_k_outer() {
        let g = ctx(10, 10, 47, 12, 2, 2, 3);
        for kt in 0..3 {
            let (ks, ke) = g.k_outer(kt);
            let mut cur = ks;
            for l in 0..g.s {
                let (a, b) = g.k_inner(kt, l);
                assert_eq!(a, cur);
                cur = b;
            }
            assert_eq!(cur, ke);
        }
    }

    #[test]
    #[should_panic(expected = "violates eq. 7")]
    fn bad_grid_rejected() {
        let _ = ctx(8, 8, 8, 6, 2, 3, 1);
    }

    #[test]
    #[should_panic(expected = "is idle")]
    fn idle_coord_rejected() {
        let g = ctx(32, 32, 64, 17, 2, 2, 4);
        let _ = g.coord_of(16);
    }
}
