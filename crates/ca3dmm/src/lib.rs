//! CA3DMM: Communication-Avoiding 3D Matrix Multiplication.
//!
//! This crate is the paper's primary contribution (Huang & Chow, SC 2022),
//! implemented in full:
//!
//! 1. **Grid selection** (Algorithm 1 step 1) — delegated to the `gridopt`
//!    crate: minimize eq. 4 under eq. 5/7, maximizing utilization (eq. 6).
//! 2. **Process organization** (steps 2–3) — [`GridContext`]: the
//!    `pm × pn × pk` grid in column-major rank order, `pk` k-task groups,
//!    each split into `c = max(pm,pn)/min(pm,pn)` Cannon groups of `s²`
//!    ranks, `s = min(pm,pn)`; surplus ranks stay idle outside
//!    redistribution (paper Example 3).
//! 3. **Redistribution** (steps 4, 8) — via the `layout` crate: user
//!    layouts ⇄ CA3DMM-native layouts, with `op(A)`/`op(B)` transposes
//!    folded into the conversion.
//! 4. **Replication** (step 5) — [`replicate`]: when `c > 1`, each Cannon
//!    block of the replicated operand initially exists as `c` slices across
//!    the Cannon groups of a k-task group and is completed by an allgather.
//! 5. **Cannon's algorithm** (step 6) — [`cannon`]: initial skew +
//!    `s − 1` circular shifts with uneven block sizes supported.
//! 6. **Reduction** (step 7) — [`reduce`]: reduce-scatter of the `pk`
//!    partial results of each C block into row strips.
//!
//! [`exec::Ca3dmm`] orchestrates a real distributed run on the `msgpass`
//! runtime; [`model`] builds the equivalent [`netmodel::Schedule`] and the
//! eq. 11 memory estimate for paper-scale cost evaluation. [`summa2d`]
//! provides the CA3DMM-S variant (§III-E) used as an ablation.
//!
//! # Fidelity note (replication layout)
//!
//! For `c > 1` the normative text of §III-B says each process initially
//! stores a `1/c` sub-block of its (skew-free) Cannon block of the
//! replicated matrix, completed by an allgather over the `c` peer processes
//! holding the same block — which is what we implement, and which yields
//! exactly the eq. 11 memory `c·mk/P` and the eq. 10 latency `log₂(c)`.
//! The prose of Example 1 instead describes whole row-strips of `A` being
//! replicated; that variant would store `s·(c·mk/P)` per rank, conflicting
//! with eq. 11, so we follow the normative text.

pub mod cannon;
pub mod diff;
pub mod exec;
pub mod grid_ctx;
pub mod model;
pub mod msg;
pub mod plan;
pub mod reduce;
pub mod replicate;
pub mod summa2d;

pub use cannon::{cannon, cannon_multi_shift, cannon_overlapped};
pub use diff::{
    diff_doc_vs_model, diff_model_vs_measured, model_phase_label, ModelDiffReport, PhaseDiff,
};
pub use exec::{Ca3dmm, Ca3dmmOptions, MultiplyComms, RunStats};
pub use grid_ctx::{GridContext, RankCoord};
pub use model::{ca3dmm_schedule, memory_elements_per_rank, ModelConfig};
pub use msgpass::collectives::Collectives;
pub use plan::{Dtype, Plan, PlanKey};
