//! Reusable multiplication plans (the `ca3dmm-serve` plan cache's unit).
//!
//! [`Ca3dmm::new`] + the redistribution geometry of Algorithm 1 steps 4/8
//! are pure arithmetic, identical for every request with the same
//! `(m, n, k, p, ops, layouts, options)` — exactly the part a long-running
//! PGEMM service should pay once per shape, not once per request. A
//! [`Plan`] bundles the solved grid ([`Ca3dmm`], including its precomputed
//! sub-communicator membership) with the three [`RedistPlan`]s
//! (user A → native A, user B → native B, native C → user C), and a
//! [`PlanKey`] identifies it in a cache.
//!
//! Determinism: [`Plan::multiply`] delegates to the same step 5–7 code as
//! [`Ca3dmm::multiply`] and to [`layout::redistribute_planned`], which is
//! bitwise identical to the on-the-fly path — so a cached plan produces
//! exactly the bytes a fresh [`Ca3dmm::multiply`] would (property-tested in
//! this module).

use crate::exec::{Ca3dmm, Ca3dmmOptions, MultiplyComms};
use dense::gemm::GemmOp;
use dense::{Mat, Scalar};
use gridopt::Problem;
use layout::{redistribute_planned, Layout, RedistPlan};
use msgpass::{Comm, RankCtx};

/// Element type of a request, as far as plan identity is concerned. The
/// plan's geometry is dtype-independent, but a serving cache keys on it so
/// statistics and memory accounting stay per-dtype.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dtype {
    F32,
    F64,
}

impl Dtype {
    /// Wire name (`"f32"` / `"f64"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
        }
    }

    /// Parses [`Dtype::as_str`] output.
    pub fn parse(s: &str) -> Option<Dtype> {
        match s {
            "f32" => Some(Dtype::F32),
            "f64" => Some(Dtype::F64),
            _ => None,
        }
    }

    /// Bytes per element.
    pub fn size(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::F64 => 8,
        }
    }
}

/// Everything that determines a [`Plan`], flattened into a totally ordered,
/// hashable key. Two requests with equal keys can share one cached plan;
/// layouts enter via [`Layout::fingerprint`] so the key stays small.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanKey {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub p: usize,
    pub dtype: Dtype,
    pub a_trans: bool,
    pub b_trans: bool,
    pub a_layout: u64,
    pub b_layout: u64,
    pub c_layout: u64,
    /// `utilization_floor.to_bits()` — total order without float pitfalls.
    pub floor_bits: u64,
    pub multi_shift_min_k: usize,
    pub overlap: bool,
    pub hier_collectives: bool,
    pub grid_override: Option<(usize, usize, usize)>,
}

impl PlanKey {
    /// Builds the key of the plan [`Plan::build`] would produce for these
    /// arguments. Cheap (three layout fingerprints); cache lookups call
    /// this without constructing anything.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        prob: &Problem,
        opts: &Ca3dmmOptions,
        dtype: Dtype,
        op_a: GemmOp,
        a_layout: &Layout,
        op_b: GemmOp,
        b_layout: &Layout,
        c_layout: &Layout,
    ) -> PlanKey {
        PlanKey {
            m: prob.m,
            n: prob.n,
            k: prob.k,
            p: prob.p,
            dtype,
            a_trans: matches!(op_a, GemmOp::Trans),
            b_trans: matches!(op_b, GemmOp::Trans),
            a_layout: a_layout.fingerprint(),
            b_layout: b_layout.fingerprint(),
            c_layout: c_layout.fingerprint(),
            floor_bits: opts.utilization_floor.to_bits(),
            multi_shift_min_k: opts.multi_shift_min_k,
            overlap: opts.overlap,
            hier_collectives: matches!(opts.collectives, crate::Collectives::Hier),
            grid_override: opts.grid_override.map(|g| (g.pm, g.pn, g.pk)),
        }
    }
}

/// A fully solved multiplication: grid + sub-communicator membership +
/// the three redistribution programs. Build once per shape
/// ([`Plan::build`]), then run any number of multiplies through it —
/// [`Plan::multiply`] for one, [`Plan::multiply_batch`] to amortize the
/// sub-communicator construction over several same-shape requests.
///
/// `Plan` is `Send + Sync` plain data: build it outside
/// [`msgpass::World::run`], share one instance across all rank threads.
pub struct Plan {
    mm: Ca3dmm,
    opts: Ca3dmmOptions,
    dtype: Dtype,
    op_a: GemmOp,
    op_b: GemmOp,
    a_layout: Layout,
    b_layout: Layout,
    c_layout: Layout,
    redist_a: RedistPlan,
    redist_b: RedistPlan,
    redist_c: RedistPlan,
    /// Wall seconds spent in [`Plan::build`] (grid search + geometry +
    /// redistribution programs) — the cost a cache hit saves.
    build_secs: f64,
}

impl Plan {
    /// Solves the grid (unless forced), precomputes the sub-communicator
    /// membership and the three redistribution programs.
    ///
    /// # Panics
    /// On inconsistent shapes: `op_a(a_layout)` must be `m×k`,
    /// `op_b(b_layout)` must be `k×n`, `c_layout` must be `m×n`, and all
    /// three layouts must span exactly `p` ranks.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        prob: Problem,
        opts: &Ca3dmmOptions,
        dtype: Dtype,
        op_a: GemmOp,
        a_layout: &Layout,
        op_b: GemmOp,
        b_layout: &Layout,
        c_layout: &Layout,
    ) -> Plan {
        let t0 = std::time::Instant::now();
        let mm = Ca3dmm::new(prob, opts);
        let gc = mm.grid_context();
        let redist_a = RedistPlan::new(a_layout, &gc.layout_a(), op_a);
        let redist_b = RedistPlan::new(b_layout, &gc.layout_b(), op_b);
        let redist_c = RedistPlan::new(&gc.layout_c(), c_layout, GemmOp::NoTrans);
        assert_eq!(
            c_layout.nranks(),
            prob.p,
            "C layout must span exactly P ranks"
        );
        Plan {
            mm,
            opts: *opts,
            dtype,
            op_a,
            op_b,
            a_layout: a_layout.clone(),
            b_layout: b_layout.clone(),
            c_layout: c_layout.clone(),
            redist_a,
            redist_b,
            redist_c,
            build_secs: t0.elapsed().as_secs_f64(),
        }
    }

    /// The key under which a cache should store this plan.
    pub fn key(&self) -> PlanKey {
        PlanKey::new(
            self.mm.grid_context().problem(),
            &self.opts,
            self.dtype,
            self.op_a,
            &self.a_layout,
            self.op_b,
            &self.b_layout,
            &self.c_layout,
        )
    }

    /// The solved grid and options.
    pub fn ca3dmm(&self) -> &Ca3dmm {
        &self.mm
    }

    /// Stored-A layout (shape `k×m` when `op_a == Trans`).
    pub fn a_layout(&self) -> &Layout {
        &self.a_layout
    }

    /// Stored-B layout.
    pub fn b_layout(&self) -> &Layout {
        &self.b_layout
    }

    /// Output layout (`m×n`).
    pub fn c_layout(&self) -> &Layout {
        &self.c_layout
    }

    /// Request dtype this plan was keyed under.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// The `op` applied to the stored A.
    pub fn op_a(&self) -> GemmOp {
        self.op_a
    }

    /// The `op` applied to the stored B.
    pub fn op_b(&self) -> GemmOp {
        self.op_b
    }

    /// Wall seconds [`Plan::build`] took — what a cache hit amortizes.
    pub fn build_secs(&self) -> f64 {
        self.build_secs
    }

    /// Approximate resident size of the plan's precomputed programs, for
    /// cache budget accounting.
    pub fn approx_bytes(&self) -> usize {
        let redist = |r: &RedistPlan| -> usize {
            (0..r.nranks()).map(|me| r.for_rank(me).send_elems()).sum()
        };
        // each send element corresponds to roughly one program entry;
        // scale by a small constant for the piece structs themselves.
        32 * (redist(&self.redist_a) + redist(&self.redist_b) + redist(&self.redist_c))
    }

    /// Algorithm 1 via the precomputed programs — semantically (and
    /// bitwise) identical to [`Ca3dmm::multiply`] with this plan's
    /// layouts/ops. Collective over `world` (`P` ranks).
    pub fn multiply<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        a_blocks: &[Mat<T>],
        b_blocks: &[Mat<T>],
    ) -> Vec<Mat<T>> {
        let comms = self.mm.comms(ctx, world);
        self.multiply_in(ctx, world, &comms, a_blocks, b_blocks)
    }

    /// Several same-shape multiplies under one set of sub-communicators:
    /// the serving batcher's "one grid launch per shape group". Each item
    /// is `(a_blocks, b_blocks)`; results come back in order.
    #[allow(clippy::type_complexity)]
    pub fn multiply_batch<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        items: &[(Vec<Mat<T>>, Vec<Mat<T>>)],
    ) -> Vec<Vec<Mat<T>>> {
        let comms = self.mm.comms(ctx, world);
        items
            .iter()
            .map(|(a, b)| self.multiply_in(ctx, world, &comms, a, b))
            .collect()
    }

    /// One multiply under caller-provided sub-communicators.
    pub fn multiply_in<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        comms: &MultiplyComms,
        a_blocks: &[Mat<T>],
        b_blocks: &[Mat<T>],
    ) -> Vec<Mat<T>> {
        let prob = self.mm.grid_context().problem();
        assert_eq!(world.size(), prob.p, "world size must equal the plan's P");
        let me = world.rank();

        // Step 4 via the precomputed programs.
        ctx.set_phase("redist");
        let a_local = redistribute_planned(world, ctx, self.redist_a.for_rank(me), a_blocks);
        let b_local = redistribute_planned(world, ctx, self.redist_b.for_rank(me), b_blocks);

        // Steps 5–7.
        let c_strip = self.mm.multiply_native_in(
            ctx,
            world,
            comms,
            a_local.into_iter().next(),
            b_local.into_iter().next(),
        );

        // Step 8.
        ctx.set_phase("redist");
        let c_blocks: Vec<Mat<T>> = c_strip.into_iter().filter(|m| !m.is_empty()).collect();
        redistribute_planned(world, ctx, self.redist_c.for_rank(me), &c_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::part::Rect;
    use dense::random::global_block;
    use msgpass::World;
    use proptest::prelude::*;

    #[allow(clippy::too_many_arguments)]
    fn run_fresh(
        prob: Problem,
        op_a: GemmOp,
        op_b: GemmOp,
        la: &Layout,
        lb: &Layout,
        lc: &Layout,
        a: &Mat<f64>,
        b: &Mat<f64>,
    ) -> Vec<Vec<Mat<f64>>> {
        let mm = Ca3dmm::new(prob, &Ca3dmmOptions::default());
        World::run(prob.p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            mm.multiply(
                ctx,
                &world,
                op_a,
                la,
                &la.extract(a, me),
                op_b,
                lb,
                &lb.extract(b, me),
                lc,
            )
        })
    }

    fn run_planned(
        plan: &Plan,
        p: usize,
        a: &Mat<f64>,
        b: &Mat<f64>,
        reps: usize,
    ) -> Vec<Vec<Vec<Mat<f64>>>> {
        World::run(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let items: Vec<_> = (0..reps)
                .map(|_| {
                    (
                        plan.a_layout().extract(a, me),
                        plan.b_layout().extract(b, me),
                    )
                })
                .collect();
            plan.multiply_batch(ctx, &world, &items)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// The serve cache's core contract: running through a cached
        /// (pre-built, reused) Plan is bitwise identical to a fresh
        /// Ca3dmm::multiply, for every rank and block — including when the
        /// plan is reused back-to-back in one batch.
        #[test]
        fn cached_plan_reuse_is_bitwise_identical(
            m in 1usize..40,
            n in 1usize..40,
            k in 1usize..40,
            p in 1usize..9,
            a_trans in proptest::bool::ANY,
            b_trans in proptest::bool::ANY,
        ) {
            let op_a = if a_trans { GemmOp::Trans } else { GemmOp::NoTrans };
            let op_b = if b_trans { GemmOp::Trans } else { GemmOp::NoTrans };
            let (ar, ac) = match op_a { GemmOp::NoTrans => (m, k), GemmOp::Trans => (k, m) };
            let (br, bc) = match op_b { GemmOp::NoTrans => (k, n), GemmOp::Trans => (n, k) };
            let a = global_block::<f64>(7, Rect::new(0, 0, ar, ac));
            let b = global_block::<f64>(8, Rect::new(0, 0, br, bc));
            let la = Layout::one_d_col(ar, ac, p);
            let lb = Layout::one_d_row(br, bc, p);
            let lc = Layout::two_d_block(m, n, 1, p);
            let prob = Problem::new(m, n, k, p);

            let fresh = run_fresh(prob, op_a, op_b, &la, &lb, &lc, &a, &b);
            let plan = Plan::build(
                prob, &Ca3dmmOptions::default(), Dtype::F64,
                op_a, &la, op_b, &lb, &lc,
            );
            // two batched reps through the same plan: both must equal fresh
            let planned = run_planned(&plan, p, &a, &b, 2);
            for (rank, (f, reps)) in fresh.iter().zip(&planned).enumerate() {
                for (rep, got) in reps.iter().enumerate() {
                    prop_assert_eq!(f.len(), got.len(), "rank {} rep {} block count", rank, rep);
                    for (x, y) in f.iter().zip(got) {
                        prop_assert_eq!(x.as_slice(), y.as_slice(), "rank {} rep {} bytes differ", rank, rep);
                    }
                }
            }
        }
    }

    #[test]
    fn plan_key_separates_shapes_and_opts() {
        let p = 4;
        let la = Layout::one_d_col(8, 6, p);
        let lb = Layout::one_d_col(6, 10, p);
        let lc = Layout::one_d_col(8, 10, p);
        let prob = Problem::new(8, 10, 6, p);
        let opts = Ca3dmmOptions::default();
        let base = PlanKey::new(
            &prob,
            &opts,
            Dtype::F64,
            GemmOp::NoTrans,
            &la,
            GemmOp::NoTrans,
            &lb,
            &lc,
        );
        // same arguments -> same key
        let again = PlanKey::new(
            &prob,
            &opts,
            Dtype::F64,
            GemmOp::NoTrans,
            &la,
            GemmOp::NoTrans,
            &lb,
            &lc,
        );
        assert_eq!(base, again);
        // dtype flips the key
        let f32_key = PlanKey {
            dtype: Dtype::F32,
            ..base
        };
        assert_ne!(base, f32_key);
        // option changes flip the key
        let ms = PlanKey::new(
            &prob,
            &Ca3dmmOptions {
                multi_shift_min_k: 4,
                ..Default::default()
            },
            Dtype::F64,
            GemmOp::NoTrans,
            &la,
            GemmOp::NoTrans,
            &lb,
            &lc,
        );
        assert_ne!(base, ms);
        // a different layout with the same shape flips the key
        let la_row = Layout::one_d_row(8, 6, p);
        let diff_layout = PlanKey::new(
            &prob,
            &opts,
            Dtype::F64,
            GemmOp::NoTrans,
            &la_row,
            GemmOp::NoTrans,
            &lb,
            &lc,
        );
        assert_ne!(base, diff_layout);
    }

    #[test]
    fn plan_key_round_trips_from_plan() {
        let p = 4;
        let la = Layout::one_d_col(8, 6, p);
        let lb = Layout::one_d_col(6, 10, p);
        let lc = Layout::one_d_col(8, 10, p);
        let prob = Problem::new(8, 10, 6, p);
        let opts = Ca3dmmOptions::default();
        let plan = Plan::build(
            prob,
            &opts,
            Dtype::F64,
            GemmOp::NoTrans,
            &la,
            GemmOp::NoTrans,
            &lb,
            &lc,
        );
        let direct = PlanKey::new(
            &prob,
            &opts,
            Dtype::F64,
            GemmOp::NoTrans,
            &la,
            GemmOp::NoTrans,
            &lb,
            &lc,
        );
        assert_eq!(plan.key(), direct);
        assert!(plan.build_secs() >= 0.0);
        assert!(plan.approx_bytes() > 0);
    }
}
