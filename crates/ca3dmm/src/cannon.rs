//! Cannon's algorithm on one `s × s` Cannon group (Algorithm 1 step 6).
//!
//! The classic algorithm (paper reference \[19\]) with two generalizations the
//! paper's setting needs:
//!
//! * **uneven blocks** — matrix dimensions need not divide `s`; blocks carry
//!   their shape with them ([`crate::msg::BlockMsg`]) and the k-sub-ranges
//!   circulate consistently between `A` and `B`, so inner dimensions always
//!   agree;
//! * **degenerate grids** — `s = 1` reduces to one local GEMM, which is how
//!   CA3DMM falls back to 1D algorithms for tall-and-skinny problems.
//!
//! The group communicator indexes ranks in column-major order,
//! `idx = i + j·s`.

use crate::msg::{from_msg, to_msg, SharedBlock};
use dense::gemm::{gemm, gemm_flops, GemmOp};
use dense::{Mat, Scalar};
use msgpass::{Comm, RankCtx, RecvReq};
use std::sync::Arc;

/// Message tag for A-block movement.
const TAG_A: u64 = 101;
/// Message tag for B-block movement.
const TAG_B: u64 = 102;

/// One round's `(A, B)` blocks, shared with any in-flight shift of the same
/// buffers.
type BlockPair<T> = (Arc<Mat<T>>, Arc<Mat<T>>);

/// `C += A·B`, charged to the rank's virtual clock. Every local GEMM inside
/// Cannon goes through here: the flop count is always charged (a no-op in
/// wall-clock runs), and the kernel itself runs unless a virtual-time run
/// asked to skip compute (`SimOptions::execute_compute = false`, the
/// paper-scale configuration where executing ~p·mnk flops on one host would
/// dwarf the simulation).
fn charged_gemm<T: Scalar>(ctx: &RankCtx, a: &Mat<T>, b: &Mat<T>, c_out: &mut Mat<T>) {
    ctx.charge_flops(gemm_flops(a.rows(), b.cols(), a.cols()));
    if ctx.executes_compute() {
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            T::ONE,
            a,
            b,
            T::ONE,
            c_out,
        );
    }
}

/// Runs Cannon's algorithm. `a0`/`b0` are this rank's *natural* (skew-free)
/// blocks — `A(i, j)` and `B(i, j)` in block coordinates; the initial skew
/// is performed here, as in the original algorithm (the paper's latency
/// analysis eq. 10 counts it: `p_s` rounds = 1 skew + `s−1` shifts).
///
/// `c_out` must be the `(rows of A-block) × (cols of B-block)` local result
/// block; the product is accumulated into it.
#[allow(clippy::too_many_arguments)]
pub fn cannon<T: Scalar>(
    ctx: &RankCtx,
    group: &Comm,
    s: usize,
    i: usize,
    j: usize,
    a0: Mat<T>,
    b0: Mat<T>,
    c_out: &mut Mat<T>,
) {
    assert_eq!(group.size(), s * s, "Cannon group must have s^2 ranks");
    assert_eq!(group.rank(), i + j * s, "rank/index mismatch");
    if s == 1 {
        charged_gemm(ctx, &a0, &b0, c_out);
        return;
    }
    let idx = |ii: usize, jj: usize| ii + jj * s;
    let (mut a_cur, mut b_cur) = skew(ctx, group, s, i, j, a0, b0);
    for t in 0..s {
        charged_gemm(ctx, &a_cur, &b_cur, c_out);
        if t + 1 < s {
            // circular shift: A left by one, B up by one
            let a_dst = idx(i, (j + s - 1) % s);
            let a_src = idx(i, (j + 1) % s);
            a_cur = from_msg(group.sendrecv(ctx, a_dst, a_src, TAG_A, to_msg(a_cur)));
            let b_dst = idx((i + s - 1) % s, j);
            let b_src = idx((i + 1) % s, j);
            b_cur = from_msg(group.sendrecv(ctx, b_dst, b_src, TAG_B, to_msg(b_cur)));
        }
    }
}

/// [`cannon`] with the §III-F communication/computation overlap: a
/// double-buffered pipeline on nonblocking point-to-point. Each round
/// posts the irecvs and isends for round *t+1* **before** running the
/// round-*t* GEMM, then waits — on real threads the shift proceeds while
/// the kernel runs, and under virtual time the round is charged
/// `max(compute, shift)` instead of their sum (the model's
/// `CannonConfig::overlap` pricing). The initial skew keeps its blocking
/// path: nothing can overlap it.
///
/// Blocks travel as [`SharedBlock`]s, so the isend of the block the GEMM
/// is reading costs one `Arc` refcount bump, and the received block is
/// adopted without copying. Results are bitwise identical to [`cannon`]:
/// the same blocks meet in the same GEMM order.
#[allow(clippy::too_many_arguments)]
pub fn cannon_overlapped<T: Scalar>(
    ctx: &RankCtx,
    group: &Comm,
    s: usize,
    i: usize,
    j: usize,
    a0: Mat<T>,
    b0: Mat<T>,
    c_out: &mut Mat<T>,
) {
    assert_eq!(group.size(), s * s, "Cannon group must have s^2 ranks");
    assert_eq!(group.rank(), i + j * s, "rank/index mismatch");
    if s == 1 {
        charged_gemm(ctx, &a0, &b0, c_out);
        return;
    }
    let idx = |ii: usize, jj: usize| ii + jj * s;
    let (a_skewed, b_skewed) = skew(ctx, group, s, i, j, a0, b0);
    let (mut a_cur, mut b_cur) = (Arc::new(a_skewed), Arc::new(b_skewed));
    let (a_dst, a_src) = (idx(i, (j + s - 1) % s), idx(i, (j + 1) % s));
    let (b_dst, b_src) = (idx((i + s - 1) % s, j), idx((i + 1) % s, j));
    for t in 0..s {
        if t + 1 < s {
            // Post round-(t+1): receives first, then the sends (which only
            // bump refcounts — the GEMM below reads the same buffers the
            // "NIC" is shipping).
            let ra = group.irecv::<SharedBlock<T>>(ctx, a_src, TAG_A);
            let rb = group.irecv::<SharedBlock<T>>(ctx, b_src, TAG_B);
            group
                .isend(ctx, a_dst, TAG_A, SharedBlock(Arc::clone(&a_cur)))
                .wait();
            group
                .isend(ctx, b_dst, TAG_B, SharedBlock(Arc::clone(&b_cur)))
                .wait();
            charged_gemm(ctx, &a_cur, &b_cur, c_out);
            a_cur = ra.wait(ctx).0;
            b_cur = rb.wait(ctx).0;
        } else {
            charged_gemm(ctx, &a_cur, &b_cur, c_out);
        }
    }
}

/// The initial skew: A(i, j) moves left by `i`, B(i, j) up by `j`.
fn skew<T: Scalar>(
    ctx: &RankCtx,
    group: &Comm,
    s: usize,
    i: usize,
    j: usize,
    a0: Mat<T>,
    b0: Mat<T>,
) -> (Mat<T>, Mat<T>) {
    let idx = |ii: usize, jj: usize| ii + jj * s;
    let a = if i == 0 {
        a0
    } else {
        let dst = idx(i, (j + s - i) % s);
        let src = idx(i, (j + i) % s);
        from_msg(group.sendrecv(ctx, dst, src, TAG_A, to_msg(a0)))
    };
    let b = if j == 0 {
        b0
    } else {
        let dst = idx((i + s - j) % s, j);
        let src = idx((i + j) % s, j);
        from_msg(group.sendrecv(ctx, dst, src, TAG_B, to_msg(b0)))
    };
    (a, b)
}

/// [`cannon`] with the §III-F multi-shift optimization: "to maintain the
/// efficiency of local matrix multiplication, we perform multiple shifts
/// for one local matrix multiplication if A and B blocks … do not have a
/// large enough k-dimension size."
///
/// When a received block's k-extent is below `min_k_per_gemm`, consecutive
/// blocks are accumulated (A blocks concatenated column-wise, B blocks
/// row-wise — the k-sub-ranges circulate in matching order, so the
/// concatenations stay aligned) and multiplied in one larger GEMM.
/// `min_k_per_gemm = 0` disables batching. Communication is unchanged —
/// the same `s` rounds move the same bytes; only the GEMM granularity
/// changes.
///
/// `overlap` selects the §III-F pipeline ([`cannon_overlapped`]-style:
/// post round *t+1*, flush the round-*t* batch, then wait) versus the
/// blocking reference (each shift completes before the flush). Either way
/// blocks circulate as [`SharedBlock`]s — the batch and the send share one
/// allocation via `Arc`, so no round deep-copies a block.
#[allow(clippy::too_many_arguments)]
pub fn cannon_multi_shift<T: Scalar>(
    ctx: &RankCtx,
    group: &Comm,
    s: usize,
    i: usize,
    j: usize,
    a0: Mat<T>,
    b0: Mat<T>,
    c_out: &mut Mat<T>,
    min_k_per_gemm: usize,
    overlap: bool,
) {
    if min_k_per_gemm == 0 {
        return if overlap {
            cannon_overlapped(ctx, group, s, i, j, a0, b0, c_out)
        } else {
            cannon(ctx, group, s, i, j, a0, b0, c_out)
        };
    }
    assert_eq!(group.size(), s * s, "Cannon group must have s^2 ranks");
    assert_eq!(group.rank(), i + j * s, "rank/index mismatch");
    if s == 1 {
        charged_gemm(ctx, &a0, &b0, c_out);
        return;
    }
    let idx = |ii: usize, jj: usize| ii + jj * s;
    let (a_skewed, b_skewed) = skew(ctx, group, s, i, j, a0, b0);
    let (mut a_cur, mut b_cur) = (Arc::new(a_skewed), Arc::new(b_skewed));
    let (a_dst, a_src) = (idx(i, (j + s - 1) % s), idx(i, (j + 1) % s));
    let (b_dst, b_src) = (idx((i + s - 1) % s, j), idx((i + 1) % s, j));

    /// Round-(t+1) blocks between their shift being issued and the round-t
    /// flush: already here (blocking mode) or still in flight (overlap).
    enum Next<T: Scalar> {
        Ready(Arc<Mat<T>>, Arc<Mat<T>>),
        Posted(RecvReq<SharedBlock<T>>, RecvReq<SharedBlock<T>>),
    }

    let mut batch: Vec<BlockPair<T>> = Vec::new();
    let mut batched_k = 0usize;
    for t in 0..s {
        let last = t + 1 == s;
        // Issue the shift first (communication is identical to plain
        // Cannon — batching only changes GEMM granularity); the batch and
        // the outgoing message share the block through its `Arc`.
        let next = if last {
            None
        } else if overlap {
            let ra = group.irecv::<SharedBlock<T>>(ctx, a_src, TAG_A);
            let rb = group.irecv::<SharedBlock<T>>(ctx, b_src, TAG_B);
            group
                .isend(ctx, a_dst, TAG_A, SharedBlock(Arc::clone(&a_cur)))
                .wait();
            group
                .isend(ctx, b_dst, TAG_B, SharedBlock(Arc::clone(&b_cur)))
                .wait();
            Some(Next::Posted(ra, rb))
        } else {
            let a_next = group
                .sendrecv(ctx, a_dst, a_src, TAG_A, SharedBlock(Arc::clone(&a_cur)))
                .0;
            let b_next = group
                .sendrecv(ctx, b_dst, b_src, TAG_B, SharedBlock(Arc::clone(&b_cur)))
                .0;
            Some(Next::Ready(a_next, b_next))
        };
        batched_k += a_cur.cols();
        batch.push((a_cur, b_cur));
        if batched_k >= min_k_per_gemm || last {
            flush_batch(ctx, &mut batch, c_out);
            batched_k = 0;
        }
        match next {
            Some(Next::Ready(a, b)) => {
                a_cur = a;
                b_cur = b;
            }
            Some(Next::Posted(ra, rb)) => {
                a_cur = ra.wait(ctx).0;
                b_cur = rb.wait(ctx).0;
            }
            None => break,
        }
    }
    debug_assert!(batch.is_empty(), "all batched blocks multiplied");
}

/// Multiplies the batched `(A, B)` block pairs into `c_out` with one GEMM
/// (concatenating along k) when there is more than one pair.
fn flush_batch<T: Scalar>(ctx: &RankCtx, batch: &mut Vec<BlockPair<T>>, c_out: &mut Mat<T>) {
    match batch.len() {
        0 => {}
        1 => {
            let (a, b) = &batch[0];
            charged_gemm(ctx, a, b, c_out);
        }
        _ => {
            let rows = batch[0].0.rows();
            let cols = batch[0].1.cols();
            let k_total: usize = batch.iter().map(|(a, _)| a.cols()).sum();
            // Charging the concatenated GEMM equals charging each pair
            // (2·rows·cols·k sums over the k partition), so compute-skipping
            // runs also skip the concatenation buffers.
            ctx.charge_flops(gemm_flops(rows, cols, k_total));
            if ctx.executes_compute() {
                // A blocks concatenate column-wise …
                let mut a_cat = Mat::zeros(rows, k_total);
                // … and B blocks row-wise; their k-sub-ranges arrive in the
                // same circulation order, so offsets line up.
                let mut b_cat = Mat::zeros(k_total, cols);
                let mut off = 0usize;
                for (a, b) in batch.iter() {
                    debug_assert_eq!(a.cols(), b.rows(), "batched pair k mismatch");
                    if !a.is_empty() {
                        a_cat.set_block(dense::Rect::new(0, off, rows, a.cols()), a);
                    }
                    if !b.is_empty() {
                        b_cat.set_block(dense::Rect::new(off, 0, b.rows(), cols), b);
                    }
                    off += a.cols();
                }
                gemm(
                    GemmOp::NoTrans,
                    GemmOp::NoTrans,
                    T::ONE,
                    &a_cat,
                    &b_cat,
                    T::ONE,
                    c_out,
                );
            }
        }
    }
    batch.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gemm::gemm_naive;
    use dense::part::{even_range, Rect};
    use dense::random::global_block;
    use dense::testing::assert_gemm_close;
    use msgpass::World;

    /// Full end-to-end Cannon check on an s×s grid with arbitrary m, n, k.
    fn check_cannon(m: usize, n: usize, k: usize, s: usize) {
        let results = World::run(s * s, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let (i, j) = (me % s, me / s);
            let (r0, r1) = even_range(m, s, i);
            let (c0, c1) = even_range(n, s, j);
            // natural blocks: A(i, j) uses k-part j; B(i, j) uses k-part i
            let (ka0, ka1) = even_range(k, s, j);
            let (kb0, kb1) = even_range(k, s, i);
            let a = global_block::<f64>(1, Rect::new(r0, ka0, r1 - r0, ka1 - ka0));
            let b = global_block::<f64>(2, Rect::new(kb0, c0, kb1 - kb0, c1 - c0));
            let mut c = Mat::zeros(r1 - r0, c1 - c0);
            cannon(ctx, &comm, s, i, j, a, b, &mut c);
            (i, j, c)
        });
        // serial reference
        let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
        let mut c_full = Mat::zeros(m, n);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a_full,
            &b_full,
            0.0,
            &mut c_full,
        );
        for (i, j, c) in results {
            let (r0, r1) = even_range(m, s, i);
            let (c0, c1) = even_range(n, s, j);
            let want = c_full.block(Rect::new(r0, c0, r1 - r0, c1 - c0));
            assert_gemm_close(&c, &want, k, &format!("cannon block ({i},{j})"));
        }
    }

    #[test]
    fn single_process() {
        check_cannon(7, 5, 9, 1);
    }

    #[test]
    fn two_by_two_even() {
        check_cannon(8, 8, 8, 2);
    }

    #[test]
    fn three_by_three_uneven() {
        check_cannon(10, 11, 13, 3);
    }

    #[test]
    fn four_by_four() {
        check_cannon(16, 12, 20, 4);
    }

    #[test]
    fn dimensions_smaller_than_grid() {
        // k=2 over s=3: one k-part is empty
        check_cannon(6, 6, 2, 3);
        // m=1: most row parts empty
        check_cannon(1, 9, 9, 3);
    }

    #[test]
    fn accumulates_into_existing_c() {
        // C starts at ones; after cannon it must be ones + A*B.
        let m = 6;
        let results = World::run(4, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let (i, j) = (me % 2, me / 2);
            let (r0, r1) = even_range(m, 2, i);
            let (c0, c1) = even_range(m, 2, j);
            let (ka0, ka1) = even_range(m, 2, j);
            let (kb0, kb1) = even_range(m, 2, i);
            let a = global_block::<f64>(1, Rect::new(r0, ka0, r1 - r0, ka1 - ka0));
            let b = global_block::<f64>(2, Rect::new(kb0, c0, kb1 - kb0, c1 - c0));
            let mut c = Mat::from_fn(r1 - r0, c1 - c0, |_, _| 1.0);
            cannon(ctx, &comm, 2, i, j, a, b, &mut c);
            (i, j, c)
        });
        let a_full = global_block::<f64>(1, Rect::new(0, 0, m, m));
        let b_full = global_block::<f64>(2, Rect::new(0, 0, m, m));
        let mut c_full = Mat::from_fn(m, m, |_, _| 1.0);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a_full,
            &b_full,
            1.0,
            &mut c_full,
        );
        for (i, j, c) in results {
            let (r0, r1) = even_range(m, 2, i);
            let (c0, c1) = even_range(m, 2, j);
            let want = c_full.block(Rect::new(r0, c0, r1 - r0, c1 - c0));
            assert_gemm_close(&c, &want, m, "accumulate");
        }
    }

    /// Multi-shift batching must give bit-compatible results to plain
    /// Cannon up to summation-order rounding, for every threshold — in
    /// both the blocking and the overlapped pipeline.
    fn check_multi_shift(m: usize, n: usize, k: usize, s: usize, min_k: usize, overlap: bool) {
        let results = World::run(s * s, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let (i, j) = (me % s, me / s);
            let (r0, r1) = even_range(m, s, i);
            let (c0, c1) = even_range(n, s, j);
            let (ka0, ka1) = even_range(k, s, j);
            let (kb0, kb1) = even_range(k, s, i);
            let a = global_block::<f64>(1, Rect::new(r0, ka0, r1 - r0, ka1 - ka0));
            let b = global_block::<f64>(2, Rect::new(kb0, c0, kb1 - kb0, c1 - c0));
            let mut c = Mat::zeros(r1 - r0, c1 - c0);
            cannon_multi_shift(ctx, &comm, s, i, j, a, b, &mut c, min_k, overlap);
            (i, j, c)
        });
        let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
        let mut c_full = Mat::zeros(m, n);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a_full,
            &b_full,
            0.0,
            &mut c_full,
        );
        for (i, j, c) in results {
            let (r0, r1) = even_range(m, s, i);
            let (c0, c1) = even_range(n, s, j);
            let want = c_full.block(Rect::new(r0, c0, r1 - r0, c1 - c0));
            assert_gemm_close(
                &c,
                &want,
                k,
                &format!("multi-shift min_k={min_k} ({i},{j})"),
            );
        }
    }

    #[test]
    fn multi_shift_thresholds() {
        // thin k per block (12/3 = 4): batch 2 blocks (min_k 8), all blocks
        // (min_k 100), or none (min_k 1, flushes every block)
        for min_k in [1usize, 4, 8, 100] {
            check_multi_shift(9, 9, 12, 3, min_k, false);
            check_multi_shift(9, 9, 12, 3, min_k, true);
        }
    }

    #[test]
    fn multi_shift_uneven_blocks() {
        for min_k in [5usize, 64] {
            for overlap in [false, true] {
                check_multi_shift(10, 11, 13, 3, min_k, overlap);
                check_multi_shift(7, 9, 17, 4, min_k, overlap);
            }
        }
    }

    #[test]
    fn multi_shift_traffic_equals_plain_cannon() {
        // Batching must not change the bytes on the wire.
        let s = 3;
        let m = 9;
        let run = |min_k: usize| {
            let (_, report) = World::run_traced(s * s, |ctx| {
                let comm = Comm::world(ctx);
                ctx.set_phase("cannon_shift");
                let me = comm.rank();
                let (i, j) = (me % s, me / s);
                let (r0, r1) = even_range(m, s, i);
                let (c0, c1) = even_range(m, s, j);
                let (ka0, ka1) = even_range(m, s, j);
                let (kb0, kb1) = even_range(m, s, i);
                let a = global_block::<f64>(1, Rect::new(r0, ka0, r1 - r0, ka1 - ka0));
                let b = global_block::<f64>(2, Rect::new(kb0, c0, kb1 - kb0, c1 - c0));
                let mut c = Mat::zeros(r1 - r0, c1 - c0);
                cannon_multi_shift(ctx, &comm, s, i, j, a, b, &mut c, min_k, false);
            });
            report.max_rank_bytes()
        };
        assert_eq!(run(0), run(1000));
    }

    #[test]
    fn shift_traffic_is_s_rounds() {
        // Each rank sends exactly s sendrecv rounds for A and s for B
        // (1 skew + s-1 shifts), except ranks whose skew is a no-op.
        let s = 3;
        let m = 9;
        let (_, report) = World::run_traced(s * s, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("cannon_shift");
            let me = comm.rank();
            let (i, j) = (me % s, me / s);
            let (r0, r1) = even_range(m, s, i);
            let (c0, c1) = even_range(m, s, j);
            let (ka0, ka1) = even_range(m, s, j);
            let (kb0, kb1) = even_range(m, s, i);
            let a = global_block::<f64>(1, Rect::new(r0, ka0, r1 - r0, ka1 - ka0));
            let b = global_block::<f64>(2, Rect::new(kb0, c0, kb1 - kb0, c1 - c0));
            let mut c = Mat::zeros(r1 - r0, c1 - c0);
            cannon(ctx, &comm, s, i, j, a, b, &mut c);
        });
        // rank at (1,1): skew A + skew B + 2 shifts each = 6 messages
        let r11 = 1 + s;
        assert_eq!(report.phase(r11, "cannon_shift").msgs, 6);
        // rank at (0,0): no skew, 2 shifts each = 4 messages
        assert_eq!(report.phase(0, "cannon_shift").msgs, 4);
    }
}
