//! Reduce-scatter of partial C results (Algorithm 1 step 7).
//!
//! The `pk` ranks holding partial results of the same C block reduce-scatter
//! them; rank `kt` keeps row-strip `kt` of the summed block. Row strips are
//! contiguous in row-major storage, so the strip boundaries map directly to
//! the flat `counts` of the reduce-scatter. (The paper allows row or column
//! partitioning here; the artifact's examples show either. We use rows.)

use dense::part::{even_range, split_even};
use dense::{Mat, Scalar};
use msgpass::collectives::{reduce_scatter_mode, Collectives};
use msgpass::{Comm, RankCtx};

/// Reduces `pk` partial C blocks (one per member of `group`, all the same
/// shape) and returns this rank's row strip of the sum. `group` orders
/// members by k-task group index. `mode` picks the reduce-scatter family;
/// the hierarchical one falls back to flat when the group fits one node or
/// no topology is attached.
pub fn reduce_partial_c<T: Scalar>(
    ctx: &RankCtx,
    group: &Comm,
    partial: Mat<T>,
    mode: Collectives,
) -> Mat<T> {
    let pk = group.size();
    if pk == 1 {
        return partial;
    }
    let (rows, cols) = partial.shape();
    let strip_rows = split_even(rows, pk);
    let counts: Vec<usize> = strip_rows.iter().map(|r| r * cols).collect();
    let mine = reduce_scatter_mode(mode, group, ctx, partial.into_vec(), &counts);
    Mat::from_vec(strip_rows[group.rank()], cols, mine)
}

/// The row range (within the block) of the strip member `kt` keeps.
pub fn strip_range(rows: usize, pk: usize, kt: usize) -> (usize, usize) {
    even_range(rows, pk, kt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::part::Rect;
    use dense::random::global_block;
    use msgpass::World;

    #[test]
    fn strips_sum_contributions() {
        let rows = 7;
        let cols = 5;
        let pk = 3;
        // member kt contributes the global block with seed kt
        let results = World::run(pk, |ctx| {
            let comm = Comm::world(ctx);
            let part = global_block::<f64>(comm.rank() as u64, Rect::new(0, 0, rows, cols));
            reduce_partial_c(ctx, &comm, part, Collectives::Flat)
        });
        let mut want = Mat::<f64>::zeros(rows, cols);
        for kt in 0..pk {
            want.add_assign(&global_block::<f64>(kt as u64, Rect::new(0, 0, rows, cols)));
        }
        for (kt, strip) in results.iter().enumerate() {
            let (r0, r1) = strip_range(rows, pk, kt);
            let expect = want.block(Rect::new(r0, 0, r1 - r0, cols));
            assert!(strip.max_abs_diff(&expect) < 1e-12, "strip {kt}");
        }
    }

    #[test]
    fn hier_mode_sums_identically() {
        let rows = 8;
        let cols = 5;
        let pk = 4;
        // Two nodes of two ranks each — the hierarchical path engages.
        let opts = msgpass::RunOptions {
            ranks_per_node: Some(2),
            ..Default::default()
        };
        let (results, _) = World::run_opts(pk, opts, |ctx| {
            let comm = Comm::world(ctx);
            let part = global_block::<f64>(comm.rank() as u64, Rect::new(0, 0, rows, cols));
            reduce_partial_c(ctx, &comm, part, Collectives::Hier)
        });
        let mut want = Mat::<f64>::zeros(rows, cols);
        for kt in 0..pk {
            want.add_assign(&global_block::<f64>(kt as u64, Rect::new(0, 0, rows, cols)));
        }
        for (kt, strip) in results.iter().enumerate() {
            let (r0, r1) = strip_range(rows, pk, kt);
            let expect = want.block(Rect::new(r0, 0, r1 - r0, cols));
            assert!(strip.max_abs_diff(&expect) < 1e-12, "strip {kt}");
        }
    }

    #[test]
    fn single_member_keeps_everything() {
        let results = World::run(1, |ctx| {
            let comm = Comm::world(ctx);
            let part = global_block::<f64>(1, Rect::new(0, 0, 4, 4));
            reduce_partial_c(ctx, &comm, part, Collectives::Flat)
        });
        assert_eq!(results[0].shape(), (4, 4));
    }

    #[test]
    fn more_members_than_rows() {
        // rows < pk: some strips are empty
        let rows = 2;
        let pk = 4;
        let results = World::run(pk, |ctx| {
            let comm = Comm::world(ctx);
            let part = Mat::<f64>::from_fn(rows, 3, |_, _| 1.0);
            reduce_partial_c(ctx, &comm, part, Collectives::Flat)
        });
        assert_eq!(results[0].shape(), (1, 3));
        assert_eq!(results[3].shape(), (0, 3));
        assert!(results[0].as_slice().iter().all(|&v| v == pk as f64));
    }

    #[test]
    fn reduce_volume_is_ring_bound() {
        let rows = 8;
        let cols = 4;
        let pk = 4;
        let (_, report) = World::run_traced(pk, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("reduce_c");
            let part = Mat::<f64>::from_fn(rows, cols, |_, _| 1.0);
            reduce_partial_c(ctx, &comm, part, Collectives::Flat)
        });
        // ring reduce-scatter: each rank sends (pk-1)/pk of the block
        for r in 0..pk {
            assert_eq!(
                report.phase(r, "reduce_c").bytes as usize,
                (pk - 1) * (rows / pk) * cols * 8
            );
        }
    }
}
