//! Message helpers: matrices on the wire.

use dense::{Mat, Scalar};
use msgpass::Payload;
use std::sync::Arc;

/// A matrix block as a message payload. Dimensions travel with the data
/// because Cannon's shifts move blocks of varying shape when the matrix
/// dimensions do not divide evenly.
///
/// Only the element data counts as payload bytes: in MPI the shape would be
/// encoded by the datatype/count arguments, which the paper's volume
/// analysis (and therefore our traffic accounting) does not charge.
#[derive(Clone)]
pub struct BlockMsg<T: Scalar> {
    /// Rows of the block.
    pub rows: usize,
    /// Columns of the block.
    pub cols: usize,
    /// Row-major elements.
    pub data: Vec<T>,
}

impl<T: Scalar> Payload for BlockMsg<T> {
    fn nbytes(&self) -> usize {
        std::mem::size_of_val(self.data.as_slice())
    }
}

/// Wraps a matrix for sending.
pub fn to_msg<T: Scalar>(m: Mat<T>) -> BlockMsg<T> {
    let (rows, cols) = m.shape();
    BlockMsg {
        rows,
        cols,
        data: m.into_vec(),
    }
}

/// Unwraps a received matrix.
pub fn from_msg<T: Scalar>(msg: BlockMsg<T>) -> Mat<T> {
    Mat::from_vec(msg.rows, msg.cols, msg.data)
}

/// An `Arc`-shared matrix block as a message payload — the zero-copy wire
/// format of the Cannon shift pipeline. Sending clones a reference count
/// (so an `isend` can ship a block the local GEMM is still reading), and
/// on this in-process runtime the receiver adopts the sender's allocation
/// outright: blocks circulate around the ring with no element copies and
/// no per-round `Vec` allocations.
///
/// Wire bytes still count the full element data (as [`BlockMsg`] does), so
/// traffic accounting — and therefore the model-vs-measured validation —
/// is unchanged by the zero-copy representation.
pub struct SharedBlock<T: Scalar>(pub Arc<Mat<T>>);

impl<T: Scalar> Payload for SharedBlock<T> {
    fn nbytes(&self) -> usize {
        self.0.rows() * self.0.cols() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let msg = to_msg(m.clone());
        assert_eq!((msg.rows, msg.cols), (3, 4));
        let back = from_msg(msg);
        assert_eq!(back.max_abs_diff(&m), 0.0);
    }

    #[test]
    fn payload_counts_only_elements() {
        let m = Mat::<f64>::zeros(2, 3);
        assert_eq!(to_msg(m).nbytes(), 6 * 8);
        let m = Mat::<f32>::zeros(0, 5);
        assert_eq!(to_msg(m).nbytes(), 0);
    }
}
