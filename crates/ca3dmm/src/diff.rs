//! Model-vs-measured comparison: lines a traced run's per-phase timeline up
//! against the analytic cost model's prediction for the same problem.
//!
//! The `netmodel` evaluator predicts per-label seconds for the maximally
//! loaded rank; a traced `msgpass` run measures per-phase wall seconds on
//! every rank. This module joins the two on phase labels (the runtime's
//! `"cannon_shift"` maps to the model's `"cannon"`), taking the measured
//! critical rank (max over ranks) per phase — the quantity the model
//! predicts. The absolute times will not match between a thread-simulated
//! run and a cluster model; the value of the diff is *structural*: the same
//! phases present, the same phase dominating, byte volumes identical.

use msgpass::{RunReport, RunReportDoc};
use netmodel::CostReport;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Maps a runtime phase label (`RankCtx::set_phase` names) to the model's
/// schedule label.
pub fn model_phase_label(runtime_label: &str) -> &str {
    match runtime_label {
        // The runtime labels Cannon's skew and shifts "cannon_shift"; the
        // schedule IR files the whole Cannon stage under "cannon".
        "cannon_shift" => "cannon",
        // SUMMA's broadcast stage is the model's cannon-equivalent inner
        // stage for the 2D variant.
        "summa_bcast" => "cannon",
        other => other,
    }
}

/// One phase's measured-vs-modeled entry.
#[derive(Clone, Debug)]
pub struct PhaseDiff {
    /// Model-side phase label ("redist", "replicate_ab", "cannon",
    /// "reduce_c", …).
    pub phase: String,
    /// Measured wall seconds on the slowest rank (runtime labels mapped
    /// onto this model label are summed).
    pub measured_s: f64,
    /// The model's predicted seconds for this label.
    pub modeled_s: f64,
    /// Measured bytes sent by the maximally loaded rank in this phase.
    pub measured_bytes: u64,
    /// The model's predicted sent bytes for the maximally loaded rank.
    pub modeled_bytes: f64,
    /// Measured messages sent by the maximally loaded rank in this phase
    /// (0 when the artifact predates the field).
    pub measured_msgs: u64,
    /// The model's predicted message count (the paper's per-phase `L`).
    pub modeled_msgs: f64,
}

impl PhaseDiff {
    /// `measured / modeled` seconds; `NAN` when the model predicts zero.
    pub fn ratio(&self) -> f64 {
        self.measured_s / self.modeled_s
    }

    /// `measured / modeled` bytes; `NAN` when the model predicts zero.
    /// Unlike times (thread simulation vs cluster model), byte volumes are
    /// the quantity the model should get *exactly* right — the validation
    /// tests pin this ratio near 1.
    pub fn bytes_ratio(&self) -> f64 {
        self.measured_bytes as f64 / self.modeled_bytes
    }

    /// `measured / modeled` messages; `NAN` when the model predicts zero.
    /// Like bytes, message counts are deterministic — the tolerance only
    /// absorbs collectives whose implementation (ring) differs from the
    /// model's butterfly count.
    pub fn msgs_ratio(&self) -> f64 {
        self.measured_msgs as f64 / self.modeled_msgs
    }
}

/// The joined comparison for one run.
#[derive(Clone, Debug, Default)]
pub struct ModelDiffReport {
    /// Per-phase entries, sorted by label.
    pub phases: Vec<PhaseDiff>,
    /// Sum of measured critical-rank seconds over phases.
    pub measured_total_s: f64,
    /// The model's total predicted seconds.
    pub modeled_total_s: f64,
}

impl ModelDiffReport {
    /// The phase with the largest measured time.
    pub fn measured_bottleneck(&self) -> Option<&PhaseDiff> {
        self.phases
            .iter()
            .max_by(|a, b| a.measured_s.total_cmp(&b.measured_s))
    }

    /// The phase with the largest modeled time.
    pub fn modeled_bottleneck(&self) -> Option<&PhaseDiff> {
        self.phases
            .iter()
            .max_by(|a, b| a.modeled_s.total_cmp(&b.modeled_s))
    }

    /// True when measurement and model name the same dominant phase — the
    /// structural agreement the validation tests assert.
    pub fn bottlenecks_agree(&self) -> bool {
        match (self.measured_bottleneck(), self.modeled_bottleneck()) {
            (Some(a), Some(b)) => a.phase == b.phase,
            _ => false,
        }
    }

    /// Human-readable table: seconds (structural comparison only) next to
    /// byte volumes (expected to match exactly).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>14} {:>14} {:>8} {:>14} {:>14} {:>8} {:>9} {:>9} {:>8}",
            "phase",
            "measured (s)",
            "modeled (s)",
            "ratio",
            "meas (B)",
            "model (B)",
            "B ratio",
            "meas (L)",
            "model (L)",
            "L ratio"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<16} {:>14.6} {:>14.6} {:>8.2} {:>14} {:>14.0} {:>8.2} {:>9} {:>9.0} {:>8.2}",
                p.phase,
                p.measured_s,
                p.modeled_s,
                p.ratio(),
                p.measured_bytes,
                p.modeled_bytes,
                p.bytes_ratio(),
                p.measured_msgs,
                p.modeled_msgs,
                p.msgs_ratio()
            );
        }
        let meas_bytes: u64 = self.phases.iter().map(|p| p.measured_bytes).sum();
        let model_bytes: f64 = self.phases.iter().map(|p| p.modeled_bytes).sum();
        let meas_msgs: u64 = self.phases.iter().map(|p| p.measured_msgs).sum();
        let model_msgs: f64 = self.phases.iter().map(|p| p.modeled_msgs).sum();
        let _ = writeln!(
            out,
            "{:<16} {:>14.6} {:>14.6} {:>8} {:>14} {:>14.0} {:>8} {:>9} {:>9.0}",
            "total",
            self.measured_total_s,
            self.modeled_total_s,
            "",
            meas_bytes,
            model_bytes,
            "",
            meas_msgs,
            model_msgs
        );
        if let (Some(m), Some(p)) = (self.measured_bottleneck(), self.modeled_bottleneck()) {
            let _ = writeln!(
                out,
                "bottleneck: measured={} modeled={} ({})",
                m.phase,
                p.phase,
                if self.bottlenecks_agree() {
                    "agree"
                } else {
                    "DISAGREE"
                }
            );
        }
        out
    }
}

/// Joins a traced run against a model prediction. Measured seconds come
/// from the run's event timeline when one was recorded, falling back to the
/// traffic report's phase clock for untraced runs.
pub fn diff_model_vs_measured(report: &RunReport, cost: &CostReport) -> ModelDiffReport {
    let use_timeline = !report.timeline.is_empty();
    let runtime_phases: Vec<String> = if use_timeline {
        report.timeline.phases()
    } else {
        report.traffic.phases()
    };

    let mut labels: BTreeSet<String> = cost.by_label.keys().cloned().collect();
    labels.extend(
        runtime_phases
            .iter()
            .map(|p| model_phase_label(p).to_owned()),
    );

    let phases: Vec<PhaseDiff> = labels
        .into_iter()
        .map(|label| {
            let measured_s: f64 = runtime_phases
                .iter()
                .filter(|p| model_phase_label(p) == label)
                .map(|p| {
                    if use_timeline {
                        report.timeline.phase_secs_max(p)
                    } else {
                        report.traffic.phase_secs_max(p)
                    }
                })
                .sum();
            let measured_bytes: u64 = runtime_phases
                .iter()
                .filter(|p| model_phase_label(p) == label)
                .map(|p| report.traffic.phase_bytes_max(p))
                .sum();
            let measured_msgs: u64 = runtime_phases
                .iter()
                .filter(|p| model_phase_label(p) == label)
                .map(|p| report.traffic.phase_msgs_max(p))
                .sum();
            PhaseDiff {
                modeled_s: cost.label_s(&label),
                modeled_bytes: cost.label_bytes(&label),
                modeled_msgs: cost.label_msgs(&label),
                phase: label,
                measured_s,
                measured_bytes,
                measured_msgs,
            }
        })
        .collect();

    let measured_total_s = phases.iter().map(|p| p.measured_s).sum();
    ModelDiffReport {
        phases,
        measured_total_s,
        modeled_total_s: cost.total_s,
    }
}

/// Joins a *parsed* `RunReport` artifact against a model prediction — the
/// offline form of [`diff_model_vs_measured`] used by
/// `ca3dmm-report netdiff`, where the run is long gone and only its JSON
/// survives. Measured seconds are the artifact's per-phase `secs_max`
/// (critical rank) and measured bytes its `max_rank_sent_bytes`.
pub fn diff_doc_vs_model(doc: &RunReportDoc, cost: &CostReport) -> ModelDiffReport {
    let mut labels: BTreeSet<String> = cost.by_label.keys().cloned().collect();
    labels.extend(
        doc.phases
            .iter()
            .map(|r| model_phase_label(&r.phase).to_owned()),
    );

    let phases: Vec<PhaseDiff> = labels
        .into_iter()
        .map(|label| {
            let rows = doc
                .phases
                .iter()
                .filter(|r| model_phase_label(&r.phase) == label);
            let (mut measured_s, mut measured_bytes, mut measured_msgs) = (0.0, 0u64, 0u64);
            for r in rows {
                measured_s += r.secs_max;
                measured_bytes += r.max_rank_sent_bytes;
                measured_msgs += r.max_rank_sent_msgs;
            }
            PhaseDiff {
                modeled_s: cost.label_s(&label),
                modeled_bytes: cost.label_bytes(&label),
                modeled_msgs: cost.label_msgs(&label),
                phase: label,
                measured_s,
                measured_bytes,
                measured_msgs,
            }
        })
        .collect();

    let measured_total_s = phases.iter().map(|p| p.measured_s).sum();
    ModelDiffReport {
        phases,
        measured_total_s,
        modeled_total_s: cost.total_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Ca3dmm, Ca3dmmOptions};
    use crate::model::{ca3dmm_schedule, ModelConfig};
    use dense::part::Rect;
    use dense::random::global_block;
    use dense::Mat;
    use gridopt::{Grid, Problem};
    use msgpass::{Comm, World};
    use netmodel::eval::evaluate;
    use netmodel::Machine;

    #[test]
    fn label_mapping() {
        assert_eq!(model_phase_label("cannon_shift"), "cannon");
        assert_eq!(model_phase_label("redist"), "redist");
        assert_eq!(model_phase_label("replicate_ab"), "replicate_ab");
        assert_eq!(model_phase_label("reduce_c"), "reduce_c");
    }

    #[test]
    fn diff_joins_timeline_and_model() {
        let (m, n, k, p) = (32, 32, 64, 8);
        let grid = Grid::new(2, 2, 2);
        let prob = Problem::new(m, n, k, p);
        let alg = Ca3dmm::new(
            prob,
            &Ca3dmmOptions {
                grid_override: Some(grid),
                ..Default::default()
            },
        );
        let gc = alg.grid_context();
        let (la, lb) = (gc.layout_a(), gc.layout_b());
        let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
        let (_, report) = World::run_traced(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
        });
        let machine = Machine::uniform();
        let placement = machine.pure_mpi();
        let flops_per_rank = placement.flops_per_rank;
        let cfg = ModelConfig {
            placement,
            elem_bytes: 8.0,
            overlap: true,
            include_redist: false,
            collectives: msgpass::collectives::Collectives::Flat,
        };
        let cost = evaluate(
            &machine,
            flops_per_rank,
            &ca3dmm_schedule(&prob, &grid, &cfg),
        );
        let diff = diff_model_vs_measured(&report, &cost);
        assert!(!diff.phases.is_empty());
        // every runtime phase landed under a model label with nonzero time
        for phase in report.timeline.phases() {
            let label = model_phase_label(&phase).to_owned();
            let entry = diff.phases.iter().find(|d| d.phase == label);
            assert!(entry.is_some(), "runtime phase {phase} missing from diff");
            assert!(entry.unwrap().measured_s > 0.0);
        }
        assert!(diff.measured_total_s > 0.0);
        assert!(diff.modeled_total_s > 0.0);
        assert!(diff.render().contains("bottleneck"));
    }

    #[test]
    fn doc_diff_matches_live_diff_on_bytes() {
        let (m, n, k, p) = (32, 32, 64, 8);
        let grid = Grid::new(2, 2, 2);
        let prob = Problem::new(m, n, k, p);
        let alg = Ca3dmm::new(
            prob,
            &Ca3dmmOptions {
                grid_override: Some(grid),
                ..Default::default()
            },
        );
        let gc = alg.grid_context();
        let (la, lb) = (gc.layout_a(), gc.layout_b());
        let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
        let (_, report) = World::run_traced(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
        });
        let machine = Machine::uniform();
        let placement = machine.pure_mpi();
        let flops_per_rank = placement.flops_per_rank;
        let cfg = ModelConfig {
            placement,
            elem_bytes: 8.0,
            overlap: true,
            include_redist: false,
            collectives: msgpass::collectives::Collectives::Flat,
        };
        let cost = evaluate(
            &machine,
            flops_per_rank,
            &ca3dmm_schedule(&prob, &grid, &cfg),
        );

        // Round-trip the run through its JSON artifact…
        let text = report.to_json(alg.report_meta("doc_diff_test")).to_string();
        let doc = msgpass::RunReportDoc::parse(&text).expect("artifact parses");
        assert_eq!(doc.name(), Some("doc_diff_test"));

        // …and the offline diff must agree with the live diff byte-for-byte.
        let live = diff_model_vs_measured(&report, &cost);
        let offline = diff_doc_vs_model(&doc, &cost);
        assert_eq!(live.phases.len(), offline.phases.len());
        for (a, b) in live.phases.iter().zip(offline.phases.iter()) {
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.measured_bytes, b.measured_bytes, "phase {}", a.phase);
            assert_eq!(a.modeled_bytes, b.modeled_bytes);
            assert_eq!(a.measured_msgs, b.measured_msgs, "phase {}", a.phase);
            assert_eq!(a.modeled_msgs, b.modeled_msgs);
        }
        // The model's per-phase byte volumes should track the measured
        // maximally-loaded rank for the traffic-bearing stages.
        for ph in &live.phases {
            if ph.modeled_bytes > 0.0 && ph.measured_bytes > 0 {
                let r = ph.bytes_ratio();
                assert!(
                    r > 0.4 && r < 2.5,
                    "phase {} bytes diverge: measured {} modeled {}",
                    ph.phase,
                    ph.measured_bytes,
                    ph.modeled_bytes
                );
            }
        }
        assert!(offline.render().contains("B ratio"));
        assert!(offline.render().contains("L ratio"));
        // The cannon message tier is exact: 2 messages per skew/shift round.
        let cannon = live
            .phases
            .iter()
            .find(|p| p.phase == "cannon")
            .expect("cannon phase");
        assert_eq!(
            cannon.measured_msgs as f64, cannon.modeled_msgs,
            "cannon L: measured {} modeled {}",
            cannon.measured_msgs, cannon.modeled_msgs
        );
    }
}
