//! Property test: the §III-F overlapped Cannon pipeline is **bitwise**
//! identical to the blocking path.
//!
//! The overlap changes only *when* the shift communication happens relative
//! to the local GEMM — never which blocks meet in which GEMM, nor the
//! summation order inside a flush — so every output element must match to
//! the last bit, not merely to a tolerance. Shapes are drawn uneven on
//! purpose (dimensions that do not divide `s`, k smaller than the grid),
//! and the multi-shift threshold sweeps through "no batching", "some
//! batching", and "one batch for everything".

use ca3dmm::cannon_multi_shift;
use dense::part::{even_range, Rect};
use dense::random::global_block;
use dense::Mat;
use msgpass::{Comm, World};
use proptest::prelude::*;

/// Runs one Cannon group end-to-end and returns every rank's C block as
/// raw element vectors (rank order), for exact comparison.
fn run_cannon(
    m: usize,
    n: usize,
    k: usize,
    s: usize,
    min_k: usize,
    overlap: bool,
) -> Vec<Vec<f64>> {
    World::run(s * s, |ctx| {
        let comm = Comm::world(ctx);
        let me = comm.rank();
        let (i, j) = (me % s, me / s);
        let (r0, r1) = even_range(m, s, i);
        let (c0, c1) = even_range(n, s, j);
        let (ka0, ka1) = even_range(k, s, j);
        let (kb0, kb1) = even_range(k, s, i);
        let a = global_block::<f64>(1, Rect::new(r0, ka0, r1 - r0, ka1 - ka0));
        let b = global_block::<f64>(2, Rect::new(kb0, c0, kb1 - kb0, c1 - c0));
        let mut c = Mat::zeros(r1 - r0, c1 - c0);
        cannon_multi_shift(ctx, &comm, s, i, j, a, b, &mut c, min_k, overlap);
        c.into_vec()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn overlapped_cannon_is_bitwise_identical(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..40,
        s in 2usize..5,
        min_k in 0usize..14,
    ) {
        let blocking = run_cannon(m, n, k, s, min_k, false);
        let overlapped = run_cannon(m, n, k, s, min_k, true);
        prop_assert_eq!(blocking.len(), overlapped.len());
        for (rank, (b, o)) in blocking.iter().zip(&overlapped).enumerate() {
            prop_assert_eq!(b.len(), o.len(), "rank {} shape", rank);
            for (idx, (x, y)) in b.iter().zip(o).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "rank {} element {}: blocking {} vs overlapped {}",
                    rank, idx, x, y
                );
            }
        }
    }
}
