//! The 2.5D algorithm (Solomonik & Demmel \[16\]) as deployed in the Cyclops
//! Tensor Framework (CTF \[24\]).
//!
//! Grid `s × s × c` with `c | s`: `c` replicated layers of an `s × s`
//! Cannon grid. `A` and `B` start on layer 0 (2D block distribution), are
//! broadcast along the layer axis, and each layer runs `s/c` of the `s`
//! Cannon steps starting at offset `l·s/c`; the partial results are
//! reduce-scattered across layers. With `c = 1` this is plain Cannon.
//!
//! The cost model optionally includes CTF's internal layout conversion
//! (CTF redistributes every operand into its cyclic layout before
//! computing) and uses no communication/computation overlap — the two
//! behaviours the paper cites when explaining CTF's weaker Fig. 3 results
//! ("CTF is not fine tuned for matrix multiplication").

use ca3dmm::msg::{from_msg, to_msg};
use ca3dmm::reduce::reduce_partial_c;
use dense::gemm::{gemm, GemmOp};
use dense::part::{even_range, Rect};
use dense::{Mat, Scalar};
use gridopt::Problem;
use layout::Layout;
use msgpass::collectives::bcast;
use msgpass::{Comm, RankCtx};
use netmodel::machine::Placement;
use netmodel::{NetGroup, Phase, Schedule};

/// A configured 2.5D multiplication.
pub struct C25d {
    prob: Problem,
    /// Cannon grid side.
    pub s: usize,
    /// Replication layers (`c | s`).
    pub c: usize,
}

impl C25d {
    /// Chooses `(s, c)` with `c | s` and `s²·c ≤ P`, minimizing the eq.-4
    /// surface proxy (2.5D has no shape-adaptive grid — this mirrors CTF
    /// picking its replication factor for the memory available).
    pub fn new(prob: Problem, sc_override: Option<(usize, usize)>) -> Self {
        if let Some((s, c)) = sc_override {
            assert!(c >= 1 && s >= c && s % c == 0, "need c | s");
            assert!(s * s * c <= prob.p, "grid exceeds P");
            return C25d { prob, s, c };
        }
        let mut best: Option<(u128, usize, usize, usize)> = None; // (surface, -active, s, c)
        for c in 1..=prob.p {
            let mut s = ((prob.p / c) as f64).sqrt().floor() as usize;
            if s == 0 {
                break;
            }
            s -= s % c.min(s); // force c | s (s=0 handled below)
            if s < c || s == 0 {
                if c == 1 {
                    s = 1;
                } else {
                    continue;
                }
            }
            let g = gridopt::Grid::new(s, s, c);
            let surf = g.surface(prob.m, prob.n, prob.k);
            let cand = (surf, usize::MAX - g.active(), s, c);
            if best.is_none() || cand < best.unwrap() {
                best = Some(cand);
            }
        }
        let (_, _, s, c) = best.expect("P >= 1 always admits s = c = 1");
        C25d { prob, s, c }
    }

    /// Active ranks `s²·c`.
    pub fn active(&self) -> usize {
        self.s * self.s * self.c
    }

    /// `world = l·s² + i + j·s`.
    fn coord(&self, world: usize) -> (usize, usize, usize) {
        let s2 = self.s * self.s;
        (world % s2 % self.s, world % s2 / self.s, world / s2)
    }

    /// Initial layout of `A`: 2D blocks on layer 0 only.
    pub fn layout_a(&self) -> Layout {
        self.layer0_layout(
            |t, i, j| {
                let (r0, r1) = even_range(t.prob.m, t.s, i);
                let (k0, k1) = even_range(t.prob.k, t.s, j);
                Rect::new(r0, k0, r1 - r0, k1 - k0)
            },
            self.prob.m,
            self.prob.k,
        )
    }

    /// Initial layout of `B`: 2D blocks on layer 0 only.
    pub fn layout_b(&self) -> Layout {
        self.layer0_layout(
            |t, i, j| {
                let (k0, k1) = even_range(t.prob.k, t.s, i);
                let (c0, c1) = even_range(t.prob.n, t.s, j);
                Rect::new(k0, c0, k1 - k0, c1 - c0)
            },
            self.prob.k,
            self.prob.n,
        )
    }

    /// Output layout: row-strip `l` of C block `(i, j)`.
    pub fn layout_c(&self) -> Layout {
        let rects = (0..self.prob.p)
            .map(|r| {
                if r < self.active() {
                    let (i, j, l) = self.coord(r);
                    let (r0, r1) = even_range(self.prob.m, self.s, i);
                    let (c0, c1) = even_range(self.prob.n, self.s, j);
                    let (o0, o1) = even_range(r1 - r0, self.c, l);
                    let rect = Rect::new(r0 + o0, c0, o1 - o0, c1 - c0);
                    if rect.is_empty() {
                        vec![]
                    } else {
                        vec![rect]
                    }
                } else {
                    vec![]
                }
            })
            .collect();
        Layout::from_rects(self.prob.m, self.prob.n, rects)
    }

    fn layer0_layout(
        &self,
        f: impl Fn(&Self, usize, usize) -> Rect,
        rows: usize,
        cols: usize,
    ) -> Layout {
        let rects = (0..self.prob.p)
            .map(|r| {
                if r < self.s * self.s {
                    let (i, j, _) = self.coord(r);
                    let rect = f(self, i, j);
                    if rect.is_empty() {
                        vec![]
                    } else {
                        vec![rect]
                    }
                } else {
                    vec![]
                }
            })
            .collect();
        Layout::from_rects(rows, cols, rects)
    }

    /// Native-layout multiply. Collective over `world`.
    pub fn multiply_native<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        a_init: Option<Mat<T>>,
        b_init: Option<Mat<T>>,
    ) -> Option<Mat<T>> {
        let (s, c) = (self.s, self.c);
        let s2 = s * s;
        let layer_groups: Vec<Vec<usize>> = (0..s2)
            .map(|idx| (0..c).map(|l| l * s2 + idx).collect())
            .collect();
        let layer_comm = world.subgroup(ctx, &layer_groups);
        let cannon_groups: Vec<Vec<usize>> =
            (0..c).map(|l| (l * s2..(l + 1) * s2).collect()).collect();
        let cannon_comm = world.subgroup(ctx, &cannon_groups);

        if world.rank() >= self.active() {
            return None;
        }
        let (i, j, l) = self.coord(world.rank());
        let (r0, r1) = even_range(self.prob.m, s, i);
        let (c0, c1) = even_range(self.prob.n, s, j);
        let (ka0, ka1) = even_range(self.prob.k, s, j);
        let (kb0, kb1) = even_range(self.prob.k, s, i);

        // Replicate A and B from layer 0 along the layer axis.
        ctx.set_phase("replicate_ab");
        let lc = layer_comm.as_ref().expect("active rank has a layer comm");
        let a_blk = from_msg(bcast(
            lc,
            ctx,
            0,
            (l == 0).then(|| {
                to_msg(
                    a_init
                        .clone()
                        .unwrap_or_else(|| Mat::zeros(r1 - r0, ka1 - ka0)),
                )
            }),
        ));
        let b_blk = from_msg(bcast(
            lc,
            ctx,
            0,
            (l == 0).then(|| {
                to_msg(
                    b_init
                        .clone()
                        .unwrap_or_else(|| Mat::zeros(kb1 - kb0, c1 - c0)),
                )
            }),
        ));

        // Offset skew + s/c Cannon steps on this layer.
        ctx.set_phase("cannon_shift");
        let cc = cannon_comm.as_ref().expect("active rank has a Cannon comm");
        let steps = s / c;
        let off = l * steps;
        let mut c_partial = Mat::zeros(r1 - r0, c1 - c0);
        cannon_offset(ctx, cc, s, i, j, off, steps, a_blk, b_blk, &mut c_partial);

        // Reduce across layers.
        ctx.set_phase("reduce_c");
        Some(reduce_partial_c(
            ctx,
            lc,
            c_partial,
            msgpass::collectives::Collectives::Flat,
        ))
    }

    /// Schedule: layer broadcasts, unoverlapped shifts + GEMM, layer
    /// reduce-scatter, and (optionally) CTF's cyclic-layout conversions.
    pub fn schedule(
        &self,
        placement: &Placement,
        elem_bytes: f64,
        ctf_layout_overhead: bool,
    ) -> Schedule {
        let (s, c) = (self.s, self.c);
        let active = self.active();
        let mb = (self.prob.m as f64 / s as f64).ceil();
        let nb = (self.prob.n as f64 / s as f64).ceil();
        let kbs = (self.prob.k as f64 / s as f64).ceil();
        let rpn = placement.ranks_per_node;
        let _ = active;
        let mut sched = Schedule::new();
        if ctf_layout_overhead {
            // CTF converts every operand into its internal cyclic layout.
            let send = (self.prob.m as f64 * self.prob.k as f64
                + self.prob.k as f64 * self.prob.n as f64)
                / self.prob.p as f64
                * elem_bytes;
            sched.push(
                "redist",
                Phase::Alltoallv {
                    grp: NetGroup::scattered(self.prob.p, rpn),
                    send_bytes: send,
                    peers: self.prob.p.min(4 * s),
                },
            );
        }
        if c > 1 {
            // layer groups stride by a whole layer (s² ranks)
            sched.push(
                "replicate_ab",
                Phase::Bcast {
                    grp: NetGroup::strided(c, s * s, rpn),
                    bytes: (mb * kbs + kbs * nb) * elem_bytes,
                },
            );
        }
        let steps = s / c;
        if s > 1 {
            sched.push(
                "replicate_ab",
                Phase::ShiftRounds {
                    grp: NetGroup::strided(s * s, s.min(rpn.max(1)), rpn),
                    rounds: steps, // offset skew + steps-1 shifts
                    bytes_per_round: (mb * kbs + kbs * nb) * elem_bytes,
                    // the canonical 2.5D shift moves A and B in one
                    // combined exchange per round
                    msgs_per_round: 1,
                },
            );
        }
        sched.push(
            "local_gemm",
            Phase::LocalGemm {
                flops: 2.0 * mb * nb * kbs * steps as f64,
            },
        );
        if c > 1 {
            sched.push(
                "reduce_c",
                Phase::ReduceScatter {
                    custom_impl: false,
                    grp: NetGroup::strided(c, s * s, rpn),
                    total_bytes: mb * nb * elem_bytes,
                },
            );
        }
        if ctf_layout_overhead {
            let send = (self.prob.m as f64 * self.prob.n as f64) / active as f64 * elem_bytes;
            sched.push(
                "redist",
                Phase::Alltoallv {
                    grp: NetGroup::scattered(self.prob.p, rpn),
                    send_bytes: send,
                    peers: self.prob.p.min(4 * s),
                },
            );
        }
        sched
    }
}

/// Cannon with a starting offset: computes the `steps` products
/// `A(i, i+j+off+t)·B(i+j+off+t, j)`, `t = 0..steps`, accumulating into
/// `c_out`. `off = 0, steps = s` is classic Cannon.
#[allow(clippy::too_many_arguments)]
fn cannon_offset<T: Scalar>(
    ctx: &RankCtx,
    group: &Comm,
    s: usize,
    i: usize,
    j: usize,
    off: usize,
    steps: usize,
    a0: Mat<T>,
    b0: Mat<T>,
    c_out: &mut Mat<T>,
) {
    const TAG_A: u64 = 201;
    const TAG_B: u64 = 202;
    if s == 1 {
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            T::ONE,
            &a0,
            &b0,
            T::ONE,
            c_out,
        );
        return;
    }
    let idx = |ii: usize, jj: usize| ii + jj * s;
    // Skew A left by (i + off): rank (i, j) ends up holding A(i, i+j+off).
    let sh_a = (i + off) % s;
    let mut a_cur = if sh_a == 0 {
        a0
    } else {
        let dst = idx(i, (j + s - sh_a) % s);
        let src = idx(i, (j + sh_a) % s);
        from_msg(group.sendrecv(ctx, dst, src, TAG_A, to_msg(a0)))
    };
    let sh_b = (j + off) % s;
    let mut b_cur = if sh_b == 0 {
        b0
    } else {
        let dst = idx((i + s - sh_b) % s, j);
        let src = idx((i + sh_b) % s, j);
        from_msg(group.sendrecv(ctx, dst, src, TAG_B, to_msg(b0)))
    };
    for t in 0..steps {
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            T::ONE,
            &a_cur,
            &b_cur,
            T::ONE,
            c_out,
        );
        if t + 1 < steps {
            let a_dst = idx(i, (j + s - 1) % s);
            let a_src = idx(i, (j + 1) % s);
            a_cur = from_msg(group.sendrecv(ctx, a_dst, a_src, TAG_A, to_msg(a_cur)));
            let b_dst = idx((i + s - 1) % s, j);
            let b_src = idx((i + 1) % s, j);
            b_cur = from_msg(group.sendrecv(ctx, b_dst, b_src, TAG_B, to_msg(b_cur)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gemm::gemm_naive;
    use dense::random::global_block;
    use dense::testing::assert_gemm_close;
    use msgpass::World;

    fn check(m: usize, n: usize, k: usize, p: usize, sc: Option<(usize, usize)>) {
        let alg = C25d::new(Problem::new(m, n, k, p), sc);
        let la = alg.layout_a();
        let lb = alg.layout_b();
        let lc = alg.layout_c();
        la.validate();
        lb.validate();
        lc.validate();
        let a_full = global_block::<f64>(61, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(62, Rect::new(0, 0, k, n));
        let parts = World::run(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            alg.multiply_native(ctx, &world, a, b)
                .into_iter()
                .filter(|m: &Mat<f64>| !m.is_empty())
                .collect::<Vec<_>>()
        });
        let mut c_ref = Mat::zeros(m, n);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a_full,
            &b_full,
            0.0,
            &mut c_ref,
        );
        assert_gemm_close(
            &lc.assemble(&parts),
            &c_ref,
            k,
            &format!("c25d {m}x{n}x{k} p={p} s={} c={}", alg.s, alg.c),
        );
    }

    #[test]
    fn c_equals_1_is_cannon() {
        check(12, 12, 12, 4, Some((2, 1)));
    }

    #[test]
    fn two_layers() {
        check(16, 16, 16, 8, Some((2, 2)));
    }

    #[test]
    fn four_by_four_two_layers() {
        check(16, 20, 24, 32, Some((4, 2)));
    }

    #[test]
    fn four_layers() {
        check(16, 16, 32, 64, Some((4, 4)));
    }

    #[test]
    fn auto_grid_and_idle_ranks() {
        check(18, 18, 18, 11, None); // auto: likely s=3,c=1 with 2 idle
        check(14, 15, 16, 9, None);
    }

    #[test]
    fn uneven_dims_with_layers() {
        check(13, 17, 19, 8, Some((2, 2)));
    }

    #[test]
    fn schedule_structure() {
        let alg = C25d::new(Problem::new(1024, 1024, 1024, 32), Some((4, 2)));
        let s = alg.schedule(&netmodel::Machine::uniform().pure_mpi(), 8.0, true);
        let labels: Vec<&str> = s.items.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels[0], "redist");
        assert!(labels.contains(&"replicate_ab"));
        assert!(labels.contains(&"reduce_c"));
        assert_eq!(*labels.last().unwrap(), "redist");
    }

    #[test]
    fn auto_grid_respects_divisibility() {
        for p in [1usize, 2, 4, 8, 16, 17, 32, 64, 100] {
            let alg = C25d::new(Problem::new(64, 64, 64, p), None);
            assert!(
                alg.s.is_multiple_of(alg.c),
                "c must divide s: s={} c={}",
                alg.s,
                alg.c
            );
            assert!(alg.active() <= p);
        }
    }
}
