//! The original 3D algorithm (Agarwal, Balle, Gustavson, Joshi & Palkar
//! \[15\]).
//!
//! A `q × q × q` cuboidal grid (`q = ⌊P^⅓⌋`, surplus ranks idle). The
//! layer dimension splits k. Per the paper's §III-C: "The original 3D
//! algorithm follows the same procedure [as COSMA], but it uses one
//! broadcast operation to replicate A and one broadcast operation to
//! replicate B." Initially layer `l` block `A(i, l)` lives on rank
//! `(i, j = l, l)`-adjacent owner and is broadcast along the grid row;
//! `B(l, j)` on `(i = l, j, l)`-adjacent owner, broadcast along the
//! column; one GEMM; reduce-scatter along layers.

use ca3dmm::reduce::reduce_partial_c;
use dense::part::{even_range, Rect};
use dense::{gemm, GemmOp, Mat, Scalar};
use gridopt::{cube_grid, Problem};
use layout::Layout;
use msgpass::collectives::bcast_large;
use msgpass::{Comm, RankCtx};
use netmodel::machine::Placement;
use netmodel::{NetGroup, Phase, Schedule};

/// A configured original-3D multiplication.
pub struct Orig3d {
    prob: Problem,
    /// Cube side.
    pub q: usize,
}

impl Orig3d {
    /// Builds the cube grid for `prob.p` ranks.
    pub fn new(prob: Problem) -> Self {
        let q = cube_grid(prob.p).pm;
        Orig3d { prob, q }
    }

    fn active(&self) -> usize {
        self.q * self.q * self.q
    }

    /// `world = l·q² + i + j·q`.
    fn coord(&self, world: usize) -> (usize, usize, usize) {
        let q = self.q;
        (world % (q * q) % q, world % (q * q) / q, world / (q * q))
    }

    /// In-layer owners: `A(i, ·, l)` initially lives on the rank with
    /// `j = l` of layer... — the classic placement puts the single copy of
    /// A and B on a 2D sub-grid; we use `j = A-owner column = l` so each
    /// layer's A data starts on a distinct column, giving a 2D partition
    /// of A over q² ranks.
    pub fn layout_a(&self) -> Layout {
        let q = self.q;
        let rects = (0..self.prob.p)
            .map(|r| {
                if r < self.active() {
                    let (i, j, l) = self.coord(r);
                    if j == l {
                        let (r0, r1) = even_range(self.prob.m, q, i);
                        let (k0, k1) = even_range(self.prob.k, q, l);
                        let rect = Rect::new(r0, k0, r1 - r0, k1 - k0);
                        if rect.is_empty() {
                            vec![]
                        } else {
                            vec![rect]
                        }
                    } else {
                        vec![]
                    }
                } else {
                    vec![]
                }
            })
            .collect();
        Layout::from_rects(self.prob.m, self.prob.k, rects)
    }

    /// `B(·, j, l)` initially on the rank with `i = l`.
    pub fn layout_b(&self) -> Layout {
        let q = self.q;
        let rects = (0..self.prob.p)
            .map(|r| {
                if r < self.active() {
                    let (i, j, l) = self.coord(r);
                    if i == l {
                        let (k0, k1) = even_range(self.prob.k, q, l);
                        let (c0, c1) = even_range(self.prob.n, q, j);
                        let rect = Rect::new(k0, c0, k1 - k0, c1 - c0);
                        if rect.is_empty() {
                            vec![]
                        } else {
                            vec![rect]
                        }
                    } else {
                        vec![]
                    }
                } else {
                    vec![]
                }
            })
            .collect();
        Layout::from_rects(self.prob.k, self.prob.n, rects)
    }

    /// Output: row-strip `l` of C block `(i, j)`.
    pub fn layout_c(&self) -> Layout {
        let q = self.q;
        let rects = (0..self.prob.p)
            .map(|r| {
                if r < self.active() {
                    let (i, j, l) = self.coord(r);
                    let (r0, r1) = even_range(self.prob.m, q, i);
                    let (c0, c1) = even_range(self.prob.n, q, j);
                    let (o0, o1) = even_range(r1 - r0, q, l);
                    let rect = Rect::new(r0 + o0, c0, o1 - o0, c1 - c0);
                    if rect.is_empty() {
                        vec![]
                    } else {
                        vec![rect]
                    }
                } else {
                    vec![]
                }
            })
            .collect();
        Layout::from_rects(self.prob.m, self.prob.n, rects)
    }

    /// Native-layout multiply. Collective over `world`.
    pub fn multiply_native<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        a_init: Option<Mat<T>>,
        b_init: Option<Mat<T>>,
    ) -> Option<Mat<T>> {
        let q = self.q;
        let row_groups: Vec<Vec<usize>> = (0..q)
            .flat_map(|l| (0..q).map(move |i| (0..q).map(|j| l * q * q + i + j * q).collect()))
            .collect();
        let row_comm = world.subgroup(ctx, &row_groups);
        let col_groups: Vec<Vec<usize>> = (0..q)
            .flat_map(|l| (0..q).map(move |j| (0..q).map(|i| l * q * q + i + j * q).collect()))
            .collect();
        let col_comm = world.subgroup(ctx, &col_groups);
        let layer_groups: Vec<Vec<usize>> = (0..q * q)
            .map(|idx| (0..q).map(|l| l * q * q + idx).collect())
            .collect();
        let layer_comm = world.subgroup(ctx, &layer_groups);

        if world.rank() >= self.active() {
            return None;
        }
        let (i, j, l) = self.coord(world.rank());
        let (r0, r1) = even_range(self.prob.m, q, i);
        let (c0, c1) = even_range(self.prob.n, q, j);
        let (k0, k1) = even_range(self.prob.k, q, l);

        ctx.set_phase("replicate_ab");
        // Broadcast A(i, l) from the owner column j = l along the row;
        // every member derives the block shape from the partition
        // arithmetic, so the large-message scatter+allgather broadcast (the
        // one T_broadcast prices) applies.
        let a_full = {
            let mine = (j == l).then(|| {
                a_init
                    .clone()
                    .unwrap_or_else(|| Mat::zeros(r1 - r0, k1 - k0))
                    .into_vec()
            });
            let data = bcast_large(
                row_comm.as_ref().expect("active rank has a row comm"),
                ctx,
                l,
                mine,
                (r1 - r0) * (k1 - k0),
            );
            Mat::from_vec(r1 - r0, k1 - k0, data)
        };
        // Broadcast B(l, j) from the owner row i = l along the column.
        let b_full = {
            let mine = (i == l).then(|| {
                b_init
                    .clone()
                    .unwrap_or_else(|| Mat::zeros(k1 - k0, c1 - c0))
                    .into_vec()
            });
            let data = bcast_large(
                col_comm.as_ref().expect("active rank has a col comm"),
                ctx,
                l,
                mine,
                (k1 - k0) * (c1 - c0),
            );
            Mat::from_vec(k1 - k0, c1 - c0, data)
        };

        ctx.set_phase("local_gemm");
        let mut c_partial = Mat::zeros(r1 - r0, c1 - c0);
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            T::ONE,
            &a_full,
            &b_full,
            T::ZERO,
            &mut c_partial,
        );

        ctx.set_phase("reduce_c");
        Some(reduce_partial_c(
            ctx,
            layer_comm.as_ref().expect("active rank has a layer comm"),
            c_partial,
            msgpass::collectives::Collectives::Flat,
        ))
    }

    /// Schedule: two broadcasts, one GEMM, one reduce-scatter.
    pub fn schedule(&self, placement: &Placement, elem_bytes: f64) -> Schedule {
        let q = self.q;
        let active = self.active();
        let mb = (self.prob.m as f64 / q as f64).ceil();
        let nb = (self.prob.n as f64 / q as f64).ceil();
        let kb = (self.prob.k as f64 / q as f64).ceil();
        let rpn = placement.ranks_per_node;
        let _ = active;
        let mut s = Schedule::new();
        if q > 1 {
            // grid rows stride by q; grid columns are contiguous
            s.push(
                "replicate_ab",
                Phase::Bcast {
                    grp: NetGroup::strided(q, q, rpn),
                    bytes: mb * kb * elem_bytes,
                },
            );
            s.push(
                "replicate_ab",
                Phase::Bcast {
                    grp: NetGroup::contiguous(q, rpn),
                    bytes: kb * nb * elem_bytes,
                },
            );
        }
        s.push(
            "local_gemm",
            Phase::LocalGemm {
                flops: 2.0 * mb * nb * kb,
            },
        );
        if q > 1 {
            s.push(
                "reduce_c",
                Phase::ReduceScatter {
                    custom_impl: false,
                    grp: NetGroup::strided(q, q * q, rpn),
                    total_bytes: mb * nb * elem_bytes,
                },
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gemm::gemm_naive;
    use dense::random::global_block;
    use dense::testing::assert_gemm_close;
    use msgpass::World;

    fn check(m: usize, n: usize, k: usize, p: usize) {
        let alg = Orig3d::new(Problem::new(m, n, k, p));
        let la = alg.layout_a();
        let lb = alg.layout_b();
        let lc = alg.layout_c();
        la.validate();
        lb.validate();
        lc.validate();
        let a_full = global_block::<f64>(51, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(52, Rect::new(0, 0, k, n));
        let parts = World::run(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            alg.multiply_native(ctx, &world, a, b)
                .into_iter()
                .filter(|m: &Mat<f64>| !m.is_empty())
                .collect::<Vec<_>>()
        });
        let mut c_ref = Mat::zeros(m, n);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a_full,
            &b_full,
            0.0,
            &mut c_ref,
        );
        assert_gemm_close(
            &lc.assemble(&parts),
            &c_ref,
            k,
            &format!("orig3d {m}x{n}x{k} p={p}"),
        );
    }

    #[test]
    fn cube_of_8() {
        check(16, 16, 16, 8);
    }

    #[test]
    fn cube_of_27_with_uneven_dims() {
        check(13, 17, 19, 27);
    }

    #[test]
    fn non_cube_p_leaves_idle() {
        check(12, 12, 12, 11); // q = 2, 3 idle
    }

    #[test]
    fn single_rank() {
        check(6, 7, 8, 1);
    }

    #[test]
    fn schedule_is_two_bcasts_gemm_reduce() {
        let alg = Orig3d::new(Problem::new(512, 512, 512, 27));
        let s = alg.schedule(&netmodel::Machine::uniform().pure_mpi(), 8.0);
        let labels: Vec<&str> = s.items.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec!["replicate_ab", "replicate_ab", "local_gemm", "reduce_c"]
        );
    }
}
