//! COSMA as described by the paper's §III-C analysis of its source code.
//!
//! Grid: the unconstrained search (`gridopt::cosma_grid`). Rank order is
//! column-major like CA3DMM: `world = kt·(pm·pn) + i + j·pm`.
//!
//! Each active rank owns subdomain `(i, j, kt)` and needs
//! `A(m_i, kb_kt) · B(kb_kt, n_j)`. `A` ends up replicated `pn` times
//! (every `j` of a row needs the same A block) and `B` replicated `pm`
//! times. Initially each block exists once, sliced across the ranks that
//! will need it; allgathers complete the replication; one local GEMM
//! produces the partial C; a reduce-scatter over the `pk` k-groups
//! finishes, exactly as in CA3DMM.

use ca3dmm::reduce::reduce_partial_c;
use dense::part::{even_range, offsets, split_even, Rect};
use dense::{gemm, GemmOp, Mat, Scalar};
use gridopt::{cosma_grid, Grid, Problem};
use layout::Layout;
use msgpass::collectives::allgatherv;
use msgpass::{Comm, RankCtx};
use netmodel::machine::Placement;
use netmodel::{NetGroup, Phase, Schedule};

/// A configured COSMA-like multiplication.
pub struct CosmaLike {
    prob: Problem,
    grid: Grid,
}

impl CosmaLike {
    /// Chooses the unconstrained grid (or accepts an override) and builds
    /// the geometry.
    pub fn new(prob: Problem, grid_override: Option<Grid>) -> Self {
        let grid = grid_override
            .unwrap_or_else(|| cosma_grid(&prob, gridopt::DEFAULT_UTILIZATION_FLOOR).grid);
        assert!(grid.active() <= prob.p, "grid exceeds P");
        CosmaLike { prob, grid }
    }

    /// The grid in use.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    fn coord(&self, world: usize) -> (usize, usize, usize) {
        let per_kt = self.grid.pm * self.grid.pn;
        (
            world % per_kt % self.grid.pm,
            world % per_kt / self.grid.pm,
            world / per_kt,
        )
    }

    fn k_outer(&self, kt: usize) -> (usize, usize) {
        even_range(self.prob.k, self.grid.pk, kt)
    }

    /// The full A block rank `(i, ·, kt)` needs: `m_i × kb_kt`.
    fn a_block(&self, i: usize, kt: usize) -> Rect {
        let (r0, r1) = even_range(self.prob.m, self.grid.pm, i);
        let (k0, k1) = self.k_outer(kt);
        Rect::new(r0, k0, r1 - r0, k1 - k0)
    }

    /// The full B block rank `(·, j, kt)` needs: `kb_kt × n_j`.
    fn b_block(&self, j: usize, kt: usize) -> Rect {
        let (k0, k1) = self.k_outer(kt);
        let (c0, c1) = even_range(self.prob.n, self.grid.pn, j);
        Rect::new(k0, c0, k1 - k0, c1 - c0)
    }

    /// Native input layout of `A`: rank `(i, j, kt)` initially owns
    /// column-slice `j` of its A block (one copy total; the row-allgather
    /// completes it).
    pub fn layout_a(&self) -> Layout {
        self.layout_of(
            |s, i, j, kt| {
                let blk = s.a_block(i, kt);
                let (o0, o1) = even_range(blk.cols, s.grid.pn, j);
                Rect::new(blk.row0, blk.col0 + o0, blk.rows, o1 - o0)
            },
            self.prob.m,
            self.prob.k,
        )
    }

    /// Native input layout of `B`: row-slice `i` of the B block.
    pub fn layout_b(&self) -> Layout {
        self.layout_of(
            |s, i, j, kt| {
                let blk = s.b_block(j, kt);
                let (o0, o1) = even_range(blk.rows, s.grid.pm, i);
                Rect::new(blk.row0 + o0, blk.col0, o1 - o0, blk.cols)
            },
            self.prob.k,
            self.prob.n,
        )
    }

    /// Native output layout of `C`: row-strip `kt` of block `(m_i, n_j)`.
    pub fn layout_c(&self) -> Layout {
        self.layout_of(
            |s, i, j, kt| {
                let (r0, r1) = even_range(s.prob.m, s.grid.pm, i);
                let (c0, c1) = even_range(s.prob.n, s.grid.pn, j);
                let (o0, o1) = even_range(r1 - r0, s.grid.pk, kt);
                Rect::new(r0 + o0, c0, o1 - o0, c1 - c0)
            },
            self.prob.m,
            self.prob.n,
        )
    }

    fn layout_of(
        &self,
        f: impl Fn(&Self, usize, usize, usize) -> Rect,
        rows: usize,
        cols: usize,
    ) -> Layout {
        let rects = (0..self.prob.p)
            .map(|r| {
                if r < self.grid.active() {
                    let (i, j, kt) = self.coord(r);
                    let rect = f(self, i, j, kt);
                    if rect.is_empty() {
                        vec![]
                    } else {
                        vec![rect]
                    }
                } else {
                    vec![]
                }
            })
            .collect();
        Layout::from_rects(rows, cols, rects)
    }

    /// The full pipeline with user-defined layouts: the paper notes that
    /// "COSMA supports user-defined input and output matrix partitionings
    /// … with an internal matrix redistribution library"; this mirrors
    /// [`ca3dmm::Ca3dmm::multiply`] for the baseline.
    #[allow(clippy::too_many_arguments)]
    pub fn multiply<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        op_a: GemmOp,
        a_layout: &Layout,
        a_blocks: &[Mat<T>],
        op_b: GemmOp,
        b_layout: &Layout,
        b_blocks: &[Mat<T>],
        c_layout: &Layout,
    ) -> Vec<Mat<T>> {
        assert_eq!(world.size(), self.prob.p, "world size must equal P");
        ctx.set_phase("redist");
        let la = self.layout_a();
        let lb = self.layout_b();
        let a_local = layout::redistribute(world, ctx, a_layout, a_blocks, &la, op_a);
        let b_local = layout::redistribute(world, ctx, b_layout, b_blocks, &lb, op_b);
        let c_strip = self.multiply_native(
            ctx,
            world,
            a_local.into_iter().next(),
            b_local.into_iter().next(),
        );
        ctx.set_phase("redist");
        let lc = self.layout_c();
        let c_blocks: Vec<Mat<T>> = c_strip.into_iter().filter(|m| !m.is_empty()).collect();
        layout::redistribute(world, ctx, &lc, &c_blocks, c_layout, GemmOp::NoTrans)
    }

    /// Native-layout multiply (the §III-C procedure). Collective over
    /// `world`; idle ranks pass `None` and get `None`.
    pub fn multiply_native<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        a_init: Option<Mat<T>>,
        b_init: Option<Mat<T>>,
    ) -> Option<Mat<T>> {
        let (pm, pn, pk) = (self.grid.pm, self.grid.pn, self.grid.pk);
        let active = self.grid.active();

        // Row groups (fixed i, kt): allgather A. Column groups: allgather B.
        let row_groups: Vec<Vec<usize>> = (0..pk)
            .flat_map(|kt| {
                (0..pm).map(move |i| (0..pn).map(|j| kt * pm * pn + i + j * pm).collect())
            })
            .collect();
        let row_comm = world.subgroup(ctx, &row_groups);
        let col_groups: Vec<Vec<usize>> = (0..pk)
            .flat_map(|kt| {
                (0..pn).map(move |j| (0..pm).map(|i| kt * pm * pn + i + j * pm).collect())
            })
            .collect();
        let col_comm = world.subgroup(ctx, &col_groups);
        let reduce_groups: Vec<Vec<usize>> = (0..pm * pn)
            .map(|idx| (0..pk).map(|kt| kt * pm * pn + idx).collect())
            .collect();
        let reduce_comm = world.subgroup(ctx, &reduce_groups);

        if world.rank() >= active {
            return None;
        }
        let (i, j, kt) = self.coord(world.rank());

        // Replicate A across the row (allgather of column-slices).
        ctx.set_phase("replicate_ab");
        let a_blk_rect = self.a_block(i, kt);
        let a_widths = split_even(a_blk_rect.cols, pn);
        let a_slice = a_init.unwrap_or_else(|| Mat::zeros(a_blk_rect.rows, a_widths[j]));
        assert_eq!(
            a_slice.shape(),
            (a_blk_rect.rows, a_widths[j]),
            "A slice shape"
        );
        let a_full = gather_col_slices(
            ctx,
            row_comm.as_ref().expect("active rank has a row group"),
            a_slice,
            a_blk_rect.rows,
            &a_widths,
        );

        // Replicate B across the column (allgather of row-slices).
        let b_blk_rect = self.b_block(j, kt);
        let b_heights = split_even(b_blk_rect.rows, pm);
        let b_slice = b_init.unwrap_or_else(|| Mat::zeros(b_heights[i], b_blk_rect.cols));
        assert_eq!(
            b_slice.shape(),
            (b_heights[i], b_blk_rect.cols),
            "B slice shape"
        );
        let b_full = gather_row_slices(
            ctx,
            col_comm.as_ref().expect("active rank has a column group"),
            b_slice,
            b_blk_rect.cols,
            &b_heights,
        );

        // One local GEMM.
        ctx.set_phase("local_gemm");
        let mut c_partial = Mat::zeros(a_blk_rect.rows, b_blk_rect.cols);
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            T::ONE,
            &a_full,
            &b_full,
            T::ZERO,
            &mut c_partial,
        );

        // Reduce the pk partial results.
        ctx.set_phase("reduce_c");
        Some(reduce_partial_c(
            ctx,
            reduce_comm
                .as_ref()
                .expect("active rank has a reduce group"),
            c_partial,
            msgpass::collectives::Collectives::Flat,
        ))
    }

    /// The §III-C schedule: allgather A, allgather B, one GEMM, reduce.
    /// `include_redist` adds the user-layout conversion phases (Fig. 3's
    /// "custom layout" series).
    pub fn schedule(
        &self,
        placement: &Placement,
        elem_bytes: f64,
        include_redist: bool,
    ) -> Schedule {
        let (pm, pn, pk) = (self.grid.pm, self.grid.pn, self.grid.pk);
        let active = self.grid.active();
        let mb = (self.prob.m as f64 / pm as f64).ceil();
        let nb = (self.prob.n as f64 / pn as f64).ceil();
        let kb = (self.prob.k as f64 / pk as f64).ceil();
        let rpn = placement.ranks_per_node;
        let mut s = Schedule::new();
        if include_redist {
            let send = (self.prob.m as f64 * self.prob.k as f64
                + self.prob.k as f64 * self.prob.n as f64)
                / self.prob.p as f64
                * elem_bytes;
            s.push(
                "redist",
                Phase::Alltoallv {
                    grp: NetGroup::scattered(self.prob.p, rpn),
                    send_bytes: send,
                    peers: self.prob.p.min(2 * (pm + pn + pk)),
                },
            );
        }
        if pn > 1 {
            // row groups (fixed i): members stride by pm ranks
            s.push(
                "replicate_ab",
                Phase::Allgather {
                    grp: NetGroup::strided(pn, pm, rpn),
                    total_bytes: mb * kb * elem_bytes,
                },
            );
        }
        if pm > 1 {
            // column groups: contiguous ranks
            s.push(
                "replicate_ab",
                Phase::Allgather {
                    grp: NetGroup::contiguous(pm, rpn),
                    total_bytes: kb * nb * elem_bytes,
                },
            );
        }
        s.push(
            "local_gemm",
            Phase::LocalGemm {
                flops: 2.0 * mb * nb * kb,
            },
        );
        if pk > 1 {
            s.push(
                "reduce_c",
                Phase::ReduceScatter {
                    custom_impl: true,
                    grp: NetGroup::strided(pk, pm * pn, rpn),
                    total_bytes: mb * nb * elem_bytes,
                },
            );
        }
        if include_redist {
            let send = (self.prob.m as f64 * self.prob.n as f64) / active as f64 * elem_bytes;
            s.push(
                "redist",
                Phase::Alltoallv {
                    grp: NetGroup::scattered(self.prob.p, rpn),
                    send_bytes: send,
                    peers: self.prob.p.min(2 * (pm + pn + pk)),
                },
            );
        }
        s
    }

    /// COSMA's memory per rank, elements: the replicated A and B blocks,
    /// the partial C, and the initial slices; COSMA's "unlimited extra
    /// memory" configuration keeps communication buffers for the whole
    /// replicated operands (this is what Table I measures).
    pub fn memory_elements_per_rank(&self) -> f64 {
        let (pm, pn, pk) = (
            self.grid.pm as f64,
            self.grid.pn as f64,
            self.grid.pk as f64,
        );
        let mk = self.prob.m as f64 * self.prob.k as f64;
        let kn = self.prob.k as f64 * self.prob.n as f64;
        let mn = self.prob.m as f64 * self.prob.n as f64;
        // replicated blocks + send/recv buffering (factor 2, as COSMA keeps
        // the pre-replication slices and the gathered blocks alive)
        2.0 * (mk / (pm * pk) + kn / (pn * pk)) + mn / (pm * pn)
    }
}

/// Allgather of column-slices into a full block (slice `g` has width
/// `widths[g]`).
fn gather_col_slices<T: Scalar>(
    ctx: &RankCtx,
    comm: &Comm,
    mine: Mat<T>,
    rows: usize,
    widths: &[usize],
) -> Mat<T> {
    if comm.size() == 1 {
        return mine;
    }
    let counts: Vec<usize> = widths.iter().map(|w| rows * w).collect();
    let data = allgatherv(comm, ctx, mine.into_vec(), &counts);
    let offs = offsets(widths);
    let mut out = Mat::zeros(rows, offs[widths.len()]);
    let mut pos = 0;
    for (g, &w) in widths.iter().enumerate() {
        if w > 0 {
            let slice = Mat::from_vec(rows, w, data[pos..pos + rows * w].to_vec());
            out.set_block(Rect::new(0, offs[g], rows, w), &slice);
        }
        pos += rows * w;
    }
    out
}

/// Allgather of row-slices into a full block — row-major rows are
/// contiguous, so this is a straight concatenation.
fn gather_row_slices<T: Scalar>(
    ctx: &RankCtx,
    comm: &Comm,
    mine: Mat<T>,
    cols: usize,
    heights: &[usize],
) -> Mat<T> {
    if comm.size() == 1 {
        return mine;
    }
    let counts: Vec<usize> = heights.iter().map(|h| h * cols).collect();
    let data = allgatherv(comm, ctx, mine.into_vec(), &counts);
    Mat::from_vec(heights.iter().sum(), cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gemm::gemm_naive;
    use dense::random::global_block;
    use dense::testing::assert_gemm_close;
    use msgpass::World;

    fn check(m: usize, n: usize, k: usize, p: usize, grid: Option<Grid>) {
        let alg = CosmaLike::new(Problem::new(m, n, k, p), grid);
        let la = alg.layout_a();
        let lb = alg.layout_b();
        let lc = alg.layout_c();
        la.validate();
        lb.validate();
        lc.validate();
        let a_full = global_block::<f64>(31, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(32, Rect::new(0, 0, k, n));
        let parts = World::run(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            alg.multiply_native(ctx, &world, a, b)
                .into_iter()
                .filter(|m: &Mat<f64>| !m.is_empty())
                .collect::<Vec<_>>()
        });
        let mut c_ref = Mat::zeros(m, n);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a_full,
            &b_full,
            0.0,
            &mut c_ref,
        );
        assert_gemm_close(
            &lc.assemble(&parts),
            &c_ref,
            k,
            &format!("cosma {m}x{n}x{k} p={p}"),
        );
    }

    #[test]
    fn square_grid() {
        check(16, 16, 16, 8, None);
    }

    #[test]
    fn all_problem_classes() {
        check(6, 6, 240, 12, None); // large-K
        check(240, 6, 6, 12, None); // large-M
        check(48, 48, 4, 12, None); // flat
        check(24, 24, 24, 12, None); // square-ish
    }

    #[test]
    fn forced_grids_and_idle_ranks() {
        check(18, 18, 18, 8, Some(Grid::new(2, 2, 2)));
        check(18, 18, 18, 9, Some(Grid::new(2, 2, 2))); // one idle
        check(15, 14, 13, 6, Some(Grid::new(3, 2, 1))); // non-eq7 grid
        check(15, 14, 13, 6, Some(Grid::new(1, 2, 3)));
    }

    #[test]
    fn uneven_dimensions() {
        check(17, 19, 23, 8, None);
    }

    #[test]
    fn schedule_structure() {
        let alg = CosmaLike::new(Problem::new(1000, 1000, 1000, 64), Some(Grid::new(4, 4, 4)));
        let s = alg.schedule(&netmodel::Machine::uniform().pure_mpi(), 8.0, false);
        let labels: Vec<&str> = s.items.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec!["replicate_ab", "replicate_ab", "local_gemm", "reduce_c"]
        );
        // allgather volumes: A block replicated over pn, B over pm
        assert!(s.sent_bytes() > 0.0);
    }

    #[test]
    fn memory_model_scales_down_with_p() {
        let small = CosmaLike::new(Problem::new(5000, 5000, 5000, 64), None);
        let large = CosmaLike::new(Problem::new(5000, 5000, 5000, 512), None);
        assert!(large.memory_elements_per_rank() < small.memory_elements_per_rank());
    }
}
