//! SUMMA (van de Geijn & Watts \[14\]) — the ScaLAPACK-style 2D baseline.
//!
//! A `pr × pc` grid with 2D-block-distributed A, B, C; the k-dimension is
//! processed in panels, each broadcast along grid rows (A) and columns
//! (B), with C stationary. SUMMA "cannot utilize extra memory to reduce
//! communication costs" (§I) — no replication, no k-parallelism.

use ca3dmm::summa2d::summa;
use dense::gemm::GemmOp;
use dense::part::{even_range, Rect};
use dense::{Mat, Scalar};
use gridopt::{summa_grid, Problem};
use layout::Layout;
use msgpass::{Comm, RankCtx};
use netmodel::machine::Placement;
use netmodel::{NetGroup, Phase, Schedule};

/// A configured SUMMA multiplication.
pub struct SummaPgemm {
    prob: Problem,
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
}

impl SummaPgemm {
    /// Chooses a 2D grid (or accepts one) for the problem.
    pub fn new(prob: Problem, grid_override: Option<(usize, usize)>) -> Self {
        let (pr, pc) = grid_override.unwrap_or_else(|| summa_grid(&prob));
        assert!(pr * pc <= prob.p, "grid exceeds P");
        SummaPgemm { prob, pr, pc }
    }

    fn coord(&self, world: usize) -> (usize, usize) {
        (world % self.pr, world / self.pr)
    }

    /// Native layout of `A`: 2D blocks `m_i × ka_j` (k split `pc` ways).
    pub fn layout_a(&self) -> Layout {
        self.layout_of(
            |s, i, j| {
                let (r0, r1) = even_range(s.prob.m, s.pr, i);
                let (k0, k1) = even_range(s.prob.k, s.pc, j);
                Rect::new(r0, k0, r1 - r0, k1 - k0)
            },
            self.prob.m,
            self.prob.k,
        )
    }

    /// Native layout of `B`: 2D blocks `kb_i × n_j` (k split `pr` ways).
    pub fn layout_b(&self) -> Layout {
        self.layout_of(
            |s, i, j| {
                let (k0, k1) = even_range(s.prob.k, s.pr, i);
                let (c0, c1) = even_range(s.prob.n, s.pc, j);
                Rect::new(k0, c0, k1 - k0, c1 - c0)
            },
            self.prob.k,
            self.prob.n,
        )
    }

    /// Native layout of `C`: 2D blocks `m_i × n_j`.
    pub fn layout_c(&self) -> Layout {
        self.layout_of(
            |s, i, j| {
                let (r0, r1) = even_range(s.prob.m, s.pr, i);
                let (c0, c1) = even_range(s.prob.n, s.pc, j);
                Rect::new(r0, c0, r1 - r0, c1 - c0)
            },
            self.prob.m,
            self.prob.n,
        )
    }

    fn layout_of(
        &self,
        f: impl Fn(&Self, usize, usize) -> Rect,
        rows: usize,
        cols: usize,
    ) -> Layout {
        let rects = (0..self.prob.p)
            .map(|r| {
                if r < self.pr * self.pc {
                    let (i, j) = self.coord(r);
                    let rect = f(self, i, j);
                    if rect.is_empty() {
                        vec![]
                    } else {
                        vec![rect]
                    }
                } else {
                    vec![]
                }
            })
            .collect();
        Layout::from_rects(rows, cols, rects)
    }

    /// The full pipeline with user-defined layouts (ScaLAPACK's `p?gemm`
    /// accepts arbitrary block-cyclic distributions; the conversion happens
    /// here explicitly).
    #[allow(clippy::too_many_arguments)]
    pub fn multiply<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        op_a: GemmOp,
        a_layout: &Layout,
        a_blocks: &[Mat<T>],
        op_b: GemmOp,
        b_layout: &Layout,
        b_blocks: &[Mat<T>],
        c_layout: &Layout,
    ) -> Vec<Mat<T>> {
        assert_eq!(world.size(), self.prob.p, "world size must equal P");
        ctx.set_phase("redist");
        let la = self.layout_a();
        let lb = self.layout_b();
        let a_local = layout::redistribute(world, ctx, a_layout, a_blocks, &la, op_a);
        let b_local = layout::redistribute(world, ctx, b_layout, b_blocks, &lb, op_b);
        let c_local = self.multiply_native(
            ctx,
            world,
            a_local.into_iter().next(),
            b_local.into_iter().next(),
        );
        ctx.set_phase("redist");
        let lc = self.layout_c();
        let c_blocks: Vec<Mat<T>> = c_local.into_iter().filter(|m| !m.is_empty()).collect();
        layout::redistribute(world, ctx, &lc, &c_blocks, c_layout, GemmOp::NoTrans)
    }

    /// Native-layout multiply. Collective over `world`; ranks beyond the
    /// grid pass `None`.
    pub fn multiply_native<T: Scalar>(
        &self,
        ctx: &RankCtx,
        world: &Comm,
        a_init: Option<Mat<T>>,
        b_init: Option<Mat<T>>,
    ) -> Option<Mat<T>> {
        let (pr, pc) = (self.pr, self.pc);
        let row_groups: Vec<Vec<usize>> = (0..pr)
            .map(|i| (0..pc).map(|j| i + j * pr).collect())
            .collect();
        let row_comm = world.subgroup(ctx, &row_groups);
        let col_groups: Vec<Vec<usize>> = (0..pc)
            .map(|j| (0..pr).map(|i| i + j * pr).collect())
            .collect();
        let col_comm = world.subgroup(ctx, &col_groups);
        if world.rank() >= pr * pc {
            return None;
        }
        let (i, j) = self.coord(world.rank());
        let (r0, r1) = even_range(self.prob.m, pr, i);
        let (c0, c1) = even_range(self.prob.n, pc, j);
        let (ka0, ka1) = even_range(self.prob.k, pc, j);
        let (kb0, kb1) = even_range(self.prob.k, pr, i);
        let a = a_init.unwrap_or_else(|| Mat::zeros(r1 - r0, ka1 - ka0));
        let b = b_init.unwrap_or_else(|| Mat::zeros(kb1 - kb0, c1 - c0));
        assert_eq!(a.shape(), (r1 - r0, ka1 - ka0), "A block shape");
        assert_eq!(b.shape(), (kb1 - kb0, c1 - c0), "B block shape");

        ctx.set_phase("summa_bcast");
        let mut c_out = Mat::zeros(r1 - r0, c1 - c0);
        summa(
            ctx,
            row_comm.as_ref().expect("active rank has a row comm"),
            col_comm.as_ref().expect("active rank has a col comm"),
            self.prob.k,
            &a,
            &b,
            &mut c_out,
        );
        Some(c_out)
    }

    /// The SUMMA schedule: one A-panel broadcast along the row and one
    /// B-panel broadcast along the column per panel round, GEMM after each
    /// (§III-E analyses exactly this pattern).
    pub fn schedule(&self, placement: &Placement, elem_bytes: f64) -> Schedule {
        let (pr, pc) = (self.pr, self.pc);
        let active = pr * pc;
        let mb = (self.prob.m as f64 / pr as f64).ceil();
        let nb = (self.prob.n as f64 / pc as f64).ceil();
        // Fine panels: the refinement of the pr-way and pc-way k-splits.
        let rounds = if pr == 1 && pc == 1 {
            0
        } else {
            (pr + pc - 1).min(self.prob.k)
        };
        let kpanel = self.prob.k as f64 / (rounds.max(1)) as f64;
        let rpn = placement.ranks_per_node;
        // column-major rank order: grid columns are contiguous, grid rows
        // stride by pr
        let grp_row = NetGroup::strided(pc, pr, rpn);
        let grp_col = NetGroup::contiguous(pr, rpn);
        let _ = active;
        let mut s = Schedule::new();
        for _ in 0..rounds {
            if pc > 1 {
                s.push(
                    "summa_bcast",
                    Phase::Bcast {
                        grp: grp_row,
                        bytes: mb * kpanel * elem_bytes,
                    },
                );
            }
            if pr > 1 {
                s.push(
                    "summa_bcast",
                    Phase::Bcast {
                        grp: grp_col,
                        bytes: kpanel * nb * elem_bytes,
                    },
                );
            }
        }
        s.push(
            "local_gemm",
            Phase::LocalGemm {
                flops: 2.0 * mb * nb * self.prob.k as f64,
            },
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gemm::{gemm_naive, GemmOp};
    use dense::random::global_block;
    use dense::testing::assert_gemm_close;
    use msgpass::World;

    fn check(m: usize, n: usize, k: usize, p: usize, grid: Option<(usize, usize)>) {
        let alg = SummaPgemm::new(Problem::new(m, n, k, p), grid);
        let la = alg.layout_a();
        let lb = alg.layout_b();
        let lc = alg.layout_c();
        la.validate();
        lb.validate();
        lc.validate();
        let a_full = global_block::<f64>(41, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(42, Rect::new(0, 0, k, n));
        let parts = World::run(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            alg.multiply_native(ctx, &world, a, b)
                .into_iter()
                .filter(|m: &Mat<f64>| !m.is_empty())
                .collect::<Vec<_>>()
        });
        let mut c_ref = Mat::zeros(m, n);
        gemm_naive(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &a_full,
            &b_full,
            0.0,
            &mut c_ref,
        );
        assert_gemm_close(
            &lc.assemble(&parts),
            &c_ref,
            k,
            &format!("summa {m}x{n}x{k} p={p}"),
        );
    }

    #[test]
    fn square() {
        check(16, 16, 16, 16, None);
    }

    #[test]
    fn rectangular_grids() {
        check(20, 12, 16, 8, Some((4, 2)));
        check(12, 20, 16, 8, Some((2, 4)));
        check(9, 9, 9, 6, Some((2, 3)));
    }

    #[test]
    fn uneven_and_idle() {
        check(17, 13, 11, 7, Some((2, 3))); // one idle rank
        check(5, 5, 40, 4, None);
    }

    #[test]
    fn single_rank() {
        check(8, 8, 8, 1, None);
    }

    #[test]
    fn schedule_has_bcast_rounds() {
        let alg = SummaPgemm::new(Problem::new(1024, 1024, 1024, 16), Some((4, 4)));
        let s = alg.schedule(&netmodel::Machine::uniform().pure_mpi(), 8.0);
        let bcasts = s.items.iter().filter(|(l, _)| l == "summa_bcast").count();
        assert_eq!(bcasts, 2 * 7); // (pr + pc - 1) rounds, 2 bcasts each
    }
}
