//! Baseline PGEMM algorithms the paper compares against.
//!
//! Every baseline provides the same three things the `ca3dmm` crate
//! provides for CA3DMM: a real distributed executor on the `msgpass`
//! runtime (validated against the serial reference), native layouts, and a
//! [`netmodel::Schedule`] builder for paper-scale cost evaluation.
//!
//! * [`cosma::CosmaLike`] — COSMA *as its source code actually behaves*,
//!   which the paper reverse-describes in §III-C: an unconstrained grid
//!   search, then "replicate A and/or B in one or multiple steps using
//!   all-gather operations, then calculate one local matrix multiplication
//!   …, and finally reduce the partial C results".
//! * [`summa::SummaPgemm`] — the ScaLAPACK-style 2D SUMMA baseline
//!   (stationary C, panel broadcasts).
//! * [`orig3d::Orig3d`] — the original 3D algorithm (Agarwal et al. \[15\]):
//!   cube grid, broadcast replication, reduction along the third axis.
//! * [`c25d::C25d`] — the 2.5D algorithm \[16\] as deployed in CTF \[24\]:
//!   `c` replicated layers, per-layer Cannon on a k-slice, inter-layer
//!   reduction; its cost model includes the internal cyclic-layout
//!   conversion CTF always performs (the paper's explanation for CTF's
//!   weaker results in §IV-A).

pub mod c25d;
pub mod cosma;
pub mod orig3d;
pub mod summa;

pub use c25d::C25d;
pub use cosma::CosmaLike;
pub use orig3d::Orig3d;
pub use summa::SummaPgemm;
