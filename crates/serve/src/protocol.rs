//! The NDJSON request/response protocol of `ca3dmm-serve`.
//!
//! One JSON object per line in, one per line out (`jsonlite`'s compact
//! writer never emits newlines, so every response is NDJSON-safe). Three
//! commands:
//!
//! ```json
//! {"cmd":"multiply","id":"r1","m":64,"n":64,"k":64,"dtype":"f64",
//!  "seed_a":1,"seed_b":2,"op_a":"n","op_b":"n",
//!  "layout_a":"col","layout_b":"col","layout_c":"col","report":false}
//! {"cmd":"stats","id":"s1"}
//! {"cmd":"shutdown","id":"x1"}
//! ```
//!
//! Matrices never cross the wire: inputs are generated deterministically
//! from `(seed, rect)` on the owning rank ([`dense::random::global_block`],
//! the same generator every figure in this repo uses), and the response
//! carries an order-fixed checksum of `C` instead of its elements. Equal
//! requests therefore have equal checksums — which is how the CI smoke test
//! proves a cache-hit multiply is bitwise identical to the cache-miss one.
//!
//! Parsing is total: any malformed, unknown, or oversized request maps to a
//! structured [`ProtoError`] response — never a panic, because a panic on
//! the request path would take down the daemon's shared world.

use ca3dmm::{Ca3dmmOptions, Collectives, Dtype, PlanKey};
use dense::gemm::GemmOp;
use gridopt::{Grid, Problem};
use jsonlite::Json;
use layout::Layout;

/// Request-size limits enforced before anything is allocated.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum single dimension (`m`, `n`, or `k`).
    pub max_dim: usize,
    /// Maximum total elements across `A`, `B`, and `C`
    /// (`m·k + k·n + m·n`).
    pub max_total_elems: u128,
    /// Maximum request line length in bytes.
    pub max_line_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_dim: 1 << 20,
            // 16 Mi elements ≈ 128 MiB of f64 across the three operands.
            max_total_elems: 1 << 24,
            max_line_bytes: 64 * 1024,
        }
    }
}

/// A structured protocol failure: everything the daemon refuses to execute
/// surfaces as one of these, serialized into the error response.
#[derive(Clone, Debug)]
pub struct ProtoError {
    /// Stable machine-readable code: `bad_json`, `bad_request`,
    /// `too_large`, `draining`, or `internal`.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// A `bad_request` error.
    pub fn bad(message: impl Into<String>) -> ProtoError {
        ProtoError {
            code: "bad_request",
            message: message.into(),
        }
    }

    /// The error response line for this failure (`ok:false`).
    pub fn to_response(&self, id: Option<&str>) -> Json {
        Json::obj([
            ("id", id.map_or(Json::Null, |s| Json::Str(s.to_owned()))),
            ("ok", Json::Bool(false)),
            (
                "error",
                Json::obj([
                    ("code", Json::Str(self.code.to_owned())),
                    ("message", Json::Str(self.message.clone())),
                ]),
            ),
        ])
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// How a request distributes one operand over the daemon's `p` ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutSpec {
    /// `"col"` — 1D column blocks.
    Col,
    /// `"row"` — 1D row blocks.
    Row,
    /// `"block:RxC"` — 2D blocks over an `R × C` rank grid (`R·C = p`).
    Block(usize, usize),
    /// `"cyclic:RxC:BRxBC"` — ScaLAPACK block-cyclic tiles.
    Cyclic(usize, usize, usize, usize),
}

impl LayoutSpec {
    /// Parses the wire form.
    pub fn parse(s: &str) -> Result<LayoutSpec, ProtoError> {
        let dims = |part: &str| -> Result<(usize, usize), ProtoError> {
            let (a, b) = part
                .split_once('x')
                .ok_or_else(|| ProtoError::bad(format!("expected RxC in layout, got {part:?}")))?;
            let a = a
                .parse::<usize>()
                .map_err(|_| ProtoError::bad(format!("bad layout dimension {a:?}")))?;
            let b = b
                .parse::<usize>()
                .map_err(|_| ProtoError::bad(format!("bad layout dimension {b:?}")))?;
            if a == 0 || b == 0 {
                return Err(ProtoError::bad("layout dimensions must be positive"));
            }
            Ok((a, b))
        };
        match s {
            "col" => Ok(LayoutSpec::Col),
            "row" => Ok(LayoutSpec::Row),
            _ => {
                if let Some(rest) = s.strip_prefix("block:") {
                    let (r, c) = dims(rest)?;
                    Ok(LayoutSpec::Block(r, c))
                } else if let Some(rest) = s.strip_prefix("cyclic:") {
                    let (grid, tile) = rest
                        .split_once(':')
                        .ok_or_else(|| ProtoError::bad("cyclic layout needs cyclic:RxC:BRxBC"))?;
                    let (r, c) = dims(grid)?;
                    let (br, bc) = dims(tile)?;
                    Ok(LayoutSpec::Cyclic(r, c, br, bc))
                } else {
                    Err(ProtoError::bad(format!(
                        "unknown layout {s:?} (want col, row, block:RxC, cyclic:RxC:BRxBC)"
                    )))
                }
            }
        }
    }

    /// Materializes the layout for a `rows × cols` matrix over `p` ranks.
    pub fn build(&self, rows: usize, cols: usize, p: usize) -> Result<Layout, ProtoError> {
        match *self {
            LayoutSpec::Col => Ok(Layout::one_d_col(rows, cols, p)),
            LayoutSpec::Row => Ok(Layout::one_d_row(rows, cols, p)),
            LayoutSpec::Block(r, c) => {
                if r * c != p {
                    return Err(ProtoError::bad(format!(
                        "block layout grid {r}x{c} must cover exactly p={p} ranks"
                    )));
                }
                Ok(Layout::two_d_block(rows, cols, r, c))
            }
            LayoutSpec::Cyclic(r, c, br, bc) => {
                if r * c != p {
                    return Err(ProtoError::bad(format!(
                        "cyclic layout grid {r}x{c} must cover exactly p={p} ranks"
                    )));
                }
                Ok(Layout::block_cyclic(rows, cols, r, c, br, bc))
            }
        }
    }
}

/// A validated multiply request, with its layouts materialized and its
/// [`PlanKey`] computed — everything the scheduler needs, resolved once on
/// the transport thread so nothing on the execution path can fail parsing.
#[derive(Clone, Debug)]
pub struct MultiplyRequest {
    /// Caller's correlation id, echoed in the response.
    pub id: String,
    /// The problem (`p` is the daemon's world size).
    pub prob: Problem,
    pub dtype: Dtype,
    pub op_a: GemmOp,
    pub op_b: GemmOp,
    /// Deterministic input seeds (`A = global_block(seed_a, ·)`, …).
    pub seed_a: u64,
    pub seed_b: u64,
    /// Stored-operand layouts (already shaped for the ops).
    pub a_layout: Layout,
    pub b_layout: Layout,
    pub c_layout: Layout,
    /// Algorithm options (grid override, multi-shift, overlap, …).
    pub opts: Ca3dmmOptions,
    /// Emit a schema-v3 RunReport for this request (runs unbatched and
    /// traced).
    pub report: bool,
    /// Per-request kernel-thread override (else the scheduler's budget).
    pub kernel_threads: Option<usize>,
    /// The plan-cache key.
    pub key: PlanKey,
}

impl MultiplyRequest {
    /// Shape label used for per-shape latency stats: `"MxNxK/dtype"`.
    pub fn shape_label(&self) -> String {
        format!(
            "{}x{}x{}/{}",
            self.prob.m,
            self.prob.n,
            self.prob.k,
            self.dtype.as_str()
        )
    }
}

/// One parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    Multiply(Box<MultiplyRequest>),
    Stats { id: String },
    Shutdown { id: String },
}

fn get_str<'j>(obj: &'j Json, key: &str) -> Option<&'j str> {
    obj.get(key).and_then(Json::as_str)
}

/// A JSON number that must be a non-negative integer `<= max`.
fn get_uint(obj: &Json, key: &str, max: u64) -> Result<Option<u64>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let f = v
                .as_f64()
                .ok_or_else(|| ProtoError::bad(format!("{key} must be a number")))?;
            if !f.is_finite() || f < 0.0 || f.fract() != 0.0 {
                return Err(ProtoError::bad(format!(
                    "{key} must be a non-negative integer"
                )));
            }
            if f > max as f64 {
                return Err(ProtoError {
                    code: "too_large",
                    message: format!("{key} = {f} exceeds the limit {max}"),
                });
            }
            Ok(Some(f as u64))
        }
    }
}

fn get_bool(obj: &Json, key: &str, default: bool) -> Result<bool, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ProtoError::bad(format!("{key} must be a boolean"))),
    }
}

fn parse_op(obj: &Json, key: &str) -> Result<GemmOp, ProtoError> {
    match get_str(obj, key) {
        None => Ok(GemmOp::NoTrans),
        Some("n") | Some("N") => Ok(GemmOp::NoTrans),
        Some("t") | Some("T") => Ok(GemmOp::Trans),
        Some(other) => Err(ProtoError::bad(format!(
            "{key} must be \"n\" or \"t\", got {other:?}"
        ))),
    }
}

fn parse_opts(obj: &Json, p: usize) -> Result<Ca3dmmOptions, ProtoError> {
    let mut opts = Ca3dmmOptions::default();
    if let Some(grid) = obj.get("grid") {
        let arr = grid
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| ProtoError::bad("grid must be [pm, pn, pk]"))?;
        let mut dims = [0usize; 3];
        for (slot, v) in dims.iter_mut().zip(arr) {
            let f = v
                .as_f64()
                .filter(|f| f.is_finite() && *f >= 1.0 && f.fract() == 0.0)
                .ok_or_else(|| ProtoError::bad("grid entries must be positive integers"))?;
            *slot = f as usize;
        }
        let [pm, pn, pk] = dims;
        if pm
            .checked_mul(pn)
            .and_then(|x| x.checked_mul(pk))
            .is_none_or(|prod| prod > p)
        {
            return Err(ProtoError::bad(format!(
                "grid {pm}x{pn}x{pk} exceeds p={p}"
            )));
        }
        if !pm.max(pn).is_multiple_of(pm.min(pn)) {
            return Err(ProtoError::bad(format!(
                "grid violates eq. 7: max(pm,pn) must be a multiple of min(pm,pn), got {pm}x{pn}"
            )));
        }
        opts.grid_override = Some(Grid::new(pm, pn, pk));
    }
    if let Some(o) = obj.get("opts") {
        if o.as_obj().is_none() {
            return Err(ProtoError::bad("opts must be an object"));
        }
        if let Some(v) = get_uint(o, "multi_shift_min_k", 1 << 20)? {
            opts.multi_shift_min_k = v as usize;
        }
        opts.overlap = get_bool(o, "overlap", opts.overlap)?;
        if let Some(c) = get_str(o, "collectives") {
            opts.collectives = Collectives::parse(c)
                .ok_or_else(|| ProtoError::bad(format!("unknown collectives {c:?}")))?;
        }
    }
    Ok(opts)
}

/// Parses and fully validates one request line against the daemon's world
/// size `p` and `limits`. Every failure is a [`ProtoError`]; nothing
/// panics.
pub fn parse_request(line: &str, p: usize, limits: &Limits) -> Result<Request, ProtoError> {
    if line.len() > limits.max_line_bytes {
        return Err(ProtoError {
            code: "too_large",
            message: format!(
                "request line of {} bytes exceeds the {}-byte limit",
                line.len(),
                limits.max_line_bytes
            ),
        });
    }
    let obj = Json::parse(line).map_err(|e| ProtoError {
        code: "bad_json",
        message: e.to_string(),
    })?;
    if obj.as_obj().is_none() {
        return Err(ProtoError {
            code: "bad_json",
            message: "request must be a JSON object".to_owned(),
        });
    }
    let id = get_str(&obj, "id").unwrap_or("").to_owned();
    match get_str(&obj, "cmd") {
        Some("stats") => Ok(Request::Stats { id }),
        Some("shutdown") => Ok(Request::Shutdown { id }),
        Some("multiply") => {
            parse_multiply(&obj, id, p, limits).map(|m| Request::Multiply(Box::new(m)))
        }
        Some(other) => Err(ProtoError::bad(format!(
            "unknown cmd {other:?} (want multiply, stats, shutdown)"
        ))),
        None => Err(ProtoError::bad("missing cmd field")),
    }
}

fn parse_multiply(
    obj: &Json,
    id: String,
    p: usize,
    limits: &Limits,
) -> Result<MultiplyRequest, ProtoError> {
    let dim = |key: &str| -> Result<usize, ProtoError> {
        let v = get_uint(obj, key, limits.max_dim as u64)?
            .ok_or_else(|| ProtoError::bad(format!("missing {key}")))?;
        if v == 0 {
            return Err(ProtoError::bad(format!("{key} must be positive")));
        }
        Ok(v as usize)
    };
    let (m, n, k) = (dim("m")?, dim("n")?, dim("k")?);
    let total = m as u128 * k as u128 + k as u128 * n as u128 + m as u128 * n as u128;
    if total > limits.max_total_elems {
        return Err(ProtoError {
            code: "too_large",
            message: format!(
                "problem holds {total} elements across A/B/C, limit is {}",
                limits.max_total_elems
            ),
        });
    }
    let dtype = match get_str(obj, "dtype") {
        None => Dtype::F64,
        Some(s) => Dtype::parse(s)
            .ok_or_else(|| ProtoError::bad(format!("unknown dtype {s:?} (want f32 or f64)")))?,
    };
    let op_a = parse_op(obj, "op_a")?;
    let op_b = parse_op(obj, "op_b")?;
    let seed_a = get_uint(obj, "seed_a", u64::MAX >> 12)?.unwrap_or(1);
    let seed_b = get_uint(obj, "seed_b", u64::MAX >> 12)?.unwrap_or(2);
    let spec = |key: &str, default: LayoutSpec| -> Result<LayoutSpec, ProtoError> {
        match get_str(obj, key) {
            None => Ok(default),
            Some(s) => LayoutSpec::parse(s),
        }
    };
    let (ar, ac) = match op_a {
        GemmOp::NoTrans => (m, k),
        GemmOp::Trans => (k, m),
    };
    let (br, bc) = match op_b {
        GemmOp::NoTrans => (k, n),
        GemmOp::Trans => (n, k),
    };
    let a_layout = spec("layout_a", LayoutSpec::Col)?.build(ar, ac, p)?;
    let b_layout = spec("layout_b", LayoutSpec::Col)?.build(br, bc, p)?;
    let c_layout = spec("layout_c", LayoutSpec::Col)?.build(m, n, p)?;
    let opts = parse_opts(obj, p)?;
    let report = get_bool(obj, "report", false)?;
    let kernel_threads = get_uint(obj, "kernel_threads", 1024)?.map(|v| (v as usize).max(1));
    let prob = Problem::new(m, n, k, p);
    let key = PlanKey::new(
        &prob, &opts, dtype, op_a, &a_layout, op_b, &b_layout, &c_layout,
    );
    Ok(MultiplyRequest {
        id,
        prob,
        dtype,
        op_a,
        op_b,
        seed_a,
        seed_b,
        a_layout,
        b_layout,
        c_layout,
        opts,
        report,
        kernel_threads,
        key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 4;

    fn lim() -> Limits {
        Limits::default()
    }

    #[test]
    fn minimal_multiply_parses_with_defaults() {
        let r = parse_request(
            r#"{"cmd":"multiply","id":"a","m":8,"n":8,"k":8}"#,
            P,
            &lim(),
        )
        .unwrap();
        let Request::Multiply(m) = r else {
            panic!("wrong variant")
        };
        assert_eq!(m.id, "a");
        assert_eq!((m.prob.m, m.prob.n, m.prob.k, m.prob.p), (8, 8, 8, P));
        assert_eq!(m.dtype, Dtype::F64);
        assert_eq!(m.seed_a, 1);
        assert!(!m.report);
        assert_eq!(m.shape_label(), "8x8x8/f64");
    }

    #[test]
    fn malformed_json_is_a_structured_error() {
        let e = parse_request("{nope", P, &lim()).unwrap_err();
        assert_eq!(e.code, "bad_json");
        let resp = e.to_response(None);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        // compact output is single-line (NDJSON-safe)
        assert!(!resp.to_string().contains('\n'));
    }

    #[test]
    fn oversized_dims_are_rejected_not_panicked() {
        let e = parse_request(
            r#"{"cmd":"multiply","id":"a","m":99999999,"n":8,"k":8}"#,
            P,
            &lim(),
        )
        .unwrap_err();
        assert_eq!(e.code, "too_large");
        let e = parse_request(
            r#"{"cmd":"multiply","id":"a","m":4096,"n":4096,"k":4096}"#,
            P,
            &lim(),
        )
        .unwrap_err();
        assert_eq!(e.code, "too_large", "total-elements cap");
    }

    #[test]
    fn oversized_line_is_rejected_before_parsing() {
        let line = format!(
            r#"{{"cmd":"multiply","id":"{}","m":8,"n":8,"k":8}}"#,
            "x".repeat(70_000)
        );
        let e = parse_request(&line, P, &lim()).unwrap_err();
        assert_eq!(e.code, "too_large");
    }

    #[test]
    fn bad_fields_are_rejected() {
        for (line, what) in [
            (r#"{"cmd":"multiply","m":0,"n":8,"k":8}"#, "zero dim"),
            (
                r#"{"cmd":"multiply","m":8.5,"n":8,"k":8}"#,
                "fractional dim",
            ),
            (
                r#"{"cmd":"multiply","m":8,"n":8,"k":8,"op_a":"x"}"#,
                "bad op",
            ),
            (
                r#"{"cmd":"multiply","m":8,"n":8,"k":8,"dtype":"f16"}"#,
                "bad dtype",
            ),
            (
                r#"{"cmd":"multiply","m":8,"n":8,"k":8,"layout_a":"diag"}"#,
                "bad layout",
            ),
            (
                r#"{"cmd":"multiply","m":8,"n":8,"k":8,"layout_a":"block:3x3"}"#,
                "block grid != p",
            ),
            (
                r#"{"cmd":"multiply","m":8,"n":8,"k":8,"grid":[3,2,1]}"#,
                "eq.7 violation",
            ),
            (
                r#"{"cmd":"multiply","m":8,"n":8,"k":8,"grid":[8,8,8]}"#,
                "grid > p",
            ),
            (r#"{"cmd":"frobnicate"}"#, "unknown cmd"),
            (r#"{"id":"q"}"#, "missing cmd"),
            (r#"[1,2]"#, "non-object"),
        ] {
            let e = parse_request(line, P, &lim());
            assert!(e.is_err(), "{what} should be rejected: {line}");
        }
    }

    #[test]
    fn equal_requests_share_a_plan_key_and_unequal_do_not() {
        let parse = |line: &str| -> MultiplyRequest {
            match parse_request(line, P, &lim()).unwrap() {
                Request::Multiply(m) => *m,
                _ => panic!("wrong variant"),
            }
        };
        let a = parse(r#"{"cmd":"multiply","id":"1","m":16,"n":12,"k":8,"seed_a":5}"#);
        let b = parse(r#"{"cmd":"multiply","id":"2","m":16,"n":12,"k":8,"seed_a":9}"#);
        // different ids and seeds, same shape -> same key (seeds are data,
        // not plan identity)
        assert_eq!(a.key, b.key);
        let c = parse(r#"{"cmd":"multiply","id":"3","m":16,"n":12,"k":9}"#);
        assert_ne!(a.key, c.key);
        let d = parse(r#"{"cmd":"multiply","id":"4","m":16,"n":12,"k":8,"dtype":"f32"}"#);
        assert_ne!(a.key, d.key);
        let e = parse(r#"{"cmd":"multiply","id":"5","m":16,"n":12,"k":8,"layout_c":"row"}"#);
        assert_ne!(a.key, e.key);
    }

    #[test]
    fn stats_and_shutdown_parse() {
        assert!(matches!(
            parse_request(r#"{"cmd":"stats","id":"s"}"#, P, &lim()).unwrap(),
            Request::Stats { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#, P, &lim()).unwrap(),
            Request::Shutdown { .. }
        ));
    }

    #[test]
    fn layout_spec_round_trip() {
        assert_eq!(LayoutSpec::parse("col").unwrap(), LayoutSpec::Col);
        assert_eq!(
            LayoutSpec::parse("block:2x2").unwrap(),
            LayoutSpec::Block(2, 2)
        );
        assert_eq!(
            LayoutSpec::parse("cyclic:2x2:3x4").unwrap(),
            LayoutSpec::Cyclic(2, 2, 3, 4)
        );
        assert!(LayoutSpec::parse("block:0x2").is_err());
        assert!(LayoutSpec::parse("cyclic:2x2").is_err());
        let l = LayoutSpec::Block(2, 2).build(8, 8, 4).unwrap();
        assert_eq!(l.nranks(), 4);
        assert!(LayoutSpec::Block(2, 2).build(8, 8, 5).is_err());
    }
}
