//! The batch scheduler: a shared request queue drained by `slots`
//! dispatcher threads, each owning a persistent `p`-rank [`Engine`].
//!
//! Scheduling policy:
//!
//! * **Same-shape batching** — when a dispatcher pops a request, it also
//!   drains every queued request with the *same plan key* (up to
//!   `max_batch`) and runs them as one [`Plan::multiply_batch`] job: one
//!   plan resolution and one sub-communicator build for the whole group.
//!   Batching is opportunistic — it happens exactly when requests queue up
//!   faster than slots drain them, so an idle daemon adds no latency.
//! * **Different shapes run concurrently** — each slot has its own
//!   persistent world, so two slots can execute two different shapes at
//!   once, splitting the host's kernel-thread budget between them
//!   (`base_gemm_threads / (active_slots · p)`, min 1, unless the request
//!   pinned `kernel_threads`).
//! * **Report requests never batch** — a request with `"report":true` runs
//!   alone and traced, so its schema-v3 RunReport describes exactly one
//!   multiply.
//! * **Graceful shutdown** — [`Scheduler::shutdown`] stops admission
//!   (late requests get a `draining` error), waits for the queue and every
//!   slot to drain, then joins the dispatchers.

use crate::cache::{CacheStats, PlanCache};
use crate::engine::Engine;
use crate::protocol::{MultiplyRequest, ProtoError};
use crate::stats::ServerStats;
use ca3dmm::Plan;
use jsonlite::Json;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Where a response line goes (stdout, a socket, a test channel).
pub type ResponseSink = Arc<dyn Fn(Json) + Send + Sync>;

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// World size every multiply runs on.
    pub p: usize,
    /// Concurrency slots (dispatcher threads × persistent worlds).
    pub slots: usize,
    /// Plan-cache capacity, entries.
    pub cache_capacity: usize,
    /// Largest same-shape batch one job may carry.
    pub max_batch: usize,
    /// Where per-request RunReports go; `None` inlines them into the
    /// response.
    pub report_dir: Option<PathBuf>,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            p: 4,
            slots: 1,
            cache_capacity: 32,
            max_batch: 16,
            report_dir: None,
        }
    }
}

pub(crate) struct Queued {
    pub req: Box<MultiplyRequest>,
    pub sink: ResponseSink,
    pub enqueued: Instant,
}

/// Pops the front request plus every queued same-key non-report request
/// (up to `max_batch` total), preserving arrival order. Report requests
/// always come out alone. Pure queue surgery — unit-tested directly.
pub(crate) fn take_batch(q: &mut VecDeque<Queued>, max_batch: usize) -> Vec<Queued> {
    let Some(front) = q.pop_front() else {
        return Vec::new();
    };
    let key = front.req.key;
    let solo = front.req.report;
    let mut batch = vec![front];
    if !solo {
        let mut i = 0;
        while i < q.len() && batch.len() < max_batch.max(1) {
            if q[i].req.key == key && !q[i].req.report {
                if let Some(item) = q.remove(i) {
                    batch.push(item);
                }
            } else {
                i += 1;
            }
        }
    }
    batch
}

struct Shared {
    cfg: SchedulerConfig,
    queue: Mutex<VecDeque<Queued>>,
    cv: Condvar,
    draining: AtomicBool,
    stop: AtomicBool,
    stats: ServerStats,
    cache: PlanCache,
}

fn lock<'m, T>(m: &'m Mutex<T>) -> MutexGuard<'m, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The request scheduler. One per daemon.
pub struct Scheduler {
    shared: Arc<Shared>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Starts `cfg.slots` dispatcher threads, each with a warmed persistent
    /// world.
    pub fn new(cfg: SchedulerConfig) -> Scheduler {
        assert!(cfg.p > 0 && cfg.slots > 0, "p and slots must be positive");
        let shared = Arc::new(Shared {
            cache: PlanCache::new(cfg.cache_capacity),
            stats: ServerStats::new(),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            cfg,
        });
        let dispatchers = (0..shared.cfg.slots)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-slot-{slot}"))
                    .spawn(move || dispatcher_loop(&shared))
                    .expect("failed to spawn dispatcher")
            })
            .collect();
        Scheduler {
            shared,
            dispatchers,
        }
    }

    /// Counts an inbound request line of any kind (for the stats totals).
    pub fn note_request(&self) {
        self.shared.stats.on_request();
    }

    /// Counts an error response produced outside the scheduler (parse
    /// failures on the transport thread).
    pub fn note_error(&self) {
        self.shared.stats.on_error();
    }

    /// Enqueues a multiply; its response (success or error) will be pushed
    /// into `sink` by a dispatcher. Returns the `draining` error instead if
    /// shutdown has begun.
    pub fn submit(&self, req: Box<MultiplyRequest>, sink: ResponseSink) {
        if self.shared.draining.load(Ordering::SeqCst) {
            let err = ProtoError {
                code: "draining",
                message: "server is shutting down".to_owned(),
            };
            self.shared.stats.on_error();
            sink(err.to_response(Some(&req.id)));
            return;
        }
        self.shared.stats.queue_enter();
        lock(&self.shared.queue).push_back(Queued {
            req,
            sink,
            enqueued: Instant::now(),
        });
        self.shared.cv.notify_one();
    }

    /// The merged `stats` response body.
    pub fn stats_json(&self) -> Json {
        let cache = self.shared.cache.stats();
        let mut body = self.shared.stats.to_json(self.shared.cfg.slots);
        if let Json::Obj(map) = &mut body {
            map.insert("cache".to_owned(), cache_json(&cache));
            map.insert("p".to_owned(), Json::Num(self.shared.cfg.p as f64));
        }
        body
    }

    /// Cache counters (test hook).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Completed multiplies (test hook).
    pub fn completed(&self) -> u64 {
        self.shared.stats.completed()
    }

    /// Stops admission, drains the queue and all in-flight work, joins the
    /// dispatchers. Idempotent-ish: safe to call once at end of life.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wait until nothing is queued or executing.
        {
            let mut q = lock(&self.shared.queue);
            while !(q.is_empty() && self.shared.stats.active_slots() == 0) {
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(q, std::time::Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
            }
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for h in self.dispatchers.drain(..) {
            let _ = h.join();
        }
    }
}

fn cache_json(c: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::Num(c.hits as f64)),
        ("misses", Json::Num(c.misses as f64)),
        ("evictions", Json::Num(c.evictions as f64)),
        ("entries", Json::Num(c.entries as f64)),
        ("capacity", Json::Num(c.capacity as f64)),
        ("hit_rate", Json::Num(c.hit_rate())),
    ])
}

fn dispatcher_loop(shared: &Shared) {
    let engine = Engine::new(shared.cfg.p);
    engine.warm();
    loop {
        let batch = {
            let mut q = lock(&shared.queue);
            loop {
                if !q.is_empty() {
                    break take_batch(&mut q, shared.cfg.max_batch);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = shared
                    .cv
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        shared.stats.queue_leave(batch.len());
        shared.stats.slot_busy();
        run_one_batch(shared, &engine, batch);
        shared.stats.slot_idle();
        // Wake shutdown waiters (and peers waiting for work).
        shared.cv.notify_all();
    }
}

fn run_one_batch(shared: &Shared, engine: &Engine, batch: Vec<Queued>) {
    let Some(first) = batch.first() else { return };
    let leader = &first.req;
    let key = leader.key;
    let shape = leader.shape_label();

    // Resolve the plan: one cache consult for the leader, one build on a
    // miss. Followers count as hits — they are served from the (now
    // populated) cache by construction.
    let t_plan = Instant::now();
    let (plan, leader_hit) = match shared.cache.get(&key) {
        Some(plan) => (plan, true),
        None => {
            let req = leader.clone();
            let built = catch_unwind(AssertUnwindSafe(|| {
                Plan::build(
                    req.prob,
                    &req.opts,
                    req.dtype,
                    req.op_a,
                    &req.a_layout,
                    req.op_b,
                    &req.b_layout,
                    &req.c_layout,
                )
            }));
            match built {
                Ok(plan) => {
                    let plan = Arc::new(plan);
                    shared.cache.put(key, Arc::clone(&plan));
                    (plan, false)
                }
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("plan construction failed");
                    let err = ProtoError::bad(format!("plan rejected: {msg}"));
                    for item in &batch {
                        shared.stats.on_error();
                        (item.sink)(err.to_response(Some(&item.req.id)));
                    }
                    return;
                }
            }
        }
    };
    for _ in 1..batch.len() {
        let _ = shared.cache.get(&key); // count follower hits, refresh LRU
    }
    let plan_secs = t_plan.elapsed().as_secs_f64();

    // Kernel budget: split the host's threads across the busy slots' ranks;
    // the batch leader's explicit override wins.
    let active = shared.stats.active_slots().max(1);
    let budget = (dense::pool::base_gemm_threads() / (active * shared.cfg.p)).max(1);
    let kernel_threads = leader.kernel_threads.unwrap_or(budget);

    let seeds: Vec<(u64, u64)> = batch.iter().map(|i| (i.req.seed_a, i.req.seed_b)).collect();
    let trace = leader.report;
    let outcome = match engine.run_batch(&plan, &seeds, kernel_threads, trace) {
        Ok(out) => out,
        Err(panic) => {
            let err = ProtoError {
                code: "internal",
                message: format!("execution failed: {panic}"),
            };
            for item in &batch {
                shared.stats.on_error();
                (item.sink)(err.to_response(Some(&item.req.id)));
            }
            return;
        }
    };
    shared.stats.on_batch(batch.len());

    let grid = *plan.ca3dmm().grid_context().grid();
    for (idx, item) in batch.iter().enumerate() {
        let total_secs = item.enqueued.elapsed().as_secs_f64();
        let cache_state = if idx == 0 && !leader_hit {
            "miss"
        } else {
            "hit"
        };
        let mut resp = Json::obj([
            ("id", Json::Str(item.req.id.clone())),
            ("ok", Json::Bool(true)),
            ("cache", Json::Str(cache_state.to_owned())),
            ("batched", Json::Num(batch.len() as f64)),
            ("plan_ms", Json::Num(plan_secs * 1e3)),
            ("exec_ms", Json::Num(outcome.exec_secs * 1e3)),
            ("total_ms", Json::Num(total_secs * 1e3)),
            ("checksum", Json::Str(outcome.items[idx].checksum.clone())),
            ("sum", Json::Num(outcome.items[idx].sum)),
            (
                "grid",
                Json::obj([
                    ("pm", Json::Num(grid.pm as f64)),
                    ("pn", Json::Num(grid.pn as f64)),
                    ("pk", Json::Num(grid.pk as f64)),
                ]),
            ),
        ]);
        if trace {
            let meta = plan.ca3dmm().report_meta_serving(
                &format!("serve_{}", item.req.id),
                Some(cache_state == "hit"),
            );
            let report = outcome.report.to_json(meta);
            attach_report(
                &mut resp,
                &item.req.id,
                report,
                shared.cfg.report_dir.as_deref(),
            );
        }
        shared
            .stats
            .on_done(&shape, (total_secs * 1e6).round().max(0.0) as u64);
        (item.sink)(resp);
    }
}

/// Writes the report next to the response (file when a report dir is
/// configured, inline otherwise). File-system failures degrade to inline —
/// the request still succeeds.
fn attach_report(resp: &mut Json, id: &str, report: Json, dir: Option<&std::path::Path>) {
    let Json::Obj(map) = resp else { return };
    if let Some(dir) = dir {
        let safe: String = id
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .take(64)
            .collect();
        let path = dir.join(format!("REPORT_serve_{safe}.json"));
        let mut text = report.to_string_pretty();
        text.push('\n');
        if std::fs::write(&path, text).is_ok() {
            map.insert(
                "report_path".to_owned(),
                Json::Str(path.to_string_lossy().into_owned()),
            );
            return;
        }
    }
    map.insert("report".to_owned(), report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::digest_of_global;
    use crate::protocol::{parse_request, Limits, Request};
    use dense::gemm::{gemm_naive, GemmOp};
    use dense::part::Rect;
    use dense::random::global_block;
    use dense::Mat;
    use std::sync::mpsc;

    const P: usize = 4;

    fn parse_multiply(line: &str, p: usize) -> Box<MultiplyRequest> {
        match parse_request(line, p, &Limits::default()).unwrap() {
            Request::Multiply(m) => m,
            _ => panic!("expected multiply"),
        }
    }

    fn queued(line: &str, sink: ResponseSink) -> Queued {
        Queued {
            req: parse_multiply(line, P),
            sink,
            enqueued: Instant::now(),
        }
    }

    fn null_sink() -> ResponseSink {
        Arc::new(|_| {})
    }

    #[test]
    fn take_batch_groups_same_key_and_isolates_reports() {
        let sink = null_sink();
        let mut q = VecDeque::new();
        let shape_a = r#"{"cmd":"multiply","id":"a1","m":16,"n":16,"k":16}"#;
        let shape_b = r#"{"cmd":"multiply","id":"b1","m":8,"n":8,"k":8}"#;
        let a_report = r#"{"cmd":"multiply","id":"a-rep","m":16,"n":16,"k":16,"report":true}"#;
        q.push_back(queued(shape_a, Arc::clone(&sink)));
        q.push_back(queued(shape_b, Arc::clone(&sink)));
        q.push_back(queued(shape_a, Arc::clone(&sink)));
        q.push_back(queued(a_report, Arc::clone(&sink)));
        q.push_back(queued(shape_a, Arc::clone(&sink)));

        // batch 1: the two non-report shape-A requests queued behind the
        // front one, order preserved; B and the report request stay.
        let b1 = take_batch(&mut q, 16);
        assert_eq!(
            b1.iter().map(|i| i.req.id.as_str()).collect::<Vec<_>>(),
            vec!["a1", "a1", "a1"]
        );
        // batch 2: shape B alone
        let b2 = take_batch(&mut q, 16);
        assert_eq!(b2.len(), 1);
        assert_eq!(b2[0].req.id, "b1");
        // batch 3: the report request, alone despite matching shape A's key
        let b3 = take_batch(&mut q, 16);
        assert_eq!(b3.len(), 1);
        assert!(b3[0].req.report);
        assert!(q.is_empty());
    }

    #[test]
    fn take_batch_respects_max_batch() {
        let sink = null_sink();
        let mut q = VecDeque::new();
        for _ in 0..5 {
            q.push_back(queued(
                r#"{"cmd":"multiply","id":"x","m":16,"n":16,"k":16}"#,
                Arc::clone(&sink),
            ));
        }
        assert_eq!(take_batch(&mut q, 2).len(), 2);
        assert_eq!(q.len(), 3);
    }

    /// Collects responses over a channel.
    fn channel_sink() -> (ResponseSink, mpsc::Receiver<Json>) {
        let (tx, rx) = mpsc::channel();
        let tx = Mutex::new(tx);
        (
            Arc::new(move |j| {
                let _ = lock(&tx).send(j);
            }),
            rx,
        )
    }

    fn serial_digest(m: usize, n: usize, k: usize, sa: u64, sb: u64) -> f64 {
        let a = global_block::<f64>(sa, Rect::new(0, 0, m, k));
        let b = global_block::<f64>(sb, Rect::new(0, 0, k, n));
        let mut c = Mat::<f64>::zeros(m, n);
        gemm_naive(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        digest_of_global(&c, &layout::Layout::one_d_col(m, n, P)).sum
    }

    #[test]
    fn concurrent_two_shape_streams_complete_and_match_serial() {
        let sched = Scheduler::new(SchedulerConfig {
            p: P,
            slots: 2,
            ..SchedulerConfig::default()
        });
        let (sink, rx) = channel_sink();
        // interleave two shapes, several requests each — with two slots the
        // shapes execute concurrently on separate persistent worlds
        let shapes = [(24usize, 20usize, 16usize), (12, 28, 8)];
        let mut expected = std::collections::BTreeMap::new();
        for rep in 0..3u64 {
            for (si, &(m, n, k)) in shapes.iter().enumerate() {
                let id = format!("s{si}-r{rep}");
                let line = format!(
                    r#"{{"cmd":"multiply","id":"{id}","m":{m},"n":{n},"k":{k},"seed_a":{},"seed_b":9}}"#,
                    rep + 1
                );
                expected.insert(id, serial_digest(m, n, k, rep + 1, 9));
                sched.submit(parse_multiply(&line, P), Arc::clone(&sink));
            }
        }
        let mut got = 0;
        while got < 6 {
            let resp = rx
                .recv_timeout(std::time::Duration::from_secs(60))
                .expect("response timed out");
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(true),
                "{resp:?}"
            );
            let id = resp.get("id").and_then(Json::as_str).unwrap().to_owned();
            let sum = resp.get("sum").and_then(Json::as_f64).unwrap();
            let want = expected.remove(&id).expect("unexpected id");
            let scale = want.abs().max(1.0) * 16.0;
            assert!(
                (sum - want).abs() <= 1e-12 * scale,
                "{id}: distributed {sum} vs serial {want}"
            );
            got += 1;
        }
        assert_eq!(sched.completed(), 6);
        let cs = sched.cache_stats();
        assert!(cs.hits >= 1, "repeat shapes must hit the cache: {cs:?}");
        assert_eq!(cs.misses, 2, "one miss per distinct shape");
        sched.shutdown();
    }

    #[test]
    fn draining_rejects_new_requests() {
        let sched = Scheduler::new(SchedulerConfig {
            p: 2,
            slots: 1,
            ..SchedulerConfig::default()
        });
        sched.shared.draining.store(true, Ordering::SeqCst);
        let (sink, rx) = channel_sink();
        sched.submit(
            parse_multiply(r#"{"cmd":"multiply","id":"late","m":8,"n":8,"k":8}"#, 2),
            sink,
        );
        let resp = rx.recv().unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("draining")
        );
        sched.shutdown();
    }

    #[test]
    fn stats_json_includes_cache_and_queue() {
        let sched = Scheduler::new(SchedulerConfig {
            p: 2,
            slots: 1,
            ..SchedulerConfig::default()
        });
        let (sink, rx) = channel_sink();
        sched.note_request();
        sched.submit(
            parse_multiply(r#"{"cmd":"multiply","id":"q","m":8,"n":8,"k":8}"#, 2),
            sink,
        );
        let _ = rx.recv_timeout(std::time::Duration::from_secs(60)).unwrap();
        let j = sched.stats_json();
        assert!(j.get("cache").and_then(|c| c.get("hit_rate")).is_some());
        assert_eq!(j.get("p").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("queue_depth").and_then(Json::as_f64), Some(0.0));
        sched.shutdown();
    }

    #[test]
    fn report_request_carries_inline_report() {
        let sched = Scheduler::new(SchedulerConfig {
            p: 2,
            slots: 1,
            report_dir: None,
            ..SchedulerConfig::default()
        });
        let (sink, rx) = channel_sink();
        sched.submit(
            parse_multiply(
                r#"{"cmd":"multiply","id":"rep","m":16,"n":16,"k":16,"report":true}"#,
                2,
            ),
            sink,
        );
        let resp = rx.recv_timeout(std::time::Duration::from_secs(60)).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        let report = resp.get("report").expect("inline report");
        assert_eq!(
            report.get("schema_version").and_then(Json::as_f64),
            Some(3.0)
        );
        let meta = report.get("meta").expect("meta block");
        assert_eq!(meta.get("plan_cached").and_then(Json::as_bool), Some(false));
        assert!(meta
            .get("grid_search_secs")
            .and_then(Json::as_f64)
            .is_some());
        sched.shutdown();
    }
}
