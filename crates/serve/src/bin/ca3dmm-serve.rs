//! The `ca3dmm-serve` daemon binary.
//!
//! ```text
//! ca3dmm-serve [--p N] [--slots N] [--cache-cap N] [--max-batch N]
//!              [--listen stdio|tcp:HOST:PORT|unix:PATH]
//!              [--report-dir DIR]
//!              [--max-dim N] [--max-total-elems N] [--max-line-bytes N]
//! ```
//!
//! Serves NDJSON multiply requests (see `DESIGN.md` §11) until EOF or a
//! `shutdown` command, then drains in-flight work and exits 0.

use serve::server::{run, Listen, ServerConfig};

const USAGE: &str = "usage: ca3dmm-serve [--p N] [--slots N] [--cache-cap N] [--max-batch N]
                    [--listen stdio|tcp:HOST:PORT|unix:PATH] [--report-dir DIR]
                    [--max-dim N] [--max-total-elems N] [--max-line-bytes N]";

fn fail(msg: &str) -> ! {
    eprintln!("ca3dmm-serve: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return;
        }
        let Some(value) = args.next() else {
            fail(&format!("{flag} needs a value"));
        };
        let uint = || -> usize {
            value.parse::<usize>().unwrap_or_else(|_| {
                fail(&format!("{flag} wants an unsigned integer, got {value:?}"))
            })
        };
        match flag.as_str() {
            "--p" => cfg.sched.p = uint().max(1),
            "--slots" => cfg.sched.slots = uint().max(1),
            "--cache-cap" => cfg.sched.cache_capacity = uint().max(1),
            "--max-batch" => cfg.sched.max_batch = uint().max(1),
            "--report-dir" => {
                let dir = std::path::PathBuf::from(&value);
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    fail(&format!("cannot create report dir {value:?}: {e}"));
                }
                cfg.sched.report_dir = Some(dir);
            }
            "--listen" => match Listen::parse(&value) {
                Ok(l) => cfg.listen = l,
                Err(e) => fail(&e),
            },
            "--max-dim" => cfg.limits.max_dim = uint().max(1),
            "--max-total-elems" => cfg.limits.max_total_elems = uint().max(1) as u128,
            "--max-line-bytes" => cfg.limits.max_line_bytes = uint().max(1),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    eprintln!(
        "ca3dmm-serve: p={} slots={} cache={} listen={:?}",
        cfg.sched.p, cfg.sched.slots, cfg.sched.cache_capacity, cfg.listen
    );
    if let Err(e) = run(&cfg) {
        eprintln!("ca3dmm-serve: transport error: {e}");
        std::process::exit(1);
    }
}
