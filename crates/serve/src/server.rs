//! Transport front-ends: stdio (NDJSON over stdin/stdout), TCP, and Unix
//! domain sockets, all speaking the same line protocol and feeding the same
//! [`Scheduler`].
//!
//! Each connection gets a reader thread; responses go back through a
//! mutex-wrapped writer so concurrent dispatcher completions interleave by
//! whole lines, never by bytes. A `shutdown` command (from any connection)
//! answers immediately, then drains the scheduler and stops the listeners.

use crate::protocol::{parse_request, Limits, Request};
use crate::scheduler::{ResponseSink, Scheduler, SchedulerConfig};
use jsonlite::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Where the daemon listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Listen {
    /// Serve stdin→stdout (the default; what CI drives).
    Stdio,
    /// `tcp:HOST:PORT`
    Tcp(String),
    /// `unix:PATH`
    Unix(String),
}

impl Listen {
    /// Parses `stdio`, `tcp:HOST:PORT`, or `unix:PATH`.
    pub fn parse(s: &str) -> Result<Listen, String> {
        if s == "stdio" {
            return Ok(Listen::Stdio);
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none() {
                return Err(format!("tcp listen address needs HOST:PORT, got {addr:?}"));
            }
            return Ok(Listen::Tcp(addr.to_owned()));
        }
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix listen address needs a path".to_owned());
            }
            return Ok(Listen::Unix(path.to_owned()));
        }
        Err(format!(
            "unknown listen spec {s:?} (want stdio, tcp:HOST:PORT, unix:PATH)"
        ))
    }
}

/// Full daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    pub sched: SchedulerConfig,
    pub limits: Limits,
    pub listen: Listen,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            sched: SchedulerConfig::default(),
            limits: Limits::default(),
            listen: Listen::Stdio,
        }
    }
}

/// A running daemon: scheduler plus the shutdown latch the transports poll.
pub struct Server {
    sched: Arc<Scheduler>,
    limits: Limits,
    shutdown: Arc<AtomicBool>,
    p: usize,
}

impl Server {
    /// Starts the scheduler (spawning and warming its slots).
    pub fn new(cfg: &ServerConfig) -> Server {
        Server {
            sched: Arc::new(Scheduler::new(cfg.sched.clone())),
            limits: cfg.limits,
            shutdown: Arc::new(AtomicBool::new(false)),
            p: cfg.sched.p,
        }
    }

    /// True once some connection issued `shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handles one request line: enqueues multiplies, answers stats
    /// inline, arms the shutdown latch. Every line produces exactly one
    /// response through `sink` (now or when the multiply completes).
    pub fn handle_line(&self, line: &str, sink: &ResponseSink) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        self.sched.note_request();
        match parse_request(line, self.p, &self.limits) {
            Err(e) => {
                self.sched.note_error();
                sink(e.to_response(extract_id(line).as_deref()));
            }
            Ok(Request::Stats { id }) => {
                let mut resp = Json::obj([("id", Json::Str(id)), ("ok", Json::Bool(true))]);
                if let Json::Obj(map) = &mut resp {
                    map.insert("stats".to_owned(), self.sched.stats_json());
                }
                sink(resp);
            }
            Ok(Request::Shutdown { id }) => {
                sink(Json::obj([
                    ("id", Json::Str(id)),
                    ("ok", Json::Bool(true)),
                    ("shutting_down", Json::Bool(true)),
                ]));
                self.shutdown.store(true, Ordering::SeqCst);
            }
            Ok(Request::Multiply(req)) => {
                self.sched.submit(req, Arc::clone(sink));
            }
        }
    }

    /// Drains in-flight work and stops the dispatchers. Consumes the
    /// server.
    pub fn finish(self) {
        if let Ok(sched) = Arc::try_unwrap(self.sched) {
            sched.shutdown();
        }
    }
}

/// Best-effort id recovery from an unparseable line, so error responses can
/// still correlate. Only attempted on valid JSON objects (a `bad_request`
/// whose shape was fine); junk bytes yield `None`.
fn extract_id(line: &str) -> Option<String> {
    Json::parse(line)
        .ok()?
        .get("id")?
        .as_str()
        .map(str::to_owned)
}

/// A line writer shared by dispatcher threads: one lock per response keeps
/// lines whole.
fn writer_sink<W: Write + Send + 'static>(w: W) -> ResponseSink {
    let w = Mutex::new(w);
    Arc::new(move |resp: Json| {
        let mut w = w.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writeln!(w, "{resp}");
        let _ = w.flush();
    })
}

/// Runs the daemon until `shutdown` (or EOF on stdio), then drains.
pub fn run(cfg: &ServerConfig) -> std::io::Result<()> {
    let server = Server::new(cfg);
    match &cfg.listen {
        Listen::Stdio => {
            let sink = writer_sink(std::io::stdout());
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line?;
                server.handle_line(&line, &sink);
                if server.shutdown_requested() {
                    break;
                }
            }
        }
        Listen::Tcp(addr) => {
            let listener = TcpListener::bind(addr)?;
            serve_listener(&server, || {
                let (s, _) = listener.accept()?;
                let w = s.try_clone()?;
                Ok((s, w))
            })?;
        }
        Listen::Unix(path) => {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            let result = serve_listener(&server, || {
                let (s, _) = listener.accept()?;
                let w = s.try_clone()?;
                Ok((s, w))
            });
            let _ = std::fs::remove_file(path);
            result?;
        }
    }
    server.finish();
    Ok(())
}

/// Accept loop shared by the socket transports. `accept` yields a
/// (reader, writer) pair per connection; each connection gets a reader
/// thread. Returns when some connection requests shutdown.
fn serve_listener<R, W, A>(server: &Server, accept: A) -> std::io::Result<()>
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
    A: Fn() -> std::io::Result<(R, W)>,
{
    // The accept call blocks, so shutdown is noticed on the next
    // connection attempt (or immediately when the initiating connection
    // closes). Good enough for a single-host daemon; CI drives stdio.
    std::thread::scope(|scope| {
        while !server.shutdown_requested() {
            let (r, w) = match accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            scope.spawn(move || {
                let sink = writer_sink(w);
                for line in BufReader::new(r).lines() {
                    let Ok(line) = line else { break };
                    server.handle_line(&line, &sink);
                    if server.shutdown_requested() {
                        break;
                    }
                }
            });
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn channel_sink() -> (ResponseSink, mpsc::Receiver<Json>) {
        let (tx, rx) = mpsc::channel();
        let tx = Mutex::new(tx);
        (
            Arc::new(move |j: Json| {
                let _ = tx
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .send(j);
            }),
            rx,
        )
    }

    fn test_server(p: usize) -> Server {
        let cfg = ServerConfig {
            sched: SchedulerConfig {
                p,
                slots: 1,
                ..SchedulerConfig::default()
            },
            ..ServerConfig::default()
        };
        Server::new(&cfg)
    }

    #[test]
    fn listen_spec_parses() {
        assert_eq!(Listen::parse("stdio").unwrap(), Listen::Stdio);
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:9000").unwrap(),
            Listen::Tcp("127.0.0.1:9000".to_owned())
        );
        assert_eq!(
            Listen::parse("unix:/tmp/s.sock").unwrap(),
            Listen::Unix("/tmp/s.sock".to_owned())
        );
        assert!(Listen::parse("tcp:nohost").is_err());
        assert!(Listen::parse("unix:").is_err());
        assert!(Listen::parse("ftp:x").is_err());
    }

    #[test]
    fn malformed_lines_yield_error_responses_not_panics() {
        let server = test_server(2);
        let (sink, rx) = channel_sink();
        server.handle_line("{broken", &sink);
        let resp = rx.recv().unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad_json")
        );
        // a well-formed object with a bad field keeps its id in the error
        server.handle_line(r#"{"cmd":"multiply","id":"bad1","m":0,"n":8,"k":8}"#, &sink);
        let resp = rx.recv().unwrap();
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("bad1"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        server.finish();
    }

    #[test]
    fn stats_and_shutdown_round_trip() {
        let server = test_server(2);
        let (sink, rx) = channel_sink();
        server.handle_line(r#"{"cmd":"multiply","id":"m1","m":8,"n":8,"k":8}"#, &sink);
        let resp = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("multiply response");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        server.handle_line(r#"{"cmd":"stats","id":"s1"}"#, &sink);
        let stats = rx.recv().unwrap();
        assert_eq!(stats.get("id").and_then(Json::as_str), Some("s1"));
        let body = stats.get("stats").expect("stats body");
        assert!(body.get("cache").is_some());
        assert!(!server.shutdown_requested());
        server.handle_line(r#"{"cmd":"shutdown","id":"bye"}"#, &sink);
        let bye = rx.recv().unwrap();
        assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
        assert!(server.shutdown_requested());
        server.finish();
    }

    #[test]
    fn empty_lines_are_ignored() {
        let server = test_server(2);
        let (sink, rx) = channel_sink();
        server.handle_line("", &sink);
        server.handle_line("   ", &sink);
        assert!(rx.try_recv().is_err());
        server.finish();
    }
}
