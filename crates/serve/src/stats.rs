//! Server-side statistics: request counters, queue depth, and per-shape
//! latency histograms — everything the `stats` endpoint reports.

use jsonlite::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A log2-bucketed latency histogram in microseconds: bucket `i` counts
/// latencies in `[2^i, 2^(i+1))` µs (bucket 0 also catches sub-µs).
#[derive(Clone, Debug, Default)]
pub struct LatencyHist {
    buckets: [u64; 32],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl LatencyHist {
    /// Records one latency.
    pub fn record(&mut self, micros: u64) {
        let b = (u64::BITS - micros.max(1).leading_zeros() - 1).min(31) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum_us += micros;
        self.max_us = self.max_us.max(micros);
    }

    /// Number of recorded latencies.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Upper edge (µs) of the bucket containing the q-quantile
    /// (`0 < q <= 1`) — a conservative percentile estimate.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let want = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= want {
                return 1u64 << (i + 1);
            }
        }
        self.max_us
    }

    fn to_json(&self) -> Json {
        let top = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("mean_us", Json::Num(self.mean_us())),
            ("max_us", Json::Num(self.max_us as f64)),
            ("p50_us", Json::Num(self.quantile_us(0.5) as f64)),
            ("p99_us", Json::Num(self.quantile_us(0.99) as f64)),
            (
                "buckets_us_log2",
                Json::Arr(
                    self.buckets[..top]
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Process-wide serving counters. All methods take `&self`; the per-shape
/// map sits behind a mutex, the scalars are atomics.
pub struct ServerStats {
    started: Instant,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    queue_depth: AtomicUsize,
    active_slots: AtomicUsize,
    per_shape: Mutex<BTreeMap<String, LatencyHist>>,
}

impl ServerStats {
    pub fn new() -> ServerStats {
        ServerStats {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            active_slots: AtomicUsize::new(0),
            per_shape: Mutex::new(BTreeMap::new()),
        }
    }

    /// Counts a received request (any command).
    pub fn on_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an error response.
    pub fn on_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed batch of `size` same-shape multiplies.
    pub fn on_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
    }

    /// Records one completed multiply: its end-to-end latency under its
    /// shape label.
    pub fn on_done(&self, shape: &str, micros: u64) {
        self.ok.fetch_add(1, Ordering::Relaxed);
        let mut map = self
            .per_shape
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(shape.to_owned()).or_default().record(micros);
    }

    /// Queue depth gauge.
    pub fn queue_enter(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Queue depth gauge (saturating).
    pub fn queue_leave(&self, n: usize) {
        let mut cur = self.queue_depth.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.queue_depth.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Busy-slot gauge.
    pub fn slot_busy(&self) {
        self.active_slots.fetch_add(1, Ordering::Relaxed);
    }

    /// Busy-slot gauge.
    pub fn slot_idle(&self) {
        self.active_slots.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently executing slots.
    pub fn active_slots(&self) -> usize {
        self.active_slots.load(Ordering::Relaxed)
    }

    /// Completed multiplies.
    pub fn completed(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// The `stats` response body (minus the cache block, which the caller
    /// merges in).
    pub fn to_json(&self, slots_total: usize) -> Json {
        let shapes: Vec<(String, Json)> = self
            .per_shape
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        Json::obj([
            (
                "uptime_secs",
                Json::Num(self.started.elapsed().as_secs_f64()),
            ),
            (
                "gemm_kernel",
                Json::Str(dense::kernel::gemm_kernel().name().to_owned()),
            ),
            ("queue_depth", Json::Num(self.queue_depth() as f64)),
            (
                "slots",
                Json::obj([
                    ("total", Json::Num(slots_total as f64)),
                    ("active", Json::Num(self.active_slots() as f64)),
                ]),
            ),
            (
                "requests",
                Json::obj([
                    (
                        "total",
                        Json::Num(self.requests.load(Ordering::Relaxed) as f64),
                    ),
                    ("ok", Json::Num(self.ok.load(Ordering::Relaxed) as f64)),
                    (
                        "error",
                        Json::Num(self.errors.load(Ordering::Relaxed) as f64),
                    ),
                    ("batches", Json::Num(batches as f64)),
                    (
                        "avg_batch",
                        Json::Num(if batches == 0 {
                            0.0
                        } else {
                            batched as f64 / batches as f64
                        }),
                    ),
                ]),
            ),
            ("shapes", Json::obj(shapes)),
        ])
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHist::default();
        for us in [1, 1, 2, 3, 900, 1000] {
            h.record(us);
        }
        assert_eq!(h.count(), 6);
        assert!(h.mean_us() > 300.0);
        // p50 falls in the low buckets, p99 in the ~1ms bucket
        assert!(h.quantile_us(0.5) <= 4);
        assert!(h.quantile_us(0.99) >= 1024);
        assert_eq!(h.quantile_us(1.0), h.quantile_us(0.999));
    }

    #[test]
    fn zero_latency_is_counted() {
        let mut h = LatencyHist::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.5), 2);
    }

    #[test]
    fn stats_json_shape() {
        let s = ServerStats::new();
        s.on_request();
        s.on_done("8x8x8/f64", 150);
        s.on_batch(3);
        let j = s.to_json(2);
        assert_eq!(
            j.get("requests")
                .and_then(|r| r.get("ok"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert!(j.get("shapes").and_then(|s| s.get("8x8x8/f64")).is_some());
        assert_eq!(
            j.get("gemm_kernel").and_then(Json::as_str),
            Some(dense::kernel::gemm_kernel().name())
        );
        assert_eq!(
            j.get("requests")
                .and_then(|r| r.get("avg_batch"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn queue_gauge_saturates() {
        let s = ServerStats::new();
        s.queue_enter();
        s.queue_leave(5);
        assert_eq!(s.queue_depth(), 0);
    }
}
