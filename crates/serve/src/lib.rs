//! `ca3dmm-serve`: PGEMM as a service.
//!
//! A long-running daemon wrapping the CA3DMM stack: it keeps a persistent
//! [`msgpass::PersistentWorld`] (rank threads spawned once, reused across
//! requests) and a warmed kernel pool, speaks an NDJSON request protocol,
//! caches solved [`ca3dmm::Plan`]s (grid solution + redistribution
//! programs) under an LRU policy, and batches same-shape requests into
//! single grid launches. See `DESIGN.md` §11 for the protocol and
//! batching semantics.
//!
//! Module map:
//! * [`protocol`] — request parsing/validation and the error envelope;
//!   total (never panics) because it runs before anything touches a world.
//! * [`cache`] — the LRU [`cache::PlanCache`] with hit/miss/eviction
//!   counters.
//! * [`engine`] — one persistent `p`-rank world per concurrency slot;
//!   executes plan batches and checksums results.
//! * [`scheduler`] — the queue + dispatcher threads: same-shape batching,
//!   kernel-thread budgeting, graceful drain.
//! * [`stats`] — request counters and per-shape latency histograms for the
//!   `stats` endpoint.
//! * [`server`] — stdio/TCP/Unix transports feeding the scheduler.

pub mod cache;
pub mod engine;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod stats;

pub use cache::{CacheStats, PlanCache};
pub use engine::{BatchOutcome, Engine, ItemResult};
pub use protocol::{Limits, MultiplyRequest, ProtoError, Request};
pub use scheduler::{ResponseSink, Scheduler, SchedulerConfig};
pub use server::{run, Listen, Server, ServerConfig};
pub use stats::{LatencyHist, ServerStats};
