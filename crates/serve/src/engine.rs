//! The execution engine: runs plan batches on a persistent world.
//!
//! One [`Engine`] owns one [`msgpass::PersistentWorld`] of `p` rank
//! threads; the scheduler gives each of its concurrency slots its own
//! engine. A batch executes as one job: every rank generates its local
//! input blocks deterministically from the request seeds
//! ([`dense::random::global_block`]), runs [`Plan::multiply_batch`] (one
//! sub-communicator build for the whole batch), and returns an order-fixed
//! checksum of its `C` blocks. The engine combines per-rank digests into
//! one checksum per request — equal requests always produce equal
//! checksums, which is the observable the CI smoke test pins.

use ca3dmm::{Dtype, Plan};
use dense::random::global_block;
use dense::{Mat, Scalar};
use layout::Layout;
use msgpass::{Comm, JobPanic, PersistentWorld, RunOptions, RunReport};
use std::sync::Arc;
use std::time::Instant;

/// FNV-1a over a stream of u64 words.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Digest of one rank's (or one matrix region's) elements: FNV over the
/// exact bit patterns (via `to_f64`, exact for f32), plus a plain sum.
fn digest_blocks<T: Scalar>(blocks: &[Mat<T>]) -> (u64, f64) {
    let hash = fnv1a(
        blocks
            .iter()
            .flat_map(|b| b.as_slice().iter().map(|v| v.to_f64().to_bits())),
    );
    let sum = blocks
        .iter()
        .map(|b| b.as_slice().iter().map(|v| v.to_f64()).sum::<f64>())
        .sum();
    (hash, sum)
}

/// The result of one multiply in a batch.
#[derive(Clone, Debug, PartialEq)]
pub struct ItemResult {
    /// Hex FNV-1a digest of `C`'s elements in `(rank, block, row-major)`
    /// order — the protocol's bitwise-identity observable.
    pub checksum: String,
    /// Plain element sum of `C` (numerically comparable to a serial
    /// reference).
    pub sum: f64,
}

/// One executed batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request results, in batch order.
    pub items: Vec<ItemResult>,
    /// The job's run report (timeline populated when traced).
    pub report: RunReport,
    /// Wall seconds the whole batch took (communication + compute).
    pub exec_secs: f64,
}

/// A persistent `p`-rank execution engine.
pub struct Engine {
    world: PersistentWorld,
}

impl Engine {
    /// Spawns the rank workers.
    pub fn new(p: usize) -> Engine {
        Engine {
            world: PersistentWorld::new(p),
        }
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// Warms the kernel pool and the rank workers with one tiny GEMM per
    /// rank, so the first real request doesn't pay thread spawn latency.
    pub fn warm(&self) {
        let _ = self.world.run_job(RunOptions::default(), |_ctx| {
            let a = Mat::<f64>::zeros(8, 8);
            let b = Mat::<f64>::zeros(8, 8);
            let mut c = Mat::<f64>::zeros(8, 8);
            dense::gemm(
                dense::GemmOp::NoTrans,
                dense::GemmOp::NoTrans,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
            );
        });
    }

    /// Runs `seeds.len()` same-plan multiplies as one job. `trace` turns on
    /// the event timeline (for per-request RunReport emission — the
    /// scheduler only traces unbatched report requests).
    ///
    /// # Errors
    /// [`JobPanic`] if a rank panicked; the engine remains usable.
    pub fn run_batch(
        &self,
        plan: &Arc<Plan>,
        seeds: &[(u64, u64)],
        kernel_threads: usize,
        trace: bool,
    ) -> Result<BatchOutcome, JobPanic> {
        let opts = RunOptions {
            trace,
            kernel_threads_per_rank: Some(kernel_threads),
            ..RunOptions::default()
        };
        let t0 = Instant::now();
        let (per_rank, report) = match plan.dtype() {
            Dtype::F64 => self.run_typed::<f64>(plan, seeds, opts)?,
            Dtype::F32 => self.run_typed::<f32>(plan, seeds, opts)?,
        };
        let exec_secs = t0.elapsed().as_secs_f64();
        // Combine: per item, hash the per-rank digests in rank order.
        let items = (0..seeds.len())
            .map(|i| {
                let checksum = fnv1a(per_rank.iter().map(|rank| rank[i].0));
                let sum = per_rank.iter().map(|rank| rank[i].1).sum();
                ItemResult {
                    checksum: format!("{checksum:016x}"),
                    sum,
                }
            })
            .collect();
        Ok(BatchOutcome {
            items,
            report,
            exec_secs,
        })
    }

    #[allow(clippy::type_complexity)]
    fn run_typed<T: Scalar>(
        &self,
        plan: &Arc<Plan>,
        seeds: &[(u64, u64)],
        opts: RunOptions,
    ) -> Result<(Vec<Vec<(u64, f64)>>, RunReport), JobPanic> {
        let plan = Arc::clone(plan);
        let seeds = seeds.to_vec();
        self.world.run_job(opts, move |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let items: Vec<(Vec<Mat<T>>, Vec<Mat<T>>)> = seeds
                .iter()
                .map(|&(sa, sb)| {
                    (
                        seeded_blocks::<T>(plan.a_layout(), me, sa),
                        seeded_blocks::<T>(plan.b_layout(), me, sb),
                    )
                })
                .collect();
            let outs = plan.multiply_batch(ctx, &world, &items);
            outs.iter()
                .map(|blocks| digest_blocks(blocks))
                .collect::<Vec<_>>()
        })
    }
}

/// Rank `me`'s blocks of the deterministic global matrix `seed` under
/// `layout` — generated directly per rectangle, no global materialization.
pub fn seeded_blocks<T: Scalar>(layout: &Layout, me: usize, seed: u64) -> Vec<Mat<T>> {
    layout
        .owned(me)
        .iter()
        .map(|r| global_block::<T>(seed, *r))
        .collect()
}

/// The checksum/sum a distributed result with `layout` would produce if its
/// elements were exactly `global` — the serial-reference counterpart of the
/// engine's digest (same rank/block/row-major order).
pub fn digest_of_global<T: Scalar>(global: &Mat<T>, layout: &Layout) -> ItemResult {
    let per_rank: Vec<(u64, f64)> = (0..layout.nranks())
        .map(|rank| digest_blocks(&layout.extract(global, rank)))
        .collect();
    ItemResult {
        checksum: format!("{:016x}", fnv1a(per_rank.iter().map(|d| d.0))),
        sum: per_rank.iter().map(|d| d.1).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca3dmm::Ca3dmmOptions;
    use dense::gemm::{gemm_naive, GemmOp};
    use dense::part::Rect;
    use gridopt::Problem;

    fn small_plan(m: usize, n: usize, k: usize, p: usize, dtype: Dtype) -> Arc<Plan> {
        let la = Layout::one_d_col(m, k, p);
        let lb = Layout::one_d_col(k, n, p);
        let lc = Layout::one_d_col(m, n, p);
        Arc::new(Plan::build(
            Problem::new(m, n, k, p),
            &Ca3dmmOptions::default(),
            dtype,
            GemmOp::NoTrans,
            &la,
            GemmOp::NoTrans,
            &lb,
            &lc,
        ))
    }

    #[test]
    fn equal_requests_have_equal_checksums_and_match_fresh_runs() {
        let engine = Engine::new(4);
        let plan = small_plan(24, 20, 16, 4, Dtype::F64);
        // one batch of three: two identical, one different seed
        let out = engine
            .run_batch(&plan, &[(5, 6), (5, 6), (7, 6)], 1, false)
            .unwrap();
        assert_eq!(out.items[0], out.items[1], "identical requests");
        assert_ne!(
            out.items[0].checksum, out.items[2].checksum,
            "different seed_a"
        );
        // a separate single-request job reproduces the same checksum
        let again = engine.run_batch(&plan, &[(5, 6)], 2, false).unwrap();
        assert_eq!(
            again.items[0], out.items[0],
            "batching does not change bits"
        );
    }

    #[test]
    fn sums_match_a_serial_reference() {
        let (m, n, k, p) = (18, 14, 10, 4);
        let engine = Engine::new(p);
        let plan = small_plan(m, n, k, p, Dtype::F64);
        let out = engine.run_batch(&plan, &[(3, 4)], 1, false).unwrap();
        let a = global_block::<f64>(3, Rect::new(0, 0, m, k));
        let b = global_block::<f64>(4, Rect::new(0, 0, k, n));
        let mut c = Mat::<f64>::zeros(m, n);
        gemm_naive(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut c);
        let reference = digest_of_global(&c, plan.c_layout());
        let scale = (k as f64) * reference.sum.abs().max(1.0);
        assert!(
            (out.items[0].sum - reference.sum).abs() <= 1e-12 * scale,
            "distributed sum {} vs serial {}",
            out.items[0].sum,
            reference.sum
        );
    }

    #[test]
    fn f32_requests_run() {
        let engine = Engine::new(2);
        let plan = small_plan(9, 9, 9, 2, Dtype::F32);
        let out = engine.run_batch(&plan, &[(1, 2)], 1, false).unwrap();
        assert_eq!(out.items.len(), 1);
        assert!(out.items[0].sum.is_finite());
    }

    #[test]
    fn traced_batches_carry_a_timeline() {
        let engine = Engine::new(4);
        let plan = small_plan(16, 16, 16, 4, Dtype::F64);
        let out = engine.run_batch(&plan, &[(1, 2)], 1, true).unwrap();
        assert_eq!(out.report.timeline.ranks(), 4);
        assert!(!out.report.timeline.is_empty());
        assert!(out.exec_secs > 0.0);
        let _ = plan.key(); // key remains accessible post-run
    }
}
