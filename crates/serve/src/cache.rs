//! The LRU plan cache.
//!
//! Keyed on [`PlanKey`] (shape, dtype, ops, layout fingerprints, and every
//! algorithm option that affects the solved grid or the redistribution
//! programs — see `ca3dmm::plan`). Values are `Arc<Plan>` so a plan being
//! executed by one scheduler slot survives its own eviction. Capacity is
//! entry-count based with least-recently-*used* eviction: a lookup hit
//! refreshes recency, an insert of a full cache evicts the stalest entry.
//!
//! Hit/miss/eviction counters feed the `stats` endpoint; the CI smoke test
//! asserts `hits > 0` after a repeated-shape request stream.

use ca3dmm::{Plan, PlanKey};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Counter snapshot for the `stats` endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub capacity: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Arc<Plan>,
    /// Logical access time: larger = more recent.
    tick: u64,
}

struct Inner {
    map: BTreeMap<PlanKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Thread-safe LRU cache of solved [`Plan`]s.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (`capacity >= 1`).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up `key`, counting a hit (and refreshing recency) or a miss.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<Plan>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.tick = tick;
                let plan = Arc::clone(&e.plan);
                inner.hits += 1;
                Some(plan)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly built plan, evicting the least-recently-used entry
    /// if the cache is full. Does not touch the hit/miss counters (the
    /// preceding [`PlanCache::get`] already counted the miss).
    pub fn put(&self, key: PlanKey, plan: Arc<Plan>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // O(n) stalest-entry scan; n is the cache capacity (tens), so
            // this is noise next to a plan build.
            if let Some(stalest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&stalest);
                inner.evictions += 1;
            }
        }
        inner.map.insert(key, Entry { plan, tick });
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// The cached keys, most recently used first (test/introspection hook).
    pub fn keys_by_recency(&self) -> Vec<PlanKey> {
        let inner = self.lock();
        let mut keys: Vec<(u64, PlanKey)> = inner.map.iter().map(|(k, e)| (e.tick, *k)).collect();
        keys.sort_by_key(|&(t, _)| std::cmp::Reverse(t));
        keys.into_iter().map(|(_, k)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca3dmm::{Ca3dmmOptions, Dtype};
    use dense::gemm::GemmOp;
    use gridopt::Problem;
    use layout::Layout;

    fn plan_for(m: usize, p: usize) -> (PlanKey, Arc<Plan>) {
        let la = Layout::one_d_col(m, m, p);
        let prob = Problem::new(m, m, m, p);
        let plan = Plan::build(
            prob,
            &Ca3dmmOptions::default(),
            Dtype::F64,
            GemmOp::NoTrans,
            &la,
            GemmOp::NoTrans,
            &la,
            &la,
        );
        (plan.key(), Arc::new(plan))
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = PlanCache::new(4);
        let (k, plan) = plan_for(8, 2);
        assert!(cache.get(&k).is_none());
        cache.put(k, plan);
        assert!(cache.get(&k).is_some());
        assert!(cache.get(&k).is_some());
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (2, 1, 1));
        assert!((st.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order_is_least_recently_used() {
        // Pin the eviction order exactly: capacity 2, insert A, B, touch A,
        // insert C -> B (stalest) is evicted, A and C survive.
        let cache = PlanCache::new(2);
        let (ka, pa) = plan_for(6, 2);
        let (kb, pb) = plan_for(8, 2);
        let (kc, pc) = plan_for(10, 2);
        cache.get(&ka); // miss
        cache.put(ka, pa);
        cache.get(&kb); // miss
        cache.put(kb, pb);
        assert!(cache.get(&ka).is_some(), "touch A -> A newest");
        cache.get(&kc); // miss
        cache.put(kc, pc);
        let st = cache.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.entries, 2);
        assert!(cache.get(&kb).is_none(), "B was the LRU entry");
        assert!(cache.get(&ka).is_some(), "A survived");
        assert!(cache.get(&kc).is_some(), "C survived");
        assert_eq!(cache.keys_by_recency(), vec![kc, ka]);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = PlanCache::new(2);
        let (ka, pa) = plan_for(6, 2);
        let (kb, pb) = plan_for(8, 2);
        cache.put(ka, Arc::clone(&pa));
        cache.put(kb, pb);
        cache.put(ka, pa); // refresh, not a new entry
        let st = cache.stats();
        assert_eq!(st.evictions, 0);
        assert_eq!(st.entries, 2);
    }

    #[test]
    fn evicted_plan_survives_while_referenced() {
        let cache = PlanCache::new(1);
        let (ka, pa) = plan_for(6, 2);
        let (kb, pb) = plan_for(8, 2);
        cache.put(ka, pa);
        let held = cache.get(&ka).unwrap();
        cache.put(kb, pb); // evicts A from the cache
        assert!(cache.get(&ka).is_none());
        // ... but the executing slot still owns a usable Arc
        assert_eq!(held.key(), ka);
    }
}
