//! Layout descriptions: which rank owns which rectangles of a global
//! matrix.

use dense::part::{offsets, split_even, Rect};
use dense::{Mat, Scalar};

/// A distribution of an `rows × cols` global matrix over `nranks` ranks:
/// each rank owns a list of disjoint rectangles whose union (over all
/// ranks) tiles the matrix exactly.
///
/// Local storage convention: a rank stores one row-major [`Mat`] per owned
/// rectangle, in the order of its rectangle list.
#[derive(Clone, Debug, PartialEq)]
pub struct Layout {
    rows: usize,
    cols: usize,
    rects: Vec<Vec<Rect>>,
}

impl Layout {
    /// Builds a layout from explicit per-rank rectangle lists and validates
    /// the partition property.
    ///
    /// # Panics
    /// If the rectangles overlap, exceed the matrix, or fail to cover it.
    pub fn from_rects(rows: usize, cols: usize, rects: Vec<Vec<Rect>>) -> Self {
        let l = Layout { rows, cols, rects };
        l.validate();
        l
    }

    /// Global matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of ranks the layout is defined over (some may own nothing).
    pub fn nranks(&self) -> usize {
        self.rects.len()
    }

    /// The rectangles owned by `rank`, in local storage order.
    pub fn owned(&self, rank: usize) -> &[Rect] {
        &self.rects[rank]
    }

    /// Elements owned by `rank`.
    pub fn owned_elems(&self, rank: usize) -> usize {
        self.rects[rank].iter().map(Rect::area).sum()
    }

    /// A structural fingerprint of the layout (FNV-1a over the shape and
    /// every rank's rectangle list, in order). Two layouts with the same
    /// fingerprint describe the same distribution for all practical
    /// purposes; plan caches use this as the layout component of their key
    /// so equal requests hash equal without storing whole layouts in the
    /// key.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.rows as u64);
        mix(self.cols as u64);
        mix(self.rects.len() as u64);
        for per_rank in &self.rects {
            mix(per_rank.len() as u64);
            for r in per_rank {
                mix(r.row0 as u64);
                mix(r.col0 as u64);
                mix(r.rows as u64);
                mix(r.cols as u64);
            }
        }
        h
    }

    /// Checks the partition property.
    ///
    /// # Panics
    /// With a description of the violation.
    pub fn validate(&self) {
        let full = Rect::full(self.rows, self.cols);
        let mut area = 0usize;
        let all: Vec<(usize, &Rect)> = self
            .rects
            .iter()
            .enumerate()
            .flat_map(|(r, v)| v.iter().map(move |rect| (r, rect)))
            .collect();
        for (r, rect) in &all {
            assert!(
                full.contains(rect) || rect.is_empty(),
                "rank {r} rect {rect:?} outside {}x{}",
                self.rows,
                self.cols
            );
            area += rect.area();
        }
        assert_eq!(
            area,
            self.rows * self.cols,
            "rect areas do not sum to the matrix size"
        );
        for (i, (ri, a)) in all.iter().enumerate() {
            for (rj, b) in all.iter().skip(i + 1) {
                assert!(
                    a.intersect(b).is_none(),
                    "rects overlap: rank {ri} {a:?} vs rank {rj} {b:?}"
                );
            }
        }
    }

    /// 1D column partition: rank `r` owns a contiguous block of columns
    /// (the artifact example program's input/output layout).
    pub fn one_d_col(rows: usize, cols: usize, p: usize) -> Self {
        let offs = offsets(&split_even(cols, p));
        Layout::from_rects(
            rows,
            cols,
            (0..p)
                .map(|r| vec![Rect::new(0, offs[r], rows, offs[r + 1] - offs[r])])
                .collect(),
        )
    }

    /// 1D row partition.
    pub fn one_d_row(rows: usize, cols: usize, p: usize) -> Self {
        let offs = offsets(&split_even(rows, p));
        Layout::from_rects(
            rows,
            cols,
            (0..p)
                .map(|r| vec![Rect::new(offs[r], 0, offs[r + 1] - offs[r], cols)])
                .collect(),
        )
    }

    /// 2D block partition over a `pr × pc` grid; rank `r` sits at grid
    /// position `(r / pc, r % pc)` (row-major rank order).
    pub fn two_d_block(rows: usize, cols: usize, pr: usize, pc: usize) -> Self {
        let ro = offsets(&split_even(rows, pr));
        let co = offsets(&split_even(cols, pc));
        Layout::from_rects(
            rows,
            cols,
            (0..pr * pc)
                .map(|r| {
                    let (i, j) = (r / pc, r % pc);
                    vec![Rect::new(
                        ro[i],
                        co[j],
                        ro[i + 1] - ro[i],
                        co[j + 1] - co[j],
                    )]
                })
                .collect(),
        )
    }

    /// 2D block-cyclic partition (the ScaLAPACK layout) with tile size
    /// `br × bc` over a `pr × pc` grid, row-major rank order.
    pub fn block_cyclic(
        rows: usize,
        cols: usize,
        pr: usize,
        pc: usize,
        br: usize,
        bc: usize,
    ) -> Self {
        assert!(br > 0 && bc > 0, "tile sizes must be positive");
        let mut rects: Vec<Vec<Rect>> = vec![Vec::new(); pr * pc];
        let tiles_r = rows.div_ceil(br);
        let tiles_c = cols.div_ceil(bc);
        for ti in 0..tiles_r {
            for tj in 0..tiles_c {
                let owner = (ti % pr) * pc + (tj % pc);
                let r0 = ti * br;
                let c0 = tj * bc;
                rects[owner].push(Rect::new(r0, c0, br.min(rows - r0), bc.min(cols - c0)));
            }
        }
        Layout::from_rects(rows, cols, rects)
    }

    /// Everything on one rank (`owner`), the others empty — used to gather
    /// results for verification.
    pub fn on_single_rank(rows: usize, cols: usize, p: usize, owner: usize) -> Self {
        let mut rects: Vec<Vec<Rect>> = vec![Vec::new(); p];
        rects[owner].push(Rect::full(rows, cols));
        Layout::from_rects(rows, cols, rects)
    }

    /// Extracts `rank`'s local blocks from a global matrix (test/driver
    /// helper).
    pub fn extract<T: Scalar>(&self, global: &Mat<T>, rank: usize) -> Vec<Mat<T>> {
        assert_eq!(
            global.shape(),
            (self.rows, self.cols),
            "global shape mismatch"
        );
        self.rects[rank].iter().map(|r| global.block(*r)).collect()
    }

    /// Reassembles the global matrix from every rank's local blocks
    /// (test/driver helper).
    pub fn assemble<T: Scalar>(&self, parts: &[Vec<Mat<T>>]) -> Mat<T> {
        assert_eq!(parts.len(), self.nranks(), "need parts for every rank");
        let mut out = Mat::zeros(self.rows, self.cols);
        for (rank, blocks) in parts.iter().enumerate() {
            assert_eq!(
                blocks.len(),
                self.rects[rank].len(),
                "rank {rank} block count mismatch"
            );
            for (rect, block) in self.rects[rank].iter().zip(blocks) {
                out.set_block(*rect, block);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::random::random_mat;

    #[test]
    fn one_d_layouts_partition() {
        Layout::one_d_col(10, 7, 3).validate();
        Layout::one_d_row(7, 10, 4).validate();
        let l = Layout::one_d_col(4, 10, 3);
        assert_eq!(l.owned(0), &[Rect::new(0, 0, 4, 4)]);
        assert_eq!(l.owned(1), &[Rect::new(0, 4, 4, 3)]);
        assert_eq!(l.owned_elems(0), 16);
    }

    #[test]
    fn two_d_block_positions() {
        let l = Layout::two_d_block(6, 6, 2, 3);
        assert_eq!(l.nranks(), 6);
        assert_eq!(l.owned(0), &[Rect::new(0, 0, 3, 2)]);
        assert_eq!(l.owned(5), &[Rect::new(3, 4, 3, 2)]);
    }

    #[test]
    fn block_cyclic_tiles() {
        let l = Layout::block_cyclic(5, 5, 2, 2, 2, 2);
        l.validate();
        // rank 0 owns tiles (0,0),(0,2),(2,0),(2,2) -> 4 rects
        assert_eq!(l.owned(0).len(), 4);
        // the bottom-right 1x1 remainder tile lands at tile (2,2) -> rank 0
        assert!(l.owned(0).contains(&Rect::new(4, 4, 1, 1)));
    }

    #[test]
    fn extract_assemble_round_trip() {
        let g = random_mat::<f64>(9, 11, 5);
        for l in [
            Layout::one_d_col(9, 11, 4),
            Layout::one_d_row(9, 11, 3),
            Layout::two_d_block(9, 11, 2, 2),
            Layout::block_cyclic(9, 11, 2, 2, 3, 2),
            Layout::on_single_rank(9, 11, 4, 2),
        ] {
            let parts: Vec<_> = (0..l.nranks()).map(|r| l.extract(&g, r)).collect();
            let back = l.assemble(&parts);
            assert_eq!(back.max_abs_diff(&g), 0.0);
        }
    }

    #[test]
    fn empty_rank_allowed() {
        // more ranks than columns: some ranks own 0 columns
        let l = Layout::one_d_col(4, 2, 5);
        l.validate();
        assert_eq!(l.owned_elems(4), 0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_rects_rejected() {
        // total area matches (2+2 = 4) but the rects overlap
        Layout::from_rects(
            2,
            2,
            vec![vec![Rect::new(0, 0, 1, 2)], vec![Rect::new(0, 0, 1, 2)]],
        );
    }

    #[test]
    #[should_panic(expected = "sum to the matrix size")]
    fn gaps_rejected() {
        Layout::from_rects(2, 2, vec![vec![Rect::new(0, 0, 1, 2)], vec![]]);
    }
}
