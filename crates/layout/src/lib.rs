//! Distributed matrix layouts and redistribution.
//!
//! The paper's Algorithm 1 begins and ends with redistribution steps
//! (steps 4 and 8): the user hands CA3DMM matrices in *their* distribution
//! (1D, 2D, block-cyclic, …), CA3DMM converts them to its native internal
//! distribution, and converts the final `C` back. §III-F: "The matrix
//! redistribution subroutine … simply packs and unpacks matrix blocks and
//! exchanges data using `MPI_Neighbor_alltoallv`."
//!
//! A [`Layout`] assigns every element of a global matrix to exactly one rank
//! as a list of rectangles per rank; [`redistribute`] moves data between any
//! two layouts over the same communicator by rectangle intersection +
//! pairwise all-to-all, optionally applying a transpose on the way (this is
//! how CA3DMM "utilizes the redistribution steps of A and B for computing
//! `C = op(A) × op(B)`").

pub mod dist;
pub mod redist;

pub use dist::Layout;
pub use redist::{redistribute, redistribute_planned, RankRedistPlan, RedistPlan};
