//! Redistribution between arbitrary layouts (Algorithm 1 steps 4 and 8).

use crate::dist::Layout;
use dense::gemm::GemmOp;
use dense::part::Rect;
use dense::{Mat, Scalar};
use msgpass::collectives::alltoallv;
use msgpass::{Comm, RankCtx};

/// Moves a distributed matrix from `src` (describing `X`) to `dst`
/// (describing `op(X)`), applying the transpose during packing when
/// `op == Trans`. Collective over `comm`; every rank passes its local
/// blocks (one [`Mat`] per owned rectangle of `src`, in order) and receives
/// its local blocks of the destination layout.
///
/// This is the paper's pack → `MPI_Neighbor_alltoallv` → unpack subroutine
/// (§III-F); it is deliberately unoptimized, as in the artifact.
///
/// # Panics
/// On shape mismatches between the layouts, the communicator, and the local
/// blocks.
pub fn redistribute<T: Scalar>(
    comm: &Comm,
    ctx: &RankCtx,
    src: &Layout,
    src_blocks: &[Mat<T>],
    dst: &Layout,
    op: GemmOp,
) -> Vec<Mat<T>> {
    let p = comm.size();
    assert_eq!(
        src.nranks(),
        p,
        "src layout rank count != communicator size"
    );
    assert_eq!(
        dst.nranks(),
        p,
        "dst layout rank count != communicator size"
    );
    let (sr, sc) = src.shape();
    let want_dst = op.apply_shape(sr, sc);
    assert_eq!(
        dst.shape(),
        want_dst,
        "dst layout shape must equal op(src) shape"
    );
    let me = comm.rank();
    assert_eq!(
        src_blocks.len(),
        src.owned(me).len(),
        "one local block per owned src rect required"
    );
    for (b, r) in src_blocks.iter().zip(src.owned(me)) {
        assert_eq!(b.shape(), (r.rows, r.cols), "local block shape mismatch");
    }

    // Pack: for each destination rank, the intersections of my src rects
    // with its dst rects, serialized in (dst rect index, src rect index)
    // order, each intersection row-major in *destination* coordinates.
    let mut sends: Vec<Vec<T>> = Vec::with_capacity(p);
    for peer in 0..p {
        let mut buf = Vec::new();
        for dst_rect in dst.owned(peer) {
            for (si, src_rect) in src.owned(me).iter().enumerate() {
                if let Some(inter_dst) = intersect_in_dst(dst_rect, src_rect, op) {
                    pack(&mut buf, &src_blocks[si], src_rect, &inter_dst, op);
                }
            }
        }
        sends.push(buf);
    }

    let recvs = alltoallv(comm, ctx, sends);

    // Unpack: mirror of the packing order, per source rank.
    let mut out: Vec<Mat<T>> = dst
        .owned(me)
        .iter()
        .map(|r| Mat::zeros(r.rows, r.cols))
        .collect();
    for (peer, buf) in recvs.iter().enumerate() {
        let mut pos = 0usize;
        for (di, dst_rect) in dst.owned(me).iter().enumerate() {
            for src_rect in src.owned(peer) {
                if let Some(inter_dst) = intersect_in_dst(dst_rect, src_rect, op) {
                    pos = unpack(&mut out[di], dst_rect, &inter_dst, buf, pos);
                }
            }
        }
        assert_eq!(pos, buf.len(), "unconsumed bytes from rank {peer}");
    }
    out
}

/// The overlap of a destination rectangle (in `op(X)` coordinates) with a
/// source rectangle (in `X` coordinates), expressed in destination
/// coordinates.
fn intersect_in_dst(dst_rect: &Rect, src_rect: &Rect, op: GemmOp) -> Option<Rect> {
    let src_in_dst = match op {
        GemmOp::NoTrans => *src_rect,
        GemmOp::Trans => src_rect.transposed(),
    };
    dst_rect.intersect(&src_in_dst)
}

/// Serializes `inter_dst` (destination coordinates) row-major, reading from
/// the local block that stores `src_rect`.
fn pack<T: Scalar>(
    buf: &mut Vec<T>,
    block: &Mat<T>,
    src_rect: &Rect,
    inter_dst: &Rect,
    op: GemmOp,
) {
    buf.reserve(inter_dst.area());
    match op {
        GemmOp::NoTrans => {
            for r in 0..inter_dst.rows {
                let li = inter_dst.row0 + r - src_rect.row0;
                let lj = inter_dst.col0 - src_rect.col0;
                let row = &block.row(li)[lj..lj + inter_dst.cols];
                buf.extend_from_slice(row);
            }
        }
        GemmOp::Trans => {
            // dst (r, c) = X (c, r)
            for r in 0..inter_dst.rows {
                for c in 0..inter_dst.cols {
                    let xi = inter_dst.col0 + c - src_rect.row0;
                    let xj = inter_dst.row0 + r - src_rect.col0;
                    buf.push(block.get(xi, xj));
                }
            }
        }
    }
}

/// Deserializes one intersection back into the local destination block;
/// returns the advanced cursor.
fn unpack<T: Scalar>(
    block: &mut Mat<T>,
    dst_rect: &Rect,
    inter_dst: &Rect,
    buf: &[T],
    mut pos: usize,
) -> usize {
    for r in 0..inter_dst.rows {
        let li = inter_dst.row0 + r - dst_rect.row0;
        let lj = inter_dst.col0 - dst_rect.col0;
        let n = inter_dst.cols;
        let dst_row_start = li * dst_rect.cols + lj;
        block.as_mut_slice()[dst_row_start..dst_row_start + n].copy_from_slice(&buf[pos..pos + n]);
        pos += n;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::random::random_mat;
    use msgpass::World;

    /// End-to-end check: distribute a random global matrix in `src`,
    /// redistribute to `dst` with `op`, and compare with extracting `dst`
    /// from the (possibly transposed) global matrix.
    fn check(rows: usize, cols: usize, p: usize, src: Layout, dst: Layout, op: GemmOp) {
        let global = random_mat::<f64>(rows, cols, 1234);
        let expect_global = match op {
            GemmOp::NoTrans => global.clone(),
            GemmOp::Trans => global.transpose(),
        };
        let results = World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let mine = src.extract(&global, comm.rank());
            redistribute(&comm, ctx, &src, &mine, &dst, op)
        });
        for (rank, got) in results.iter().enumerate() {
            let want = dst.extract(&expect_global, rank);
            assert_eq!(got.len(), want.len(), "rank {rank} block count");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.max_abs_diff(w), 0.0, "rank {rank}");
            }
        }
    }

    #[test]
    fn col_to_row() {
        check(
            9,
            7,
            4,
            Layout::one_d_col(9, 7, 4),
            Layout::one_d_row(9, 7, 4),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn col_to_two_d() {
        check(
            12,
            10,
            6,
            Layout::one_d_col(12, 10, 6),
            Layout::two_d_block(12, 10, 2, 3),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn block_cyclic_to_block() {
        check(
            11,
            13,
            4,
            Layout::block_cyclic(11, 13, 2, 2, 3, 2),
            Layout::two_d_block(11, 13, 2, 2),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn identity_redistribution() {
        let l = Layout::two_d_block(8, 8, 2, 2);
        check(8, 8, 4, l.clone(), l, GemmOp::NoTrans);
    }

    #[test]
    fn transpose_col_to_col() {
        check(
            9,
            5,
            3,
            Layout::one_d_col(9, 5, 3),
            Layout::one_d_col(5, 9, 3),
            GemmOp::Trans,
        );
    }

    #[test]
    fn transpose_to_two_d() {
        check(
            7,
            12,
            6,
            Layout::one_d_row(7, 12, 6),
            Layout::two_d_block(12, 7, 3, 2),
            GemmOp::Trans,
        );
    }

    #[test]
    fn gather_to_single_rank() {
        check(
            6,
            6,
            4,
            Layout::two_d_block(6, 6, 2, 2),
            Layout::on_single_rank(6, 6, 4, 3),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn scatter_from_single_rank_with_transpose() {
        check(
            6,
            4,
            4,
            Layout::on_single_rank(6, 4, 4, 0),
            Layout::one_d_col(4, 6, 4),
            GemmOp::Trans,
        );
    }

    #[test]
    fn empty_ranks_participate() {
        // 5 ranks but only 2 columns: ranks 2..4 own nothing in src
        check(
            4,
            2,
            5,
            Layout::one_d_col(4, 2, 5),
            Layout::one_d_row(4, 2, 5),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn redistribution_traffic_excludes_local_data() {
        // identity redistribution must move zero bytes
        let l = Layout::one_d_col(8, 8, 4);
        let global = random_mat::<f64>(8, 8, 7);
        let (_, report) = World::run_traced(4, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("redist");
            let mine = l.extract(&global, comm.rank());
            redistribute(&comm, ctx, &l, &mine, &l, GemmOp::NoTrans)
        });
        assert_eq!(report.phase_total("redist").bytes, 0);
    }
}
