//! Redistribution between arbitrary layouts (Algorithm 1 steps 4 and 8).
//!
//! Two entry points share one engine: [`redistribute`] computes the
//! rectangle intersections on the fly (one-shot calls), while a
//! [`RedistPlan`] precomputes them once per `(src, dst, op)` triple so an
//! iterative caller — or the `ca3dmm-serve` plan cache — pays the geometry
//! only on the first multiply of a shape. Both paths pack, exchange, and
//! unpack in exactly the same order, so their results are bitwise
//! identical.

use crate::dist::Layout;
use dense::gemm::GemmOp;
use dense::part::Rect;
use dense::{Mat, Scalar};
use msgpass::collectives::alltoallv;
use msgpass::{Comm, RankCtx};

/// One packing step of a rank's send program: copy the `inter_dst` region
/// (destination coordinates) out of local source block `si`.
#[derive(Clone, Debug)]
struct SendPiece {
    si: usize,
    src_rect: Rect,
    inter_dst: Rect,
}

/// One unpacking step of a rank's receive program: fill the `inter_dst`
/// region of local destination block `di`.
#[derive(Clone, Debug)]
struct RecvPiece {
    di: usize,
    inter_dst: Rect,
}

/// One rank's precomputed redistribution program for a fixed
/// `(src, dst, op)` triple: which pieces it packs for every peer and which
/// pieces it unpacks from every peer, in the exact order [`redistribute`]
/// would compute them on the fly.
#[derive(Clone, Debug)]
pub struct RankRedistPlan {
    op: GemmOp,
    nranks: usize,
    /// This rank's source rectangles (for validating the caller's blocks).
    src_rects: Vec<Rect>,
    /// This rank's destination rectangles (allocation shapes of the output).
    dst_rects: Vec<Rect>,
    /// Per peer: the pieces packed into the buffer sent to that peer.
    sends: Vec<Vec<SendPiece>>,
    /// Per peer: the pieces unpacked from the buffer received from it.
    recvs: Vec<Vec<RecvPiece>>,
}

impl RankRedistPlan {
    /// Builds rank `me`'s program. Validates the layout pair once;
    /// executing the plan re-validates only the local blocks.
    ///
    /// # Panics
    /// If the layouts disagree with each other or with the communicator
    /// size implied by `src`.
    pub fn new(src: &Layout, dst: &Layout, op: GemmOp, me: usize) -> Self {
        let p = src.nranks();
        assert_eq!(
            dst.nranks(),
            p,
            "src/dst layouts span different rank counts"
        );
        let (sr, sc) = src.shape();
        assert_eq!(
            dst.shape(),
            op.apply_shape(sr, sc),
            "dst layout shape must equal op(src) shape"
        );
        assert!(me < p, "rank {me} outside the {p}-rank layouts");
        // Send side: for each peer, intersections in (dst rect index,
        // src rect index) order — the wire order both sides agree on.
        let sends = (0..p)
            .map(|peer| {
                let mut pieces = Vec::new();
                for dst_rect in dst.owned(peer) {
                    for (si, src_rect) in src.owned(me).iter().enumerate() {
                        if let Some(inter_dst) = intersect_in_dst(dst_rect, src_rect, op) {
                            pieces.push(SendPiece {
                                si,
                                src_rect: *src_rect,
                                inter_dst,
                            });
                        }
                    }
                }
                pieces
            })
            .collect();
        // Receive side: the mirror image, per source peer.
        let recvs = (0..p)
            .map(|peer| {
                let mut pieces = Vec::new();
                for (di, dst_rect) in dst.owned(me).iter().enumerate() {
                    for src_rect in src.owned(peer) {
                        if let Some(inter_dst) = intersect_in_dst(dst_rect, src_rect, op) {
                            pieces.push(RecvPiece { di, inter_dst });
                        }
                    }
                }
                pieces
            })
            .collect();
        RankRedistPlan {
            op,
            nranks: p,
            src_rects: src.owned(me).to_vec(),
            dst_rects: dst.owned(me).to_vec(),
            sends,
            recvs,
        }
    }

    /// Total elements this rank packs (bytes on the wire / element size).
    pub fn send_elems(&self) -> usize {
        self.sends
            .iter()
            .flatten()
            .map(|piece| piece.inter_dst.area())
            .sum()
    }
}

/// A full redistribution plan: every rank's [`RankRedistPlan`] for one
/// `(src, dst, op)` triple. Built once (outside the parallel region, like a
/// [`Layout`]) and shared by all rank threads.
#[derive(Clone, Debug)]
pub struct RedistPlan {
    per_rank: Vec<RankRedistPlan>,
}

impl RedistPlan {
    /// Precomputes the program of every rank.
    pub fn new(src: &Layout, dst: &Layout, op: GemmOp) -> Self {
        RedistPlan {
            per_rank: (0..src.nranks())
                .map(|me| RankRedistPlan::new(src, dst, op, me))
                .collect(),
        }
    }

    /// Rank `me`'s program.
    pub fn for_rank(&self, me: usize) -> &RankRedistPlan {
        &self.per_rank[me]
    }

    /// Number of ranks the plan spans.
    pub fn nranks(&self) -> usize {
        self.per_rank.len()
    }
}

/// Executes a precomputed redistribution program. Collective over `comm`
/// (which must span the plan's rank count); semantically identical to
/// [`redistribute`] on the layouts the plan was built from, without
/// recomputing any rectangle intersection.
///
/// # Panics
/// If the local blocks disagree with the plan's source rectangles.
pub fn redistribute_planned<T: Scalar>(
    comm: &Comm,
    ctx: &RankCtx,
    plan: &RankRedistPlan,
    src_blocks: &[Mat<T>],
) -> Vec<Mat<T>> {
    let p = comm.size();
    assert_eq!(plan.nranks, p, "plan rank count != communicator size");
    assert_eq!(
        src_blocks.len(),
        plan.src_rects.len(),
        "one local block per owned src rect required"
    );
    for (b, r) in src_blocks.iter().zip(&plan.src_rects) {
        assert_eq!(b.shape(), (r.rows, r.cols), "local block shape mismatch");
    }

    // Pack each peer's buffer following the precomputed program.
    let mut sends: Vec<Vec<T>> = Vec::with_capacity(p);
    for pieces in &plan.sends {
        let mut buf = Vec::new();
        for piece in pieces {
            pack(
                &mut buf,
                &src_blocks[piece.si],
                &piece.src_rect,
                &piece.inter_dst,
                plan.op,
            );
        }
        sends.push(buf);
    }

    let recvs = alltoallv(comm, ctx, sends);

    // Unpack: mirror of the packing order, per source rank.
    let mut out: Vec<Mat<T>> = plan
        .dst_rects
        .iter()
        .map(|r| Mat::zeros(r.rows, r.cols))
        .collect();
    for (peer, buf) in recvs.iter().enumerate() {
        let mut pos = 0usize;
        for piece in &plan.recvs[peer] {
            pos = unpack(
                &mut out[piece.di],
                &plan.dst_rects[piece.di],
                &piece.inter_dst,
                buf,
                pos,
            );
        }
        assert_eq!(pos, buf.len(), "unconsumed bytes from rank {peer}");
    }
    out
}

/// Moves a distributed matrix from `src` (describing `X`) to `dst`
/// (describing `op(X)`), applying the transpose during packing when
/// `op == Trans`. Collective over `comm`; every rank passes its local
/// blocks (one [`Mat`] per owned rectangle of `src`, in order) and receives
/// its local blocks of the destination layout.
///
/// This is the paper's pack → `MPI_Neighbor_alltoallv` → unpack subroutine
/// (§III-F); it is deliberately unoptimized, as in the artifact. Internally
/// it builds this rank's [`RankRedistPlan`] on the fly and executes it, so
/// it is bitwise identical to the planned path.
///
/// # Panics
/// On shape mismatches between the layouts, the communicator, and the local
/// blocks.
pub fn redistribute<T: Scalar>(
    comm: &Comm,
    ctx: &RankCtx,
    src: &Layout,
    src_blocks: &[Mat<T>],
    dst: &Layout,
    op: GemmOp,
) -> Vec<Mat<T>> {
    assert_eq!(
        src.nranks(),
        comm.size(),
        "src layout rank count != communicator size"
    );
    let plan = RankRedistPlan::new(src, dst, op, comm.rank());
    redistribute_planned(comm, ctx, &plan, src_blocks)
}

/// The overlap of a destination rectangle (in `op(X)` coordinates) with a
/// source rectangle (in `X` coordinates), expressed in destination
/// coordinates.
fn intersect_in_dst(dst_rect: &Rect, src_rect: &Rect, op: GemmOp) -> Option<Rect> {
    let src_in_dst = match op {
        GemmOp::NoTrans => *src_rect,
        GemmOp::Trans => src_rect.transposed(),
    };
    dst_rect.intersect(&src_in_dst)
}

/// Serializes `inter_dst` (destination coordinates) row-major, reading from
/// the local block that stores `src_rect`.
fn pack<T: Scalar>(
    buf: &mut Vec<T>,
    block: &Mat<T>,
    src_rect: &Rect,
    inter_dst: &Rect,
    op: GemmOp,
) {
    buf.reserve(inter_dst.area());
    match op {
        GemmOp::NoTrans => {
            for r in 0..inter_dst.rows {
                let li = inter_dst.row0 + r - src_rect.row0;
                let lj = inter_dst.col0 - src_rect.col0;
                let row = &block.row(li)[lj..lj + inter_dst.cols];
                buf.extend_from_slice(row);
            }
        }
        GemmOp::Trans => {
            // dst (r, c) = X (c, r)
            for r in 0..inter_dst.rows {
                for c in 0..inter_dst.cols {
                    let xi = inter_dst.col0 + c - src_rect.row0;
                    let xj = inter_dst.row0 + r - src_rect.col0;
                    buf.push(block.get(xi, xj));
                }
            }
        }
    }
}

/// Deserializes one intersection back into the local destination block;
/// returns the advanced cursor.
fn unpack<T: Scalar>(
    block: &mut Mat<T>,
    dst_rect: &Rect,
    inter_dst: &Rect,
    buf: &[T],
    mut pos: usize,
) -> usize {
    for r in 0..inter_dst.rows {
        let li = inter_dst.row0 + r - dst_rect.row0;
        let lj = inter_dst.col0 - dst_rect.col0;
        let n = inter_dst.cols;
        let dst_row_start = li * dst_rect.cols + lj;
        block.as_mut_slice()[dst_row_start..dst_row_start + n].copy_from_slice(&buf[pos..pos + n]);
        pos += n;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::random::random_mat;
    use msgpass::World;

    /// End-to-end check: distribute a random global matrix in `src`,
    /// redistribute to `dst` with `op`, and compare with extracting `dst`
    /// from the (possibly transposed) global matrix.
    fn check(rows: usize, cols: usize, p: usize, src: Layout, dst: Layout, op: GemmOp) {
        let global = random_mat::<f64>(rows, cols, 1234);
        let expect_global = match op {
            GemmOp::NoTrans => global.clone(),
            GemmOp::Trans => global.transpose(),
        };
        let results = World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let mine = src.extract(&global, comm.rank());
            redistribute(&comm, ctx, &src, &mine, &dst, op)
        });
        for (rank, got) in results.iter().enumerate() {
            let want = dst.extract(&expect_global, rank);
            assert_eq!(got.len(), want.len(), "rank {rank} block count");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.max_abs_diff(w), 0.0, "rank {rank}");
            }
        }
    }

    #[test]
    fn col_to_row() {
        check(
            9,
            7,
            4,
            Layout::one_d_col(9, 7, 4),
            Layout::one_d_row(9, 7, 4),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn col_to_two_d() {
        check(
            12,
            10,
            6,
            Layout::one_d_col(12, 10, 6),
            Layout::two_d_block(12, 10, 2, 3),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn block_cyclic_to_block() {
        check(
            11,
            13,
            4,
            Layout::block_cyclic(11, 13, 2, 2, 3, 2),
            Layout::two_d_block(11, 13, 2, 2),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn identity_redistribution() {
        let l = Layout::two_d_block(8, 8, 2, 2);
        check(8, 8, 4, l.clone(), l, GemmOp::NoTrans);
    }

    #[test]
    fn transpose_col_to_col() {
        check(
            9,
            5,
            3,
            Layout::one_d_col(9, 5, 3),
            Layout::one_d_col(5, 9, 3),
            GemmOp::Trans,
        );
    }

    #[test]
    fn transpose_to_two_d() {
        check(
            7,
            12,
            6,
            Layout::one_d_row(7, 12, 6),
            Layout::two_d_block(12, 7, 3, 2),
            GemmOp::Trans,
        );
    }

    #[test]
    fn gather_to_single_rank() {
        check(
            6,
            6,
            4,
            Layout::two_d_block(6, 6, 2, 2),
            Layout::on_single_rank(6, 6, 4, 3),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn scatter_from_single_rank_with_transpose() {
        check(
            6,
            4,
            4,
            Layout::on_single_rank(6, 4, 4, 0),
            Layout::one_d_col(4, 6, 4),
            GemmOp::Trans,
        );
    }

    #[test]
    fn empty_ranks_participate() {
        // 5 ranks but only 2 columns: ranks 2..4 own nothing in src
        check(
            4,
            2,
            5,
            Layout::one_d_col(4, 2, 5),
            Layout::one_d_row(4, 2, 5),
            GemmOp::NoTrans,
        );
    }

    #[test]
    fn planned_path_is_bitwise_identical_to_direct() {
        // The daemon's plan cache depends on this: a precomputed
        // RedistPlan must produce exactly the bytes the on-the-fly path
        // produces, block for block.
        let (rows, cols, p) = (11, 13, 5);
        let src = Layout::one_d_col(rows, cols, p);
        let dst = Layout::two_d_block(cols, rows, 5, 1);
        let op = GemmOp::Trans;
        let plan = RedistPlan::new(&src, &dst, op);
        assert_eq!(plan.nranks(), p);
        let global = random_mat::<f64>(rows, cols, 99);
        let direct = World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let mine = src.extract(&global, comm.rank());
            redistribute(&comm, ctx, &src, &mine, &dst, op)
        });
        let planned = World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let mine = src.extract(&global, comm.rank());
            redistribute_planned(&comm, ctx, plan.for_rank(comm.rank()), &mine)
        });
        for (rank, (d, pl)) in direct.iter().zip(&planned).enumerate() {
            assert_eq!(d.len(), pl.len(), "rank {rank} block count");
            for (a, b) in d.iter().zip(pl) {
                assert_eq!(a.as_slice(), b.as_slice(), "rank {rank} differs");
            }
        }
    }

    #[test]
    fn redistribution_traffic_excludes_local_data() {
        // identity redistribution must move zero bytes
        let l = Layout::one_d_col(8, 8, 4);
        let global = random_mat::<f64>(8, 8, 7);
        let (_, report) = World::run_traced(4, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("redist");
            let mine = l.extract(&global, comm.rank());
            redistribute(&comm, ctx, &l, &mine, &l, GemmOp::NoTrans)
        });
        assert_eq!(report.phase_total("redist").bytes, 0);
    }
}
