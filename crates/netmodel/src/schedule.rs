//! The schedule IR: what one (maximally loaded) rank does, phase by phase.

/// The communication group one phase runs in, as the cost model sees it.
///
/// Every group in this workspace is an arithmetic progression of ranks
/// (`base + i·stride`), a consequence of CA3DMM's column-major rank order —
/// so `stride` together with the placement's ranks-per-node determines how
/// much of the group's ring/collective traffic stays inside a node:
///
/// * `stride = 1` (Cannon groups, grid columns): ring neighbours are
///   adjacent ranks, so in pure-MPI mode almost all shift traffic is
///   intra-node — the effect behind the paper's Fig. 4 observation that
///   pure MPI has "a smaller inter-node communication volume";
/// * `stride ≥ ranks_per_node` (k-task reduce groups at scale): every hop
///   crosses nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetGroup {
    /// Number of ranks in the group.
    pub size: usize,
    /// Rank distance between consecutive members.
    pub stride: usize,
    /// Ranks per node in this run's placement (24 pure MPI, 1 hybrid,
    /// 2 GPU).
    pub ranks_per_node: usize,
    /// True for phases whose traffic is scattered across all peers
    /// (redistribution all-to-alls) rather than neighbour rings.
    pub scattered: bool,
}

impl NetGroup {
    /// A group of contiguous ranks under a placement.
    pub fn contiguous(size: usize, ranks_per_node: usize) -> Self {
        NetGroup {
            size,
            stride: 1,
            ranks_per_node,
            scattered: false,
        }
    }

    /// A strided group under a placement.
    pub fn strided(size: usize, stride: usize, ranks_per_node: usize) -> Self {
        NetGroup {
            size,
            stride: stride.max(1),
            ranks_per_node,
            scattered: false,
        }
    }

    /// An all-to-all style group (redistribution).
    pub fn scattered(size: usize, ranks_per_node: usize) -> Self {
        NetGroup {
            size,
            stride: 1,
            ranks_per_node,
            scattered: true,
        }
    }

    /// A group in a flat network: one rank per node (unit tests; every hop
    /// is "inter-node" at the full single-rank bandwidth).
    pub fn flat(size: usize) -> Self {
        NetGroup {
            size,
            stride: 1,
            ranks_per_node: 1,
            scattered: false,
        }
    }

    /// Intra-node traffic fraction for *pairwise-exchange* collectives
    /// (MPICH's large-message reduce-scatter): partners sit at every
    /// distance `1..size`, so only the members sharing this rank's node
    /// are intra — `(members_on_node − 1)/(size − 1)`. This is why the
    /// k-dimension reduction stays expensive in pure-MPI mode while
    /// Cannon's fixed neighbour shifts become nearly free (§III-B: Cannon
    /// "only requires neighbor communications with fixed patterns").
    pub fn pairwise_intra_fraction(&self) -> f64 {
        if self.size <= 1 {
            return 1.0;
        }
        let rpn = self.ranks_per_node.max(1);
        let span = self.stride * (self.size - 1) + 1;
        if span <= rpn {
            return 1.0;
        }
        let members_on_node = (rpn / self.stride.max(1)).clamp(1, self.size);
        ((members_on_node as f64 - 1.0) / (self.size as f64 - 1.0)).clamp(0.0, 1.0)
    }

    /// Node layout `(node_count, max_members_per_node)` of the group's
    /// arithmetic progression, with the base taken at a node boundary. This
    /// mirrors `msgpass::collectives::node_map` for CA3DMM's groups: the
    /// runtime's group bases are always smaller than the member stride (or
    /// land the whole group inside one node), so the base-0 layout is the
    /// layout every group of the phase actually has. Groups with exotic
    /// bases could differ; CA3DMM's column-major rank order never produces
    /// them.
    pub fn node_layout(&self) -> (usize, usize) {
        let rpn = self.ranks_per_node.max(1);
        let mut nodes = 0usize;
        let mut members = 0usize;
        let mut max_members = 0usize;
        let mut last_node = usize::MAX;
        for i in 0..self.size {
            let node = i * self.stride / rpn;
            if node != last_node {
                nodes += 1;
                members = 0;
                last_node = node;
            }
            members += 1;
            max_members = max_members.max(members);
        }
        (nodes, max_members)
    }

    /// The two-level selection rule the runtime applies
    /// (`msgpass::collectives::node_map`): hierarchical collectives engage
    /// when the group spans ≥ 2 nodes and at least one node holds ≥ 2
    /// members.
    pub fn hier_engages(&self) -> bool {
        let (nodes, max_members) = self.node_layout();
        nodes >= 2 && max_members >= 2
    }

    /// Fraction of this group's traffic that stays within a node.
    pub fn intra_fraction(&self) -> f64 {
        let rpn = self.ranks_per_node.max(1);
        if self.size <= 1 {
            return 1.0;
        }
        if self.scattered {
            // traffic goes to all peers uniformly; peers on my node get
            // (members-on-my-node - 1) / (size - 1) of it
            let on_node = rpn.min(self.size) as f64;
            return ((on_node - 1.0) / (self.size as f64 - 1.0)).clamp(0.0, 1.0);
        }
        let span = self.stride * (self.size - 1) + 1;
        if span <= rpn {
            1.0 // whole group on one node
        } else if self.stride >= rpn {
            0.0 // every hop crosses nodes
        } else {
            1.0 - self.stride as f64 / rpn as f64
        }
    }
}

/// One phase of a schedule. Byte counts are **payload bytes for the modeled
/// rank** (the busiest one); `total_bytes` for collectives is the full
/// gathered/reduced buffer size, matching the `n` of the §III-D formulas.
#[derive(Clone, Debug, PartialEq)]
pub enum Phase {
    /// `MPI_Allgather(v)`: gathered buffer totals `total_bytes`.
    Allgather {
        /// Group it runs in.
        grp: NetGroup,
        /// Total gathered bytes (`n` in `T_allgather`).
        total_bytes: f64,
    },
    /// Large-message broadcast (scatter + allgather), `T_broadcast`.
    Bcast {
        /// Group it runs in.
        grp: NetGroup,
        /// Broadcast payload bytes.
        bytes: f64,
    },
    /// `MPI_Reduce_scatter`: reduced buffer totals `total_bytes`.
    ReduceScatter {
        /// Group it runs in.
        grp: NetGroup,
        /// Total reduced bytes (`n` in `T_reduce_scatter`).
        total_bytes: f64,
        /// True when the library ships its own reduction implementation
        /// (COSMA "crafts the binary reduction tree", §IV-B) and therefore
        /// dodges the MPI library's large-block and odd-size penalties.
        custom_impl: bool,
    },
    /// Pairwise exchange with up to `peers` partners, sending
    /// `send_bytes` in total (redistribution / `MPI_Neighbor_alltoallv`).
    Alltoallv {
        /// Group it runs in.
        grp: NetGroup,
        /// Bytes this rank sends across the whole exchange.
        send_bytes: f64,
        /// Number of distinct destination ranks.
        peers: usize,
    },
    /// `rounds` point-to-point shift steps of `bytes_per_round` each
    /// (Cannon's initial skew and circular shifts).
    ShiftRounds {
        /// Group it runs in.
        grp: NetGroup,
        /// Number of sendrecv rounds.
        rounds: usize,
        /// Payload bytes per round.
        bytes_per_round: f64,
        /// Messages the modeled rank sends per round. CA3DMM's runtime
        /// ships the A and B blocks of a shift as two separate messages,
        /// so its rounds pay 2·α; a combined single-exchange shift pays 1.
        msgs_per_round: usize,
    },
    /// Two-level `MPI_Allgather(v)`: members ship their piece to the node
    /// leader intra-node, leaders ring whole node blocks inter-node, leaders
    /// fan the assembled buffer back out intra-node. The modeled rank is the
    /// leader of the fullest node (the busiest role).
    HierAllgather {
        /// Group it runs in (must satisfy [`NetGroup::hier_engages`]).
        grp: NetGroup,
        /// Total gathered bytes.
        total_bytes: f64,
    },
    /// Two-level `MPI_Reduce_scatter`: members ship their full contribution
    /// to the node leader (pre-reduced there), leaders ring node blocks,
    /// leaders scatter finished segments back. The modeled rank for bytes is
    /// a non-leader member (it ships the whole vector up); for messages,
    /// the leader.
    HierReduceScatter {
        /// Group it runs in (must satisfy [`NetGroup::hier_engages`]).
        grp: NetGroup,
        /// Total reduced bytes.
        total_bytes: f64,
    },
    /// Two-level broadcast: binomial tree over node representatives, linear
    /// intra-node fan-out; the payload crosses the network once per node.
    HierBcast {
        /// Group it runs in (must satisfy [`NetGroup::hier_engages`]).
        grp: NetGroup,
        /// Broadcast payload bytes.
        bytes: f64,
    },
    /// Local GEMM work.
    LocalGemm {
        /// Multiply-add flops ×2 (i.e. `2·m·n·k` for the local block).
        flops: f64,
    },
    /// Dual-buffered Cannon stage (§III-F): `rounds` shifts of
    /// `bytes_per_round` overlapped with `flops` of local GEMM; the cost is
    /// the max of the two streams per round plus one unoverlapped leading
    /// GEMM.
    CannonOverlap {
        /// Group it runs in.
        grp: NetGroup,
        /// Number of shift rounds (`s − 1` plus the initial skew).
        rounds: usize,
        /// Payload bytes per round (an A block + a B block).
        bytes_per_round: f64,
        /// Messages per round — see [`Phase::ShiftRounds::msgs_per_round`].
        msgs_per_round: usize,
        /// Total local GEMM flops across all rounds.
        flops: f64,
    },
}

/// An ordered, labelled list of phases. Labels group phases for the
/// breakdown plots ("redist", "replicate_ab", "cannon", "local_gemm",
/// "reduce_c").
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// The phases in execution order with their breakdown labels.
    pub items: Vec<(String, Phase)>,
}

impl Phase {
    /// Predicted bytes *sent* by the modeled rank in this phase — the
    /// quantity the `msgpass` traffic counters measure. Ring collectives
    /// send `total·(g−1)/g`; shifts send `rounds · bytes`; alltoallv sends
    /// its `send_bytes`; scatter+allgather broadcast sends up to
    /// `2·bytes·(g−1)/g` (at the root).
    pub fn sent_bytes(&self) -> f64 {
        match self {
            Phase::Allgather { grp, total_bytes } => frac(grp.size) * total_bytes,
            Phase::Bcast { grp, bytes } => 2.0 * frac(grp.size) * bytes,
            Phase::ReduceScatter {
                grp, total_bytes, ..
            } => frac(grp.size) * total_bytes,
            Phase::Alltoallv { send_bytes, .. } => *send_bytes,
            Phase::ShiftRounds {
                rounds,
                bytes_per_round,
                ..
            }
            | Phase::CannonOverlap {
                rounds,
                bytes_per_round,
                ..
            } => *rounds as f64 * bytes_per_round,
            Phase::HierAllgather { grp, total_bytes } => {
                // Leader of the fullest node: L−1 ring blocks (total minus
                // the next node's block) plus the whole buffer to each of
                // its m−1 members. Exactly the runtime's leader volume under
                // even node blocks.
                let (l, m) = grp.node_layout();
                total_bytes * (1.0 - 1.0 / l as f64) + (m as f64 - 1.0) * total_bytes
            }
            Phase::HierReduceScatter { grp, total_bytes } => {
                // A member ships its whole contribution up (total); the
                // leader ships (L−1)/L·total around the ring plus m−1
                // segments down. The member is the byte-max in the even
                // case; take the max so uneven layouts stay safe.
                let (l, m) = grp.node_layout();
                let leader = total_bytes * (1.0 - 1.0 / l as f64)
                    + (m as f64 - 1.0) * total_bytes / grp.size as f64;
                total_bytes.max(leader)
            }
            Phase::HierBcast { grp, bytes } => {
                // Worst case: the root sits on the fullest node — ⌈log₂L⌉
                // tree sends plus m−1 intra-node copies, all of `bytes`.
                let (l, m) = grp.node_layout();
                bytes * ((l as f64).log2().ceil() + m as f64 - 1.0)
            }
            Phase::LocalGemm { .. } => 0.0,
        }
    }

    /// The paper's latency measure `L` for this phase: messages sent by the
    /// modeled rank, using the butterfly-collective counts of §III-D
    /// (`log₂ g` for allgather/broadcast trees, `g − 1` for reduce-scatter
    /// and pairwise exchange, `msgs_per_round` per shift round).
    pub fn message_count(&self) -> f64 {
        match self {
            Phase::Allgather { grp, .. } => (grp.size as f64).log2().ceil(),
            Phase::Bcast { grp, .. } => (grp.size as f64).log2().ceil() + grp.size as f64 - 1.0,
            Phase::ReduceScatter { grp, .. } => grp.size as f64 - 1.0,
            Phase::Alltoallv { peers, .. } => *peers as f64,
            Phase::ShiftRounds {
                rounds,
                msgs_per_round,
                ..
            }
            | Phase::CannonOverlap {
                rounds,
                msgs_per_round,
                ..
            } => (*rounds * *msgs_per_round) as f64,
            Phase::HierAllgather { grp, .. } | Phase::HierReduceScatter { grp, .. } => {
                // Leader of the fullest node: L−1 ring steps plus m−1
                // intra-node fan-out (or fan-in) messages.
                let (l, m) = grp.node_layout();
                (l - 1) as f64 + (m - 1) as f64
            }
            Phase::HierBcast { grp, .. } => {
                let (l, m) = grp.node_layout();
                (l as f64).log2().ceil() + (m - 1) as f64
            }
            Phase::LocalGemm { .. } => 0.0,
        }
    }
}

impl Schedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a phase under a breakdown label.
    pub fn push(&mut self, label: &str, phase: Phase) {
        self.items.push((label.to_owned(), phase));
    }

    /// Sum of [`Phase::sent_bytes`] over the schedule.
    pub fn sent_bytes(&self) -> f64 {
        self.items.iter().map(|(_, ph)| ph.sent_bytes()).sum()
    }

    /// Sum of [`Phase::message_count`] over the schedule.
    pub fn message_count(&self) -> f64 {
        self.items.iter().map(|(_, ph)| ph.message_count()).sum()
    }
}

fn frac(g: usize) -> f64 {
    if g == 0 {
        0.0
    } else {
        (g as f64 - 1.0) / g as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sent_bytes_ring_formulas() {
        let mut s = Schedule::new();
        s.push(
            "ag",
            Phase::Allgather {
                grp: NetGroup::flat(4),
                total_bytes: 400.0,
            },
        );
        s.push(
            "rs",
            Phase::ReduceScatter {
                grp: NetGroup::flat(5),
                total_bytes: 500.0,
                custom_impl: false,
            },
        );
        s.push(
            "shift",
            Phase::ShiftRounds {
                grp: NetGroup::flat(3),
                rounds: 2,
                bytes_per_round: 10.0,
                msgs_per_round: 2,
            },
        );
        // 400*3/4 + 500*4/5 + 20 = 300 + 400 + 20
        // (msgs_per_round scales latency, never bytes)
        assert!((s.sent_bytes() - 720.0).abs() < 1e-9);
    }

    #[test]
    fn message_counts_follow_butterfly() {
        let mut s = Schedule::new();
        s.push(
            "ag",
            Phase::Allgather {
                grp: NetGroup::flat(8),
                total_bytes: 1.0,
            },
        );
        s.push(
            "rs",
            Phase::ReduceScatter {
                grp: NetGroup::flat(8),
                total_bytes: 1.0,
                custom_impl: false,
            },
        );
        assert!((s.message_count() - (3.0 + 7.0)).abs() < 1e-9);
    }

    #[test]
    fn shift_rounds_count_msgs_per_round() {
        let mut s = Schedule::new();
        // A Cannon-style shift ships A and B separately: 2 msgs/round.
        s.push(
            "shift",
            Phase::ShiftRounds {
                grp: NetGroup::flat(4),
                rounds: 3,
                bytes_per_round: 10.0,
                msgs_per_round: 2,
            },
        );
        s.push(
            "overlap",
            Phase::CannonOverlap {
                grp: NetGroup::flat(4),
                rounds: 3,
                bytes_per_round: 10.0,
                msgs_per_round: 2,
                flops: 1e6,
            },
        );
        assert!((s.message_count() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn gemm_contributes_no_traffic() {
        let mut s = Schedule::new();
        s.push("gemm", Phase::LocalGemm { flops: 1e9 });
        assert_eq!(s.sent_bytes(), 0.0);
        assert_eq!(s.message_count(), 0.0);
    }

    #[test]
    fn singleton_groups_are_free() {
        let mut s = Schedule::new();
        s.push(
            "ag",
            Phase::Allgather {
                grp: NetGroup::flat(1),
                total_bytes: 100.0,
            },
        );
        assert_eq!(s.sent_bytes(), 0.0);
        assert_eq!(s.message_count(), 0.0);
    }
}
