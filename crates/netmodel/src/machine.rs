//! Machine descriptions: the hardware parameters the cost model needs.

/// How ranks map onto nodes in one experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// MPI ranks per node (24 in the paper's pure-MPI runs, 1 in hybrid,
    /// 2 in the GPU runs).
    pub ranks_per_node: usize,
    /// Compute throughput available to one rank, in FLOP/s (one core's worth
    /// in pure MPI, a whole node in MPI+OpenMP, one V100 in the GPU runs).
    pub flops_per_rank: f64,
}

impl Placement {
    /// Node index of a rank under the block ("column-major contiguous ranks
    /// per node") mapping the paper's job scripts use.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }
}

/// An α–β–γ machine: network latency and bandwidth per link class plus a
/// local GEMM rate. All times in seconds, sizes in bytes.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Human-readable name for reports.
    pub name: String,
    /// Point-to-point latency within a node (shared-memory transport).
    pub alpha_intra: f64,
    /// Point-to-point latency across nodes.
    pub alpha_inter: f64,
    /// Inverse bandwidth within a node, s/byte.
    pub beta_intra: f64,
    /// Per-node network injection bandwidth, bytes/s (shared by all ranks of
    /// the node that communicate concurrently).
    pub node_injection_bw: f64,
    /// Fraction of the node injection bandwidth a *single* rank can drive.
    /// < 1 models the paper's Fig. 4 observation that one rank per node
    /// cannot saturate the NIC, while many ranks per node can.
    pub single_rank_bw_frac: f64,
    /// Cores per node (24 on PACE-Phoenix).
    pub cores_per_node: usize,
    /// Peak FLOP/s of one core.
    pub flops_per_core: f64,
    /// Fraction of peak the local GEMM actually achieves.
    pub gemm_efficiency: f64,
    /// Effective per-rank pack/unpack bandwidth (bytes/s) for the
    /// redistribution subroutine's strided block copies (§III-F: the
    /// artifact's layout conversion "simply packs and unpacks matrix
    /// blocks" with no optimization — narrow strided pieces copy far below
    /// memcpy speed). Charged once for packing and once for unpacking in
    /// `Alltoallv` phases. `f64::INFINITY` disables it.
    pub pack_bw: f64,
    /// Message size (bytes) above which reduce-scatter bandwidth degrades
    /// (the MVAPICH2 behaviour the paper hits in §IV-C on GPUs and in the
    /// hybrid square runs). `f64::INFINITY` disables it.
    pub reduce_scatter_degrade_threshold: f64,
    /// Bandwidth degradation factor applied above the threshold (≥ 1).
    pub reduce_scatter_degrade_factor: f64,
    /// Extra bandwidth factor for reduce-scatter on *odd* group sizes
    /// (recursive-halving collectives pair ranks at every level; odd sizes
    /// break the pairing — the paper's §IV-B observation that `pk = 341`
    /// is "unfavorable" for collectives). 1.0 disables it.
    pub reduce_scatter_odd_factor: f64,
}

impl Machine {
    /// The paper's CPU cluster: Georgia Tech PACE-Phoenix. Two Intel Xeon
    /// Gold 6226 sockets (2 × 12 cores at 2.7 GHz, AVX-512 → 32 DP
    /// flop/cycle/core ≈ 86 GF/s peak/core), 100 Gb/s InfiniBand
    /// (12.5 GB/s injection), MVAPICH2-style latencies.
    pub fn phoenix_cpu() -> Machine {
        Machine {
            name: "pace-phoenix-cpu".into(),
            alpha_intra: 0.5e-6,
            alpha_inter: 1.8e-6,
            beta_intra: 1.0 / 6.0e9,
            node_injection_bw: 12.5e9,
            single_rank_bw_frac: 0.40,
            pack_bw: 1.2e9,
            cores_per_node: 24,
            flops_per_core: 86.4e9,
            gemm_efficiency: 0.80,
            reduce_scatter_degrade_threshold: 64.0 * 1024.0 * 1024.0,
            reduce_scatter_degrade_factor: 1.6,
            reduce_scatter_odd_factor: 1.5,
        }
    }

    /// The paper's GPU nodes: same hosts plus 2 × NVIDIA V100 (16 GB HBM2,
    /// ~7 TF/s FP64, cuBLAS ≈ 90 % of peak). Communication still moves
    /// through the host NIC.
    pub fn phoenix_gpu() -> Machine {
        Machine {
            cores_per_node: 2, // ranks are GPUs: 2 per node
            flops_per_core: 7.0e12,
            gemm_efficiency: 0.90,
            name: "pace-phoenix-gpu".into(),
            ..Machine::phoenix_cpu()
        }
    }

    /// A flat, uniform network with no node structure — keeps unit tests of
    /// the evaluator free of placement effects.
    pub fn uniform() -> Machine {
        Machine {
            name: "uniform".into(),
            alpha_intra: 1e-6,
            alpha_inter: 1e-6,
            beta_intra: 1e-9,
            node_injection_bw: 1e9,
            single_rank_bw_frac: 1.0,
            pack_bw: f64::INFINITY,
            cores_per_node: 1,
            flops_per_core: 1e9,
            gemm_efficiency: 1.0,
            reduce_scatter_degrade_threshold: f64::INFINITY,
            reduce_scatter_degrade_factor: 1.0,
            reduce_scatter_odd_factor: 1.0,
        }
    }

    /// Placement for the paper's pure-MPI mode: one rank per core.
    pub fn pure_mpi(&self) -> Placement {
        Placement {
            ranks_per_node: self.cores_per_node,
            flops_per_rank: self.flops_per_core * self.gemm_efficiency,
        }
    }

    /// Placement for the paper's MPI + OpenMP mode: one rank per node using
    /// every core.
    pub fn hybrid(&self) -> Placement {
        Placement {
            ranks_per_node: 1,
            flops_per_rank: self.flops_per_core * self.cores_per_node as f64 * self.gemm_efficiency,
        }
    }

    /// Effective inverse bandwidth (s/byte) seen by one rank on the
    /// inter-node network when `link_share` ranks of its node communicate
    /// concurrently.
    pub fn beta_inter(&self, link_share: f64) -> f64 {
        let share = link_share.max(1.0);
        let bw = if share <= 1.0 {
            self.node_injection_bw * self.single_rank_bw_frac
        } else {
            self.node_injection_bw / share
        };
        1.0 / bw
    }

    /// Aggregate peak FLOP/s of `p` ranks under `placement` (the
    /// denominator of the paper's "% of peak" plots).
    pub fn peak_flops(&self, p: usize, placement: &Placement) -> f64 {
        // Peak is measured against raw core peak, not GEMM efficiency.
        let per_rank_peak = placement.flops_per_rank / self.gemm_efficiency;
        per_rank_peak * p as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements() {
        let m = Machine::phoenix_cpu();
        let pure = m.pure_mpi();
        assert_eq!(pure.ranks_per_node, 24);
        let hybrid = m.hybrid();
        assert_eq!(hybrid.ranks_per_node, 1);
        assert!((hybrid.flops_per_rank / pure.flops_per_rank - 24.0).abs() < 1e-9);
        assert_eq!(pure.node_of(0), 0);
        assert_eq!(pure.node_of(23), 0);
        assert_eq!(pure.node_of(24), 1);
    }

    #[test]
    fn single_rank_cannot_saturate_nic() {
        let m = Machine::phoenix_cpu();
        let single = m.beta_inter(1.0);
        let shared24 = m.beta_inter(24.0);
        // one rank gets 55% of the NIC; 24 ranks share it fully
        assert!(single > 1.0 / m.node_injection_bw);
        assert!((shared24 - 24.0 / m.node_injection_bw).abs() < 1e-18);
    }

    #[test]
    fn gpu_preset_is_fast_at_compute() {
        let cpu = Machine::phoenix_cpu();
        let gpu = Machine::phoenix_gpu();
        assert!(gpu.flops_per_core > 10.0 * cpu.flops_per_core);
        assert_eq!(gpu.cores_per_node, 2);
    }

    #[test]
    fn peak_flops_counts_raw_peak() {
        let m = Machine::uniform();
        let p = m.pure_mpi();
        assert!((m.peak_flops(4, &p) - 4e9).abs() < 1.0);
    }
}
