//! Pricing a schedule on a machine.

use crate::machine::Machine;
use crate::schedule::{NetGroup, Phase, Schedule};
use std::collections::BTreeMap;

/// Cost of one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseCost {
    /// Time spent communicating, seconds.
    pub comm_s: f64,
    /// Time spent computing, seconds.
    pub comp_s: f64,
}

impl PhaseCost {
    /// Total wall time of the phase.
    pub fn total(&self) -> f64 {
        self.comm_s + self.comp_s
    }
}

/// Evaluated cost of a whole schedule.
#[derive(Clone, Debug, Default)]
pub struct CostReport {
    /// Wall time per breakdown label, in schedule order of first appearance.
    pub by_label: BTreeMap<String, PhaseCost>,
    /// Predicted bytes sent by the modeled rank, per breakdown label — the
    /// column `ca3dmm-report netdiff` lines up against the measured
    /// critical-rank bytes of each phase.
    pub bytes_by_label: BTreeMap<String, f64>,
    /// Predicted butterfly message count per breakdown label.
    pub msgs_by_label: BTreeMap<String, f64>,
    /// Total wall time, seconds.
    pub total_s: f64,
    /// Bytes sent by the modeled rank (matches the `msgpass` counters).
    pub sent_bytes: f64,
    /// Butterfly message count (the paper's `L`).
    pub messages: f64,
}

impl CostReport {
    /// Communication seconds across all labels.
    pub fn comm_s(&self) -> f64 {
        self.by_label.values().map(|c| c.comm_s).sum()
    }

    /// Computation seconds across all labels.
    pub fn comp_s(&self) -> f64 {
        self.by_label.values().map(|c| c.comp_s).sum()
    }

    /// Wall time of one label (0 when absent).
    pub fn label_s(&self, label: &str) -> f64 {
        self.by_label.get(label).map(|c| c.total()).unwrap_or(0.0)
    }

    /// Predicted sent bytes of one label (0 when absent).
    pub fn label_bytes(&self, label: &str) -> f64 {
        self.bytes_by_label.get(label).copied().unwrap_or(0.0)
    }

    /// Predicted message count of one label (0 when absent).
    pub fn label_msgs(&self, label: &str) -> f64 {
        self.msgs_by_label.get(label).copied().unwrap_or(0.0)
    }
}

/// Effective (α, β) of a group: traffic is split into the intra-node
/// fraction (shared-memory transport) and the inter-node remainder, which
/// shares the node's injection bandwidth with the other ranks of the node
/// that are simultaneously sending off-node.
fn alpha_beta(m: &Machine, grp: &NetGroup) -> (f64, f64) {
    alpha_beta_frac(m, grp, grp.intra_fraction())
}

/// Like [`alpha_beta`] but for pairwise-exchange collectives (reduce-
/// scatter), whose partners span all distances rather than ring
/// neighbours.
fn alpha_beta_pairwise(m: &Machine, grp: &NetGroup) -> (f64, f64) {
    alpha_beta_frac(m, grp, grp.pairwise_intra_fraction())
}

/// (α, β) for fixed-neighbour *ring* phases (Cannon shifts). A shift round
/// completes only when every rank has its neighbour's block, so the round
/// is paced by the ring's slowest hop: if any hop crosses nodes, the
/// critical rank pays full inter-node α and β — blending intra and inter
/// hops into an average (right for tree collectives, whose stages
/// pipeline) would price the round's *mean* hop, not its makespan. The
/// inter-node β charges the full per-node NIC share: a shift round is a
/// synchronized burst in which every rank of the node injects at once,
/// which is also exactly what the virtual-time simulator charges — so the
/// netdiff seconds comparison prices the same transport on both sides.
fn alpha_beta_ring(m: &Machine, grp: &NetGroup) -> (f64, f64) {
    let fi = grp.intra_fraction();
    if grp.size <= 1 || fi >= 1.0 {
        return (m.alpha_intra, m.beta_intra);
    }
    let concurrent = (grp.ranks_per_node as f64).max(1.0);
    (m.alpha_inter, m.beta_inter(concurrent))
}

fn alpha_beta_frac(m: &Machine, grp: &NetGroup, fi: f64) -> (f64, f64) {
    if grp.size <= 1 {
        return (m.alpha_intra, m.beta_intra);
    }
    let fe = 1.0 - fi;
    if fe <= 0.0 {
        return (m.alpha_intra, m.beta_intra);
    }
    // Expected concurrent off-node senders per node during this phase.
    let concurrent = (grp.ranks_per_node as f64 * fe).max(1.0);
    let beta_inter = m.beta_inter(concurrent);
    let alpha = fi * m.alpha_intra + fe * m.alpha_inter;
    let beta = fi * m.beta_intra + fe * beta_inter;
    (alpha, beta)
}

fn frac(g: usize) -> f64 {
    if g == 0 {
        0.0
    } else {
        (g as f64 - 1.0) / g as f64
    }
}

/// Prices one phase on `machine` given the rank's compute rate
/// `flops_per_rank` (FLOP/s, GEMM-effective).
pub fn phase_cost(machine: &Machine, flops_per_rank: f64, phase: &Phase) -> PhaseCost {
    match phase {
        Phase::Allgather { grp, total_bytes } => {
            if grp.size <= 1 {
                return PhaseCost::default();
            }
            let (a, b) = alpha_beta(machine, grp);
            PhaseCost {
                comm_s: a * (grp.size as f64).log2().ceil() + b * total_bytes * frac(grp.size),
                comp_s: 0.0,
            }
        }
        Phase::Bcast { grp, bytes } => {
            if grp.size <= 1 {
                return PhaseCost::default();
            }
            let (a, b) = alpha_beta(machine, grp);
            PhaseCost {
                comm_s: a * ((grp.size as f64).log2().ceil() + grp.size as f64 - 1.0)
                    + 2.0 * b * bytes * frac(grp.size),
                comp_s: 0.0,
            }
        }
        Phase::ReduceScatter {
            grp,
            total_bytes,
            custom_impl,
        } => {
            if grp.size <= 1 {
                return PhaseCost::default();
            }
            let (a, mut b) = alpha_beta_pairwise(machine, grp);
            // MPI-library pathologies (§IV-B/§IV-C) — skipped by libraries
            // that ship their own reduction trees (COSMA):
            if !custom_impl {
                // MVAPICH2 degradation above the protocol threshold.
                let block = total_bytes / grp.size as f64;
                if block > machine.reduce_scatter_degrade_threshold {
                    b *= machine.reduce_scatter_degrade_factor;
                }
                // Odd group sizes break recursive-halving pairing
                // (pk = 341 "unfavorable").
                if grp.size % 2 == 1 {
                    b *= machine.reduce_scatter_odd_factor;
                }
            }
            PhaseCost {
                comm_s: a * (grp.size as f64 - 1.0) + b * total_bytes * frac(grp.size),
                comp_s: 0.0,
            }
        }
        Phase::Alltoallv {
            grp,
            send_bytes,
            peers,
        } => {
            if grp.size <= 1 {
                return PhaseCost::default();
            }
            let (a, b) = alpha_beta(machine, grp);
            // The unoptimized redistribution subroutine pays a pack and an
            // unpack pass over the payload at strided-copy speed (§III-F).
            let pack_s = if machine.pack_bw.is_finite() {
                2.0 * send_bytes / machine.pack_bw
            } else {
                0.0
            };
            PhaseCost {
                comm_s: a * (*peers as f64) + b * send_bytes + pack_s,
                comp_s: 0.0,
            }
        }
        Phase::ShiftRounds {
            grp,
            rounds,
            bytes_per_round,
            msgs_per_round,
        } => {
            if *rounds == 0 {
                return PhaseCost::default();
            }
            let (a, b) = alpha_beta_ring(machine, grp);
            PhaseCost {
                comm_s: *rounds as f64 * (*msgs_per_round as f64 * a + b * bytes_per_round),
                comp_s: 0.0,
            }
        }
        Phase::HierAllgather { grp, total_bytes } => {
            if grp.size <= 1 {
                return PhaseCost::default();
            }
            let (l, m) = grp.node_layout();
            let (lf, mf) = (l as f64, m as f64);
            // Three serial stages, priced exactly as the virtual-time
            // backend charges them: intra hops at (α_intra, β_intra),
            // leader ring hops at α_inter and the full-share inter-node β
            // (every node's leaders contend for the NIC).
            let bi = machine.beta_inter(grp.ranks_per_node.max(1) as f64);
            // Members ship their piece to the leader concurrently — the
            // stage is paced by one segment's transfer.
            let up = if m > 1 {
                machine.alpha_intra + machine.beta_intra * total_bytes / grp.size as f64
            } else {
                0.0
            };
            // Leaders ring whole node blocks.
            let ring = (lf - 1.0) * machine.alpha_inter + bi * total_bytes * (lf - 1.0) / lf;
            // The leader fans the assembled buffer back out, serialized on
            // its NIC pipe.
            let down = (mf - 1.0) * (machine.alpha_intra + machine.beta_intra * total_bytes);
            PhaseCost {
                comm_s: up + ring + down,
                comp_s: 0.0,
            }
        }
        Phase::HierReduceScatter { grp, total_bytes } => {
            if grp.size <= 1 {
                return PhaseCost::default();
            }
            let (l, m) = grp.node_layout();
            let (lf, mf) = (l as f64, m as f64);
            let bi = machine.beta_inter(grp.ranks_per_node.max(1) as f64);
            // Members ship their whole contribution up (concurrent sends,
            // paced by one full vector), the leader pre-reduces for free.
            let up = if m > 1 {
                machine.alpha_intra + machine.beta_intra * total_bytes
            } else {
                0.0
            };
            // Leaders ring-reduce-scatter node blocks.
            let ring = (lf - 1.0) * machine.alpha_inter + bi * total_bytes * (lf - 1.0) / lf;
            // The leader scatters its node block minus its own segment.
            let down_bytes = (total_bytes / lf - total_bytes / grp.size as f64).max(0.0);
            let down = if m > 1 {
                (mf - 1.0) * machine.alpha_intra + machine.beta_intra * down_bytes
            } else {
                0.0
            };
            PhaseCost {
                comm_s: up + ring + down,
                comp_s: 0.0,
            }
        }
        Phase::HierBcast { grp, bytes } => {
            if grp.size <= 1 {
                return PhaseCost::default();
            }
            let (l, m) = grp.node_layout();
            let bi = machine.beta_inter(grp.ranks_per_node.max(1) as f64);
            // Binomial tree over node representatives, then a linear
            // intra-node fan-out on the root's node (the worst case).
            let tree = (l as f64).log2().ceil() * (machine.alpha_inter + bi * bytes);
            let fan = (m as f64 - 1.0) * (machine.alpha_intra + machine.beta_intra * bytes);
            PhaseCost {
                comm_s: tree + fan,
                comp_s: 0.0,
            }
        }
        Phase::LocalGemm { flops } => PhaseCost {
            comm_s: 0.0,
            comp_s: flops / flops_per_rank,
        },
        Phase::CannonOverlap {
            grp,
            rounds,
            bytes_per_round,
            msgs_per_round,
            flops,
        } => {
            let comp = flops / flops_per_rank;
            if *rounds == 0 {
                return PhaseCost {
                    comm_s: 0.0,
                    comp_s: comp,
                };
            }
            let (a, b) = alpha_beta_ring(machine, grp);
            let comm_per_round = *msgs_per_round as f64 * a + b * bytes_per_round;
            let comp_per_round = comp / (*rounds as f64 + 1.0);
            // Dual buffering (§III-F): each shift overlaps with the GEMM on
            // the previously received blocks, so only the part of the
            // communication exceeding the per-round GEMM is exposed; the
            // final GEMM (on the last received blocks) is always exposed.
            let exposed_comm = (*rounds as f64) * (comm_per_round - comp_per_round).max(0.0);
            PhaseCost {
                comm_s: exposed_comm,
                comp_s: comp,
            }
        }
    }
}

/// Of two modelings of the same logical collective (typically the flat and
/// the hierarchical variant of one phase), returns the one [`phase_cost`]
/// prices cheaper on this machine — ties go to `a`.
///
/// The CA3DMM schedule builder does **not** call this for its committed
/// phases: runtime selection is structural (hierarchy engages whenever the
/// group spans ≥ 2 nodes with ≥ 2 ranks on one of them), and the model
/// mirrors that rule so `netdiff` stays byte-exact. This helper exposes the
/// pricing comparison for what-if studies — e.g. showing the payload size
/// below which the extra α of the two-level allgather outweighs its
/// inter-node byte savings.
pub fn cheaper_phase(machine: &Machine, flops_per_rank: f64, a: Phase, b: Phase) -> Phase {
    let ca = phase_cost(machine, flops_per_rank, &a).total();
    let cb = phase_cost(machine, flops_per_rank, &b).total();
    if cb < ca {
        b
    } else {
        a
    }
}

/// Prices a whole schedule: wall time per label, totals, traffic.
pub fn evaluate(machine: &Machine, flops_per_rank: f64, schedule: &Schedule) -> CostReport {
    let mut report = CostReport {
        sent_bytes: schedule.sent_bytes(),
        messages: schedule.message_count(),
        ..Default::default()
    };
    for (label, phase) in &schedule.items {
        let c = phase_cost(machine, flops_per_rank, phase);
        let entry = report.by_label.entry(label.clone()).or_default();
        entry.comm_s += c.comm_s;
        entry.comp_s += c.comp_s;
        *report.bytes_by_label.entry(label.clone()).or_default() += phase.sent_bytes();
        *report.msgs_by_label.entry(label.clone()).or_default() += phase.message_count();
        report.total_s += c.total();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(size: usize) -> NetGroup {
        NetGroup::flat(size)
    }

    #[test]
    fn allgather_matches_paper_formula() {
        let m = Machine::uniform();
        let c = phase_cost(
            &m,
            1e9,
            &Phase::Allgather {
                grp: flat(8),
                total_bytes: 8000.0,
            },
        );
        let want = m.alpha_inter * 3.0 + m.beta_inter(1.0) * 8000.0 * 7.0 / 8.0;
        assert!((c.comm_s - want).abs() < 1e-15);
    }

    #[test]
    fn bcast_matches_paper_formula() {
        let m = Machine::uniform();
        let c = phase_cost(
            &m,
            1e9,
            &Phase::Bcast {
                grp: flat(4),
                bytes: 1000.0,
            },
        );
        let want = m.alpha_inter * (2.0 + 3.0) + 2.0 * m.beta_inter(1.0) * 1000.0 * 3.0 / 4.0;
        assert!((c.comm_s - want).abs() < 1e-15);
    }

    #[test]
    fn reduce_scatter_matches_paper_formula() {
        let m = Machine::uniform();
        let c = phase_cost(
            &m,
            1e9,
            &Phase::ReduceScatter {
                grp: flat(4),
                total_bytes: 1000.0,
                custom_impl: false,
            },
        );
        let want = m.alpha_inter * 3.0 + m.beta_inter(1.0) * 1000.0 * 3.0 / 4.0;
        assert!((c.comm_s - want).abs() < 1e-15);
    }

    #[test]
    fn reduce_scatter_degrades_above_threshold() {
        let mut m = Machine::uniform();
        m.reduce_scatter_degrade_threshold = 100.0;
        m.reduce_scatter_degrade_factor = 2.0;
        let small = phase_cost(
            &m,
            1e9,
            &Phase::ReduceScatter {
                grp: flat(4),
                total_bytes: 200.0, // 50 B/blk, under threshold
                custom_impl: false,
            },
        );
        let big = phase_cost(
            &m,
            1e9,
            &Phase::ReduceScatter {
                grp: flat(4),
                total_bytes: 2_000_000.0, // 500 kB/blk, over threshold
                custom_impl: false,
            },
        );
        let expect_ratio = 2.0;
        let beta_part_small = small.comm_s - m.alpha_inter * 3.0;
        let beta_part_big = big.comm_s - m.alpha_inter * 3.0;
        assert!(
            (beta_part_big / (beta_part_small * 2_000_000.0 / 200.0) - expect_ratio).abs() < 1e-9
        );
    }

    #[test]
    fn gemm_time_is_flops_over_rate() {
        let m = Machine::uniform();
        let c = phase_cost(&m, 2e9, &Phase::LocalGemm { flops: 4e9 });
        assert!((c.comp_s - 2.0).abs() < 1e-12);
        assert_eq!(c.comm_s, 0.0);
    }

    #[test]
    fn shift_alpha_scales_with_msgs_per_round() {
        let m = Machine::uniform();
        let mk = |msgs_per_round| {
            phase_cost(
                &m,
                1e9,
                &Phase::ShiftRounds {
                    grp: flat(4),
                    rounds: 3,
                    bytes_per_round: 1000.0,
                    msgs_per_round,
                },
            )
        };
        // Splitting a round into two messages pays one extra α per round —
        // and nothing else.
        let (one, two) = (mk(1), mk(2));
        assert!((two.comm_s - one.comm_s - 3.0 * m.alpha_inter).abs() < 1e-15);
    }

    #[test]
    fn singleton_groups_cost_nothing() {
        let m = Machine::uniform();
        for ph in [
            Phase::Allgather {
                grp: flat(1),
                total_bytes: 1e9,
            },
            Phase::ReduceScatter {
                grp: flat(1),
                total_bytes: 1e9,
                custom_impl: false,
            },
            Phase::Bcast {
                grp: flat(1),
                bytes: 1e9,
            },
        ] {
            assert_eq!(phase_cost(&m, 1e9, &ph), PhaseCost::default());
        }
    }

    #[test]
    fn overlap_hides_communication_under_compute() {
        let m = Machine::uniform();
        // compute-dominated: total ~= comp
        let c = phase_cost(
            &m,
            1e6, // slow compute
            &Phase::CannonOverlap {
                grp: flat(4),
                rounds: 3,
                bytes_per_round: 1000.0,
                msgs_per_round: 2,
                flops: 4e6, // 4 s of compute
            },
        );
        assert!(c.total() < 4.2, "compute-bound overlap: {}", c.total());
        // comm-dominated: total ~= comm + one round of compute
        let c2 = phase_cost(
            &m,
            1e12,
            &Phase::CannonOverlap {
                grp: flat(4),
                rounds: 3,
                bytes_per_round: 1e9, // 1 s per round
                msgs_per_round: 2,
                flops: 4e3,
            },
        );
        assert!(
            c2.total() > 2.9 && c2.total() < 3.2,
            "comm-bound: {}",
            c2.total()
        );
    }

    #[test]
    fn evaluate_accumulates_labels() {
        let m = Machine::uniform();
        let mut s = Schedule::new();
        s.push("gemm", Phase::LocalGemm { flops: 1e9 });
        s.push("gemm", Phase::LocalGemm { flops: 1e9 });
        s.push(
            "reduce_c",
            Phase::ReduceScatter {
                grp: flat(2),
                total_bytes: 2e9,
                custom_impl: false,
            },
        );
        let r = evaluate(&m, 1e9, &s);
        assert!((r.label_s("gemm") - 2.0).abs() < 1e-9);
        assert!(r.label_s("reduce_c") > 0.9);
        assert!((r.total_s - (r.comm_s() + r.comp_s())).abs() < 1e-9);
        assert!(r.sent_bytes > 0.0);
        assert_eq!(r.label_s("missing"), 0.0);
    }

    #[test]
    fn per_label_traffic_sums_to_totals() {
        let m = Machine::uniform();
        let mut s = Schedule::new();
        s.push("gemm", Phase::LocalGemm { flops: 1e9 });
        s.push(
            "replicate_ab",
            Phase::Allgather {
                grp: flat(4),
                total_bytes: 400.0,
            },
        );
        s.push(
            "cannon",
            Phase::ShiftRounds {
                grp: flat(4),
                rounds: 3,
                bytes_per_round: 10.0,
                msgs_per_round: 2,
            },
        );
        s.push(
            "cannon",
            Phase::ShiftRounds {
                grp: flat(4),
                rounds: 1,
                bytes_per_round: 10.0,
                msgs_per_round: 2,
            },
        );
        let r = evaluate(&m, 1e9, &s);
        // Label breakdown matches the per-phase formulas…
        assert!((r.label_bytes("replicate_ab") - 300.0).abs() < 1e-9);
        assert!((r.label_bytes("cannon") - 40.0).abs() < 1e-9);
        assert_eq!(r.label_bytes("gemm"), 0.0);
        assert!((r.label_msgs("cannon") - 8.0).abs() < 1e-9);
        // …and sums back to the schedule-wide totals.
        let byte_sum: f64 = r.bytes_by_label.values().sum();
        let msg_sum: f64 = r.msgs_by_label.values().sum();
        assert!((byte_sum - r.sent_bytes).abs() < 1e-9);
        assert!((msg_sum - r.messages).abs() < 1e-9);
    }

    #[test]
    fn intra_node_groups_use_fast_link() {
        let mut m = Machine::uniform();
        m.beta_intra = 1e-12;
        // rpn = 1: every hop is inter-node
        let slow = phase_cost(
            &m,
            1e9,
            &Phase::Allgather {
                grp: NetGroup::contiguous(4, 1),
                total_bytes: 1e9,
            },
        );
        // rpn = 8: the whole group fits in one node
        let fast = phase_cost(
            &m,
            1e9,
            &Phase::Allgather {
                grp: NetGroup::contiguous(4, 8),
                total_bytes: 1e9,
            },
        );
        assert!(fast.comm_s < slow.comm_s / 100.0);
    }

    #[test]
    fn hier_allgather_priced_as_three_serial_stages() {
        let m = Machine::phoenix_cpu();
        // 8 ranks over nodes of 4: 2 nodes × 4 members.
        let grp = NetGroup::contiguous(8, 4);
        assert_eq!(grp.node_layout(), (2, 4));
        let total = 1e6;
        let c = phase_cost(
            &m,
            1e9,
            &Phase::HierAllgather {
                grp,
                total_bytes: total,
            },
        );
        let up = m.alpha_intra + m.beta_intra * total / 8.0;
        let ring = m.alpha_inter + m.beta_inter(4.0) * total / 2.0;
        let down = 3.0 * (m.alpha_intra + m.beta_intra * total);
        assert!((c.comm_s - (up + ring + down)).abs() < 1e-15);
        assert_eq!(c.comp_s, 0.0);
    }

    #[test]
    fn hier_reduce_scatter_member_is_byte_max() {
        // The gate geometry: a pk = 24 reduce group strided by pm·pn = 128
        // over 384-rank nodes → 8 nodes × 3 members. The member that ships
        // its whole vector up is the byte-max rank; the leader is the
        // message-max rank.
        let grp = NetGroup::strided(24, 128, 384);
        assert_eq!(grp.node_layout(), (8, 3));
        let total = 589_824.0;
        let ph = Phase::HierReduceScatter {
            grp,
            total_bytes: total,
        };
        assert!((ph.sent_bytes() - total).abs() < 1e-9);
        assert!((ph.message_count() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn cheaper_phase_crossover_tiny_vs_bulk_payloads() {
        let m = Machine::phoenix_cpu();
        let grp = NetGroup::contiguous(8, 4);
        // Tiny allgather: the two-level variant pays (l−1)+(m−1)+1 α
        // against the butterfly's log₂ g — flat wins.
        let pick = cheaper_phase(
            &m,
            1e9,
            Phase::Allgather {
                grp,
                total_bytes: 64.0,
            },
            Phase::HierAllgather {
                grp,
                total_bytes: 64.0,
            },
        );
        assert!(matches!(pick, Phase::Allgather { .. }));
        // Tiny bcast: flat pays log₂ g + g − 1 α while the two-level tree
        // pays log₂ l + m − 1 — hierarchy wins on latency alone.
        let pick = cheaper_phase(
            &m,
            1e9,
            Phase::Bcast { grp, bytes: 64.0 },
            Phase::HierBcast { grp, bytes: 64.0 },
        );
        assert!(matches!(pick, Phase::HierBcast { .. }));
    }

    #[test]
    fn hier_singleton_groups_cost_nothing() {
        let m = Machine::uniform();
        for ph in [
            Phase::HierAllgather {
                grp: flat(1),
                total_bytes: 1e9,
            },
            Phase::HierReduceScatter {
                grp: flat(1),
                total_bytes: 1e9,
            },
            Phase::HierBcast {
                grp: flat(1),
                bytes: 1e9,
            },
        ] {
            assert_eq!(phase_cost(&m, 1e9, &ph), PhaseCost::default());
        }
    }

    #[test]
    fn intra_fraction_cases() {
        // contiguous group spanning several nodes of 8 ranks: 1/8 crosses
        let g = NetGroup::contiguous(64, 8);
        assert!((g.intra_fraction() - 7.0 / 8.0).abs() < 1e-12);
        // stride >= rpn: everything crosses
        assert_eq!(NetGroup::strided(4, 8, 8).intra_fraction(), 0.0);
        // whole group inside one node
        assert_eq!(NetGroup::contiguous(4, 8).intra_fraction(), 1.0);
        // scattered: peers on my node over all peers
        let g = NetGroup::scattered(64, 8);
        assert!((g.intra_fraction() - 7.0 / 63.0).abs() < 1e-12);
        // singleton group
        assert_eq!(NetGroup::contiguous(1, 8).intra_fraction(), 1.0);
    }
}
