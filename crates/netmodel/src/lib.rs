//! The machine model: how paper-scale experiments are costed.
//!
//! The paper's §III-D analyses CA3DMM in the α–β (latency–bandwidth) model
//! with butterfly-collective costs (its reference \[27\]):
//!
//! ```text
//! T_allgather(n, P)      = α·log₂(P)         + β·n·(P−1)/P
//! T_broadcast(n, P)      = α·(log₂(P)+P−1)   + 2β·n·(P−1)/P
//! T_reduce_scatter(n, P) = α·(P−1)           + β·n·(P−1)/P
//! ```
//!
//! This crate makes that model executable. A distributed algorithm exposes a
//! [`Schedule`] — the ordered list of communication/computation phases one
//! (maximally loaded) rank performs — and the evaluator prices it on a
//! [`Machine`] description. The same schedule structure is executed with
//! real data by the `msgpass` runtime at small process counts, and the test
//! suite asserts that the *measured* per-rank byte volume equals the
//! schedule's predicted volume; that agreement is what licenses evaluating
//! the schedules at the paper's 192–3072-core scale.
//!
//! The machine description ([`Machine`]) captures the features the paper's
//! evaluation hinges on: node structure (intra- vs inter-node links,
//! per-node injection bandwidth shared by the ranks of a node — the pure-MPI
//! vs MPI+OpenMP effect of Fig. 4), a local-GEMM rate (MKL's role), the
//! single-rank NIC-saturation fraction, and the MVAPICH2 reduce-scatter
//! degradation threshold the paper observes in §IV-C.

pub mod eval;
pub mod json;
pub mod machine;
pub mod schedule;

pub use eval::{CostReport, PhaseCost};
pub use machine::{Machine, Placement};
pub use schedule::{NetGroup, Phase, Schedule};
