//! JSON (de)serialization for the schedule IR, on `jsonlite`.
//!
//! Schedules are the exchange format between the analytic side and external
//! tooling (dumped by benches, diffed against measured timelines), so they
//! need a stable text form. The encoding matches what serde's externally
//! tagged enum representation would produce — `{"Allgather": {"grp": …,
//! "total_bytes": …}}` — so dumps stay readable by standard tools and the
//! format survives a future switch to serde proper.

use crate::machine::{Machine, Placement};
use crate::schedule::{NetGroup, Phase, Schedule};
use jsonlite::Json;

fn num(v: f64) -> Json {
    Json::Num(v)
}

/// Numeric field that may legitimately be `f64::INFINITY` (the "disabled"
/// value of several [`Machine`] thresholds). `jsonlite` serializes non-finite
/// numbers as `null`, so `null` round-trips back to `+∞` here.
fn num_or_inf(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn get_f64_or_inf(obj: &Json, key: &str) -> Result<f64, String> {
    match obj.get(key) {
        Some(Json::Null) => Ok(f64::INFINITY),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("non-numeric field `{key}`")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn get_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, String> {
    let v = get_f64(obj, key)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("field `{key}` is not a non-negative integer: {v}"));
    }
    Ok(v as usize)
}

/// `msgs_per_round` of a shift phase; schedules serialized before the field
/// existed price one message per round.
fn get_msgs_per_round(obj: &Json) -> Result<usize, String> {
    if obj.get("msgs_per_round").is_none() {
        return Ok(1);
    }
    get_usize(obj, "msgs_per_round")
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, String> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or non-boolean field `{key}`"))
}

impl NetGroup {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("size", num(self.size as f64)),
            ("stride", num(self.stride as f64)),
            ("ranks_per_node", num(self.ranks_per_node as f64)),
            ("scattered", Json::Bool(self.scattered)),
        ])
    }

    /// Parses the object form produced by [`NetGroup::to_json`].
    pub fn from_json(j: &Json) -> Result<NetGroup, String> {
        Ok(NetGroup {
            size: get_usize(j, "size")?,
            stride: get_usize(j, "stride")?,
            ranks_per_node: get_usize(j, "ranks_per_node")?,
            scattered: get_bool(j, "scattered")?,
        })
    }
}

impl Placement {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ranks_per_node", num(self.ranks_per_node as f64)),
            ("flops_per_rank", num(self.flops_per_rank)),
        ])
    }

    /// Parses the object form produced by [`Placement::to_json`].
    pub fn from_json(j: &Json) -> Result<Placement, String> {
        Ok(Placement {
            ranks_per_node: get_usize(j, "ranks_per_node")?,
            flops_per_rank: get_f64(j, "flops_per_rank")?,
        })
    }
}

impl Machine {
    /// JSON object form. Used by virtual-time `RunReport` artifacts to embed
    /// the machine a simulation ran on, so `ca3dmm-report netdiff` can price
    /// the analytic model on the *same* machine without guessing.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("alpha_intra", num(self.alpha_intra)),
            ("alpha_inter", num(self.alpha_inter)),
            ("beta_intra", num(self.beta_intra)),
            ("node_injection_bw", num(self.node_injection_bw)),
            ("single_rank_bw_frac", num(self.single_rank_bw_frac)),
            ("cores_per_node", num(self.cores_per_node as f64)),
            ("flops_per_core", num(self.flops_per_core)),
            ("gemm_efficiency", num(self.gemm_efficiency)),
            ("pack_bw", num_or_inf(self.pack_bw)),
            (
                "reduce_scatter_degrade_threshold",
                num_or_inf(self.reduce_scatter_degrade_threshold),
            ),
            (
                "reduce_scatter_degrade_factor",
                num(self.reduce_scatter_degrade_factor),
            ),
            (
                "reduce_scatter_odd_factor",
                num(self.reduce_scatter_odd_factor),
            ),
        ])
    }

    /// Parses the object form produced by [`Machine::to_json`].
    pub fn from_json(j: &Json) -> Result<Machine, String> {
        Ok(Machine {
            name: get_str(j, "name")?,
            alpha_intra: get_f64(j, "alpha_intra")?,
            alpha_inter: get_f64(j, "alpha_inter")?,
            beta_intra: get_f64(j, "beta_intra")?,
            node_injection_bw: get_f64(j, "node_injection_bw")?,
            single_rank_bw_frac: get_f64(j, "single_rank_bw_frac")?,
            cores_per_node: get_usize(j, "cores_per_node")?,
            flops_per_core: get_f64(j, "flops_per_core")?,
            gemm_efficiency: get_f64(j, "gemm_efficiency")?,
            pack_bw: get_f64_or_inf(j, "pack_bw")?,
            reduce_scatter_degrade_threshold: get_f64_or_inf(
                j,
                "reduce_scatter_degrade_threshold",
            )?,
            reduce_scatter_degrade_factor: get_f64(j, "reduce_scatter_degrade_factor")?,
            reduce_scatter_odd_factor: get_f64(j, "reduce_scatter_odd_factor")?,
        })
    }
}

impl Phase {
    /// Externally tagged JSON form (`{"Variant": {fields…}}`).
    pub fn to_json(&self) -> Json {
        let (tag, body) = match self {
            Phase::Allgather { grp, total_bytes } => (
                "Allgather",
                Json::obj([("grp", grp.to_json()), ("total_bytes", num(*total_bytes))]),
            ),
            Phase::Bcast { grp, bytes } => (
                "Bcast",
                Json::obj([("grp", grp.to_json()), ("bytes", num(*bytes))]),
            ),
            Phase::ReduceScatter {
                grp,
                total_bytes,
                custom_impl,
            } => (
                "ReduceScatter",
                Json::obj([
                    ("grp", grp.to_json()),
                    ("total_bytes", num(*total_bytes)),
                    ("custom_impl", Json::Bool(*custom_impl)),
                ]),
            ),
            Phase::Alltoallv {
                grp,
                send_bytes,
                peers,
            } => (
                "Alltoallv",
                Json::obj([
                    ("grp", grp.to_json()),
                    ("send_bytes", num(*send_bytes)),
                    ("peers", num(*peers as f64)),
                ]),
            ),
            Phase::ShiftRounds {
                grp,
                rounds,
                bytes_per_round,
                msgs_per_round,
            } => (
                "ShiftRounds",
                Json::obj([
                    ("grp", grp.to_json()),
                    ("rounds", num(*rounds as f64)),
                    ("bytes_per_round", num(*bytes_per_round)),
                    ("msgs_per_round", num(*msgs_per_round as f64)),
                ]),
            ),
            Phase::HierAllgather { grp, total_bytes } => (
                "HierAllgather",
                Json::obj([("grp", grp.to_json()), ("total_bytes", num(*total_bytes))]),
            ),
            Phase::HierReduceScatter { grp, total_bytes } => (
                "HierReduceScatter",
                Json::obj([("grp", grp.to_json()), ("total_bytes", num(*total_bytes))]),
            ),
            Phase::HierBcast { grp, bytes } => (
                "HierBcast",
                Json::obj([("grp", grp.to_json()), ("bytes", num(*bytes))]),
            ),
            Phase::LocalGemm { flops } => ("LocalGemm", Json::obj([("flops", num(*flops))])),
            Phase::CannonOverlap {
                grp,
                rounds,
                bytes_per_round,
                msgs_per_round,
                flops,
            } => (
                "CannonOverlap",
                Json::obj([
                    ("grp", grp.to_json()),
                    ("rounds", num(*rounds as f64)),
                    ("bytes_per_round", num(*bytes_per_round)),
                    ("msgs_per_round", num(*msgs_per_round as f64)),
                    ("flops", num(*flops)),
                ]),
            ),
        };
        Json::obj([(tag, body)])
    }

    /// Parses the form produced by [`Phase::to_json`].
    pub fn from_json(j: &Json) -> Result<Phase, String> {
        let obj = j.as_obj().ok_or("phase must be an object")?;
        let (tag, body) = obj.iter().next().ok_or("phase object is empty")?;
        if obj.len() != 1 {
            return Err(format!("phase object has {} keys, expected 1", obj.len()));
        }
        let grp = || {
            body.get("grp")
                .ok_or("missing field `grp`".to_owned())
                .and_then(NetGroup::from_json)
        };
        match tag.as_str() {
            "Allgather" => Ok(Phase::Allgather {
                grp: grp()?,
                total_bytes: get_f64(body, "total_bytes")?,
            }),
            "Bcast" => Ok(Phase::Bcast {
                grp: grp()?,
                bytes: get_f64(body, "bytes")?,
            }),
            "ReduceScatter" => Ok(Phase::ReduceScatter {
                grp: grp()?,
                total_bytes: get_f64(body, "total_bytes")?,
                custom_impl: get_bool(body, "custom_impl")?,
            }),
            "Alltoallv" => Ok(Phase::Alltoallv {
                grp: grp()?,
                send_bytes: get_f64(body, "send_bytes")?,
                peers: get_usize(body, "peers")?,
            }),
            "ShiftRounds" => Ok(Phase::ShiftRounds {
                grp: grp()?,
                rounds: get_usize(body, "rounds")?,
                bytes_per_round: get_f64(body, "bytes_per_round")?,
                msgs_per_round: get_msgs_per_round(body)?,
            }),
            "HierAllgather" => Ok(Phase::HierAllgather {
                grp: grp()?,
                total_bytes: get_f64(body, "total_bytes")?,
            }),
            "HierReduceScatter" => Ok(Phase::HierReduceScatter {
                grp: grp()?,
                total_bytes: get_f64(body, "total_bytes")?,
            }),
            "HierBcast" => Ok(Phase::HierBcast {
                grp: grp()?,
                bytes: get_f64(body, "bytes")?,
            }),
            "LocalGemm" => Ok(Phase::LocalGemm {
                flops: get_f64(body, "flops")?,
            }),
            "CannonOverlap" => Ok(Phase::CannonOverlap {
                grp: grp()?,
                rounds: get_usize(body, "rounds")?,
                bytes_per_round: get_f64(body, "bytes_per_round")?,
                msgs_per_round: get_msgs_per_round(body)?,
                flops: get_f64(body, "flops")?,
            }),
            other => Err(format!("unknown phase variant `{other}`")),
        }
    }
}

impl Schedule {
    /// JSON form: `{"items": [[label, phase], …]}`.
    pub fn to_json(&self) -> Json {
        let items = self
            .items
            .iter()
            .map(|(label, phase)| Json::Arr(vec![Json::Str(label.clone()), phase.to_json()]))
            .collect();
        Json::obj([("items", Json::Arr(items))])
    }

    /// Compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses the form produced by [`Schedule::to_json`].
    pub fn from_json(j: &Json) -> Result<Schedule, String> {
        let items = j
            .get("items")
            .and_then(Json::as_arr)
            .ok_or("missing `items` array")?;
        let mut out = Schedule::new();
        for (i, item) in items.iter().enumerate() {
            let pair = item
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("item {i} is not a [label, phase] pair"))?;
            let label = pair[0]
                .as_str()
                .ok_or_else(|| format!("item {i} label is not a string"))?;
            let phase = Phase::from_json(&pair[1]).map_err(|e| format!("item {i}: {e}"))?;
            out.push(label, phase);
        }
        Ok(out)
    }

    /// Parses JSON text produced by [`Schedule::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Schedule, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        Schedule::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        let mut s = Schedule::new();
        s.push(
            "replicate_ab",
            Phase::Allgather {
                grp: NetGroup::strided(6, 4, 24),
                total_bytes: 1.5e6,
            },
        );
        s.push(
            "replicate_ab",
            Phase::Bcast {
                grp: NetGroup::contiguous(3, 24),
                bytes: 2048.0,
            },
        );
        s.push(
            "redist",
            Phase::Alltoallv {
                grp: NetGroup::scattered(12, 24),
                send_bytes: 4096.0,
                peers: 11,
            },
        );
        s.push(
            "cannon",
            Phase::CannonOverlap {
                grp: NetGroup::contiguous(4, 24),
                rounds: 3,
                bytes_per_round: 512.0,
                msgs_per_round: 2,
                flops: 1e9,
            },
        );
        s.push(
            "reduce_c",
            Phase::ReduceScatter {
                grp: NetGroup::flat(5),
                total_bytes: 9.5e5,
                custom_impl: true,
            },
        );
        s.push("local_gemm", Phase::LocalGemm { flops: 2e9 });
        s.push(
            "replicate_ab",
            Phase::HierAllgather {
                grp: NetGroup::contiguous(8, 4),
                total_bytes: 3.2e4,
            },
        );
        s.push(
            "reduce_c",
            Phase::HierReduceScatter {
                grp: NetGroup::strided(24, 128, 384),
                total_bytes: 589_824.0,
            },
        );
        s.push(
            "replicate_ab",
            Phase::HierBcast {
                grp: NetGroup::contiguous(6, 3),
                bytes: 1024.0,
            },
        );
        s.push(
            "cannon",
            Phase::ShiftRounds {
                grp: NetGroup::contiguous(4, 1),
                rounds: 2,
                bytes_per_round: 64.0,
                msgs_per_round: 1,
            },
        );
        s
    }

    #[test]
    fn msgs_per_round_defaults_to_one_for_old_artifacts() {
        // A ShiftRounds phase serialized before `msgs_per_round` existed.
        let text = r#"{"items": [["cannon", {"ShiftRounds": {
            "grp": {"size": 4, "stride": 1, "ranks_per_node": 1, "scattered": false},
            "rounds": 3, "bytes_per_round": 64.0}}]]}"#;
        let s = Schedule::from_json_str(text).expect("parse legacy schedule");
        match &s.items[0].1 {
            Phase::ShiftRounds { msgs_per_round, .. } => assert_eq!(*msgs_per_round, 1),
            other => panic!("parsed wrong variant: {other:?}"),
        }
        assert!((s.message_count() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_preserves_schedule() {
        let s = sample();
        let text = s.to_json_string();
        let back = Schedule::from_json_str(&text).expect("parse back");
        assert_eq!(back.items, s.items);
    }

    #[test]
    fn encoding_is_externally_tagged() {
        let s = sample();
        let j = s.to_json();
        let first = &j.get("items").unwrap().as_arr().unwrap()[0];
        let pair = first.as_arr().unwrap();
        assert_eq!(pair[0].as_str(), Some("replicate_ab"));
        assert!(pair[1].get("Allgather").is_some());
    }

    #[test]
    fn machine_round_trips_through_json() {
        for m in [Machine::phoenix_cpu(), Machine::phoenix_gpu()] {
            let text = m.to_json().to_string();
            let back = Machine::from_json(&jsonlite::Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.name, m.name);
            assert_eq!(back.alpha_inter, m.alpha_inter);
            assert_eq!(back.beta_intra, m.beta_intra);
            assert_eq!(back.cores_per_node, m.cores_per_node);
            assert_eq!(back.pack_bw, m.pack_bw);
            assert_eq!(
                back.reduce_scatter_degrade_threshold,
                m.reduce_scatter_degrade_threshold
            );
        }
    }

    #[test]
    fn machine_infinity_fields_round_trip_as_null() {
        // uniform() disables pack and degrade thresholds with +inf, which
        // jsonlite writes as null; the parser must bring the infinity back.
        let m = Machine::uniform();
        let text = m.to_json().to_string();
        assert!(text.contains(r#""pack_bw":null"#), "got {text}");
        let back = Machine::from_json(&jsonlite::Json::parse(&text).unwrap()).unwrap();
        assert!(back.pack_bw.is_infinite());
        assert!(back.reduce_scatter_degrade_threshold.is_infinite());
    }

    #[test]
    fn placement_round_trips_through_json() {
        let p = Machine::phoenix_cpu().pure_mpi();
        let text = p.to_json().to_string();
        let back = Placement::from_json(&jsonlite::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn errors_are_reported() {
        assert!(Schedule::from_json_str("{}").is_err());
        assert!(Schedule::from_json_str(r#"{"items":[["x",{"Nope":{}}]]}"#).is_err());
        assert!(
            Schedule::from_json_str(r#"{"items":[["x",{"LocalGemm":{}}]]}"#)
                .unwrap_err()
                .contains("flops")
        );
        assert!(Schedule::from_json_str("not json").is_err());
    }
}
