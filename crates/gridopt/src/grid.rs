//! Grid and problem descriptions shared across the workspace.

/// The dimensions of one PGEMM, `C = op(A)·op(B)` with `op(A): m×k`,
/// `op(B): k×n`, `C: m×n` (paper eq. 1), plus the process count `P`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Problem {
    /// Rows of C.
    pub m: usize,
    /// Columns of C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Number of processes available (`mpirun -np P`).
    pub p: usize,
}

impl Problem {
    /// Convenience constructor.
    pub const fn new(m: usize, n: usize, k: usize, p: usize) -> Self {
        Self { m, n, k, p }
    }

    /// Total multiply-add count `m·n·k` (the cuboid volume of §III-A).
    pub fn volume(&self) -> u128 {
        self.m as u128 * self.n as u128 * self.k as u128
    }

    /// The per-process communication lower bound in *elements*,
    /// `Q = 3·(mnk/P)^(2/3)` (paper eq. 9).
    pub fn comm_lower_bound(&self) -> f64 {
        3.0 * ((self.volume() as f64) / self.p as f64).powf(2.0 / 3.0)
    }
}

/// A 3D process grid `pm × pn × pk` (paper notation: `pm × pk × pn`; we
/// order fields m, n, k for readability).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Grid {
    /// Processes along the m-dimension.
    pub pm: usize,
    /// Processes along the n-dimension.
    pub pn: usize,
    /// Processes along the k-dimension (number of k-task groups).
    pub pk: usize,
}

impl Grid {
    /// Convenience constructor.
    pub const fn new(pm: usize, pn: usize, pk: usize) -> Self {
        Self { pm, pn, pk }
    }

    /// Number of active processes `pm·pn·pk`.
    pub const fn active(&self) -> usize {
        self.pm * self.pn * self.pk
    }

    /// The paper's eq. 4: total surface area
    /// `S_total = 2(pm·k·n + pn·m·k + pk·m·n)` in elements.
    pub fn surface(&self, m: usize, n: usize, k: usize) -> u128 {
        2 * (self.pm as u128 * (k as u128 * n as u128)
            + self.pn as u128 * (m as u128 * k as u128)
            + self.pk as u128 * (m as u128 * n as u128))
    }

    /// Whether the Cannon-group constraint (eq. 7) holds:
    /// `mod(max(pm,pn), min(pm,pn)) = 0`.
    pub const fn cannon_compatible(&self) -> bool {
        let mx = if self.pm > self.pn { self.pm } else { self.pn };
        let mn = if self.pm > self.pn { self.pn } else { self.pm };
        mx % mn == 0
    }

    /// The replication factor `c = max(pm,pn)/min(pm,pn)` (eq. 8).
    ///
    /// # Panics
    /// If the grid is not Cannon-compatible.
    pub fn cannon_c(&self) -> usize {
        assert!(self.cannon_compatible(), "grid violates eq. 7: {self:?}");
        self.pm.max(self.pn) / self.pm.min(self.pn)
    }

    /// The Cannon-group side `s = min(pm, pn)`.
    pub const fn cannon_s(&self) -> usize {
        if self.pm < self.pn {
            self.pm
        } else {
            self.pn
        }
    }
}

/// The outcome of a grid search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridChoice {
    /// The chosen grid.
    pub grid: Grid,
    /// Its `S_total` (eq. 4), in elements.
    pub s_total: u128,
}

impl GridChoice {
    /// Fraction of the `P` processes that are active (the artifact's
    /// "Process utilization" output line).
    pub fn utilization(&self, p: usize) -> f64 {
        self.grid.active() as f64 / p as f64
    }

    /// Per-active-process transferred elements implied by the grid: half the
    /// surface sum (each element of every subdomain face is either loaded or
    /// updated once) divided by active processes.
    pub fn per_process_volume(&self, prob: &Problem) -> f64 {
        (self.grid.surface(prob.m, prob.n, prob.k) as f64) / 2.0 / self.grid.active() as f64
    }

    /// The artifact's "Comm. volume / lower bound" report line: the chosen
    /// grid's per-process volume over eq. 9 evaluated with the *active*
    /// process count.
    pub fn volume_ratio(&self, prob: &Problem) -> f64 {
        let active = Problem {
            p: self.grid.active(),
            ..*prob
        };
        self.per_process_volume(prob) / active.comm_lower_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_formula() {
        let g = Grid::new(2, 4, 1);
        // 2(pm*kn + pn*mk + pk*mn) with m=32,n=64,k=16
        let s = g.surface(32, 64, 16);
        assert_eq!(s, 2 * (2 * 16 * 64 + 4 * 32 * 16 + 32 * 64));
    }

    #[test]
    fn cannon_constraint() {
        assert!(Grid::new(2, 4, 1).cannon_compatible());
        assert!(Grid::new(4, 2, 3).cannon_compatible());
        assert!(Grid::new(3, 3, 5).cannon_compatible());
        assert!(!Grid::new(2, 3, 1).cannon_compatible());
        assert_eq!(Grid::new(2, 4, 1).cannon_c(), 2);
        assert_eq!(Grid::new(4, 2, 3).cannon_c(), 2);
        assert_eq!(Grid::new(3, 3, 5).cannon_c(), 1);
        assert_eq!(Grid::new(6, 2, 1).cannon_s(), 2);
    }

    #[test]
    #[should_panic(expected = "violates eq. 7")]
    fn cannon_c_panics_on_bad_grid() {
        let _ = Grid::new(2, 3, 1).cannon_c();
    }

    #[test]
    fn lower_bound_square() {
        // m=n=k=N, P: Q = 3 N^2 / P^(2/3)
        let p = Problem::new(100, 100, 100, 8);
        let q = p.comm_lower_bound();
        assert!((q - 3.0 * (1e6_f64 / 8.0).powf(2.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn utilization_and_ratio() {
        let prob = Problem::new(32, 32, 64, 17);
        let choice = GridChoice {
            grid: Grid::new(2, 2, 4),
            s_total: Grid::new(2, 2, 4).surface(32, 32, 64),
        };
        assert!((choice.utilization(17) - 16.0 / 17.0).abs() < 1e-12);
        assert!(choice.volume_ratio(&prob) >= 0.99);
    }

    #[test]
    fn problem_volume() {
        assert_eq!(Problem::new(2, 3, 4, 1).volume(), 24);
    }
}
