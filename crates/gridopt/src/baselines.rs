//! Grid choices used by the baseline algorithms.

use crate::grid::{Grid, Problem};

/// 2D grid for SUMMA: `pr × pc` with `pr·pc` as large as possible (≤ P) and
/// minimizing the per-rank panel traffic `k·(m/pr + n/pc)`.
///
/// Returns `(pr, pc)`.
pub fn summa_grid(prob: &Problem) -> (usize, usize) {
    let p = prob.p;
    // For each pr use the largest pc = ⌊p/pr⌋; like ScaLAPACK, SUMMA wastes
    // P − pr·pc processes when P is awkward. Minimize per-rank panel
    // traffic m/pr + n/pc; break ties toward more active processes, then
    // deterministically toward smaller pr.
    let mut best: Option<(f64, std::cmp::Reverse<usize>, usize, usize)> = None;
    for pr in 1..=p {
        let pc = p / pr;
        if pc == 0 {
            break;
        }
        let cost = prob.m as f64 / pr as f64 + prob.n as f64 / pc as f64;
        let cand = (cost, std::cmp::Reverse(pr * pc), pr, pc);
        if best.is_none() || cand < best.unwrap() {
            best = Some(cand);
        }
    }
    let (_, _, pr, pc) = best.expect("P >= 1 always yields a grid");
    (pr, pc)
}

/// The original 3D algorithm (Agarwal et al. \[15\]) requires a cuboidal grid;
/// the classic formulation uses `q × q × q` with `q = ⌊P^(1/3)⌋` and leaves
/// the remaining processes idle.
pub fn cube_grid(p: usize) -> Grid {
    let mut q = (p as f64).cbrt().round() as usize;
    while q.pow(3) > p {
        q -= 1;
    }
    let q = q.max(1);
    Grid::new(q, q, q)
}

/// The 2.5D algorithm (Solomonik & Demmel \[16\]) uses `sqrt(P/c) × sqrt(P/c)
/// × c` for a replication factor `c`. Returns the largest feasible grid for
/// the given `c`, shrinking the square side until it fits.
pub fn grid_25d(p: usize, c: usize) -> Grid {
    assert!(c >= 1, "replication factor must be positive");
    let mut s = ((p / c) as f64).sqrt().floor() as usize;
    s = s.max(1);
    while s * s * c > p {
        s -= 1;
    }
    let s = s.max(1);
    Grid::new(s, s, c.min(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summa_square_matrix_gets_square_grid() {
        let (pr, pc) = summa_grid(&Problem::new(1000, 1000, 1000, 16));
        assert_eq!((pr, pc), (4, 4));
    }

    #[test]
    fn summa_tall_matrix_gets_tall_grid() {
        let (pr, pc) = summa_grid(&Problem::new(100_000, 100, 100, 16));
        assert!(pr > pc, "tall matrix should get tall grid: {pr}x{pc}");
    }

    #[test]
    fn summa_uses_at_most_p() {
        for p in 1..=30 {
            let (pr, pc) = summa_grid(&Problem::new(512, 512, 512, p));
            assert!(pr * pc <= p);
            assert!(pr * pc >= 1);
        }
    }

    #[test]
    fn cube_grid_floors() {
        assert_eq!(cube_grid(8), Grid::new(2, 2, 2));
        assert_eq!(cube_grid(27), Grid::new(3, 3, 3));
        assert_eq!(cube_grid(26), Grid::new(2, 2, 2));
        assert_eq!(cube_grid(1), Grid::new(1, 1, 1));
        assert_eq!(cube_grid(63), Grid::new(3, 3, 3));
        assert_eq!(cube_grid(64), Grid::new(4, 4, 4));
    }

    #[test]
    fn grid_25d_fits() {
        let g = grid_25d(32, 2);
        assert_eq!(g, Grid::new(4, 4, 2));
        let g = grid_25d(16, 1);
        assert_eq!(g, Grid::new(4, 4, 1));
        let g = grid_25d(7, 2);
        assert!(g.active() <= 7);
    }
}
