//! 3D process-grid selection for PGEMM (paper §III-A/§III-B).
//!
//! The paper chooses a process grid `pm × pk × pn` by enumerating all
//! possibilities and minimizing the total surface area of the work
//! subdomains,
//!
//! ```text
//! S_total = 2 (pm·k·n + pn·m·k + pk·m·n)            (eq. 4)
//! ```
//!
//! subject to the utilization constraint `l·P ≤ pm·pk·pn ≤ P` (eq. 5, with
//! `l = 0.95` by default), the Cannon-group divisibility constraint
//! `mod(max(pm,pn), min(pm,pn)) = 0` (eq. 7), and a lower-priority
//! sub-target of maximizing `pm·pk·pn` (eq. 6).
//!
//! This crate implements that search ([`ca3dmm_grid`]) plus the grid choices
//! of the baselines: [`cosma_grid`] (same search without eq. 7 — what the
//! COSMA source does per §III-C), [`summa_grid`] (2D), [`cube_grid`]
//! (original 3D algorithm), and [`grid_25d`] (2.5D / CTF-like). A
//! brute-force reference ([`brute_force_grid`]) backs the property tests.

mod baselines;
mod grid;
mod search;

pub use baselines::{cube_grid, grid_25d, summa_grid};
pub use grid::{Grid, GridChoice, Problem};
pub use search::{
    brute_force_grid, ca3dmm_grid, ca3dmm_grid_timed, cosma_grid, SolvedGrid,
    DEFAULT_UTILIZATION_FLOOR,
};
