//! The CA3DMM / COSMA grid searches.

use crate::grid::{Grid, GridChoice, Problem};

/// The paper's default utilization floor `l = 0.95` (eq. 5): at least 95 %
/// of processes must be active.
pub const DEFAULT_UTILIZATION_FLOOR: f64 = 0.95;

/// The feasible `pk` values for a fixed `(pm, pn)`: `pk` must keep the
/// product within `[floor(l·P), P]`. The whole (short) range is scanned; it
/// is at most `~(1-l)·P/(pm·pn)+1` values.
///
/// Floor (not ceiling) semantics on `l·P` match the paper's own Example 3:
/// with `P = 17` and `l = 0.95`, the chosen grid uses 16 processes even
/// though `16 < ⌈0.95·17⌉ = 17`.
fn feasible_pk(p: usize, floor: f64, pm: usize, pn: usize) -> std::ops::RangeInclusive<usize> {
    let base = pm * pn;
    let hi = p / base;
    let lo_target = (floor * p as f64).floor() as usize;
    let lo = lo_target.div_ceil(base.max(1)).max(1);
    lo..=hi // empty when lo > hi
}

/// Enumerates the feasible `(pm, pn)` pairs and hands each feasible grid to
/// `consider`.
fn enumerate(p: usize, floor: f64, require_cannon: bool, mut consider: impl FnMut(Grid)) {
    for pm in 1..=p {
        let mut visit = |pn: usize| {
            for pk in feasible_pk(p, floor, pm, pn) {
                consider(Grid::new(pm, pn, pk));
            }
        };
        if require_cannon {
            // pn must be a multiple of pm …
            let mut pn = pm;
            while pm * pn <= p {
                visit(pn);
                pn += pm;
            }
            // … or a proper divisor of pm (eq. 7), found in O(√pm).
            let mut d = 1;
            while d * d <= pm {
                if pm % d == 0 {
                    if d < pm && pm * d <= p {
                        visit(d);
                    }
                    let q = pm / d;
                    if q < pm && q != d && pm * q <= p {
                        visit(q);
                    }
                }
                d += 1;
            }
        } else {
            for pn in 1..=p / pm {
                visit(pn);
            }
        }
    }
}

/// Two-pass search implementing the paper's objectives as the artifact
/// applies them.
///
/// The paper states: minimize eq. 4 subject to eq. 5 (+ eq. 7 for CA3DMM),
/// with eq. 6 (maximize utilization) at lower priority. Applied literally,
/// that contradicts the artifact's observed choices: at `P = 2048`,
/// `m=n=k=50000`, the grid `13×13×12` (2028 active, surface ∝ 38) beats the
/// reported `8×16×16` (2048 active, surface ∝ 40). The behaviour consistent
/// with *all* of the paper's data points (Examples 1–3 and both Table II
/// process counts) is: find the minimum surface `S*` over the feasible set,
/// then among grids with `S_total ≤ S*/l` (surface may be traded for
/// utilization by the same factor `l` that bounds idle processes) pick the
/// one maximizing active processes, breaking ties by smaller surface. See
/// DESIGN.md.
fn search(prob: &Problem, floor: f64, require_cannon: bool) -> GridChoice {
    let p = prob.p;
    assert!(p >= 1, "need at least one process");
    assert!(
        (0.0..=1.0).contains(&floor),
        "utilization floor must be in [0,1]"
    );
    // Pass 1: minimum surface over the feasible set.
    let mut s_min: Option<u128> = None;
    enumerate(p, floor, require_cannon, |g| {
        let s = g.surface(prob.m, prob.n, prob.k);
        s_min = Some(s_min.map_or(s, |cur| cur.min(s)));
    });
    let s_min = s_min.expect("grid search found no feasible grid");
    // Threshold S*/l, computed in integer arithmetic to stay exact:
    // accept s when s * l <= s_min, i.e. s * (l_num) <= s_min * l_den with
    // l = l_num/l_den approximated at 1e-9 resolution.
    let l_num = (floor * 1e9).round() as u128;
    let l_den = 1_000_000_000u128;
    let within = |s: u128| {
        if floor <= 0.0 {
            true
        } else {
            s.saturating_mul(l_num) <= s_min.saturating_mul(l_den)
        }
    };
    // Pass 2: maximize utilization among surfaces within the threshold.
    let mut best: Option<(u128, Grid)> = None;
    enumerate(p, floor, require_cannon, |g| {
        let s = g.surface(prob.m, prob.n, prob.k);
        if !within(s) {
            return;
        }
        let cand = (s, g);
        let replace = match &best {
            None => true,
            Some(cur) => {
                let (sb, gb) = cur;
                // utilization first, then surface, then deterministic ties
                (std::cmp::Reverse(g.active()), s, g.pk, g.pm)
                    < (std::cmp::Reverse(gb.active()), *sb, gb.pk, gb.pm)
            }
        };
        if replace {
            best = Some(cand);
        }
    });
    let (s_total, grid) = best.expect("grid search found no feasible grid");
    GridChoice { grid, s_total }
}

/// The CA3DMM grid (Algorithm 1 step 1): minimizes eq. 4 under eq. 5 and the
/// Cannon constraint eq. 7, maximizing utilization (eq. 6) among equals.
pub fn ca3dmm_grid(prob: &Problem, floor: f64) -> GridChoice {
    search(prob, floor, true)
}

/// A solved grid together with the wall seconds the enumeration took.
///
/// This is the handle a plan cache stores: the search result is a pure
/// function of `(prob, floor)`, so once solved it can be reused for every
/// repeat of the same problem, and `search_secs` is exactly the per-call
/// cost that reuse amortizes away (surfaced in `report_meta` and the
/// `grid_search` bench).
#[derive(Clone, Copy, Debug)]
pub struct SolvedGrid {
    /// The problem the grid was solved for.
    pub prob: Problem,
    /// The utilization floor `l` the search ran under.
    pub floor: f64,
    /// The chosen grid and its surface.
    pub choice: GridChoice,
    /// Wall seconds spent enumerating (eq. 4/5/7 search).
    pub search_secs: f64,
}

/// [`ca3dmm_grid`] with the enumeration timed: the cacheable entry point.
pub fn ca3dmm_grid_timed(prob: &Problem, floor: f64) -> SolvedGrid {
    let t0 = std::time::Instant::now();
    let choice = search(prob, floor, true);
    SolvedGrid {
        prob: *prob,
        floor,
        choice,
        search_secs: t0.elapsed().as_secs_f64(),
    }
}

/// The grid the COSMA source code uses (§III-C): the same search *without*
/// the Cannon constraint.
pub fn cosma_grid(prob: &Problem, floor: f64) -> GridChoice {
    search(prob, floor, false)
}

/// Exhaustive reference search over *all* triples with `pm·pn·pk ≤ P` —
/// exponentially simpler to audit, used by property tests to validate
/// [`ca3dmm_grid`] / [`cosma_grid`]. Only usable for small `P`.
pub fn brute_force_grid(prob: &Problem, floor: f64, require_cannon: bool) -> GridChoice {
    let p = prob.p;
    let lo = ((floor * p as f64).floor() as usize).max(1);
    let mut feasible: Vec<(u128, Grid)> = Vec::new();
    for pm in 1..=p {
        for pn in 1..=p / pm {
            for pk in 1..=p / (pm * pn) {
                let g = Grid::new(pm, pn, pk);
                if g.active() < lo {
                    continue;
                }
                if require_cannon && !g.cannon_compatible() {
                    continue;
                }
                feasible.push((g.surface(prob.m, prob.n, prob.k), g));
            }
        }
    }
    let s_min = feasible
        .iter()
        .map(|&(s, _)| s)
        .min()
        .expect("brute force found no feasible grid");
    let l_num = (floor * 1e9).round() as u128;
    let mut best: Option<(u128, Grid)> = None;
    for cand in feasible {
        let (s, g) = cand;
        if floor > 0.0 && s.saturating_mul(l_num) > s_min.saturating_mul(1_000_000_000) {
            continue;
        }
        let replace = match &best {
            None => true,
            Some((sb, gb)) => {
                (std::cmp::Reverse(g.active()), s, g.pk, g.pm)
                    < (std::cmp::Reverse(gb.active()), *sb, gb.pk, gb.pm)
            }
        };
        if replace {
            best = Some(cand);
        }
    }
    let (s_total, grid) = best.expect("brute force found no feasible grid");
    GridChoice { grid, s_total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_of(m: usize, n: usize, k: usize, p: usize) -> Grid {
        ca3dmm_grid(&Problem::new(m, n, k, p), DEFAULT_UTILIZATION_FLOOR).grid
    }

    #[test]
    fn paper_example_1() {
        // m=32, k=16, n=64, P=8 -> pm=2, pk=1, pn=4 (§III-B Example 1)
        assert_eq!(grid_of(32, 64, 16, 8), Grid::new(2, 4, 1));
    }

    #[test]
    fn paper_example_2() {
        // m=n=32, k=64, P=16 -> pm=pn=2, pk=4 (§III-B Example 2)
        assert_eq!(grid_of(32, 32, 64, 16), Grid::new(2, 2, 4));
    }

    #[test]
    fn paper_example_3_idle_process() {
        // m=n=32, k=64, P=17 -> same grid as P=16; one process idle
        let choice = ca3dmm_grid(&Problem::new(32, 32, 64, 17), DEFAULT_UTILIZATION_FLOOR);
        assert_eq!(choice.grid, Grid::new(2, 2, 4));
        assert!(choice.utilization(17) < 1.0);
        assert!(choice.utilization(17) >= 0.94);
    }

    #[test]
    fn degenerate_shapes_fall_back_to_1d_or_2d() {
        // k=1 (rank-1 update): no k parallelism wanted
        let g = grid_of(64, 64, 1, 16);
        assert_eq!(g.pk, 1);
        // n=1 (matrix-vector): pn must be 1
        let g = grid_of(4096, 1, 4096, 8);
        assert_eq!(g.pn, 1);
        // m=n=1 (inner product): 1D k-partition
        let g = grid_of(1, 1, 65536, 8);
        assert_eq!((g.pm, g.pn, g.pk), (1, 1, 8));
    }

    #[test]
    fn tall_skinny_uses_1d() {
        // large-K: m=n << k -> mostly pk
        let g = grid_of(600, 600, 120_000, 64);
        assert!(g.pk >= 16, "large-K should parallelize k: {g:?}");
        // large-M: m >> n=k -> mostly pm
        let g = grid_of(120_000, 600, 600, 64);
        assert!(g.pm >= 16, "large-M should parallelize m: {g:?}");
    }

    #[test]
    fn square_uses_balanced_3d() {
        let g = grid_of(4096, 4096, 4096, 64);
        assert_eq!((g.pm, g.pn, g.pk), (4, 4, 4));
    }

    #[test]
    fn single_process() {
        assert_eq!(grid_of(100, 100, 100, 1), Grid::new(1, 1, 1));
    }

    #[test]
    fn prime_process_count_leaves_idle() {
        let choice = ca3dmm_grid(
            &Problem::new(1000, 1000, 1000, 13),
            DEFAULT_UTILIZATION_FLOOR,
        );
        // 13 is prime; a good 3D grid can't use all 13
        assert!(choice.grid.active() <= 13);
        assert!(choice.grid.active() >= 13 - 1); // floor 0.95*13 = 12.35 -> >= 13? ceil = 13
    }

    #[test]
    fn always_satisfies_constraints() {
        for p in 1..=40 {
            for &(m, n, k) in &[(64, 64, 64), (1000, 10, 10), (7, 1000, 13)] {
                let choice = ca3dmm_grid(&Problem::new(m, n, k, p), DEFAULT_UTILIZATION_FLOOR);
                let g = choice.grid;
                assert!(g.cannon_compatible(), "eq.7 violated for p={p} {g:?}");
                assert!(g.active() <= p, "too many active for p={p}");
                assert!(
                    g.active() >= (0.95 * p as f64).floor() as usize,
                    "utilization too low for p={p}: {g:?}"
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_small() {
        for p in [1usize, 2, 3, 6, 8, 12, 16, 17, 24] {
            for &(m, n, k) in &[(32, 64, 16), (50, 50, 50), (6, 6, 1200), (100, 100, 5)] {
                let prob = Problem::new(m, n, k, p);
                let fast = ca3dmm_grid(&prob, DEFAULT_UTILIZATION_FLOOR);
                let slow = brute_force_grid(&prob, DEFAULT_UTILIZATION_FLOOR, true);
                assert_eq!(fast.grid, slow.grid, "p={p} m={m} n={n} k={k}");
                let fast = cosma_grid(&prob, DEFAULT_UTILIZATION_FLOOR);
                let slow = brute_force_grid(&prob, DEFAULT_UTILIZATION_FLOOR, false);
                assert_eq!(fast.grid, slow.grid, "cosma p={p} m={m} n={n} k={k}");
            }
        }
    }

    #[test]
    fn cosma_grid_never_worse_than_ca3dmm() {
        // Dropping constraint (7) can only improve (or match) S_total.
        for p in [4usize, 12, 18, 23, 48] {
            for &(m, n, k) in &[(50, 50, 50), (6, 6, 1200), (100, 100, 5), (31, 17, 97)] {
                let prob = Problem::new(m, n, k, p);
                let with = ca3dmm_grid(&prob, DEFAULT_UTILIZATION_FLOOR);
                let without = cosma_grid(&prob, DEFAULT_UTILIZATION_FLOOR);
                assert!(without.s_total <= with.s_total);
            }
        }
    }

    #[test]
    fn utilization_floor_tradeoff() {
        // The chosen grid's surface is always within 1/l of the best
        // feasible surface (the documented threshold rule).
        let prob = Problem::new(500, 500, 500, 23);
        for l in [0.85, 0.95, 0.99] {
            let choice = ca3dmm_grid(&prob, l);
            let best = brute_force_grid(&prob, l, true);
            assert_eq!(choice.grid, best.grid, "l={l}");
            assert!(choice.s_total as f64 * l <= best.s_total as f64 / l * 1.0001);
        }
    }

    #[test]
    fn table2_square_2048_grid() {
        // Table II: 50k^3 on 2048 cores -> 8x16x16 (pm,pn,pk) for both
        // libraries. Our search may find any permutation-equivalent grid
        // with the same S_total; for m=n=k surface depends only on the sum,
        // so assert the multiset and the sum.
        let choice = ca3dmm_grid(&Problem::new(50_000, 50_000, 50_000, 2048), 0.95);
        let g = choice.grid;
        let mut dims = [g.pm, g.pn, g.pk];
        dims.sort_unstable();
        assert_eq!(dims, [8, 16, 16]);
    }

    #[test]
    fn feasible_pk_bounds() {
        // P=16, l=0.95 -> lo_target = floor(15.2) = 15; pm=pn=2 -> pk=4..=4
        assert_eq!(feasible_pk(16, 0.95, 2, 2), 4..=4);
        // floor 0 admits pk from 1
        assert_eq!(feasible_pk(16, 0.0, 2, 2), 1..=4);
        // infeasible when base > P
        assert!(feasible_pk(4, 0.95, 3, 3).is_empty());
    }

    #[test]
    fn table2_square_3072_grid() {
        // Table II: 50k^3 on 3072 cores -> CA3DMM default {16,16,12}.
        let choice = ca3dmm_grid(&Problem::new(50_000, 50_000, 50_000, 3072), 0.95);
        let g = choice.grid;
        let mut dims = [g.pm, g.pn, g.pk];
        dims.sort_unstable();
        assert_eq!(dims, [12, 16, 16]);
        assert_eq!(g.active(), 3072);
    }

    #[test]
    fn table2_large_k_2048_grid() {
        // Table II: 6k,6k,1.2M on 2048 cores -> 2,2,512 for both libraries.
        let choice = ca3dmm_grid(&Problem::new(6_000, 6_000, 1_200_000, 2048), 0.95);
        assert_eq!(choice.grid, Grid::new(2, 2, 512));
        // and the flat problem -> 32,32,2
        let choice = ca3dmm_grid(&Problem::new(100_000, 100_000, 5_000, 2048), 0.95);
        assert_eq!(choice.grid, Grid::new(32, 32, 2));
    }
}
