//! Minimal timing harness for the `benches/` binaries.
//!
//! The workspace builds fully offline, so the benches use this
//! dependency-free sampler instead of criterion: warm up once, take N wall
//! timed samples (N ≥ 5 by default), report min / median / p95 / mean.
//! `BENCH_SAMPLES` overrides the sample count (set it to 3 in CI smoke
//! runs; statistical quality is not the point there).
//!
//! Every bench binary also records its results into a [`BenchReport`] and
//! writes them as `BENCH_<name>.json` — one shared shape (see
//! [`BenchReport::to_json`]) so `BENCH_gemm.json` and future baselines can
//! be diffed mechanically (`bin/validate_bench_json.rs` consumes it in CI).

use jsonlite::Json;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 10;

/// Sample count: `BENCH_SAMPLES` env var, else [`DEFAULT_SAMPLES`].
pub fn samples() -> usize {
    std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_SAMPLES)
}

/// One benchmark's sample statistics, in seconds.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Fastest sample.
    pub min_s: f64,
    /// Median sample.
    pub median_s: f64,
    /// 95th-percentile sample (nearest-rank; the slowest sample when fewer
    /// than 20 samples were taken).
    pub p95_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
}

/// Times `f` (one warmup + [`samples`] timed runs) and returns the stats.
pub fn time<F: FnMut()>(mut f: F) -> Stats {
    f(); // warmup
    let n = samples();
    let mut secs: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(f64::total_cmp);
    // Nearest-rank percentile: ceil(0.95 n) - 1.
    let p95_idx = ((0.95 * n as f64).ceil() as usize).clamp(1, n) - 1;
    Stats {
        min_s: secs[0],
        median_s: secs[n / 2],
        p95_s: secs[p95_idx],
        mean_s: secs.iter().sum::<f64>() / n as f64,
    }
}

/// Times `f` and prints one aligned report line; returns the stats.
pub fn bench<F: FnMut()>(label: &str, f: F) -> Stats {
    let s = time(f);
    println!(
        "{label:<40} min {:>12} med {:>12} p95 {:>12} mean {:>12}",
        fmt_secs(s.min_s),
        fmt_secs(s.median_s),
        fmt_secs(s.p95_s),
        fmt_secs(s.mean_s)
    );
    s
}

/// Like [`bench`] but also reports a throughput from `work / median`
/// (e.g. flops for GEMM benches).
pub fn bench_throughput<F: FnMut()>(label: &str, work: f64, f: F) -> Stats {
    let s = time(f);
    println!(
        "{label:<40} min {:>12} med {:>12} p95 {:>12} {:>14}",
        fmt_secs(s.min_s),
        fmt_secs(s.median_s),
        fmt_secs(s.p95_s),
        format!("{:.2} Gop/s", work / s.median_s / 1e9)
    );
    s
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Accumulates one bench binary's results and serializes them in the
/// workspace-wide `BENCH_*.json` shape:
///
/// ```json
/// {
///   "bench": "gemm",
///   "samples": 10,
///   "entries": [
///     {"label": "packed/512x512x512/f64/t1",
///      "min_s": ..., "median_s": ..., "p95_s": ..., "mean_s": ...,
///      "gflops": ...}
///   ]
/// }
/// ```
///
/// `gflops` is present only for throughput entries (work / median). Labels
/// are free-form but the GEMM bench uses `kernel/MxNxK/type/tN` so the CI
/// validator can address entries positionally. Entries may carry extra
/// numeric fields (e.g. `scaling_efficiency`, `threads` on the GEMM
/// multi-thread tiers) via [`BenchReport::annotate_last`].
#[derive(Clone, Debug)]
pub struct BenchReport {
    name: String,
    entries: Vec<Entry>,
}

#[derive(Clone, Debug)]
struct Entry {
    label: String,
    stats: Stats,
    gflops: Option<f64>,
    extra: Vec<(String, f64)>,
    extra_str: Vec<(String, String)>,
}

impl BenchReport {
    /// An empty report for the bench binary `name`.
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_owned(),
            entries: Vec::new(),
        }
    }

    /// Records a timed entry.
    pub fn push(&mut self, label: &str, stats: Stats) {
        self.entries.push(Entry {
            label: label.to_owned(),
            stats,
            gflops: None,
            extra: Vec::new(),
            extra_str: Vec::new(),
        });
    }

    /// Records a throughput entry (`work` in flops/ops; stored as Gop/s of
    /// the median sample).
    pub fn push_throughput(&mut self, label: &str, stats: Stats, work: f64) {
        let gflops = work / stats.median_s / 1e9;
        self.entries.push(Entry {
            label: label.to_owned(),
            stats,
            gflops: Some(gflops),
            extra: Vec::new(),
            extra_str: Vec::new(),
        });
    }

    /// Attaches an extra numeric field to the most recently pushed entry —
    /// for derived quantities only known after the run is recorded (the
    /// GEMM bench adds `threads` and `scaling_efficiency` to each
    /// multi-thread tier this way).
    ///
    /// # Panics
    /// If no entry has been pushed yet.
    pub fn annotate_last(&mut self, key: &str, value: f64) {
        self.entries
            .last_mut()
            .expect("annotate_last requires a previously pushed entry")
            .extra
            .push((key.to_owned(), value));
    }

    /// Like [`annotate_last`](Self::annotate_last) but for string-valued
    /// fields — the GEMM bench tags every tier with the dispatched
    /// microkernel name (`kernel`) this way.
    ///
    /// # Panics
    /// If no entry has been pushed yet.
    pub fn annotate_last_str(&mut self, key: &str, value: &str) {
        self.entries
            .last_mut()
            .expect("annotate_last_str requires a previously pushed entry")
            .extra_str
            .push((key.to_owned(), value.to_owned()));
    }

    /// The shared JSON shape (see the type docs).
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let s = &e.stats;
                let mut pairs = vec![
                    ("label", Json::Str(e.label.clone())),
                    ("min_s", Json::Num(s.min_s)),
                    ("median_s", Json::Num(s.median_s)),
                    ("p95_s", Json::Num(s.p95_s)),
                    ("mean_s", Json::Num(s.mean_s)),
                ];
                if let Some(g) = e.gflops {
                    pairs.push(("gflops", Json::Num(g)));
                }
                let extra: Vec<(&str, Json)> = e
                    .extra
                    .iter()
                    .map(|(k, v)| (k.as_str(), Json::Num(*v)))
                    .chain(
                        e.extra_str
                            .iter()
                            .map(|(k, v)| (k.as_str(), Json::Str(v.clone()))),
                    )
                    .collect();
                pairs.extend(extra);
                Json::obj(pairs)
            })
            .collect();
        Json::obj([
            ("bench", Json::Str(self.name.clone())),
            ("samples", Json::Num(samples() as f64)),
            ("entries", Json::Arr(entries)),
        ])
    }

    /// Where [`write`](Self::write) puts the file: `BENCH_<name>.json`
    /// under `$BENCH_JSON_DIR`, else `results/` when that directory exists
    /// here or in an ancestor, else the current directory. Relative
    /// directories are resolved upward because `cargo bench` runs bench
    /// binaries from the *package* directory (`crates/bench`), not the
    /// workspace root — `BENCH_JSON_DIR=results` should still find the
    /// repo-root `results/`.
    pub fn path(&self) -> PathBuf {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let dir = std::env::var("BENCH_JSON_DIR").map_or_else(
            |_| {
                resolve_upward(&PathBuf::from("results"), &cwd)
                    .unwrap_or_else(|| PathBuf::from("."))
            },
            |d| {
                let d = PathBuf::from(d);
                resolve_upward(&d, &cwd).unwrap_or(d)
            },
        );
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Writes the report (pretty JSON) and returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, self.to_json().to_string_pretty())?;
        Ok(path)
    }
}

/// Resolves a relative directory against `cwd` and each of its ancestors,
/// returning the first existing match. Absolute existing directories pass
/// through unchanged; `None` if nothing exists.
fn resolve_upward(dir: &Path, cwd: &Path) -> Option<PathBuf> {
    if dir.is_absolute() {
        return dir.is_dir().then(|| dir.to_path_buf());
    }
    cwd.ancestors()
        .map(|a| a.join(dir))
        .find(|cand| cand.is_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered() {
        let s = time(|| {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(s.min_s <= s.median_s);
        assert!(s.median_s <= s.p95_s);
        assert!(s.min_s > 0.0);
    }

    #[test]
    fn formatting_covers_ranges() {
        assert!(fmt_secs(2e-9).ends_with("ns"));
        assert!(fmt_secs(2e-5).ends_with("us"));
        assert!(fmt_secs(2e-2).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }

    #[test]
    fn report_round_trips_through_jsonlite() {
        let mut rep = BenchReport::new("unit");
        let s = Stats {
            min_s: 1.0,
            median_s: 2.0,
            p95_s: 3.0,
            mean_s: 2.5,
        };
        rep.push("plain", s);
        rep.push_throughput("tput", s, 4e9);
        rep.annotate_last("threads", 4.0);
        rep.annotate_last("scaling_efficiency", 0.9);
        rep.annotate_last_str("kernel", "avx2");
        let text = rep.to_json().to_string_pretty();
        let parsed = Json::parse(&text).expect("report must be valid JSON");
        let Json::Obj(top) = &parsed else {
            panic!("top level must be an object")
        };
        assert_eq!(top.get("bench"), Some(&Json::Str("unit".into())));
        let Some(Json::Arr(entries)) = top.get("entries") else {
            panic!("entries must be an array")
        };
        assert_eq!(entries.len(), 2);
        let Json::Obj(tput) = &entries[1] else {
            panic!("entry must be an object")
        };
        assert_eq!(tput.get("gflops"), Some(&Json::Num(2.0)));
        assert_eq!(tput.get("p95_s"), Some(&Json::Num(3.0)));
        assert_eq!(tput.get("threads"), Some(&Json::Num(4.0)));
        assert_eq!(tput.get("scaling_efficiency"), Some(&Json::Num(0.9)));
        assert_eq!(tput.get("kernel"), Some(&Json::Str("avx2".into())));
    }

    #[test]
    fn resolve_upward_climbs_to_ancestor_dirs() {
        let base =
            std::env::temp_dir().join(format!("bench_timing_resolve_{}", std::process::id()));
        let target = base.join("results");
        let nested = base.join("crates").join("bench");
        std::fs::create_dir_all(&target).unwrap();
        std::fs::create_dir_all(&nested).unwrap();

        // From the nested package dir, a relative name resolves to the
        // ancestor's existing directory — the `cargo bench` cwd situation.
        assert_eq!(
            resolve_upward(&PathBuf::from("results"), &nested),
            Some(target.clone())
        );
        // A relative name that exists nowhere up the tree stays unresolved.
        assert_eq!(
            resolve_upward(&PathBuf::from("no_such_dir_xyz"), &nested),
            None
        );
        // Absolute paths pass through (when they exist) without climbing.
        assert_eq!(resolve_upward(&target, &nested), Some(target.clone()));

        std::fs::remove_dir_all(&base).unwrap();
    }
}
