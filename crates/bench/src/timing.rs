//! Minimal timing harness for the `benches/` binaries.
//!
//! The workspace builds fully offline, so the benches use this
//! dependency-free sampler instead of criterion: warm up once, take N wall
//! timed samples, report min / median / mean. `BENCH_SAMPLES` overrides the
//! sample count (set it to 3 in CI smoke runs; statistical quality is not
//! the point there).

use std::time::Instant;

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 10;

/// Sample count: `BENCH_SAMPLES` env var, else [`DEFAULT_SAMPLES`].
pub fn samples() -> usize {
    std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_SAMPLES)
}

/// One benchmark's sample statistics, in seconds.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Fastest sample.
    pub min_s: f64,
    /// Median sample.
    pub median_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
}

/// Times `f` (one warmup + [`samples`] timed runs) and returns the stats.
pub fn time<F: FnMut()>(mut f: F) -> Stats {
    f(); // warmup
    let n = samples();
    let mut secs: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(f64::total_cmp);
    Stats {
        min_s: secs[0],
        median_s: secs[n / 2],
        mean_s: secs.iter().sum::<f64>() / n as f64,
    }
}

/// Times `f` and prints one aligned report line; returns the stats.
pub fn bench<F: FnMut()>(label: &str, f: F) -> Stats {
    let s = time(f);
    println!(
        "{label:<40} min {:>12} med {:>12} mean {:>12}",
        fmt_secs(s.min_s),
        fmt_secs(s.median_s),
        fmt_secs(s.mean_s)
    );
    s
}

/// Like [`bench`] but also reports a throughput from `work / median`
/// (e.g. flops for GEMM benches).
pub fn bench_throughput<F: FnMut()>(label: &str, work: f64, f: F) -> Stats {
    let s = time(f);
    println!(
        "{label:<40} min {:>12} med {:>12} {:>14}",
        fmt_secs(s.min_s),
        fmt_secs(s.median_s),
        format!("{:.2} Gop/s", work / s.median_s / 1e9)
    );
    s
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered() {
        let s = time(|| {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(s.min_s <= s.median_s);
        assert!(s.min_s > 0.0);
    }

    #[test]
    fn formatting_covers_ranges() {
        assert!(fmt_secs(2e-9).ends_with("ns"));
        assert!(fmt_secs(2e-5).ends_with("us"));
        assert!(fmt_secs(2e-2).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }
}
