//! The experiment harness: shared machinery for regenerating every table
//! and figure of the paper's evaluation (§IV).
//!
//! Each binary in `src/bin/` regenerates one table or figure; this library
//! holds what they share — the calibrated machine description, the paper's
//! problem classes, and the per-algorithm runtime predictors built on the
//! `netmodel` schedule evaluator. The model is validated against the real
//! threaded runtime by the `model_vs_measured` integration test; see
//! DESIGN.md §1 for the substitution argument and EXPERIMENTS.md for the
//! paper-vs-measured record.

use baselines::{C25d, CosmaLike};
use ca3dmm::{ca3dmm_schedule, ModelConfig};
use gridopt::{ca3dmm_grid, cosma_grid, Grid, Problem, DEFAULT_UTILIZATION_FLOOR};
use netmodel::eval::{evaluate, CostReport};
use netmodel::machine::Placement;
use netmodel::Machine;

/// The four problem classes of §IV-A (Fig. 3/4, Table I sizes).
pub const CPU_CLASSES: [(&str, usize, usize, usize); 4] = [
    ("square  50k,50k,50k", 50_000, 50_000, 50_000),
    ("large-K 6k,6k,1200k", 6_000, 6_000, 1_200_000),
    ("large-M 1200k,6k,6k", 1_200_000, 6_000, 6_000),
    ("flat    100k,100k,5k", 100_000, 100_000, 5_000),
];

/// The GPU problem sizes of Table III.
pub const GPU_CLASSES: [(&str, usize, usize, usize); 4] = [
    ("square  50k,50k,50k", 50_000, 50_000, 50_000),
    ("large-K 10k,10k,300k", 10_000, 10_000, 300_000),
    ("large-M 300k,10k,10k", 300_000, 10_000, 10_000),
    ("flat    50k,50k,10k", 50_000, 50_000, 10_000),
];

/// The strong-scaling core counts of Fig. 3/4 and Table I.
pub const CPU_SWEEP: [usize; 5] = [192, 384, 768, 1536, 3072];

/// Which library a prediction is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// CA3DMM (this paper).
    Ca3dmm,
    /// COSMA as described in §III-C.
    Cosma,
    /// CTF's 2.5D implementation (with its layout-conversion overhead).
    Ctf,
}

impl Algo {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Ca3dmm => "CA3DMM",
            Algo::Cosma => "COSMA",
            Algo::Ctf => "CTF",
        }
    }
}

/// One modeled run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Rank↦node/compute mapping.
    pub placement: Placement,
    /// Model the user-layout (1D column) conversion phases.
    pub custom_layout: bool,
}

/// Predicted cost of `algo` on `prob` (where `prob.p` counts *ranks*).
pub fn predict(machine: &Machine, algo: Algo, prob: &Problem, cfg: &RunConfig) -> CostReport {
    predict_with_grid(machine, algo, prob, cfg, None)
}

/// Like [`predict`] but with an explicit grid (Table II's forced grids).
pub fn predict_with_grid(
    machine: &Machine,
    algo: Algo,
    prob: &Problem,
    cfg: &RunConfig,
    grid: Option<Grid>,
) -> CostReport {
    let sched = match algo {
        Algo::Ca3dmm => {
            let grid = grid.unwrap_or_else(|| ca3dmm_grid(prob, DEFAULT_UTILIZATION_FLOOR).grid);
            let mc = ModelConfig {
                placement: cfg.placement,
                elem_bytes: 8.0,
                overlap: true,
                include_redist: cfg.custom_layout,
                collectives: ca3dmm::Collectives::Flat,
            };
            ca3dmm_schedule(prob, &grid, &mc)
        }
        Algo::Cosma => {
            let alg = CosmaLike::new(*prob, grid);
            alg.schedule(&cfg.placement, 8.0, cfg.custom_layout)
        }
        Algo::Ctf => {
            let alg = C25d::new(*prob, None);
            // CTF always converts into its internal cyclic layout, so the
            // layout overhead applies even in the "native" series.
            alg.schedule(&cfg.placement, 8.0, true)
        }
    };
    evaluate(machine, cfg.placement.flops_per_rank, &sched)
}

/// The default CA3DMM/COSMA grid for a problem (for reporting).
pub fn default_grid(algo: Algo, prob: &Problem) -> Grid {
    match algo {
        Algo::Ca3dmm => ca3dmm_grid(prob, DEFAULT_UTILIZATION_FLOOR).grid,
        Algo::Cosma => cosma_grid(prob, DEFAULT_UTILIZATION_FLOOR).grid,
        Algo::Ctf => {
            let alg = C25d::new(*prob, None);
            Grid::new(alg.s, alg.s, alg.c)
        }
    }
}

/// Percentage of machine peak achieved by a predicted runtime:
/// `2·m·n·k / t` over the aggregate raw peak of the ranks.
pub fn percent_of_peak(
    machine: &Machine,
    prob: &Problem,
    placement: &Placement,
    total_s: f64,
) -> f64 {
    let flops = 2.0 * prob.m as f64 * prob.n as f64 * prob.k as f64;
    let peak = machine.peak_flops(prob.p, placement);
    100.0 * (flops / total_s) / peak
}

/// Opens a CSV writer for an experiment when `BENCH_CSV_DIR` is set;
/// figure binaries call this to dump their series as machine-readable
/// artifacts next to the human-readable stdout tables.
pub fn csv_writer(name: &str) -> Option<std::io::BufWriter<std::fs::File>> {
    let dir = std::env::var("BENCH_CSV_DIR").ok()?;
    std::fs::create_dir_all(&dir).ok()?;
    let f = std::fs::File::create(std::path::Path::new(&dir).join(format!("{name}.csv"))).ok()?;
    Some(std::io::BufWriter::new(f))
}

pub mod timing;

/// Pretty-prints one row of dotted columns.
pub fn row(cols: &[String]) -> String {
    cols.iter()
        .map(|c| format!("{c:>12}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_are_positive_and_ordered() {
        let machine = Machine::phoenix_cpu();
        let cfg = RunConfig {
            placement: machine.pure_mpi(),
            custom_layout: false,
        };
        for (_, m, n, k) in CPU_CLASSES {
            let small = predict(&machine, Algo::Ca3dmm, &Problem::new(m, n, k, 192), &cfg);
            let large = predict(&machine, Algo::Ca3dmm, &Problem::new(m, n, k, 3072), &cfg);
            assert!(small.total_s > 0.0 && large.total_s > 0.0);
            assert!(
                large.total_s < small.total_s,
                "no strong scaling for {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn custom_layout_is_slower() {
        let machine = Machine::phoenix_cpu();
        let p = machine.pure_mpi();
        let prob = Problem::new(6_000, 6_000, 1_200_000, 768);
        let native = predict(
            &machine,
            Algo::Ca3dmm,
            &prob,
            &RunConfig {
                placement: p,
                custom_layout: false,
            },
        );
        let custom = predict(
            &machine,
            Algo::Ca3dmm,
            &prob,
            &RunConfig {
                placement: p,
                custom_layout: true,
            },
        );
        assert!(
            custom.total_s > native.total_s * 1.2,
            "layout conversion should hurt tall-skinny"
        );
    }

    #[test]
    fn ctf_lags_on_tall_skinny() {
        // The paper's Fig. 3: CTF clearly behind on large-M.
        let machine = Machine::phoenix_cpu();
        let p = machine.pure_mpi();
        let cfg = RunConfig {
            placement: p,
            custom_layout: false,
        };
        let prob = Problem::new(1_200_000, 6_000, 6_000, 1536);
        let ca = predict(&machine, Algo::Ca3dmm, &prob, &cfg);
        let ctf = predict(&machine, Algo::Ctf, &prob, &cfg);
        assert!(
            ctf.total_s > 1.5 * ca.total_s,
            "CTF {:.2}s vs CA3DMM {:.2}s",
            ctf.total_s,
            ca.total_s
        );
    }

    #[test]
    fn percent_of_peak_sane() {
        let machine = Machine::phoenix_cpu();
        let placement = machine.pure_mpi();
        let prob = Problem::new(50_000, 50_000, 50_000, 1536);
        let cfg = RunConfig {
            placement,
            custom_layout: false,
        };
        let r = predict(&machine, Algo::Ca3dmm, &prob, &cfg);
        let pct = percent_of_peak(&machine, &prob, &placement, r.total_s);
        assert!(pct > 10.0 && pct <= 100.0, "square class peak {pct:.1}%");
    }
}
