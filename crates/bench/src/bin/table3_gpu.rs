//! Table III: GPU runs — COSMA, CA3DMM, and CTF on 16 and 32 V100 GPUs
//! (one GPU per rank, two per node). The CA3DMM GPU prototype simply
//! offloads local GEMMs to the device (§IV-C), which is exactly what the
//! GPU machine preset models: a much larger per-rank compute rate against
//! the same host network, with the MVAPICH2 reduce-scatter degradation the
//! paper observes on large partial-C blocks.
//!
//! ```text
//! cargo run --release -p bench --bin table3_gpu
//! ```

use bench::{default_grid, predict, Algo, RunConfig, GPU_CLASSES};
use gridopt::Problem;
use netmodel::Machine;

fn main() {
    let machine = Machine::phoenix_gpu();
    let placement = machine.pure_mpi(); // "cores" per node = 2 GPUs
    let cfg = RunConfig {
        placement,
        custom_layout: false,
    };
    println!("Table III: GPU runtimes (s), one V100 per rank, 2 per node\n");
    println!(
        "{:>5} {:<22} | {:>14} {:>8} {:>8} {:>8}",
        "GPUs", "problem", "grid pm,pn,pk", "COSMA", "CA3DMM", "CTF"
    );
    for gpus in [16usize, 32] {
        for (name, m, n, k) in GPU_CLASSES {
            let prob = Problem::new(m, n, k, gpus);
            let grid = default_grid(Algo::Ca3dmm, &prob);
            let cosma = predict(&machine, Algo::Cosma, &prob, &cfg).total_s;
            let ca = predict(&machine, Algo::Ca3dmm, &prob, &cfg).total_s;
            let ctf = predict(&machine, Algo::Ctf, &prob, &cfg).total_s;
            println!(
                "{:>5} {:<22} | {:>4},{:>4},{:>4} {:>8.2} {:>8.2} {:>8.2}",
                gpus, name, grid.pm, grid.pn, grid.pk, cosma, ca, ctf
            );
        }
        println!();
    }
    println!("Paper shape checks (Table III):");
    println!(" * COSMA <= CA3DMM on square and large-K (the k-dimension");
    println!("   reduction hits the MVAPICH2 reduce-scatter threshold and");
    println!("   GPU-fast GEMMs leave nothing to hide the shifts under);");
    println!(" * flat and large-M: both essentially equal;");
    println!(" * CTF far behind on every shape.");
}
