//! CI guard over `BENCH_*.json` files.
//!
//! Usage:
//!
//! ```text
//! validate_bench_json <path> [<baseline-label> <subject-label> <min-ratio>]
//! validate_bench_json --gemm-tiers <path>
//! validate_bench_json --run-report <path>
//! ```
//!
//! Always checks that the file parses as the shared [`BenchReport`] shape
//! (`bench` / `samples` / `entries[]` with `label` + timing fields). With
//! the optional triple, additionally asserts that the subject entry's
//! `gflops` is at least `min-ratio` times the baseline entry's — the
//! `gemm-bench-smoke` job uses this as a coarse anti-regression guard
//! (packed kernel ≥ 5× naive at 512³ and tauto ≥ 2.5× t1 at 1024³),
//! deliberately a ratio rather than a flaky absolute threshold.
//!
//! `--gemm-tiers` additionally enforces the full GEMM artifact contract on
//! a committed `BENCH_gemm.json`: every `(shape, type)` the blocked kernel
//! was benchmarked at must carry the complete `t1/t2/t4/tauto` thread-tier
//! sweep, and every multi-thread tier must record `gflops`, `threads`, and
//! `scaling_efficiency`. This is what stops the artifact from silently
//! regressing to t1-only entries again. Every blocked-kernel entry
//! (`packed…/`) must also carry a non-empty string `kernel` annotation
//! naming the dispatched microkernel, and a pinned head-to-head entry
//! (`packed_avx2/…` etc.) must have an annotation matching its label. It
//! also requires at least one `packed_prof/...` entry whose
//! `prof_overhead_pct` (profiled-vs-unprofiled cost of the `dense::prof`
//! capture path, measured as interleaved pairs compared min-to-min with
//! adaptive extension so shared-host drift cancels) is finite and below
//! 5%.
//!
//! `--run-report` instead validates a `RunReport` artifact (the
//! `--report-out` output of the fig/bench bins): schema version, full shape,
//! and the internal reconciliations between the per-phase table, the
//! communication matrix, and the size histograms — everything
//! [`msgpass::RunReportDoc::parse`] enforces.
//!
//! [`BenchReport`]: bench::timing::BenchReport

use jsonlite::Json;
use msgpass::RunReportDoc;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("validate_bench_json: {msg}");
    ExitCode::FAILURE
}

fn entry_field(entries: &[Json], label: &str, field: &str) -> Result<f64, String> {
    let entry = entries
        .iter()
        .find(|e| e.get("label").and_then(Json::as_str) == Some(label))
        .ok_or_else(|| format!("no entry labelled {label:?}"))?;
    entry
        .get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("entry {label:?} has no numeric {field:?} field"))
}

fn validate_run_report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    match RunReportDoc::parse(&text) {
        Ok(doc) => {
            println!(
                "{path}: run report {:?} (schema v{}), {} ranks, {} phases, shape OK",
                doc.name().unwrap_or("unnamed"),
                doc.schema_version,
                doc.ranks,
                doc.phases.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

/// The `--gemm-tiers` contract: thread tiers every blocked-kernel shape
/// must carry, and the extra fields each multi-thread tier must record.
fn validate_gemm_tiers(path: &str, entries: &[Json]) -> Result<(), String> {
    use std::collections::BTreeMap;
    const REQUIRED_TIERS: [&str; 4] = ["t1", "t2", "t4", "tauto"];

    let mut tiers_by_case: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for e in entries {
        let label = e.get("label").and_then(Json::as_str).unwrap_or_default();
        let parts: Vec<&str> = label.split('/').collect();
        // Every blocked-kernel entry (dispatcher-selected tiers, profiled
        // runs, and pinned head-to-heads alike) must say which microkernel
        // ran; a pinned entry's annotation must agree with its label.
        if let [first, _, _, _] = parts.as_slice() {
            if let Some(pin) = first.strip_prefix("packed") {
                let kernel = e.get("kernel").and_then(Json::as_str).unwrap_or_default();
                if kernel.is_empty() {
                    return Err(format!(
                        "{path}: entry {label:?} lacks the \"kernel\" annotation \
                         (which microkernel was dispatched?)"
                    ));
                }
                match pin.strip_prefix('_') {
                    Some(pinned) if pinned != "prof" && pinned != kernel => {
                        return Err(format!(
                            "{path}: entry {label:?} is pinned to {pinned:?} but its \
                             kernel annotation says {kernel:?}"
                        ));
                    }
                    _ => {}
                }
            }
        }
        let ["packed", shape, ty, tier] = parts.as_slice() else {
            continue;
        };
        tiers_by_case
            .entry(format!("{shape}/{ty}"))
            .or_default()
            .push((*tier).to_owned());
        if *tier != "t1" {
            for field in ["gflops", "threads", "scaling_efficiency"] {
                let v = e.get(field).and_then(Json::as_f64);
                match v {
                    Some(v) if v.is_finite() && v > 0.0 => {}
                    _ => {
                        return Err(format!(
                            "{path}: entry {label:?} lacks a positive numeric {field:?}"
                        ))
                    }
                }
            }
        }
    }
    if tiers_by_case.is_empty() {
        return Err(format!(
            "{path}: no packed/<shape>/<type>/tN entries at all"
        ));
    }
    for (case, tiers) in &tiers_by_case {
        for required in REQUIRED_TIERS {
            if !tiers.iter().any(|t| t == required) {
                return Err(format!(
                    "{path}: packed/{case} is missing thread tier {required:?} \
                     (has {tiers:?}) — multi-thread sweep regressed to partial tiers"
                ));
            }
        }
    }

    // Profiler-overhead contract: at least one `packed_prof` entry must
    // record `prof_overhead_pct`, and every recorded overhead must stay
    // under 5% — the profiler's capture path regressing into the hot loop
    // shows up here before it shows up in application runs.
    let mut overheads = 0usize;
    for e in entries {
        let label = e.get("label").and_then(Json::as_str).unwrap_or_default();
        if !label.starts_with("packed_prof/") {
            continue;
        }
        let Some(pct) = e.get("prof_overhead_pct").and_then(Json::as_f64) else {
            return Err(format!(
                "{path}: entry {label:?} lacks a numeric \"prof_overhead_pct\""
            ));
        };
        if !pct.is_finite() || pct >= 5.0 {
            return Err(format!(
                "{path}: entry {label:?} records {pct:.2}% profiling overhead (limit 5%)"
            ));
        }
        overheads += 1;
    }
    if overheads == 0 {
        return Err(format!(
            "{path}: no packed_prof entry with \"prof_overhead_pct\" — the \
             profiling-overhead measurement is missing from the artifact"
        ));
    }

    println!(
        "{path}: {} packed shape/type cases, all with t1/t2/t4/tauto tiers and scaling \
         fields; {overheads} profiled entries within the 5% overhead bound",
        tiers_by_case.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, ratio_check, gemm_tiers) = match args.as_slice() {
        [flag, path] if flag == "--run-report" => return validate_run_report(path),
        [flag, path] if flag == "--gemm-tiers" => (path.clone(), None, true),
        [path] => (path.clone(), None, false),
        [path, base, subject, min_ratio] => {
            let Ok(min_ratio) = min_ratio.parse::<f64>() else {
                return fail(&format!("min-ratio {min_ratio:?} is not a number"));
            };
            (
                path.clone(),
                Some((base.clone(), subject.clone(), min_ratio)),
                false,
            )
        }
        _ => return fail(
            "usage: validate_bench_json <path> [<baseline-label> <subject-label> <min-ratio>]\n\
                 \x20      validate_bench_json --gemm-tiers <path>\n\
                 \x20      validate_bench_json --run-report <path>",
        ),
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
    };

    let Some(bench_name) = json.get("bench").and_then(Json::as_str) else {
        return fail(&format!("{path}: missing string field \"bench\""));
    };
    if json.get("samples").and_then(Json::as_f64).is_none() {
        return fail(&format!("{path}: missing numeric field \"samples\""));
    }
    let Some(Json::Arr(entries)) = json.get("entries") else {
        return fail(&format!("{path}: missing array field \"entries\""));
    };
    if entries.is_empty() {
        return fail(&format!("{path}: \"entries\" is empty"));
    }
    for (i, e) in entries.iter().enumerate() {
        if e.get("label").and_then(Json::as_str).is_none() {
            return fail(&format!("{path}: entry {i} has no string \"label\""));
        }
        for field in ["min_s", "median_s", "p95_s", "mean_s"] {
            if e.get(field).and_then(Json::as_f64).is_none() {
                return fail(&format!("{path}: entry {i} has no numeric {field:?}"));
            }
        }
    }
    println!(
        "{path}: bench {bench_name:?}, {} entries, shape OK",
        entries.len()
    );

    if gemm_tiers {
        if let Err(e) = validate_gemm_tiers(&path, entries) {
            return fail(&e);
        }
    }

    if let Some((base, subject, min_ratio)) = ratio_check {
        let base_g = match entry_field(entries, &base, "gflops") {
            Ok(v) => v,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let subj_g = match entry_field(entries, &subject, "gflops") {
            Ok(v) => v,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let ratio = subj_g / base_g;
        println!(
            "{subject} = {subj_g:.2} Gop/s, {base} = {base_g:.2} Gop/s, ratio {ratio:.2}x (need >= {min_ratio}x)"
        );
        // `>= is false` rather than `< is true`: a NaN ratio must fail.
        if matches!(
            ratio.partial_cmp(&min_ratio),
            None | Some(std::cmp::Ordering::Less)
        ) {
            return fail(&format!("ratio {ratio:.2}x below required {min_ratio}x"));
        }
    }
    ExitCode::SUCCESS
}
