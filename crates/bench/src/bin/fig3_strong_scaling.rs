//! Figure 3: strong scaling of COSMA, CA3DMM, and CTF for the four problem
//! classes, pure MPI (one rank per core), native vs 1D-column ("custom")
//! matrix layouts. Reports the achieved percentage of machine peak, as the
//! paper plots.
//!
//! ```text
//! cargo run --release -p bench --bin fig3_strong_scaling
//! ```

use bench::{percent_of_peak, predict, Algo, RunConfig, CPU_CLASSES, CPU_SWEEP};
use gridopt::Problem;
use netmodel::Machine;

fn main() {
    let machine = Machine::phoenix_cpu();
    let placement = machine.pure_mpi();
    println!("Figure 3: strong scaling, % of peak ({})", machine.name);
    println!("All series pure MPI: 1 rank/core, 24 ranks/node.\n");
    let mut csv = bench::csv_writer("fig3");
    if let Some(w) = csv.as_mut() {
        use std::io::Write;
        writeln!(
            w,
            "class,cores,cosma_native,cosma_custom,ca3dmm_native,ca3dmm_custom,ctf"
        )
        .ok();
    }

    for (name, m, n, k) in CPU_CLASSES {
        println!("--- {name} ---");
        println!(
            "{:>6} | {:>13} {:>13} {:>13} {:>13} {:>9}",
            "cores", "COSMA native", "COSMA custom", "CA3DMM native", "CA3DMM custom", "CTF"
        );
        for p in CPU_SWEEP {
            let prob = Problem::new(m, n, k, p);
            let pct = |algo: Algo, custom: bool| {
                let cfg = RunConfig {
                    placement,
                    custom_layout: custom,
                };
                let r = predict(&machine, algo, &prob, &cfg);
                percent_of_peak(&machine, &prob, &placement, r.total_s)
            };
            let vals = [
                pct(Algo::Cosma, false),
                pct(Algo::Cosma, true),
                pct(Algo::Ca3dmm, false),
                pct(Algo::Ca3dmm, true),
                pct(Algo::Ctf, false),
            ];
            println!(
                "{:>6} | {:>12.1}% {:>12.1}% {:>12.1}% {:>12.1}% {:>8.1}%",
                p, vals[0], vals[1], vals[2], vals[3], vals[4],
            );
            if let Some(w) = csv.as_mut() {
                use std::io::Write;
                writeln!(
                    w,
                    "{},{},{:.2},{:.2},{:.2},{:.2},{:.2}",
                    name.trim(),
                    p,
                    vals[0],
                    vals[1],
                    vals[2],
                    vals[3],
                    vals[4]
                )
                .ok();
            }
        }
        println!();
    }
    println!("Shape checks (paper Fig. 3):");
    println!(" * COSMA and CA3DMM native scale well on every class;");
    println!(" * CA3DMM >= COSMA on square and flat, ~equal on large-K/M;");
    println!(" * custom 1D layouts hurt, worst for the tall-skinny classes;");
    println!(" * CTF trails on every class.");
}
