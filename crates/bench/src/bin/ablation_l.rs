//! Ablation: the utilization floor `l` of eq. 5. §IV-A (text): "We test
//! different l values in the range [0.85, 0.99] … using other l values
//! gives the same 3D process grid as using the value l = 0.95 in almost
//! all cases."
//!
//! This binary sweeps `l` for every problem class × process count and
//! reports how many distinct grids appear and where they differ from the
//! `l = 0.95` default.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_l
//! ```

use bench::{CPU_CLASSES, CPU_SWEEP};
use gridopt::{ca3dmm_grid, Problem};

fn main() {
    let ls = [0.85, 0.87, 0.90, 0.92, 0.95, 0.97, 0.99];
    println!("Ablation: grid stability across l in [0.85, 0.99] (eq. 5)\n");
    let mut total = 0usize;
    let mut same = 0usize;
    for (name, m, n, k) in CPU_CLASSES {
        for p in CPU_SWEEP {
            let prob = Problem::new(m, n, k, p);
            let reference = ca3dmm_grid(&prob, 0.95).grid;
            let mut distinct = vec![reference];
            for &l in &ls {
                let g = ca3dmm_grid(&prob, l).grid;
                total += 1;
                if g == reference {
                    same += 1;
                } else if !distinct.contains(&g) {
                    distinct.push(g);
                }
            }
            if distinct.len() > 1 {
                println!(
                    "{name} P={p}: {} distinct grids: {:?}",
                    distinct.len(),
                    distinct
                        .iter()
                        .map(|g| format!("{},{},{}", g.pm, g.pn, g.pk))
                        .collect::<Vec<_>>()
                );
            }
        }
    }
    println!("\n{same}/{total} (l, problem, P) combinations choose the l = 0.95 grid.");
    println!("Paper claim (§IV-A): same grid 'in almost all cases'.");
    assert!(
        same as f64 / total as f64 > 0.85,
        "grid stability claim violated"
    );
}
