//! Figure 4: pure MPI (24 ranks/node, 1 core each) versus MPI + OpenMP
//! hybrid (1 rank/node, 24 threads) for the four problem classes,
//! library-native layouts. Reports % of peak over total core count.
//!
//! ```text
//! cargo run --release -p bench --bin fig4_hybrid
//! ```

use bench::{percent_of_peak, predict, Algo, RunConfig, CPU_CLASSES, CPU_SWEEP};
use gridopt::Problem;
use netmodel::Machine;

fn main() {
    let machine = Machine::phoenix_cpu();
    let pure = machine.pure_mpi();
    let hybrid = machine.hybrid();
    println!(
        "Figure 4: pure MPI vs MPI+OpenMP, % of peak ({})\n",
        machine.name
    );
    let mut csv = bench::csv_writer("fig4");
    if let Some(w) = csv.as_mut() {
        use std::io::Write;
        writeln!(
            w,
            "class,cores,cosma_pure,cosma_hybrid,ca3dmm_pure,ca3dmm_hybrid,ctf_pure,ctf_hybrid"
        )
        .ok();
    }

    for (name, m, n, k) in CPU_CLASSES {
        println!("--- {name} ---");
        println!(
            "{:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
            "cores", "COSMA pure", "COSMA hyb", "CA3D pure", "CA3D hyb", "CTF pure", "CTF hyb"
        );
        for cores in CPU_SWEEP {
            let nodes = cores / machine.cores_per_node;
            let prob_pure = Problem::new(m, n, k, cores);
            let prob_hyb = Problem::new(m, n, k, nodes);
            let pct = |algo: Algo, hybrid_mode: bool| {
                let (prob, placement) = if hybrid_mode {
                    (&prob_hyb, hybrid)
                } else {
                    (&prob_pure, pure)
                };
                let cfg = RunConfig {
                    placement,
                    custom_layout: false,
                };
                let r = predict(&machine, algo, prob, &cfg);
                percent_of_peak(&machine, prob, &placement, r.total_s)
            };
            let vals = [
                pct(Algo::Cosma, false),
                pct(Algo::Cosma, true),
                pct(Algo::Ca3dmm, false),
                pct(Algo::Ca3dmm, true),
                pct(Algo::Ctf, false),
                pct(Algo::Ctf, true),
            ];
            println!(
                "{:>6} | {:>11.1}% {:>11.1}% | {:>11.1}% {:>11.1}% | {:>9.1}% {:>9.1}%",
                cores, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5],
            );
            if let Some(w) = csv.as_mut() {
                use std::io::Write;
                writeln!(
                    w,
                    "{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
                    name.trim(),
                    cores,
                    vals[0],
                    vals[1],
                    vals[2],
                    vals[3],
                    vals[4],
                    vals[5]
                )
                .ok();
            }
        }
        println!();
    }
    println!("Shape checks (paper Fig. 4):");
    println!(" * square: pure MPI beats hybrid for COSMA and CA3DMM");
    println!("   (24 ranks/node saturate the NIC; 1 rank/node cannot);");
    println!(" * large-K / large-M: hybrid wins (one small collective in a");
    println!("   much smaller group dominates; fewer ranks = less traffic);");
    println!(" * flat: hybrid also ahead.");
}
