//! Table II: COSMA and CA3DMM runtime for different problem dimensions and
//! *process grid dimensions*, at 2048 and 3072 cores. At 2048 both
//! libraries use the (same) optimal grid; at 3072 the paper additionally
//! forces the near-optimal grids shown in italics. Also demonstrates the
//! paper's large-K observation that the theoretically optimal grid
//! `3×3×341` loses to the sub-optimal `4×2×384` because `pk = 341` is
//! unfavourable for the reduce-scatter.
//!
//! ```text
//! cargo run --release -p bench --bin table2_grids
//! ```

use bench::{default_grid, predict_with_grid, Algo, RunConfig};
use gridopt::{Grid, Problem};
use netmodel::Machine;

fn main() {
    let machine = Machine::phoenix_cpu();
    let cfg = RunConfig {
        placement: machine.pure_mpi(),
        custom_layout: false,
    };
    // (cores, class, m, n, k, forced grids to evaluate: None = default)
    #[allow(clippy::type_complexity)]
    let cases: [(usize, &str, usize, usize, usize, &[Option<Grid>]); 8] = [
        (2048, "50,50,50", 50_000, 50_000, 50_000, &[None]),
        (2048, "6,6,1200", 6_000, 6_000, 1_200_000, &[None]),
        (2048, "1200,6,6", 1_200_000, 6_000, 6_000, &[None]),
        (2048, "100,100,5", 100_000, 100_000, 5_000, &[None]),
        (
            3072,
            "50,50,50",
            50_000,
            50_000,
            50_000,
            &[
                None,
                Some(Grid::new(12, 16, 16)),
                Some(Grid::new(16, 16, 12)),
            ],
        ),
        (
            3072,
            "6,6,1200",
            6_000,
            6_000,
            1_200_000,
            &[None, Some(Grid::new(3, 3, 341)), Some(Grid::new(4, 2, 384))],
        ),
        (
            3072,
            "1200,6,6",
            1_200_000,
            6_000,
            6_000,
            &[None, Some(Grid::new(341, 3, 3)), Some(Grid::new(384, 4, 2))],
        ),
        (
            3072,
            "100,100,5",
            100_000,
            100_000,
            5_000,
            &[None, Some(Grid::new(32, 32, 3)), Some(Grid::new(39, 39, 2))],
        ),
    ];
    println!("Table II: runtimes (s) for chosen vs forced process grids\n");
    println!(
        "{:>6} {:<10} | {:>14} {:>10} {:>10}",
        "cores", "m,n,k(e3)", "grid pm,pn,pk", "COSMA", "CA3DMM"
    );
    for (p, name, m, n, k, grids) in cases {
        let prob = Problem::new(m, n, k, p);
        for g in grids {
            let grid = g.unwrap_or_else(|| default_grid(Algo::Ca3dmm, &prob));
            // COSMA can run any grid; CA3DMM needs eq. 7. The paper's table
            // uses grids valid for both except where noted.
            let cosma_t = predict_with_grid(&machine, Algo::Cosma, &prob, &cfg, Some(grid)).total_s;
            let ca_t = if grid.cannon_compatible() {
                format!(
                    "{:>10.2}",
                    predict_with_grid(&machine, Algo::Ca3dmm, &prob, &cfg, Some(grid)).total_s
                )
            } else {
                format!("{:>10}", "(eq.7 n/a)")
            };
            let mark = if g.is_none() { "*" } else { " " };
            println!(
                "{:>6} {:<10} | {:>4},{:>4},{:>4}{} {:>9.2} {}",
                p, name, grid.pm, grid.pn, grid.pk, mark, cosma_t, ca_t
            );
        }
        println!();
    }
    println!("* = the library's default grid choice.");
    println!("Paper shape checks (Table II / §IV-B):");
    println!(" * with the SAME grid, CA3DMM <= COSMA (up to ~20% faster):");
    println!("   the Cannon shifts pipeline under the GEMM while COSMA's");
    println!("   allgathers are exposed;");
    println!(" * large-K: the 'optimal' 3x3x341 grid loses to 4x2x384 —");
    println!("   pk = 341 is unfavourable for the reduce-scatter.");
}
