//! Figure 3 by *execution*: strong scaling of CA3DMM at paper-scale process
//! counts (p = 192…3072), produced by actually running Algorithm 1 on the
//! `msgpass` virtual-time backend rather than by pricing the analytic
//! model. Every send, receive, collective, and local GEMM of the real
//! executor is charged virtual seconds against the paper's machine
//! ([`Machine::phoenix_cpu`], 24 ranks/node); the local GEMMs themselves
//! are skipped (`execute_compute = false`) — at these sizes the arithmetic
//! would dwarf the simulation, and the flop *charge* is what the figure
//! needs.
//!
//! ```text
//! cargo run --release -p bench --bin fig3_sim [--report-out PATH] [--overlap on|off]
//! ```
//!
//! Alongside each simulated point the analytic model's prediction for the
//! same problem/grid/machine is printed, with the model's overlap branch
//! matching the executed configuration — by default the §III-F
//! dual-buffered pipeline runs, whose posted receives the simulator
//! completes at `max(clock, arrival)`, i.e. `max(comm, compute)` per shift
//! round, exactly what the `overlap: true` model prices. The table
//! therefore doubles as a sim-vs-model cross-check; `ca3dmm-report
//! netdiff` performs the same comparison offline from the artifact.
//! `--overlap off` runs and prices the blocking ablation instead.
//! `--report-out PATH` writes the largest point's (p = 3072) schema-v2
//! `RunReport`, the reference CI's `sim-smoke` job gates against.
//! `--ranks P` simulates a single point instead of the sweep.
//!
//! `--collectives flat|hier` selects the collective algorithms the executor
//! (and the model) use: `hier` routes allgather/reduce-scatter through
//! two-level node-aware variants wherever a communicator spans several
//! nodes with co-located members, and falls back to flat elsewhere.
//! `--ranks-per-node N` overrides the placement's node size (default: the
//! machine's pure-MPI 24/node) — at the paper's 24/node the replicate and
//! reduce groups place every member on a distinct node, so fat nodes
//! (e.g. `--ranks-per-node 384`) are where the hierarchical variants
//! engage. When either flag is non-default, the CSV series and the
//! report's `name` gain a `_{flat|hier}_r{N}` suffix so the ablation's
//! artifacts sit next to the default ones instead of clobbering them.
//!
//! The problem is fixed at m = n = 3072, k = 6144: big enough that every
//! phase moves real traffic, and chosen so the grid the step-1 search
//! picks at p = 3072 (8×16×24) divides all three dimensions exactly and
//! `mb·nb` divides by `pk` — block shapes are uniform, reduce-scatter
//! chunks are even, and the measured per-phase byte counts match the
//! model's closed forms to the byte, which is what lets CI gate them
//! exactly.

use bench::{percent_of_peak, CPU_SWEEP};
use ca3dmm::{ca3dmm_schedule, Ca3dmm, Ca3dmmOptions, Collectives, ModelConfig};
use gridopt::Problem;
use msgpass::SimOptions;
use netmodel::eval::evaluate;
use netmodel::Machine;

/// The fixed problem of the simulated sweep (see module docs).
const M: usize = 3072;
const N: usize = 3072;
const K: usize = 6144;

fn main() {
    let mut args = std::env::args().skip(1);
    let (mut report_out, mut only_ranks, mut overlap) = (None::<String>, None::<usize>, true);
    let (mut collectives, mut rpn_override) = (Collectives::Flat, None::<usize>);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--report-out" => report_out = Some(value("--report-out")),
            "--ranks" => only_ranks = Some(value("--ranks").parse().expect("rank count")),
            "--overlap" => {
                overlap = match value("--overlap").as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--overlap takes on|off, got {other}"),
                }
            }
            "--collectives" => {
                let v = value("--collectives");
                collectives = Collectives::parse(&v)
                    .unwrap_or_else(|| panic!("--collectives takes flat|hier, got {v}"));
            }
            "--ranks-per-node" => {
                rpn_override = Some(value("--ranks-per-node").parse().expect("ranks per node"))
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let machine = Machine::phoenix_cpu();
    let mut placement = machine.pure_mpi();
    if let Some(rpn) = rpn_override {
        assert!(rpn >= 1, "--ranks-per-node must be at least 1");
        placement.ranks_per_node = rpn;
    }
    // Non-default configurations write to suffixed names so the committed
    // default artifacts stay byte-identical.
    let variant = if collectives != Collectives::Flat || rpn_override.is_some() {
        format!("_{}_r{}", collectives.as_str(), placement.ranks_per_node)
    } else {
        String::new()
    };
    let sweep: Vec<usize> = match only_ranks {
        Some(p) => vec![p],
        None => CPU_SWEEP.to_vec(),
    };
    println!(
        "Figure 3 (executed): CA3DMM {M}x{N}x{K} on {} — virtual time, overlap {}, {} collectives",
        machine.name,
        if overlap { "on" } else { "off" },
        collectives.as_str()
    );
    println!(
        "Pure MPI placement: {} ranks/node.\n",
        placement.ranks_per_node
    );
    println!(
        "{:>6} {:>10} | {:>12} {:>8} | {:>12} | {:>9}",
        "ranks", "grid", "sim (s)", "% peak", "model (s)", "wall (s)"
    );

    let mut csv = bench::csv_writer(&format!("fig3_sim{variant}"));
    if let Some(w) = csv.as_mut() {
        use std::io::Write;
        writeln!(w, "cores,grid,sim_secs,pct_peak,model_secs").ok();
    }

    for p in sweep {
        let prob = Problem::new(M, N, K, p);
        let alg = Ca3dmm::new(
            prob,
            &Ca3dmmOptions {
                overlap,
                collectives,
                ..Default::default()
            },
        );
        let grid = *alg.grid_context().grid();

        let started = std::time::Instant::now();
        let report = alg.simulate_native(
            &machine,
            SimOptions {
                placement: Some(placement),
                execute_compute: false,
                ..Default::default()
            },
        );
        let wall = started.elapsed().as_secs_f64();
        let sim = report.sim.as_ref().expect("virtual-time run has sim info");

        let cfg = ModelConfig {
            placement,
            elem_bytes: 8.0,
            // the model's overlap branch must match the executed pipeline
            overlap,
            include_redist: false,
            // and its collective selection must match the executed mode
            collectives,
        };
        let model = evaluate(
            &machine,
            placement.flops_per_rank,
            &ca3dmm_schedule(&prob, &grid, &cfg),
        );
        let grid_str = format!("{}x{}x{}", grid.pm, grid.pn, grid.pk);
        let pct = percent_of_peak(&machine, &prob, &placement, sim.makespan_secs);
        println!(
            "{:>6} {:>10} | {:>12.6} {:>7.1}% | {:>12.6} | {:>9.2}",
            p, grid_str, sim.makespan_secs, pct, model.total_s, wall
        );
        if let Some(w) = csv.as_mut() {
            use std::io::Write;
            writeln!(
                w,
                "{p},{grid_str},{:.9},{pct:.2},{:.9}",
                sim.makespan_secs, model.total_s
            )
            .ok();
        }

        if let (Some(path), true) = (report_out.as_deref(), Some(p) == sweep_max(only_ranks)) {
            let meta = alg.report_meta(&format!("fig3_sim{variant}_p{p}"));
            let json = report.to_json(meta).to_string_pretty();
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("run report -> {path}");
        }
    }
    println!("\nSeconds are virtual (machine-model) time; 'wall' is what the");
    println!("simulation itself cost on this host. The executed sim and the");
    println!("closed-form model agree on traffic exactly; times differ only");
    println!("because the sim prices every hop individually while the model");
    println!("prices each phase's critical link.");
}

/// The sweep point whose artifact `--report-out` writes: the explicit
/// `--ranks` value, or the largest point of the default sweep.
fn sweep_max(only_ranks: Option<usize>) -> Option<usize> {
    Some(only_ranks.unwrap_or(*CPU_SWEEP.iter().max().expect("sweep is non-empty")))
}
