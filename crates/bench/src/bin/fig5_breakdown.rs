//! Figure 5: relative runtime breakdowns of COSMA and CA3DMM for the
//! 2048-core tests of Table II. For each problem class, timings are
//! normalized so COSMA's total is 1 (as in the paper). CA3DMM's
//! "replicate A,B" includes Algorithm 1 step 5 *and* the cost of shifting
//! A and B blocks in Cannon's algorithm, exactly as the paper's caption
//! states.
//!
//! ```text
//! cargo run --release -p bench --bin fig5_breakdown
//! ```

use bench::{predict_with_grid, Algo, RunConfig};
use gridopt::{Grid, Problem};
use netmodel::Machine;

fn main() {
    let machine = Machine::phoenix_cpu();
    let placement = machine.pure_mpi();
    let cfg = RunConfig {
        placement,
        custom_layout: false,
    };
    // Table II, 2048-core rows: both libraries use the same optimal grid.
    let cases: [(&str, usize, usize, usize, Grid); 4] = [
        ("square", 50_000, 50_000, 50_000, Grid::new(8, 16, 16)),
        ("large-K", 6_000, 6_000, 1_200_000, Grid::new(2, 2, 512)),
        ("large-M", 1_200_000, 6_000, 6_000, Grid::new(512, 2, 2)),
        ("flat", 100_000, 100_000, 5_000, Grid::new(32, 32, 2)),
    ];
    println!("Figure 5: relative runtime breakdown at 2048 cores (COSMA total = 1)\n");
    println!(
        "{:<9} {:<8} | {:>10} {:>14} {:>10} {:>8}",
        "class", "library", "local comp", "replicate A,B", "reduce C", "total"
    );
    for (name, m, n, k, grid) in cases {
        let prob = Problem::new(m, n, k, 2048);
        let cosma = predict_with_grid(&machine, Algo::Cosma, &prob, &cfg, Some(grid));
        let ca = predict_with_grid(&machine, Algo::Ca3dmm, &prob, &cfg, Some(grid));
        let norm = cosma.total_s;
        // CA3DMM: "replicate A,B" = step-5 allgather + Cannon shift comm;
        // local compute = the GEMM part of the cannon phase.
        let ca_repl = ca.label_s("replicate_ab")
            + ca.by_label.get("cannon").map(|c| c.comm_s).unwrap_or(0.0);
        let ca_comp = ca.by_label.get("cannon").map(|c| c.comp_s).unwrap_or(0.0);
        let co_repl = cosma.label_s("replicate_ab");
        let co_comp = cosma.label_s("local_gemm");
        for (lib, comp, repl, red, total) in [
            ("COSMA", co_comp, co_repl, cosma.label_s("reduce_c"), cosma.total_s),
            ("CA3DMM", ca_comp, ca_repl, ca.label_s("reduce_c"), ca.total_s),
        ] {
            println!(
                "{:<9} {:<8} | {:>10.3} {:>14.3} {:>10.3} {:>8.3}",
                name,
                lib,
                comp / norm,
                repl / norm,
                red / norm,
                total / norm
            );
        }
        println!();
    }
    println!("Paper shape: similar local computation; similar total");
    println!("communication (replicate + reduce); CA3DMM total <= COSMA,");
    println!("because the Cannon shifts pipeline under the local GEMM.");
}
