//! Figure 5: relative runtime breakdowns of COSMA and CA3DMM for the
//! 2048-core tests of Table II. For each problem class, timings are
//! normalized so COSMA's total is 1 (as in the paper). CA3DMM's
//! "replicate A,B" includes Algorithm 1 step 5 *and* the cost of shifting
//! A and B blocks in Cannon's algorithm, exactly as the paper's caption
//! states.
//!
//! ```text
//! cargo run --release -p bench --bin fig5_breakdown
//! ```
//!
//! With `--trace-out PATH` the binary additionally *runs* a small CA3DMM
//! problem for real on the threaded `msgpass` runtime with event tracing
//! enabled, writes the per-rank timeline as a Chrome/Perfetto trace JSON to
//! PATH, and prints the critical-path breakdown plus the model-vs-measured
//! phase diff. `--trace-ranks N` (default 16) and `--trace-size S`
//! (default 256, meaning an S×S×S problem) size the traced run.
//! `--report-out PATH` writes the run's versioned `RunReport` JSON artifact
//! (communication matrix, size histograms, wait attribution) to PATH —
//! the input format of the `ca3dmm-report` dashboard and CI gate; it
//! implies a traced run even without `--trace-out`.
//!
//! `--prof` (or `DENSE_GEMM_PROF=1` in the environment) enables the
//! `dense::prof` kernel profiler for the traced run: the artifact gains the
//! schema-v3 `compute` block (per-rank GEMM phase split, roofline, pool
//! telemetry), the Chrome trace gains per-rank kernel-thread tracks, and a
//! per-rank compute-attribution summary is printed.
//!
//! `--overlap-bench` instead wall-clock times the full multiply at
//! `--trace-ranks` ranks (default 16) on a communication-heavy shape, once
//! with the §III-F dual-buffered Cannon pipeline and once with the blocking
//! ablation, and records both into the shared `BENCH_overlap.json` shape
//! (`$BENCH_JSON_DIR`, else `results/`). The two runs produce bitwise-
//! identical C blocks (see `tests/overlap_prop.rs`); the bench is the
//! wall-clock side of that equivalence — overlap should never be slower.

use bench::{predict_with_grid, Algo, RunConfig};
use ca3dmm::{ca3dmm_schedule, diff_model_vs_measured, Ca3dmm, Ca3dmmOptions, ModelConfig};
use dense::part::Rect;
use dense::random::global_block;
use dense::Mat;
use gridopt::{Grid, Problem};
use msgpass::{Comm, World};
use netmodel::eval::evaluate;
use netmodel::Machine;

/// Runs a real traced CA3DMM multiply; writes the Chrome trace and/or the
/// RunReport artifact.
fn traced_run(path: Option<&str>, report_out: Option<&str>, ranks: usize, size: usize) {
    let prob = Problem::new(size, size, size, ranks);
    let alg = Ca3dmm::new(prob, &Ca3dmmOptions::default());
    let gc = alg.grid_context();
    let grid = *gc.grid();
    let (la, lb) = (gc.layout_a(), gc.layout_b());
    let a_full = global_block::<f64>(1, Rect::new(0, 0, size, size));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, size, size));
    // World::run sets this same cap on every rank thread, so the traced
    // comm/compute split reflects non-oversubscribed compute: ranks *
    // threads-per-rank never exceeds the host's kernel-thread budget.
    println!(
        "kernel threads: {} per rank x {} ranks (budget {})",
        dense::pool::rank_threads_for(ranks),
        ranks,
        dense::pool::base_gemm_threads()
    );
    let (_, report) = World::run_traced(ranks, |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank();
        let a = la.extract(&a_full, me).into_iter().next();
        let b = lb.extract(&b_full, me).into_iter().next();
        let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
    });

    println!(
        "traced {}x{}x{} on {} ranks (grid {}x{}x{}): {} spans",
        size,
        size,
        size,
        ranks,
        grid.pm,
        grid.pn,
        grid.pk,
        report.timeline.span_count(),
    );
    if let Some(path) = path {
        // RunReport-level export: merges kernel-thread tracks (profiled
        // runs) under each rank; identical to the plain timeline export
        // when profiling is off.
        let json = report.to_chrome_json();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("chrome trace -> {path}");
    }
    if let Some(path) = report_out {
        let meta = alg.report_meta(&format!("fig5_breakdown_s{size}_p{ranks}"));
        let json = report.to_json(meta).to_string_pretty();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("run report -> {path}");
    }
    if report.compute.iter().any(Option::is_some) {
        println!("\ncompute attribution (kernel profiler):");
        for (rank, cp) in report.compute.iter().enumerate() {
            let Some(cp) = cp else {
                println!("  rank {rank}: no profiled GEMM");
                continue;
            };
            let k = &cp.profile;
            let (pack, comp, idle) = k.pct_split();
            println!(
                "  rank {rank}: {} calls · {:.2} Gflop/s ({:.1}% of {:.2} peak) · \
                 pack {pack:.1}% comp {comp:.1}% idle {idle:.1}% · imbalance {:.2}",
                k.gemm_calls,
                k.achieved_gflops,
                if k.peak_gflops > 0.0 {
                    100.0 * k.achieved_gflops / k.peak_gflops
                } else {
                    0.0
                },
                k.peak_gflops,
                k.imbalance,
            );
        }
    }

    println!(
        "\ncritical path:\n{}",
        report.timeline.critical_path().render()
    );

    let machine = Machine::uniform();
    let placement = machine.pure_mpi();
    let cfg = ModelConfig {
        placement,
        elem_bytes: 8.0,
        overlap: true,
        include_redist: false,
        collectives: ca3dmm::Collectives::Flat,
    };
    let cost = evaluate(
        &machine,
        placement.flops_per_rank,
        &ca3dmm_schedule(&prob, &grid, &cfg),
    );
    println!(
        "model vs measured (structural; absolute scales differ):\n{}",
        diff_model_vs_measured(&report, &cost).render()
    );
}

/// Wall-clock A/B of the dual-buffered Cannon pipeline against its blocking
/// ablation, on a shape whose shift traffic is large relative to the local
/// GEMMs (thin k ⇒ small per-round flops, 4×4×1 grid ⇒ s−1 = 3 shift
/// rounds). Both configurations compute bitwise-identical results; only the
/// send/recv ordering inside the shift loop differs.
fn overlap_bench(ranks: usize) {
    let (m, n, k) = (256, 256, 128);
    let prob = Problem::new(m, n, k, ranks);
    let grid = *Ca3dmm::new(prob, &Ca3dmmOptions::default())
        .grid_context()
        .grid();
    println!(
        "overlap bench: {m}x{n}x{k} on {ranks} ranks (grid {}x{}x{}), {} kernel threads/rank",
        grid.pm,
        grid.pn,
        grid.pk,
        dense::pool::rank_threads_for(ranks),
    );
    let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
    let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));

    let mut report = bench::timing::BenchReport::new("overlap");
    let mut medians = [0.0f64; 2];
    for (slot, overlap) in [(0, true), (1, false)] {
        let alg = Ca3dmm::new(
            prob,
            &Ca3dmmOptions {
                overlap,
                ..Default::default()
            },
        );
        let gc = alg.grid_context();
        let (la, lb) = (gc.layout_a(), gc.layout_b());
        let label = format!(
            "ca3dmm/{m}x{n}x{k}/p{ranks}/{}",
            if overlap { "overlap" } else { "blocking" }
        );
        let stats = bench::timing::bench(&label, || {
            World::run(ranks, |ctx| {
                let world = Comm::world(ctx);
                let me = world.rank();
                let a = la.extract(&a_full, me).into_iter().next();
                let b = lb.extract(&b_full, me).into_iter().next();
                let _: Option<Mat<f64>> = alg.multiply_native(ctx, &world, a, b);
            });
        });
        medians[slot] = stats.median_s;
        report.push(&label, stats);
    }
    println!(
        "overlap/blocking median ratio: {:.3} (<= 1 means the pipeline wins)",
        medians[0] / medians[1]
    );
    match report.write() {
        Ok(path) => println!("bench json -> {}", path.display()),
        Err(e) => panic!("writing bench json: {e}"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (mut trace_out, mut report_out, mut trace_ranks, mut trace_size) =
        (None::<String>, None::<String>, 16usize, 256usize);
    let mut overlap_bench_mode = false;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--report-out" => report_out = Some(value("--report-out")),
            "--trace-ranks" => trace_ranks = value("--trace-ranks").parse().expect("rank count"),
            "--trace-size" => trace_size = value("--trace-size").parse().expect("problem size"),
            "--overlap-bench" => overlap_bench_mode = true,
            "--prof" => dense::set_gemm_profiling(true),
            other => panic!("unknown argument: {other}"),
        }
    }
    if overlap_bench_mode {
        overlap_bench(trace_ranks);
        return;
    }
    if trace_out.is_some() || report_out.is_some() {
        traced_run(
            trace_out.as_deref(),
            report_out.as_deref(),
            trace_ranks,
            trace_size,
        );
        return;
    }

    let machine = Machine::phoenix_cpu();
    let placement = machine.pure_mpi();
    let cfg = RunConfig {
        placement,
        custom_layout: false,
    };
    // Table II, 2048-core rows: both libraries use the same optimal grid.
    let cases: [(&str, usize, usize, usize, Grid); 4] = [
        ("square", 50_000, 50_000, 50_000, Grid::new(8, 16, 16)),
        ("large-K", 6_000, 6_000, 1_200_000, Grid::new(2, 2, 512)),
        ("large-M", 1_200_000, 6_000, 6_000, Grid::new(512, 2, 2)),
        ("flat", 100_000, 100_000, 5_000, Grid::new(32, 32, 2)),
    ];
    println!("Figure 5: relative runtime breakdown at 2048 cores (COSMA total = 1)\n");
    println!(
        "{:<9} {:<8} | {:>10} {:>14} {:>10} {:>8}",
        "class", "library", "local comp", "replicate A,B", "reduce C", "total"
    );
    for (name, m, n, k, grid) in cases {
        let prob = Problem::new(m, n, k, 2048);
        let cosma = predict_with_grid(&machine, Algo::Cosma, &prob, &cfg, Some(grid));
        let ca = predict_with_grid(&machine, Algo::Ca3dmm, &prob, &cfg, Some(grid));
        let norm = cosma.total_s;
        // CA3DMM: "replicate A,B" = step-5 allgather + Cannon shift comm;
        // local compute = the GEMM part of the cannon phase.
        let ca_repl =
            ca.label_s("replicate_ab") + ca.by_label.get("cannon").map(|c| c.comm_s).unwrap_or(0.0);
        let ca_comp = ca.by_label.get("cannon").map(|c| c.comp_s).unwrap_or(0.0);
        let co_repl = cosma.label_s("replicate_ab");
        let co_comp = cosma.label_s("local_gemm");
        for (lib, comp, repl, red, total) in [
            (
                "COSMA",
                co_comp,
                co_repl,
                cosma.label_s("reduce_c"),
                cosma.total_s,
            ),
            (
                "CA3DMM",
                ca_comp,
                ca_repl,
                ca.label_s("reduce_c"),
                ca.total_s,
            ),
        ] {
            println!(
                "{:<9} {:<8} | {:>10.3} {:>14.3} {:>10.3} {:>8.3}",
                name,
                lib,
                comp / norm,
                repl / norm,
                red / norm,
                total / norm
            );
        }
        println!();
    }
    println!("Paper shape: similar local computation; similar total");
    println!("communication (replicate + reduce); CA3DMM total <= COSMA,");
    println!("because the Cannon shifts pipeline under the local GEMM.");
}
