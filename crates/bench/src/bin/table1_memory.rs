//! Table I: memory usage per process (MB) of COSMA and CA3DMM for the four
//! problem classes and P ∈ {192 … 3072}. COSMA runs with no limit on extra
//! memory; both libraries use library-native distributions, as in the
//! paper.
//!
//! ```text
//! cargo run --release -p bench --bin table1_memory
//! ```

use baselines::CosmaLike;
use ca3dmm::memory_elements_per_rank;
use gridopt::{ca3dmm_grid, Problem, DEFAULT_UTILIZATION_FLOOR};

const SWEEP: [usize; 5] = [192, 384, 768, 1536, 3072];

fn main() {
    let classes: [(&str, usize, usize, usize); 4] = [
        ("50, 50, 50", 50_000, 50_000, 50_000),
        ("6, 6, 1200", 6_000, 6_000, 1_200_000),
        ("1200, 6, 6", 1_200_000, 6_000, 6_000),
        ("100, 100, 5", 100_000, 100_000, 5_000),
    ];
    println!("Table I: memory per process (MB), library-native distributions\n");
    println!(
        "{:<8} {:<14} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "library", "m,n,k (x10^3)", 192, 384, 768, 1536, 3072
    );
    for (lib, is_cosma) in [("COSMA", true), ("CA3DMM", false)] {
        for (name, m, n, k) in classes {
            let mut cols = Vec::new();
            for p in SWEEP {
                let prob = Problem::new(m, n, k, p);
                let mb = if is_cosma {
                    let alg = CosmaLike::new(prob, None);
                    alg.memory_elements_per_rank() * 8.0 / 1048576.0
                } else {
                    let grid = ca3dmm_grid(&prob, DEFAULT_UTILIZATION_FLOOR).grid;
                    memory_elements_per_rank(&prob, &grid) * 8.0 / 1048576.0
                };
                cols.push(format!("{mb:>8.0}"));
            }
            println!("{:<8} {:<14} {}", lib, name, cols.join(" "));
        }
        println!();
    }
    println!("Paper shape checks (Table I):");
    println!(" * square: CA3DMM uses less memory than COSMA at every P;");
    println!(" * other classes: CA3DMM uses more at small P, but its usage");
    println!("   falls faster and crosses below COSMA by P = 1536-3072;");
    println!(" * CA3DMM shows step drops where the chosen grid changes.");
}
