//! Ablations of CA3DMM's remaining design choices (DESIGN.md §4):
//!
//! * **dual-buffer overlap** (§III-F) — schedule with and without the
//!   communication/computation overlap in Cannon;
//! * **constraint (7)** — the communication-volume price CA3DMM pays for
//!   restricting grids to `mod(max(pm,pn), min(pm,pn)) = 0` so Cannon
//!   groups exist, versus the unconstrained (COSMA) grid;
//! * **memory/communication trade** (§V future work) — reducing the number
//!   of k-task groups moves CA3DMM toward a 2D algorithm: less memory
//!   (eq. 11), more volume (eq. 4).
//!
//! ```text
//! cargo run --release -p bench --bin ablation_design
//! ```

use bench::CPU_CLASSES;
use ca3dmm::{ca3dmm_schedule, memory_elements_per_rank, ModelConfig};
use gridopt::{ca3dmm_grid, cosma_grid, Grid, Problem};
use netmodel::eval::evaluate;
use netmodel::Machine;

fn main() {
    let machine = Machine::phoenix_cpu();
    let placement = machine.pure_mpi();
    let base = ModelConfig {
        placement,
        elem_bytes: 8.0,
        overlap: true,
        include_redist: false,
        collectives: ca3dmm::Collectives::Flat,
    };

    println!("Ablation 1: dual-buffer overlap in Cannon (§III-F)\n");
    println!(
        "{:<22} {:>10} {:>12} {:>8}",
        "class", "overlap(s)", "no-overlap(s)", "speedup"
    );
    for (name, m, n, k) in CPU_CLASSES {
        let prob = Problem::new(m, n, k, 2048);
        let grid = ca3dmm_grid(&prob, 0.95).grid;
        let with = evaluate(
            &machine,
            placement.flops_per_rank,
            &ca3dmm_schedule(&prob, &grid, &base),
        );
        let without = evaluate(
            &machine,
            placement.flops_per_rank,
            &ca3dmm_schedule(
                &prob,
                &grid,
                &ModelConfig {
                    overlap: false,
                    ..base
                },
            ),
        );
        println!(
            "{:<22} {:>10.2} {:>12.2} {:>7.2}x",
            name,
            with.total_s,
            without.total_s,
            without.total_s / with.total_s
        );
        assert!(with.total_s <= without.total_s + 1e-12);
    }

    println!("\nAblation 2: the eq. 7 grid constraint (volume premium vs COSMA grid)\n");
    println!(
        "{:<22} {:>6} | {:>14} {:>14} {:>9}",
        "class", "P", "CA3DMM grid", "free grid", "S ratio"
    );
    for (name, m, n, k) in CPU_CLASSES {
        for p in [768usize, 2048, 3072] {
            let prob = Problem::new(m, n, k, p);
            let with = ca3dmm_grid(&prob, 0.95);
            let free = cosma_grid(&prob, 0.95);
            println!(
                "{:<22} {:>6} | {:>4},{:>4},{:>4} {:>4},{:>4},{:>4} {:>9.4}",
                name,
                p,
                with.grid.pm,
                with.grid.pn,
                with.grid.pk,
                free.grid.pm,
                free.grid.pn,
                free.grid.pk,
                with.s_total as f64 / free.s_total as f64
            );
        }
    }
    println!("(S ratio = eq. 4 surface with constraint / without; 1.0 = free.)");

    println!("\nAblation 3: trading k-task groups for memory (§V)\n");
    let (m, n, k) = (50_000, 50_000, 50_000);
    let p = 3072;
    println!(
        "{:>14} | {:>12} {:>12} {:>10}",
        "grid", "mem MB/rank", "volume MB", "time (s)"
    );
    for pk in [12usize, 6, 3, 1] {
        // keep pm*pn*pk <= p with pm = pn
        let side = ((p / pk) as f64).sqrt().floor() as usize;
        let grid = Grid::new(side, side, pk);
        let prob = Problem::new(m, n, k, p);
        let sched = ca3dmm_schedule(&prob, &grid, &base);
        let cost = evaluate(&machine, placement.flops_per_rank, &sched);
        println!(
            "{:>4},{:>4},{:>4} | {:>12.0} {:>12.0} {:>10.2}",
            grid.pm,
            grid.pn,
            grid.pk,
            memory_elements_per_rank(&prob, &grid) * 8.0 / 1048576.0,
            cost.sent_bytes / 1048576.0,
            cost.total_s
        );
    }
    println!("(fewer k-task groups -> toward 2D: less memory, more volume.)");
}
