//! `ca3dmm-report`: reads the versioned `RunReport` JSON artifacts that the
//! fig/bench binaries write (`--report-out`) and turns them into something a
//! human — or CI — can act on.
//!
//! ```text
//! ca3dmm-report show    <report.json>
//! ca3dmm-report diff    <a.json> <b.json> [--threshold PCT] [--fail]
//! ca3dmm-report netdiff <report.json>
//! ca3dmm-report gate    <reference.json> <subject.json> [--time-ratio R]
//! ```
//!
//! * `show` validates the artifact (schema + internal consistency: matrix
//!   row/column sums and histogram totals must reconcile with the per-phase
//!   table) and renders the text dashboard. For a schema-v3 artifact from a
//!   profiled run (`DENSE_GEMM_PROF=1` / `--prof`), the dashboard appends
//!   the per-rank compute-attribution table: Gflop/s vs probed peak,
//!   pack/compute/idle split, imbalance, and pool wake latency.
//! * `diff` compares two *measured* runs phase by phase; `--threshold`
//!   (default 10%) marks phases whose bytes or slowest-rank seconds moved
//!   more than that, and `--fail` turns any marked phase into a nonzero
//!   exit.
//! * `netdiff` compares a measured run against the §III-D analytic model:
//!   the problem and grid are reconstructed from the report's own `meta`
//!   block and joined per phase. For a wall-clock report the model is
//!   priced on [`Machine::uniform`] and times are structural only (thread
//!   simulation vs cluster model). For a **virtual-time** report the model
//!   is priced on the *same machine and placement the simulation charged*
//!   (read back from the report's `sim` block) with the model's overlap
//!   branch matching the run's `meta.overlap` flag — the simulator
//!   completes posted receives at `max(clock, arrival)`, exactly the
//!   `max(comm, compute)` per round the `overlap: true` model prices — so
//!   both bytes *and* seconds are comparable; `--max-bytes-err PCT` /
//!   `--max-secs-err PCT` / `--max-msgs-err PCT` turn the worst per-phase
//!   relative error into a nonzero exit, which is how CI cross-checks the
//!   executed simulation against the closed-form model. (The model counts
//!   two messages per Cannon shift round, matching the runtime's separate
//!   A and B sends; ring collectives measure `g−1` messages against the
//!   model's butterfly `log₂ g`, which is what the msgs tolerance absorbs.)
//! * `gate` is the CI regression gate: deterministic traffic (bytes, msgs,
//!   matrix cells, histogram buckets) must match the reference **exactly**;
//!   times are checked only as a ratio when `--time-ratio` is given.
//!   Compute (profiler) blocks are never compared numerically — they are
//!   host timing — but the gate refuses outright to compare a profiled
//!   report against an unprofiled one, or across schema versions when
//!   either side carries a compute block.

use ca3dmm::{ca3dmm_schedule, diff_doc_vs_model, Collectives, ModelConfig};
use gridopt::{Grid, Problem};
use jsonlite::Json;
use msgpass::report::{diff_reports, gate, render_gate_failures};
use msgpass::{GatePolicy, RunReportDoc};
use netmodel::eval::evaluate;
use netmodel::Machine;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("ca3dmm-report: {msg}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<RunReportDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // `parse` re-checks every structural invariant, including the
    // matrix-vs-phase-table and histogram-vs-phase-table reconciliations.
    RunReportDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Rebuilds the modeled schedule from a report's `meta` block
/// (`Ca3dmm::report_meta` wrote m/n/k/p and the executed grid).
fn meta_problem(doc: &RunReportDoc) -> Result<(Problem, Grid), String> {
    let dim = |f: &str| -> Result<usize, String> {
        doc.meta
            .get(f)
            .and_then(Json::as_f64)
            .filter(|v| *v >= 1.0 && v.fract() == 0.0)
            .map(|v| v as usize)
            .ok_or_else(|| format!("meta.{f} missing or not a positive integer"))
    };
    let (m, n, k, p) = (dim("m")?, dim("n")?, dim("k")?, dim("p")?);
    let grid = doc
        .meta
        .get("grid")
        .ok_or_else(|| "meta.grid missing".to_owned())?;
    let gdim = |f: &str| -> Result<usize, String> {
        grid.get(f)
            .and_then(Json::as_f64)
            .filter(|v| *v >= 1.0 && v.fract() == 0.0)
            .map(|v| v as usize)
            .ok_or_else(|| format!("meta.grid.{f} missing or not a positive integer"))
    };
    Ok((
        Problem::new(m, n, k, p),
        Grid::new(gdim("pm")?, gdim("pn")?, gdim("pk")?),
    ))
}

fn cmd_show(path: &str) -> ExitCode {
    match load(path) {
        Ok(doc) => {
            print!("{}", doc.render_dashboard());
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_diff(a_path: &str, b_path: &str, threshold_pct: f64, fail_over: bool) -> ExitCode {
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    println!(
        "A = {} ({}, {} time)\nB = {} ({}, {} time)\n",
        a_path,
        a.name().unwrap_or("unnamed"),
        a.time_domain,
        b_path,
        b.name().unwrap_or("unnamed"),
        b.time_domain
    );
    if a.time_domain != b.time_domain {
        println!(
            "WARNING: comparing a {}-time run against a {}-time run; \
             the seconds columns are not in the same clock\n",
            a.time_domain, b.time_domain
        );
    }
    let diff = diff_reports(&a, &b, threshold_pct);
    print!("{}", diff.render());
    if fail_over && !diff.exceeded().is_empty() {
        return fail("phases moved beyond the threshold (--fail)");
    }
    ExitCode::SUCCESS
}

fn cmd_netdiff(
    path: &str,
    max_bytes_err: Option<f64>,
    max_secs_err: Option<f64>,
    max_msgs_err: Option<f64>,
) -> ExitCode {
    let doc = match load(path) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let (prob, grid) = match meta_problem(&doc) {
        Ok(v) => v,
        Err(e) => {
            return fail(&format!(
                "{path}: cannot reconstruct the run from meta ({e}); \
                 netdiff needs a report written with Ca3dmm::report_meta"
            ))
        }
    };
    if doc.ranks != prob.p {
        return fail(&format!(
            "{path}: report has {} ranks but meta says p = {}",
            doc.ranks, prob.p
        ));
    }
    // The run records whether Cannon ran its dual-buffered pipeline in
    // `meta.overlap` (written by `Ca3dmm::report_meta`); the model's branch
    // must match or the seconds tiers compare different algorithms.
    // Artifacts written before the flag existed ran the blocking path.
    let overlap = doc
        .meta
        .get("overlap")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    // Likewise the collective mode the run executed (`meta.collectives`):
    // the model applies the same structural node-aware selection the
    // runtime used, so hierarchical artifacts stay byte-exact against the
    // hierarchical closed forms. Artifacts from before the flag ran flat.
    let collectives = doc
        .meta
        .get("collectives")
        .and_then(Json::as_str)
        .and_then(Collectives::parse)
        .unwrap_or(Collectives::Flat);
    // Wall-clock artifacts: same model configuration as the traced fig5 run
    // that wrote them — a uniform machine, pure-MPI placement, f64 payloads,
    // no redistribution (the run feeds the native layouts directly).
    // Virtual-time artifacts: the machine and placement the simulation
    // itself charged.
    let (machine, placement) = match &doc.sim {
        Some(sim) => (sim.machine.clone(), sim.placement),
        None => {
            let m = Machine::uniform();
            let placement = m.pure_mpi();
            (m, placement)
        }
    };
    let cfg = ModelConfig {
        placement,
        elem_bytes: 8.0,
        overlap,
        include_redist: false,
        collectives,
    };
    let cost = evaluate(
        &machine,
        placement.flops_per_rank,
        &ca3dmm_schedule(&prob, &grid, &cfg),
    );
    println!(
        "{} — {}×{}×{} on {} ranks (grid {}×{}×{}) vs analytic model on {}",
        doc.name().unwrap_or(path),
        prob.m,
        prob.n,
        prob.k,
        prob.p,
        grid.pm,
        grid.pn,
        grid.pk,
        machine.name
    );
    if doc.sim.is_some() {
        println!("(virtual-time run: bytes and seconds both comparable to the model)\n");
    } else {
        println!("(wall-clock run: times are structural only; byte volumes should agree)\n");
    }
    let diff = diff_doc_vs_model(&doc, &cost);
    print!("{}", diff.render());

    // Worst per-phase relative error, over phases the model prices.
    let (mut worst_bytes, mut worst_secs, mut worst_msgs) = (0.0f64, 0.0f64, 0.0f64);
    for ph in &diff.phases {
        if ph.modeled_bytes > 0.0 {
            let err = (ph.measured_bytes as f64 - ph.modeled_bytes).abs() / ph.modeled_bytes;
            worst_bytes = worst_bytes.max(err);
        }
        if ph.modeled_s > 0.0 && ph.measured_s > 0.0 {
            let err = (ph.measured_s - ph.modeled_s).abs() / ph.modeled_s;
            worst_secs = worst_secs.max(err);
        }
        if ph.modeled_msgs > 0.0 && ph.measured_msgs > 0 {
            let err = (ph.measured_msgs as f64 - ph.modeled_msgs).abs() / ph.modeled_msgs;
            worst_msgs = worst_msgs.max(err);
        }
    }
    println!(
        "\nworst per-phase error: bytes {:.3}%, secs {:.1}%, msgs {:.1}%",
        worst_bytes * 100.0,
        worst_secs * 100.0,
        worst_msgs * 100.0
    );
    let mut over = Vec::new();
    if let Some(limit) = max_bytes_err {
        if worst_bytes * 100.0 > limit {
            over.push(format!(
                "bytes error {:.3}% exceeds --max-bytes-err {limit}%",
                worst_bytes * 100.0
            ));
        }
    }
    if let Some(limit) = max_secs_err {
        if worst_secs * 100.0 > limit {
            over.push(format!(
                "secs error {:.1}% exceeds --max-secs-err {limit}%",
                worst_secs * 100.0
            ));
        }
    }
    if let Some(limit) = max_msgs_err {
        if worst_msgs * 100.0 > limit {
            over.push(format!(
                "msgs error {:.1}% exceeds --max-msgs-err {limit}%",
                worst_msgs * 100.0
            ));
        }
    }
    if !over.is_empty() {
        return fail(&over.join("; "));
    }
    ExitCode::SUCCESS
}

fn cmd_gate(ref_path: &str, subj_path: &str, time_ratio: Option<f64>) -> ExitCode {
    let (reference, subject) = match (load(ref_path), load(subj_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let policy = GatePolicy {
        max_time_ratio: time_ratio,
        ..Default::default()
    };
    match gate(&reference, &subject, &policy) {
        Ok(()) => {
            println!(
                "gate OK: {subj_path} matches {ref_path} (traffic exact{})",
                match time_ratio {
                    Some(r) => format!(", times within {r}x"),
                    None => ", times ignored".to_owned(),
                }
            );
            ExitCode::SUCCESS
        }
        Err(errs) => {
            eprint!("{}", render_gate_failures(&errs));
            fail(&format!("{} violation(s)", errs.len()))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: ca3dmm-report show <report.json>\n\
                 \x20      ca3dmm-report diff <a.json> <b.json> [--threshold PCT] [--fail]\n\
                 \x20      ca3dmm-report netdiff <report.json> [--max-bytes-err PCT] [--max-secs-err PCT] [--max-msgs-err PCT]\n\
                 \x20      ca3dmm-report gate <reference.json> <subject.json> [--time-ratio R]";
    match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest) {
            ("show", [path]) => cmd_show(path),
            ("diff", [a, b, opts @ ..]) => {
                let (mut threshold, mut fail_over) = (10.0, false);
                let mut it = opts.iter();
                while let Some(opt) = it.next() {
                    match opt.as_str() {
                        "--threshold" => match it.next().map(|v| v.parse::<f64>()) {
                            Some(Ok(v)) => threshold = v,
                            _ => return fail("--threshold requires a numeric value"),
                        },
                        "--fail" => fail_over = true,
                        other => return fail(&format!("unknown diff option {other}")),
                    }
                }
                cmd_diff(a, b, threshold, fail_over)
            }
            ("netdiff", [path, opts @ ..]) => {
                let (mut max_bytes_err, mut max_secs_err, mut max_msgs_err) = (None, None, None);
                let mut it = opts.iter();
                while let Some(opt) = it.next() {
                    let value = |v: Option<&String>, name: &str| {
                        v.and_then(|v| v.parse::<f64>().ok())
                            .ok_or_else(|| format!("{name} requires a numeric value"))
                    };
                    match opt.as_str() {
                        "--max-bytes-err" => match value(it.next(), "--max-bytes-err") {
                            Ok(v) => max_bytes_err = Some(v),
                            Err(e) => return fail(&e),
                        },
                        "--max-secs-err" => match value(it.next(), "--max-secs-err") {
                            Ok(v) => max_secs_err = Some(v),
                            Err(e) => return fail(&e),
                        },
                        "--max-msgs-err" => match value(it.next(), "--max-msgs-err") {
                            Ok(v) => max_msgs_err = Some(v),
                            Err(e) => return fail(&e),
                        },
                        other => return fail(&format!("unknown netdiff option {other}")),
                    }
                }
                cmd_netdiff(path, max_bytes_err, max_secs_err, max_msgs_err)
            }
            ("gate", [a, b]) => cmd_gate(a, b, None),
            ("gate", [a, b, flag, r]) if flag == "--time-ratio" => match r.parse::<f64>() {
                Ok(r) => cmd_gate(a, b, Some(r)),
                Err(_) => fail("--time-ratio requires a numeric value"),
            },
            _ => fail(usage),
        },
        None => fail(usage),
    }
}
