//! Ablation: Cannon vs SUMMA inside the k-task groups (§III-E, and the
//! first future-work direction of §V).
//!
//! Two comparisons:
//! 1. **Latency analysis** — the paper's closed forms:
//!    `L = log₂(c) + p_s + (p_k − 1)` for CA3DMM-C (eq. 10) versus
//!    `L_SUMMA = p_m(log₂ p_m + p_m − 1) + (p_k − 1)`; the paper proves
//!    `L_SUMMA ≥ L` whenever `p_m ≥ 2`.
//! 2. **Real execution** — both variants run on the threaded runtime at
//!    small scale and their measured wall times and message counts are
//!    compared.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_2d_algo
//! ```

use ca3dmm::summa2d::Ca3dmmSumma;
use ca3dmm::{Ca3dmm, Ca3dmmOptions};
use dense::part::Rect;
use dense::random::global_block;
use dense::Mat;
use gridopt::{ca3dmm_grid, Grid, Problem};
use msgpass::{Comm, World};
use std::time::Instant;

fn eq10_latency(g: &Grid) -> f64 {
    let c = g.cannon_c() as f64;
    let ps = g.cannon_s() as f64;
    c.log2() + ps + (g.pk as f64 - 1.0)
}

fn summa_latency(g: &Grid) -> f64 {
    let pm = g.pm.max(g.pn) as f64;
    if pm < 2.0 {
        return g.pk as f64 - 1.0;
    }
    pm * (pm.log2() + pm - 1.0) + (g.pk as f64 - 1.0)
}

fn main() {
    println!("Ablation: CA3DMM-C (Cannon) vs CA3DMM-S (SUMMA), §III-E\n");
    println!("Theoretical latencies (paper eq. 10 vs L_SUMMA):");
    println!(
        "{:>14} | {:>10} {:>10} {:>8}",
        "grid", "L (Cannon)", "L_SUMMA", "ratio"
    );
    for (m, n, k, p) in [
        (50_000, 50_000, 50_000, 2048),
        (6_000, 6_000, 1_200_000, 2048),
        (100_000, 100_000, 5_000, 2048),
        (50_000, 50_000, 50_000, 3072),
    ] {
        let g = ca3dmm_grid(&Problem::new(m, n, k, p), 0.95).grid;
        let lc = eq10_latency(&g);
        let ls = summa_latency(&g);
        println!(
            "{:>4},{:>4},{:>4} | {:>10.0} {:>10.0} {:>8.1}",
            g.pm,
            g.pn,
            g.pk,
            lc,
            ls,
            ls / lc
        );
        assert!(ls >= lc, "paper's §III-E inequality violated");
    }

    println!("\nReal execution (threaded runtime, wall time and messages):");
    println!(
        "{:>16} {:>5} | {:>12} {:>12} | {:>10} {:>10}",
        "problem", "P", "Cannon (ms)", "SUMMA (ms)", "msgs C", "msgs S"
    );
    for (m, n, k, p) in [
        (240usize, 240, 240, 16),
        (120, 120, 960, 16),
        (480, 480, 60, 16),
    ] {
        let prob = Problem::new(m, n, k, p);
        let grid = ca3dmm_grid(&prob, 0.95).grid;
        let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
        let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));

        // CA3DMM-C
        let alg_c = Ca3dmm::new(
            prob,
            &Ca3dmmOptions {
                grid_override: Some(grid),
                ..Default::default()
            },
        );
        let gc = alg_c.grid_context();
        let (la, lb) = (gc.layout_a(), gc.layout_b());
        let t = Instant::now();
        let (_, rep_c) = World::run_traced(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            let _: Option<Mat<f64>> = alg_c.multiply_native(ctx, &world, a, b);
        });
        let t_c = t.elapsed().as_secs_f64() * 1e3;

        // CA3DMM-S on the same grid
        let alg_s = Ca3dmmSumma::new(prob, Some(grid));
        let (la, lb) = (alg_s.layout_a(), alg_s.layout_b());
        let t = Instant::now();
        let (_, rep_s) = World::run_traced(p, |ctx| {
            let world = Comm::world(ctx);
            let me = world.rank();
            let a = la.extract(&a_full, me).into_iter().next();
            let b = lb.extract(&b_full, me).into_iter().next();
            let _: Option<Mat<f64>> = alg_s.multiply_native(ctx, &world, a, b);
        });
        let t_s = t.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>5}x{:<4}x{:<4} {:>5} | {:>12.1} {:>12.1} | {:>10} {:>10}",
            m,
            n,
            k,
            p,
            t_c,
            t_s,
            rep_c.max_rank_msgs(),
            rep_s.max_rank_msgs()
        );
    }
    println!("\nPaper conclusion (§III-E): Cannon's latency is never worse; the");
    println!("shift pattern also pipelines with compute, so CA3DMM uses Cannon.");
}
