//! Layout-conversion (redistribution) throughput — Algorithm 1 steps 4/8,
//! the subject of Fig. 3's "custom layout" series and the paper's §V open
//! problem.

use bench::timing::{bench, BenchReport};
use dense::gemm::GemmOp;
use dense::random::random_mat;
use layout::{redistribute, Layout};
use msgpass::{Comm, World};

fn main() {
    let p = 8usize;
    let (rows, cols) = (1024usize, 1024usize);
    println!("redistribute at P = {p}, {rows}x{cols} f64");
    let mut report = BenchReport::new("redistribute");
    let global = random_mat::<f64>(rows, cols, 7);

    let cases: Vec<(&str, Layout, Layout)> = vec![
        (
            "col_to_2d",
            Layout::one_d_col(rows, cols, p),
            Layout::two_d_block(rows, cols, 2, 4),
        ),
        (
            "2d_to_cyclic",
            Layout::two_d_block(rows, cols, 2, 4),
            Layout::block_cyclic(rows, cols, 2, 4, 64, 64),
        ),
        (
            "identity",
            Layout::one_d_col(rows, cols, p),
            Layout::one_d_col(rows, cols, p),
        ),
    ];
    for (name, src, dst) in cases {
        let s = bench(name, || {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                let mine = src.extract(&global, comm.rank());
                redistribute(&comm, ctx, &src, &mine, &dst, GemmOp::NoTrans)
            });
        });
        report.push(name, s);
    }
    // transpose fold
    let src = Layout::one_d_col(rows, cols, p);
    let dst = Layout::one_d_col(cols, rows, p);
    let s = bench("col_to_col_transposed", || {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let mine = src.extract(&global, comm.rank());
            redistribute(&comm, ctx, &src, &mine, &dst, GemmOp::Trans)
        });
    });
    report.push("col_to_col_transposed", s);

    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench JSON: {e}"),
    }
}
