//! Real-execution comparison of the PGEMM algorithms on the threaded
//! runtime — the honest-measurement complement to the paper-scale model.
//! Small process counts, native layouts, square and tall-skinny shapes.

use baselines::{C25d, CosmaLike, SummaPgemm};
use bench::timing::{bench, BenchReport};
use ca3dmm::{Ca3dmm, Ca3dmmOptions};
use dense::part::Rect;
use dense::random::global_block;
use dense::Mat;
use gridopt::Problem;
use msgpass::{Comm, World};

fn main() {
    let mut report = BenchReport::new("pgemm_algos");
    let cases = [
        ("square_256", 256usize, 256usize, 256usize),
        ("largek_64x64x4096", 64, 64, 4096),
    ];
    for p in [4usize, 8, 16] {
        println!("pgemm at P = {p}");
        for (name, m, n, k) in cases {
            let a_full = global_block::<f64>(1, Rect::new(0, 0, m, k));
            let b_full = global_block::<f64>(2, Rect::new(0, 0, k, n));
            let prob = Problem::new(m, n, k, p);

            let ca = Ca3dmm::new(prob, &Ca3dmmOptions::default());
            let gc = ca.grid_context();
            let (la, lb) = (gc.layout_a(), gc.layout_b());
            let label = format!("ca3dmm/{name}/p{p}");
            let s = bench(&label, || {
                World::run(p, |ctx| {
                    let world = Comm::world(ctx);
                    let me = world.rank();
                    let a = la.extract(&a_full, me).into_iter().next();
                    let b = lb.extract(&b_full, me).into_iter().next();
                    let _: Option<Mat<f64>> = ca.multiply_native(ctx, &world, a, b);
                });
            });
            report.push(&label, s);

            let cosma = CosmaLike::new(prob, None);
            let (la, lb) = (cosma.layout_a(), cosma.layout_b());
            let label = format!("cosma/{name}/p{p}");
            let s = bench(&label, || {
                World::run(p, |ctx| {
                    let world = Comm::world(ctx);
                    let me = world.rank();
                    let a = la.extract(&a_full, me).into_iter().next();
                    let b = lb.extract(&b_full, me).into_iter().next();
                    let _: Option<Mat<f64>> = cosma.multiply_native(ctx, &world, a, b);
                });
            });
            report.push(&label, s);

            let summa = SummaPgemm::new(prob, None);
            let (la, lb) = (summa.layout_a(), summa.layout_b());
            let label = format!("summa/{name}/p{p}");
            let s = bench(&label, || {
                World::run(p, |ctx| {
                    let world = Comm::world(ctx);
                    let me = world.rank();
                    let a = la.extract(&a_full, me).into_iter().next();
                    let b = lb.extract(&b_full, me).into_iter().next();
                    let _: Option<Mat<f64>> = summa.multiply_native(ctx, &world, a, b);
                });
            });
            report.push(&label, s);

            let c25d = C25d::new(prob, None);
            let (la, lb) = (c25d.layout_a(), c25d.layout_b());
            let label = format!("c25d/{name}/p{p}");
            let s = bench(&label, || {
                World::run(p, |ctx| {
                    let world = Comm::world(ctx);
                    let me = world.rank();
                    let a = la.extract(&a_full, me).into_iter().next();
                    let b = lb.extract(&b_full, me).into_iter().next();
                    let _: Option<Mat<f64>> = c25d.multiply_native(ctx, &world, a, b);
                });
            });
            report.push(&label, s);
        }
        println!();
    }
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench JSON: {e}"),
    }
}
