//! Local GEMM kernel throughput (the role MKL plays in the artifact):
//! the blocked multi-core kernel vs the pre-PR `gemm_unpacked` kernel vs
//! the naive triple loop, across the paper's Table 1 shape regimes
//! (square 256–2048, flat 2048×2048×64, k-dominant 64×64×4096), each in
//! f32 and f64.
//!
//! Entry labels follow `kernel/MxNxK/type/tN` (N = kernel-thread width;
//! `tauto` = the host's full budget). Every shape gets a t1/t2/t4/tauto
//! tier sweep of the blocked kernel; each multi-thread tier carries
//! `threads` (the width actually used) and `scaling_efficiency`
//! (gflops_tN / (N · gflops_t1)) extra fields, and every tier is annotated
//! with the `dense::prof` attribution of one profiled multiply
//! (`pack_pct`/`compute_pct`/`idle_pct`). Each sweep closes with a
//! `packed_prof/...` entry — the tauto shape benchmarked *with* the
//! profiler capturing — whose `prof_overhead_pct` field records the
//! profiled-vs-unprofiled cost from interleaved paired runs.
//!
//! Every blocked-kernel entry additionally carries a `kernel` string
//! annotation (the dispatched SIMD microkernel — `portable`/`avx2`/
//! `avx512`) and a `numa_packing` flag. On top of the dispatcher-selected
//! tiers, a per-kernel head-to-head sweep pins each *available* microkernel
//! in turn and records `packed_<kernel>/MxNxK/type/tN` entries — the CI
//! dispatch gate reads `packed_avx2` vs `packed_portable` at 1024³ f64 t1
//! from these. The JSON written to `BENCH_gemm.json` is validated
//! mechanically by `bin/validate_bench_json.rs` (`--gemm-tiers` mode
//! refuses t1-only artifacts, missing kernel annotations, and overhead
//! ≥ 5%). `GEMM_BENCH_SMOKE=1` runs the short CI variant: the
//! packed-vs-naive anti-regression trio at 512³ plus the t1/tauto pair at
//! 1024³ that the CI parallel-scaling gate reads, the profiled 1024³ entry
//! the CI overhead gate reads, and the per-kernel 1024³ f64 t1 entries the
//! dispatch gate reads. `GEMM_BENCH_SMOKE=512` is the minimal variant the
//! per-`DENSE_GEMM_KERNEL` CI loop runs: just the naive/packed pair at
//! 512³ (annotated with the dispatched kernel, so CI can also assert the
//! env override was honoured end to end).

use bench::timing::{bench_throughput, BenchReport};
use dense::gemm::{gemm, gemm_naive, gemm_unpacked, GemmOp};
use dense::random::random_mat;
use dense::{pool, KernelKind, Mat};

type Kernel<T> = fn(GemmOp, GemmOp, T, &Mat<T>, &Mat<T>, T, &mut Mat<T>);

/// Times one `kernel` instance at `m×n×k` with the given kernel-thread cap
/// (`None` = the host's auto width), records it, and returns the achieved
/// gflops and the width that was actually used.
fn run_case<T: dense::Scalar>(
    report: &mut BenchReport,
    kernel_name: &str,
    kernel: Kernel<T>,
    m: usize,
    n: usize,
    k: usize,
    threads: Option<usize>,
) -> (f64, usize) {
    let a = random_mat::<T>(m, k, 1);
    let b = random_mat::<T>(k, n, 2);
    let flops = (2 * m * n * k) as f64;
    pool::set_rank_gemm_threads(threads);
    let width = pool::gemm_threads();
    let tlabel = threads.map_or("auto".to_owned(), |t| t.to_string());
    let ty = std::any::type_name::<T>();
    let label = format!("{kernel_name}/{m}x{n}x{k}/{ty}/t{tlabel}");
    let mut cm = Mat::<T>::zeros(m, n);
    let stats = bench_throughput(&label, flops, || {
        kernel(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            T::ONE,
            &a,
            &b,
            T::ZERO,
            &mut cm,
        );
        std::hint::black_box(&cm);
    });
    pool::set_rank_gemm_threads(None);
    report.push_throughput(&label, stats, flops);
    (flops / stats.median_s / 1e9, width)
}

/// Tags the last entry with the microkernel the blocked kernel dispatched
/// to and whether NUMA-aware packing was active (0/1; always 0 on
/// single-node CI).
fn annotate_kernel(report: &mut BenchReport) {
    report.annotate_last_str("kernel", dense::gemm_kernel().name());
    report.annotate_last("numa_packing", f64::from(u8::from(dense::numa_packing())));
}

/// Pins each *available* microkernel in turn and records head-to-head
/// `packed_<kernel>/...` entries at the given tiers. The pin is restored
/// to the dispatcher default before returning.
fn run_kernel_head_to_head<T: dense::Scalar>(
    report: &mut BenchReport,
    m: usize,
    n: usize,
    k: usize,
    tiers: &[Option<usize>],
) {
    for kind in KernelKind::ALL {
        if !kind.available() {
            continue;
        }
        dense::set_gemm_kernel(Some(kind));
        let name = format!("packed_{}", kind.name());
        for &tier in tiers {
            let (_, width) = run_case::<T>(report, &name, gemm, m, n, k, tier);
            annotate_kernel(report);
            report.annotate_last("threads", width as f64);
        }
    }
    dense::set_gemm_kernel(None);
}

/// One-shot profiled run of the blocked kernel at a shape/width: returns
/// the profiler's (pack%, compute%, idle%) split of the thread-seconds.
/// Runs outside the timed loop, so it costs one extra multiply per tier.
fn profile_split<T: dense::Scalar>(
    m: usize,
    n: usize,
    k: usize,
    threads: Option<usize>,
) -> (f64, f64, f64) {
    let a = random_mat::<T>(m, k, 1);
    let b = random_mat::<T>(k, n, 2);
    let mut c = Mat::<T>::zeros(m, n);
    pool::set_rank_gemm_threads(threads);
    dense::set_gemm_profiling(true);
    dense::prof::begin_capture();
    gemm(
        GemmOp::NoTrans,
        GemmOp::NoTrans,
        T::ONE,
        &a,
        &b,
        T::ZERO,
        &mut c,
    );
    let profile = dense::prof::end_capture();
    dense::set_gemm_profiling(false);
    pool::set_rank_gemm_threads(None);
    std::hint::black_box(&c);
    profile.map_or((0.0, 0.0, 0.0), |p| p.pct_split())
}

/// Annotates the report's last entry with the profiler-derived attribution
/// of the same shape/width.
fn annotate_split<T: dense::Scalar>(
    report: &mut BenchReport,
    m: usize,
    n: usize,
    k: usize,
    threads: Option<usize>,
) {
    let (pack, compute, idle) = profile_split::<T>(m, n, k, threads);
    report.annotate_last("pack_pct", pack);
    report.annotate_last("compute_pct", compute);
    report.annotate_last("idle_pct", idle);
}

/// Interleaved paired overhead measurement: alternates unprofiled and
/// profiled (capturing) multiplies round-robin and compares the **min**
/// sample of each side, extending the run adaptively while the estimate
/// is implausible. Pairing matters: slow drift — thermal throttle,
/// co-tenant CPU steal — moves adjacent-but-separate benchmark runs by
/// ±10% on shared hosts, while interleaved rounds expose both variants
/// to the same machine state; min/min then discards the additive noise
/// spikes (noise only ever adds time). The residual failure mode is the
/// two minima landing in *different* quiet windows: on a loaded host a
/// burst can cover most of the base rounds, and the stranded side reads
/// several percent high (or low). Since more rounds only move both
/// minima *down* toward the true quiet-window times, the fix is more
/// data, not a different estimator: while |overhead| exceeds what the
/// capture path could plausibly cost (3%), keep adding paired rounds up
/// to 4x the base count. (A median-of-pair-ratios variant was tried and
/// is strictly worse here — bursts span many consecutive pairs, so the
/// median itself gets contaminated, swinging -20%..+10%.)
fn paired_overhead_pct<T: dense::Scalar>(m: usize, n: usize, k: usize) -> f64 {
    let a = random_mat::<T>(m, k, 1);
    let b = random_mat::<T>(k, n, 2);
    let mut c = Mat::<T>::zeros(m, n);
    let mut run = |prof: bool| -> f64 {
        if prof {
            dense::set_gemm_profiling(true);
            dense::prof::begin_capture();
        }
        let t0 = std::time::Instant::now();
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            T::ONE,
            &a,
            &b,
            T::ZERO,
            &mut c,
        );
        let dt = t0.elapsed().as_secs_f64();
        if prof {
            dense::prof::end_capture();
            dense::set_gemm_profiling(false);
        }
        std::hint::black_box(&c);
        dt
    };
    // Warm both paths, then measure. More rounds than the throughput
    // benches: the gate on this number is tight (2% in CI), and min-of-N
    // only beats bursty co-tenant steal when N gives both sides several
    // shots at a quiet window.
    run(false);
    run(true);
    let rounds = bench::timing::samples().max(8);
    let (mut unprof, mut prof) = (f64::INFINITY, f64::INFINITY);
    let mut done = 0usize;
    while done < rounds || (done < 4 * rounds && (prof / unprof - 1.0).abs() > 0.03) {
        unprof = unprof.min(run(false));
        prof = prof.min(run(true));
        done += 1;
    }
    100.0 * (prof / unprof - 1.0)
}

/// Benchmarks the blocked kernel at tauto *with the profiler capturing* as
/// `packed_prof/...` and annotates `prof_overhead_pct` from the paired
/// interleaved measurement above. CI gates the annotation two ways: the
/// overhead gate (< 2% at 1024³ f64) and `--gemm-tiers` (every recorded
/// overhead must stay < 5%).
fn run_profiled_overhead<T: dense::Scalar>(report: &mut BenchReport, m: usize, n: usize, k: usize) {
    dense::set_gemm_profiling(true);
    dense::prof::begin_capture();
    run_case::<T>(report, "packed_prof", gemm, m, n, k, None);
    dense::prof::end_capture();
    dense::set_gemm_profiling(false);
    annotate_kernel(report);
    report.annotate_last("prof_overhead_pct", paired_overhead_pct::<T>(m, n, k));
}

/// The full t1/t2/t4/tauto tier sweep of the blocked kernel at one shape:
/// every tier entry is annotated with the width used and the profiler's
/// pack/compute/idle attribution; multi-thread tiers also get
/// `scaling_efficiency` relative to the t1 run; the sweep closes with the
/// profiled-tauto overhead entry.
fn run_tiers<T: dense::Scalar>(report: &mut BenchReport, m: usize, n: usize, k: usize) {
    let (g1, _) = run_case::<T>(report, "packed", gemm, m, n, k, Some(1));
    annotate_kernel(report);
    report.annotate_last("threads", 1.0);
    annotate_split::<T>(report, m, n, k, Some(1));
    for tier in [Some(2), Some(4), None] {
        let (g, width) = run_case::<T>(report, "packed", gemm, m, n, k, tier);
        annotate_kernel(report);
        report.annotate_last("threads", width as f64);
        report.annotate_last("scaling_efficiency", g / (width as f64 * g1));
        annotate_split::<T>(report, m, n, k, tier);
    }
    run_profiled_overhead::<T>(report, m, n, k);
}

fn main() {
    let smoke_var = std::env::var("GEMM_BENCH_SMOKE").unwrap_or_default();
    let smoke = smoke_var == "1";
    let smoke512 = smoke_var == "512";
    let mut report = BenchReport::new("gemm");
    println!(
        "local_gemm: blocked kernel thread tiers vs pre-PR unpacked kernel \
         (base kernel-thread budget = {}, microkernel = {}, blocking f64 = {:?}, \
         numa_packing = {})",
        pool::base_gemm_threads(),
        dense::gemm_kernel().name(),
        dense::tune::blocking::<f64>(),
        dense::numa_packing(),
    );

    if smoke512 {
        // Minimal per-kernel run for the CI dispatch loop: one 512³
        // naive/packed pair under whatever DENSE_GEMM_KERNEL is in effect.
        let (m, n, k) = (512usize, 512usize, 512usize);
        run_case::<f64>(&mut report, "naive", gemm_naive, m, n, k, Some(1));
        run_case::<f64>(&mut report, "packed", gemm, m, n, k, Some(1));
        annotate_kernel(&mut report);
    } else if smoke {
        // CI anti-regression guards (asserted by validate_bench_json, not
        // here): packed must beat naive by a wide margin at 512³, and
        // tauto must beat t1 by the scaling gate at 1024³.
        let (m, n, k) = (512usize, 512usize, 512usize);
        run_case::<f64>(&mut report, "naive", gemm_naive, m, n, k, Some(1));
        run_case::<f64>(&mut report, "unpacked", gemm_unpacked, m, n, k, Some(1));
        run_case::<f64>(&mut report, "packed", gemm, m, n, k, Some(1));
        annotate_kernel(&mut report);
        let (g1, _) = run_case::<f64>(&mut report, "packed", gemm, 1024, 1024, 1024, Some(1));
        annotate_kernel(&mut report);
        report.annotate_last("threads", 1.0);
        let (ga, width) = run_case::<f64>(&mut report, "packed", gemm, 1024, 1024, 1024, None);
        annotate_kernel(&mut report);
        report.annotate_last("threads", width as f64);
        report.annotate_last("scaling_efficiency", ga / (width as f64 * g1));
        annotate_split::<f64>(&mut report, 1024, 1024, 1024, None);
        // The profiled-vs-unprofiled pair the CI overhead gate reads.
        run_profiled_overhead::<f64>(&mut report, 1024, 1024, 1024);
        // Per-kernel head-to-head at 1024³ f64 t1 (plus f32 where the f32
        // path is distinct) — the CI dispatch gate compares packed_avx2 vs
        // packed_portable from these.
        run_kernel_head_to_head::<f64>(&mut report, 1024, 1024, 1024, &[Some(1)]);
        run_kernel_head_to_head::<f32>(&mut report, 1024, 1024, 1024, &[Some(1)]);
    } else {
        // Naive is only affordable at small sizes; it anchors the scale.
        run_case::<f64>(&mut report, "naive", gemm_naive, 256, 256, 256, Some(1));

        // Single-thread head-to-head vs the pre-PR kernel (square, flat,
        // k-dominant), f64 and f32.
        for &(m, n, k) in &[
            (512usize, 512usize, 512usize),
            (2048, 2048, 64),
            (64, 64, 4096),
        ] {
            run_case::<f64>(&mut report, "unpacked", gemm_unpacked, m, n, k, Some(1));
            run_case::<f32>(&mut report, "unpacked", gemm_unpacked, m, n, k, Some(1));
        }

        // Thread-tier sweeps of the blocked kernel for every shape regime.
        for &s in &[256usize, 512, 1024, 2048] {
            run_tiers::<f64>(&mut report, s, s, s);
            run_tiers::<f32>(&mut report, s, s, s);
        }
        for &(m, n, k) in &[(2048usize, 2048usize, 64usize), (64, 64, 4096)] {
            run_tiers::<f64>(&mut report, m, n, k);
            run_tiers::<f32>(&mut report, m, n, k);
        }

        // Per-kernel head-to-head: every available microkernel pinned in
        // turn, serial and full-width, both element types.
        run_kernel_head_to_head::<f64>(&mut report, 1024, 1024, 1024, &[Some(1), None]);
        run_kernel_head_to_head::<f32>(&mut report, 1024, 1024, 1024, &[Some(1), None]);
    }

    // Fatal, not a warning: CI and regen_results.sh consume this JSON, and a
    // silent write failure leaves a stale artifact that the gates then bless.
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => panic!(
            "could not write bench JSON to {}: {e}",
            report.path().display()
        ),
    }
}
