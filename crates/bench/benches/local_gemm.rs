//! Local GEMM kernel throughput (the role MKL plays in the artifact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dense::gemm::{gemm, GemmOp};
use dense::random::random_mat;
use dense::Mat;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_gemm");
    group.sample_size(10);
    for &(m, n, k) in &[(256usize, 256usize, 256usize), (512, 512, 512), (64, 64, 4096), (2048, 2048, 64)] {
        let a = random_mat::<f64>(m, k, 1);
        let b = random_mat::<f64>(k, n, 2);
        group.throughput(Throughput::Elements((2 * m * n * k) as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("{m}x{n}x{k}")), |bch| {
            bch.iter(|| {
                let mut cm = Mat::<f64>::zeros(m, n);
                gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut cm);
                cm
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
