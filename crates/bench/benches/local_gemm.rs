//! Local GEMM kernel throughput (the role MKL plays in the artifact):
//! the packed register-blocked kernel vs the pre-PR `gemm_unpacked` kernel
//! vs the naive triple loop, across the paper's Table 1 shape regimes
//! (square, skinny/flat, k-dominant).
//!
//! Entry labels follow `kernel/MxNxK/type/tN` (N = kernel-thread width) so
//! the JSON written to `BENCH_gemm.json` can be validated mechanically by
//! `bin/validate_bench_json.rs`. `GEMM_BENCH_SMOKE=1` runs the short CI
//! variant: 512³ only, packed vs naive vs unpacked.

use bench::timing::{bench_throughput, BenchReport};
use dense::gemm::{gemm, gemm_naive, gemm_unpacked, GemmOp};
use dense::random::random_mat;
use dense::{pool, Mat};

type Kernel<T> = fn(GemmOp, GemmOp, T, &Mat<T>, &Mat<T>, T, &mut Mat<T>);

fn run_case<T: dense::Scalar>(
    report: &mut BenchReport,
    kernel_name: &str,
    kernel: Kernel<T>,
    m: usize,
    n: usize,
    k: usize,
    threads: Option<usize>,
) {
    let a = random_mat::<T>(m, k, 1);
    let b = random_mat::<T>(k, n, 2);
    let flops = (2 * m * n * k) as f64;
    pool::set_rank_gemm_threads(threads);
    let tlabel = threads.map_or("auto".to_owned(), |t| t.to_string());
    let ty = std::any::type_name::<T>();
    let label = format!("{kernel_name}/{m}x{n}x{k}/{ty}/t{tlabel}");
    let mut cm = Mat::<T>::zeros(m, n);
    let stats = bench_throughput(&label, flops, || {
        kernel(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            T::ONE,
            &a,
            &b,
            T::ZERO,
            &mut cm,
        );
        std::hint::black_box(&cm);
    });
    pool::set_rank_gemm_threads(None);
    report.push_throughput(&label, stats, flops);
}

fn main() {
    let smoke = std::env::var("GEMM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let mut report = BenchReport::new("gemm");
    println!(
        "local_gemm: packed kernel vs pre-PR unpacked kernel (pool workers cap = {})",
        pool::base_gemm_threads()
    );

    if smoke {
        // CI anti-regression guard: packed must beat naive by a wide margin
        // at 512³ (asserted by validate_bench_json, not here).
        let (m, n, k) = (512usize, 512usize, 512usize);
        run_case::<f64>(&mut report, "naive", gemm_naive, m, n, k, Some(1));
        run_case::<f64>(&mut report, "unpacked", gemm_unpacked, m, n, k, Some(1));
        run_case::<f64>(&mut report, "packed", gemm, m, n, k, Some(1));
    } else {
        // Naive is only affordable at small sizes; it anchors the scale.
        run_case::<f64>(&mut report, "naive", gemm_naive, 256, 256, 256, Some(1));

        // Square regime (single-thread head-to-head, then auto threads).
        for &s in &[256usize, 512, 1024] {
            run_case::<f64>(&mut report, "unpacked", gemm_unpacked, s, s, s, Some(1));
            run_case::<f64>(&mut report, "packed", gemm, s, s, s, Some(1));
        }
        run_case::<f64>(&mut report, "packed", gemm, 1024, 1024, 1024, None);

        // Flat / skinny-k regime (2048×2048×64) and k-dominant regime
        // (64×64×4096): the paper's Table 1 extremes.
        for &(m, n, k) in &[(2048usize, 2048usize, 64usize), (64, 64, 4096)] {
            run_case::<f64>(&mut report, "unpacked", gemm_unpacked, m, n, k, Some(1));
            run_case::<f64>(&mut report, "packed", gemm, m, n, k, Some(1));
        }

        // f32 instantiation of the same microkernel.
        run_case::<f32>(
            &mut report,
            "unpacked",
            gemm_unpacked,
            512,
            512,
            512,
            Some(1),
        );
        run_case::<f32>(&mut report, "packed", gemm, 512, 512, 512, Some(1));
    }

    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench JSON: {e}"),
    }
}
