//! Local GEMM kernel throughput (the role MKL plays in the artifact).

use bench::timing::bench_throughput;
use dense::gemm::{gemm, GemmOp};
use dense::random::random_mat;
use dense::Mat;

fn main() {
    println!("local_gemm (f64)");
    for &(m, n, k) in &[
        (256usize, 256usize, 256usize),
        (512, 512, 512),
        (64, 64, 4096),
        (2048, 2048, 64),
    ] {
        let a = random_mat::<f64>(m, k, 1);
        let b = random_mat::<f64>(k, n, 2);
        let flops = (2 * m * n * k) as f64;
        bench_throughput(&format!("{m}x{n}x{k}"), flops, || {
            let mut cm = Mat::<f64>::zeros(m, n);
            gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut cm);
            std::hint::black_box(&cm);
        });
    }
}
