//! Collective-operation throughput of the `msgpass` runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msgpass::collectives::{allgather, allreduce, alltoallv, reduce_scatter};
use msgpass::{Comm, World};

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_p8");
    group.sample_size(10);
    let p = 8usize;
    let n = 1 << 14; // elements per rank

    group.bench_function(BenchmarkId::new("allgather", n), |b| {
        b.iter(|| {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                allgather(&comm, ctx, vec![comm.rank() as f64; n])
            })
        })
    });
    group.bench_function(BenchmarkId::new("reduce_scatter", n), |b| {
        b.iter(|| {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                let counts = vec![n; p];
                reduce_scatter(&comm, ctx, vec![1.0f64; n * p], &counts)
            })
        })
    });
    group.bench_function(BenchmarkId::new("allreduce", n), |b| {
        b.iter(|| {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                allreduce(&comm, ctx, vec![1.0f64; n])
            })
        })
    });
    group.bench_function(BenchmarkId::new("alltoallv", n), |b| {
        b.iter(|| {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                let sends: Vec<Vec<f64>> = (0..p).map(|_| vec![0.0f64; n / p]).collect();
                alltoallv(&comm, ctx, sends)
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
