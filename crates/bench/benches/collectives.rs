//! Collective-operation throughput of the `msgpass` runtime.

use bench::timing::{bench, BenchReport};
use msgpass::collectives::{allgather, allreduce, alltoallv, reduce_scatter};
use msgpass::{Comm, World};

fn main() {
    let p = 8usize;
    let n = 1 << 14; // elements per rank
    println!("collectives at P = {p}, {n} f64 elements per rank");
    let mut report = BenchReport::new("collectives");

    let s = bench("allgather", || {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            allgather(&comm, ctx, vec![comm.rank() as f64; n])
        });
    });
    report.push("allgather", s);
    let s = bench("reduce_scatter", || {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let counts = vec![n; p];
            reduce_scatter(&comm, ctx, vec![1.0f64; n * p], &counts)
        });
    });
    report.push("reduce_scatter", s);
    let s = bench("allreduce", || {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            allreduce(&comm, ctx, vec![1.0f64; n])
        });
    });
    report.push("allreduce", s);
    let s = bench("alltoallv", || {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let sends: Vec<Vec<f64>> = (0..p).map(|_| vec![0.0f64; n / p]).collect();
            alltoallv(&comm, ctx, sends)
        });
    });
    report.push("alltoallv", s);

    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench JSON: {e}"),
    }
}
