//! Collective-operation throughput of the `msgpass` runtime.

use bench::timing::bench;
use msgpass::collectives::{allgather, allreduce, alltoallv, reduce_scatter};
use msgpass::{Comm, World};

fn main() {
    let p = 8usize;
    let n = 1 << 14; // elements per rank
    println!("collectives at P = {p}, {n} f64 elements per rank");

    bench("allgather", || {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            allgather(&comm, ctx, vec![comm.rank() as f64; n])
        });
    });
    bench("reduce_scatter", || {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let counts = vec![n; p];
            reduce_scatter(&comm, ctx, vec![1.0f64; n * p], &counts)
        });
    });
    bench("allreduce", || {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            allreduce(&comm, ctx, vec![1.0f64; n])
        });
    });
    bench("alltoallv", || {
        World::run(p, |ctx| {
            let comm = Comm::world(ctx);
            let sends: Vec<Vec<f64>> = (0..p).map(|_| vec![0.0f64; n / p]).collect();
            alltoallv(&comm, ctx, sends)
        });
    });
}
