//! Grid-search and plan-construction cost. The paper (§III-F): "In any
//! practical case, the cost of the enumeration is less than 1% of the
//! actual parallel matrix multiplication time." The `ca3dmm/` and `cosma/`
//! entries time the bare search at the paper's largest scale (P = 3072);
//! compare against the multiply times in Table II (hundreds of
//! milliseconds to seconds).
//!
//! The `plan_build/` entries time the *full* serving plan — grid search
//! plus the three redistribution programs (`ca3dmm::Plan::build`) — at
//! daemon scale. This is exactly what `ca3dmm-serve`'s LRU plan cache
//! amortizes: a cache hit replaces this entire cost with a map lookup, so
//! these numbers bound the per-request saving a repeated-shape stream sees.

use bench::timing::{bench, BenchReport};
use ca3dmm::{Ca3dmmOptions, Dtype, Plan};
use dense::gemm::GemmOp;
use gridopt::{ca3dmm_grid, cosma_grid, Problem, DEFAULT_UTILIZATION_FLOOR};
use layout::Layout;

fn main() {
    println!("grid_search at P = 3072");
    let mut report = BenchReport::new("grid_search");
    let shapes = [
        ("square", 50_000usize, 50_000usize, 50_000usize),
        ("large-K", 6_000, 6_000, 1_200_000),
        ("flat", 100_000, 100_000, 5_000),
    ];
    for (name, m, n, k) in shapes {
        let prob = Problem::new(m, n, k, 3072);
        let label = format!("ca3dmm/{name}");
        let s = bench(&label, || {
            std::hint::black_box(ca3dmm_grid(&prob, DEFAULT_UTILIZATION_FLOOR));
        });
        report.push(&label, s);
        let label = format!("cosma/{name}");
        let s = bench(&label, || {
            std::hint::black_box(cosma_grid(&prob, DEFAULT_UTILIZATION_FLOOR));
        });
        report.push(&label, s);
    }

    let p = 64;
    println!("plan_build (search + redistribution programs) at P = {p}");
    let plan_shapes = [
        ("square", 4096usize, 4096usize, 4096usize),
        ("large-K", 512, 512, 65_536),
        ("flat", 8192, 8192, 256),
    ];
    for (name, m, n, k) in plan_shapes {
        let prob = Problem::new(m, n, k, p);
        let la = Layout::one_d_col(m, k, p);
        let lb = Layout::one_d_col(k, n, p);
        let lc = Layout::one_d_col(m, n, p);
        let label = format!("plan_build/{name}-p{p}");
        let s = bench(&label, || {
            std::hint::black_box(Plan::build(
                prob,
                &Ca3dmmOptions::default(),
                Dtype::F64,
                GemmOp::NoTrans,
                &la,
                GemmOp::NoTrans,
                &lb,
                &lc,
            ));
        });
        report.push(&label, s);
    }

    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench JSON: {e}"),
    }
}
