//! Grid-search cost. The paper (§III-F): "In any practical case, the cost
//! of the enumeration is less than 1% of the actual parallel matrix
//! multiplication time." These benches time the search at the paper's
//! largest scale (P = 3072); compare against the multiply times in
//! Table II (hundreds of milliseconds to seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridopt::{ca3dmm_grid, cosma_grid, Problem, DEFAULT_UTILIZATION_FLOOR};

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_search_p3072");
    let shapes = [
        ("square", 50_000usize, 50_000usize, 50_000usize),
        ("large-K", 6_000, 6_000, 1_200_000),
        ("flat", 100_000, 100_000, 5_000),
    ];
    for (name, m, n, k) in shapes {
        let prob = Problem::new(m, n, k, 3072);
        group.bench_function(BenchmarkId::new("ca3dmm", name), |b| {
            b.iter(|| ca3dmm_grid(&prob, DEFAULT_UTILIZATION_FLOOR))
        });
        group.bench_function(BenchmarkId::new("cosma", name), |b| {
            b.iter(|| cosma_grid(&prob, DEFAULT_UTILIZATION_FLOOR))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
