//! Grid-search cost. The paper (§III-F): "In any practical case, the cost
//! of the enumeration is less than 1% of the actual parallel matrix
//! multiplication time." These benches time the search at the paper's
//! largest scale (P = 3072); compare against the multiply times in
//! Table II (hundreds of milliseconds to seconds).

use bench::timing::{bench, BenchReport};
use gridopt::{ca3dmm_grid, cosma_grid, Problem, DEFAULT_UTILIZATION_FLOOR};

fn main() {
    println!("grid_search at P = 3072");
    let mut report = BenchReport::new("grid_search");
    let shapes = [
        ("square", 50_000usize, 50_000usize, 50_000usize),
        ("large-K", 6_000, 6_000, 1_200_000),
        ("flat", 100_000, 100_000, 5_000),
    ];
    for (name, m, n, k) in shapes {
        let prob = Problem::new(m, n, k, 3072);
        let label = format!("ca3dmm/{name}");
        let s = bench(&label, || {
            std::hint::black_box(ca3dmm_grid(&prob, DEFAULT_UTILIZATION_FLOOR));
        });
        report.push(&label, s);
        let label = format!("cosma/{name}");
        let s = bench(&label, || {
            std::hint::black_box(cosma_grid(&prob, DEFAULT_UTILIZATION_FLOOR));
        });
        report.push(&label, s);
    }
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench JSON: {e}"),
    }
}
