//! Property tests for the two-level node-aware collectives: on ANY topology
//! — uneven node sizes, non-power-of-two leader counts, single-rank nodes,
//! subgroup communicators whose members straddle nodes arbitrarily — the
//! hierarchical algorithms must return bitwise-identical results to the
//! flat ones they replace. Reductions use integer-valued `f64` payloads so
//! a different association order could not hide behind rounding: any
//! deviation changes bits.
//!
//! A final (non-property) test pins the leader-ring inter-node traffic of
//! the virtual-time simulator to the closed form the `netmodel` phases
//! price: `(L − 1) · total` bytes across the wire for both the allgather
//! and the reduce-scatter, where `L` is the node count.

use msgpass::collectives::{
    allgatherv, allgatherv_hier, allreduce, allreduce_hier, bcast_large, bcast_large_hier,
    node_map, reduce_scatter, reduce_scatter_hier,
};
use msgpass::world::RunOptions;
use msgpass::{Comm, SimOptions, World};
use netmodel::machine::Placement;
use netmodel::Machine;
use proptest::prelude::*;

/// Wall-clock run options carrying a node layout.
fn topo(rpn: usize) -> RunOptions {
    RunOptions {
        ranks_per_node: Some(rpn),
        ..RunOptions::default()
    }
}

/// Deterministic per-rank counts from a seed: 0..=3 elements each, so empty
/// contributions and uneven segments both occur.
fn counts_from_seed(seed: u64, p: usize) -> Vec<usize> {
    (0..p)
        .map(|r| ((seed >> (2 * (r % 32))) & 3) as usize)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// allgatherv: hier == flat on the world communicator. `p` need not
    /// divide by `rpn` (the last node is short), `rpn = 1` exercises the
    /// all-singleton flat fallback, and `rpn >= p` the single-node one.
    #[test]
    fn hier_allgatherv_matches_flat(
        p in 2usize..12,
        rpn in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let counts = counts_from_seed(seed, p);
        World::run_opts(p, topo(rpn), |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let mine: Vec<u64> =
                (0..counts[me]).map(|i| (me * 100 + i) as u64).collect();
            let flat = allgatherv(&comm, ctx, mine.clone(), &counts);
            let hier = allgatherv_hier(&comm, ctx, mine, &counts);
            assert_eq!(flat, hier, "p={p} rpn={rpn} seed={seed:#x}");
        });
    }

    /// reduce_scatter: hier pre-reduces on leaders, so its association
    /// order differs from the flat ring's — integer-valued f64 makes the
    /// comparison exact anyway.
    #[test]
    fn hier_reduce_scatter_matches_flat(
        p in 2usize..12,
        rpn in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let counts = counts_from_seed(seed, p);
        let total: usize = counts.iter().sum();
        World::run_opts(p, topo(rpn), |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let data: Vec<f64> =
                (0..total).map(|i| ((me + 1) * (i + 1)) as f64).collect();
            let flat = reduce_scatter(&comm, ctx, data.clone(), &counts);
            let hier = reduce_scatter_hier(&comm, ctx, data, &counts);
            assert_eq!(flat, hier, "p={p} rpn={rpn} seed={seed:#x}");
        });
    }

    /// bcast_large from every-other root: the two-level tree must deliver
    /// the same buffer the flat scatter+allgather does, including roots
    /// that are not their node's leader.
    #[test]
    fn hier_bcast_large_matches_flat(
        p in 2usize..12,
        rpn in 1usize..6,
        len in 0usize..40,
        root in 0u64..u64::MAX,
    ) {
        let root = (root as usize) % p;
        World::run_opts(p, topo(rpn), |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let payload: Vec<u64> = (0..len).map(|i| (root * 1000 + i) as u64).collect();
            let flat = bcast_large(&comm, ctx, root, (me == root).then(|| payload.clone()), len);
            let hier =
                bcast_large_hier(&comm, ctx, root, (me == root).then(|| payload.clone()), len);
            assert_eq!(flat, payload);
            assert_eq!(hier, payload, "p={p} rpn={rpn} root={root} len={len}");
        });
    }

    /// allreduce equivalence, again with integer-valued f64.
    #[test]
    fn hier_allreduce_matches_flat(
        p in 2usize..12,
        rpn in 1usize..6,
        len in 1usize..16,
    ) {
        World::run_opts(p, topo(rpn), |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let data: Vec<f64> = (0..len).map(|i| ((me + 2) * (i + 1)) as f64).collect();
            let flat = allreduce(&comm, ctx, data.clone());
            let hier = allreduce_hier(&comm, ctx, data);
            assert_eq!(flat, hier, "p={p} rpn={rpn} len={len}");
        });
    }

    /// Subgroup communicators: pick a seed-driven subset of the world (at
    /// least 2 ranks) so node membership inside the subgroup is arbitrary —
    /// leaders need not be node-aligned with the world, nodes can hold 1
    /// member, and the leader count is whatever the subset happens to span.
    #[test]
    fn hier_matches_flat_on_subgroups(
        p in 3usize..12,
        rpn in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let mut members: Vec<usize> =
            (0..p).filter(|r| (seed >> (r % 64)) & 1 == 1).collect();
        if members.len() < 2 {
            members = vec![0, p - 1];
        }
        let counts: Vec<usize> = members
            .iter()
            .map(|&r| ((seed >> ((2 * r + 1) % 64)) & 3) as usize)
            .collect();
        let groups = vec![members.clone()];
        World::run_opts(p, topo(rpn), |ctx| {
            let comm = Comm::world(ctx);
            let Some(sub) = comm.subgroup(ctx, &groups) else {
                return;
            };
            let me = sub.rank();
            let mine: Vec<u64> = (0..counts[me]).map(|i| (me * 10 + i) as u64).collect();
            let flat = allgatherv(&sub, ctx, mine.clone(), &counts);
            let hier = allgatherv_hier(&sub, ctx, mine, &counts);
            assert_eq!(flat, hier, "p={p} rpn={rpn} members={members:?}");

            let total: usize = counts.iter().sum();
            let data: Vec<f64> = (0..total).map(|i| ((me + 1) * (i + 3)) as f64).collect();
            let flat = reduce_scatter(&sub, ctx, data.clone(), &counts);
            let hier = reduce_scatter_hier(&sub, ctx, data, &counts);
            assert_eq!(flat, hier, "p={p} rpn={rpn} members={members:?}");
        });
    }
}

/// The leader ring is the only inter-node traffic the hierarchical
/// collectives generate, and its volume has a closed form: over the whole
/// communicator, `(L − 1) · total` bytes cross node boundaries — each of
/// the `L` leaders ships `L − 1` node blocks of `total / L` bytes. This is
/// exactly what the `netmodel` hier phases charge, and the virtual-time
/// simulator must measure it to the byte.
#[test]
fn sim_leader_hop_bytes_match_closed_form() {
    let machine = Machine::phoenix_cpu();
    let (p, rpn, seg) = (12usize, 3usize, 16usize); // 4 nodes x 3 members
    let placement = Placement {
        ranks_per_node: rpn,
        ..machine.pure_mpi()
    };
    let opts = || SimOptions {
        placement: Some(placement),
        execute_compute: false,
        ..Default::default()
    };
    let inter_bytes = |report: &msgpass::RunReport| -> u64 {
        let mut total = 0;
        for src in 0..p {
            for dst in 0..p {
                if src / rpn != dst / rpn {
                    total += report.traffic.matrix.sent(src, dst).bytes;
                }
            }
        }
        total
    };
    let counts = vec![seg; p];
    let total_bytes = (p * seg * std::mem::size_of::<u64>()) as u64;
    let nodes = (p / rpn) as u64;

    let (_, report) = World::run_sim(p, &machine, opts(), |ctx| {
        let comm = Comm::world(ctx);
        assert!(node_map(&comm, ctx).is_some(), "topology must engage");
        let mine: Vec<u64> = vec![comm.rank() as u64; seg];
        let _ = allgatherv_hier(&comm, ctx, mine, &counts);
    });
    assert_eq!(
        inter_bytes(&report),
        (nodes - 1) * total_bytes,
        "allgather leader-hop bytes"
    );

    let (_, report) = World::run_sim(p, &machine, opts(), |ctx| {
        let comm = Comm::world(ctx);
        let data: Vec<u64> = (0..p * seg).map(|i| i as u64).collect();
        let _ = reduce_scatter_hier(&comm, ctx, data, &counts);
    });
    assert_eq!(
        inter_bytes(&report),
        (nodes - 1) * total_bytes,
        "reduce-scatter leader-hop bytes"
    );
}
