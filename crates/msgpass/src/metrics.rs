//! Metric value types for the traffic layer: log2 message-size histograms
//! and the rank×rank communication matrix.
//!
//! Both are deterministic functions of the algorithm and problem (unlike
//! wall times), which is what lets the `report-gate` CI mode compare them
//! *exactly* against a committed reference report.

use std::fmt::Write as _;

/// Number of log2 size buckets: bucket 0 holds zero-byte messages, bucket
/// `k ≥ 1` holds sizes in `[2^(k-1), 2^k)`, so bucket 64 holds
/// `[2^63, u64::MAX]` and the buckets partition `u64` exactly.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index a message of `size` bytes falls into.
///
/// `0 → 0`, otherwise `floor(log2(size)) + 1`. Every `u64` maps to exactly
/// one bucket (pinned by a property test).
#[inline]
pub fn size_bucket(size: u64) -> usize {
    if size == 0 {
        0
    } else {
        64 - size.leading_zeros() as usize
    }
}

/// Human label for a bucket: the inclusive size range it covers.
pub fn bucket_label(bucket: usize) -> String {
    assert!(bucket < HIST_BUCKETS, "bucket {bucket} out of range");
    match bucket {
        0 => "0 B".to_owned(),
        1 => "1 B".to_owned(),
        64 => format!("≥ {}", fmt_bytes(1u64 << 63)),
        k => format!(
            "{}–{}",
            fmt_bytes(1u64 << (k - 1)),
            fmt_bytes((1u64 << k) - 1)
        ),
    }
}

/// Formats a byte count with a binary-prefix unit.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} {}", UNITS[0])
    } else if v >= 100.0 {
        format!("{v:.0} {}", UNITS[u])
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// A log2 message-size histogram: counts per bucket plus running totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SizeHistogram {
    counts: Vec<u64>,
    /// Total messages recorded (= sum of bucket counts).
    pub msgs: u64,
    /// Total payload bytes recorded.
    pub bytes: u64,
}

impl SizeHistogram {
    /// An empty histogram.
    pub fn new() -> SizeHistogram {
        SizeHistogram::default()
    }

    /// Records one message of `size` bytes.
    pub fn record(&mut self, size: u64) {
        let b = size_bucket(size);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.msgs += 1;
        self.bytes += size;
    }

    /// Rebuilds a histogram from sparse `(bucket, count)` pairs plus the
    /// byte total (the JSON wire form). Fails on out-of-range or duplicate
    /// buckets; `msgs` is recomputed as the sum of counts.
    pub fn from_parts(buckets: &[(usize, u64)], bytes: u64) -> Result<SizeHistogram, String> {
        let mut h = SizeHistogram::new();
        for &(b, c) in buckets {
            if b >= HIST_BUCKETS {
                return Err(format!(
                    "bucket {b} out of range (max {})",
                    HIST_BUCKETS - 1
                ));
            }
            if h.counts.len() <= b {
                h.counts.resize(b + 1, 0);
            }
            if h.counts[b] != 0 {
                return Err(format!("bucket {b} appears twice"));
            }
            h.counts[b] = c;
            h.msgs += c;
        }
        h.bytes = bytes;
        Ok(h)
    }

    /// Count in one bucket (0 for buckets never touched).
    pub fn count(&self, bucket: usize) -> u64 {
        self.counts.get(bucket).copied().unwrap_or(0)
    }

    /// Non-empty `(bucket, count)` pairs in bucket order.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }

    /// Accumulates `other` into this histogram.
    pub fn merge(&mut self, other: &SizeHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (b, &c) in other.counts.iter().enumerate() {
            self.counts[b] += c;
        }
        self.msgs += other.msgs;
        self.bytes += other.bytes;
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.msgs == 0
    }

    /// Renders the histogram as horizontal bars, one line per non-empty
    /// bucket, `width` characters for the largest count.
    pub fn render_bars(&self, width: usize) -> String {
        let nz = self.nonzero();
        let max = nz.iter().map(|&(_, c)| c).max().unwrap_or(1);
        let mut out = String::new();
        for (b, c) in nz {
            let bar = (c as f64 / max as f64 * width as f64).ceil() as usize;
            let _ = writeln!(
                out,
                "  {:<16} {:>8}  {}",
                bucket_label(b),
                c,
                "#".repeat(bar.max(1))
            );
        }
        out
    }
}

/// One direction's counters between a pair of ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellCounts {
    /// Payload bytes.
    pub bytes: u64,
    /// Message count.
    pub msgs: u64,
}

impl CellCounts {
    /// Accumulates another cell into this one.
    pub fn add(&mut self, other: CellCounts) {
        self.bytes += other.bytes;
        self.msgs += other.msgs;
    }
}

/// The rank×rank communication matrix of one run, recorded on both sides:
/// `send[src][dst]` is what rank `src` pushed toward `dst` (counted at send
/// time by the sender), `recv[dst][src]` is what rank `dst` actually
/// matched from `src` (counted at `recv` time by the receiver). The two
/// agree for every message that was both sent and consumed; a message still
/// in a mailbox when its rank exits appears on the send side only.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommMatrix {
    p: usize,
    /// Row-major `p×p`: `send[src * p + dst]`.
    send: Vec<CellCounts>,
    /// Row-major `p×p`: `recv[dst * p + src]`.
    recv: Vec<CellCounts>,
}

impl CommMatrix {
    /// An all-zero matrix for `p` ranks.
    pub fn new(p: usize) -> CommMatrix {
        CommMatrix {
            p,
            send: vec![CellCounts::default(); p * p],
            recv: vec![CellCounts::default(); p * p],
        }
    }

    /// World size.
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// Rebuilds a matrix from four `p×p` grids (the JSON wire form):
    /// send bytes/msgs indexed `[src][dst]`, recv bytes/msgs indexed
    /// `[dst][src]`. All four grids must be square and the same size
    /// (callers validate shapes when parsing).
    pub fn from_grids(
        send_bytes: &[Vec<u64>],
        send_msgs: &[Vec<u64>],
        recv_bytes: &[Vec<u64>],
        recv_msgs: &[Vec<u64>],
    ) -> CommMatrix {
        let p = send_bytes.len();
        assert!(
            [send_msgs.len(), recv_bytes.len(), recv_msgs.len()] == [p, p, p],
            "matrix grids disagree on rank count"
        );
        let mut m = CommMatrix::new(p);
        for i in 0..p {
            for j in 0..p {
                m.send[i * p + j] = CellCounts {
                    bytes: send_bytes[i][j],
                    msgs: send_msgs[i][j],
                };
                m.recv[i * p + j] = CellCounts {
                    bytes: recv_bytes[i][j],
                    msgs: recv_msgs[i][j],
                };
            }
        }
        m
    }

    /// Rebuilds a matrix from sparse cell lists (the schema-v2 JSON wire
    /// form): send entries are `(src, dst, counts)`, recv entries are
    /// `(dst, src, counts)`. Unlisted cells are zero. Callers validate that
    /// indices are in range when parsing.
    pub fn from_sparse(
        p: usize,
        send: &[(usize, usize, CellCounts)],
        recv: &[(usize, usize, CellCounts)],
    ) -> CommMatrix {
        let mut m = CommMatrix::new(p);
        for &(src, dst, c) in send {
            m.send[src * p + dst].add(c);
        }
        for &(dst, src, c) in recv {
            m.recv[dst * p + src].add(c);
        }
        m
    }

    /// Nonzero send-side cells in row-major `(src, dst, counts)` order.
    /// Cells that carried only zero-byte messages (barriers) still count —
    /// "nonzero" means any bytes *or* any messages. This is the sparse wire
    /// form: at p = 3072 the dense `p²` grids are ~75 MB of JSON while the
    /// populated cells are a few thousand rows.
    pub fn nonzero_send(&self) -> Vec<(usize, usize, CellCounts)> {
        self.nonzero(&self.send)
    }

    /// Nonzero recv-side cells in row-major `(dst, src, counts)` order.
    pub fn nonzero_recv(&self) -> Vec<(usize, usize, CellCounts)> {
        self.nonzero(&self.recv)
    }

    fn nonzero(&self, cells: &[CellCounts]) -> Vec<(usize, usize, CellCounts)> {
        cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.bytes > 0 || c.msgs > 0)
            .map(|(i, &c)| (i / self.p, i % self.p, c))
            .collect()
    }

    /// Send-side cell: what `src` sent toward `dst`.
    pub fn sent(&self, src: usize, dst: usize) -> CellCounts {
        self.send[src * self.p + dst]
    }

    /// Recv-side cell: what `dst` matched from `src`.
    pub fn received(&self, dst: usize, src: usize) -> CellCounts {
        self.recv[dst * self.p + src]
    }

    pub(crate) fn set_send_row(&mut self, src: usize, row: &[CellCounts]) {
        assert_eq!(row.len(), self.p);
        self.send[src * self.p..(src + 1) * self.p].copy_from_slice(row);
    }

    pub(crate) fn set_recv_row(&mut self, dst: usize, row: &[CellCounts]) {
        assert_eq!(row.len(), self.p);
        self.recv[dst * self.p..(dst + 1) * self.p].copy_from_slice(row);
    }

    /// Everything rank `src` sent, over all destinations.
    pub fn send_row_total(&self, src: usize) -> CellCounts {
        let mut t = CellCounts::default();
        for dst in 0..self.p {
            t.add(self.sent(src, dst));
        }
        t
    }

    /// Everything rank `dst` received, over all sources.
    pub fn recv_row_total(&self, dst: usize) -> CellCounts {
        let mut t = CellCounts::default();
        for src in 0..self.p {
            t.add(self.received(dst, src));
        }
        t
    }

    /// Send-side column total: bytes/msgs *destined for* `dst` as the
    /// senders counted them.
    pub fn send_col_total(&self, dst: usize) -> CellCounts {
        let mut t = CellCounts::default();
        for src in 0..self.p {
            t.add(self.sent(src, dst));
        }
        t
    }

    /// Renders a text heatmap of send-side bytes: rows are senders, columns
    /// receivers, shaded by bytes relative to the busiest cell.
    pub fn render_heatmap(&self) -> String {
        const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let max = (0..self.p * self.p)
            .map(|i| self.send[i].bytes)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  send-side bytes, row = src rank, col = dst rank (max cell {}):",
            fmt_bytes(max)
        );
        let _ = write!(out, "       ");
        for dst in 0..self.p {
            let _ = write!(out, "{:>3}", dst % 100);
        }
        out.push('\n');
        for src in 0..self.p {
            let _ = write!(out, "  {src:>4} ");
            for dst in 0..self.p {
                let b = self.sent(src, dst).bytes;
                let shade = if max == 0 || b == 0 {
                    SHADES[0]
                } else {
                    // Rank cells on a linear scale into the 9 non-blank
                    // shades; any nonzero cell gets at least the lightest.
                    let idx = (b as f64 / max as f64 * 9.0).ceil() as usize;
                    SHADES[idx.clamp(1, 9)]
                };
                let _ = write!(out, "  {shade}");
            }
            let row = self.send_row_total(src);
            let _ = writeln!(out, "   | {}", fmt_bytes(row.bytes));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_cells_round_trip() {
        let mut m = CommMatrix::new(4);
        m.set_send_row(
            1,
            &[
                CellCounts::default(),
                CellCounts::default(),
                CellCounts { bytes: 64, msgs: 2 },
                CellCounts { bytes: 0, msgs: 1 }, // zero-byte barrier msg
            ],
        );
        m.set_recv_row(
            2,
            &[
                CellCounts::default(),
                CellCounts { bytes: 64, msgs: 2 },
                CellCounts::default(),
                CellCounts::default(),
            ],
        );
        let send = m.nonzero_send();
        let recv = m.nonzero_recv();
        assert_eq!(send.len(), 2, "{send:?}");
        assert_eq!(send[0], (1, 2, CellCounts { bytes: 64, msgs: 2 }));
        assert_eq!(send[1], (1, 3, CellCounts { bytes: 0, msgs: 1 }));
        assert_eq!(recv, vec![(2, 1, CellCounts { bytes: 64, msgs: 2 })]);
        let back = CommMatrix::from_sparse(4, &send, &recv);
        assert_eq!(back, m);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 1);
        assert_eq!(size_bucket(2), 2);
        assert_eq!(size_bucket(3), 2);
        assert_eq!(size_bucket(4), 3);
        assert_eq!(size_bucket(1023), 10);
        assert_eq!(size_bucket(1024), 11);
        assert_eq!(size_bucket(u64::MAX), 64);
        assert_eq!(size_bucket(1u64 << 63), 64);
        assert_eq!(size_bucket((1u64 << 63) - 1), 63);
    }

    #[test]
    fn histogram_counts_and_merge() {
        let mut h = SizeHistogram::new();
        for s in [0u64, 1, 7, 8, 8, 1024] {
            h.record(s);
        }
        assert_eq!(h.msgs, 6);
        assert_eq!(h.bytes, 1 + 7 + 8 + 8 + 1024);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(3), 1); // 7 ∈ [4,8)
        assert_eq!(h.count(4), 2); // 8 ∈ [8,16)
        assert_eq!(h.count(11), 1); // 1024 ∈ [1024,2048)
        let total: u64 = h.nonzero().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.msgs);

        let mut h2 = SizeHistogram::new();
        h2.record(9);
        h2.merge(&h);
        assert_eq!(h2.msgs, 7);
        assert_eq!(h2.count(4), 3);
        assert!(h2.render_bars(20).contains('#'));
    }

    #[test]
    fn bucket_labels_cover_all() {
        for b in 0..HIST_BUCKETS {
            assert!(!bucket_label(b).is_empty());
        }
        assert_eq!(bucket_label(0), "0 B");
        assert_eq!(bucket_label(1), "1 B");
        assert_eq!(bucket_label(2), "2 B–3 B");
        assert!(bucket_label(11).starts_with("1.0 KiB"));
    }

    #[test]
    fn matrix_totals() {
        let mut m = CommMatrix::new(3);
        m.set_send_row(
            0,
            &[
                CellCounts::default(),
                CellCounts { bytes: 10, msgs: 1 },
                CellCounts { bytes: 20, msgs: 2 },
            ],
        );
        m.set_recv_row(
            1,
            &[
                CellCounts { bytes: 10, msgs: 1 },
                CellCounts::default(),
                CellCounts::default(),
            ],
        );
        assert_eq!(m.send_row_total(0), CellCounts { bytes: 30, msgs: 3 });
        assert_eq!(m.send_col_total(1), CellCounts { bytes: 10, msgs: 1 });
        assert_eq!(m.recv_row_total(1), CellCounts { bytes: 10, msgs: 1 });
        assert_eq!(m.recv_row_total(2), CellCounts::default());
        let map = m.render_heatmap();
        assert!(map.contains("row = src"));
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(800), "800 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert!(fmt_bytes(3 << 20).starts_with("3.0 MiB"));
    }
}
