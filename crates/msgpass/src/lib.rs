//! A message-passing runtime: the MPI substitute for the CA3DMM
//! reproduction.
//!
//! The paper's artifact is an MPI program. This crate provides the subset of
//! MPI the paper's Algorithm 1 needs, implemented from scratch on OS
//! threads:
//!
//! * [`World::run`] spawns `P` ranks as scoped threads and runs the same
//!   closure on each — the moral equivalent of `mpirun -np P`;
//! * [`Comm`] is a communicator: an ordered group of world ranks with its
//!   own isolated tag space, supporting [`Comm::split`] (like
//!   `MPI_Comm_split`) and [`Comm::subgroup`];
//! * point-to-point [`Comm::send`] / [`Comm::recv`] with `(source, tag)`
//!   matching and out-of-order buffering, plus [`Comm::sendrecv`] (the
//!   primitive behind Cannon's circular shifts);
//! * collectives built *algorithmically* on point-to-point, the way MPICH
//!   builds them (Thakur, Rabenseifner & Gropp — the paper's reference
//!   \[27\]): binomial-tree broadcast, recursive-doubling / ring allgather,
//!   ring reduce-scatter, Rabenseifner allreduce, pairwise alltoallv,
//!   dissemination barrier;
//! * [`traffic`]: every rank counts the bytes and messages it sends *and
//!   receives*, per named phase, plus a rank×rank communication matrix,
//!   log2 message-size histograms keyed by phase and by collective
//!   algorithm, and per-phase wait-time attribution (seconds blocked in
//!   `recv`). This is what lets the test suite assert that the *measured*
//!   communication volume of an algorithm equals the volume its analytic
//!   cost model predicts — the validation that licenses using the model at
//!   paper-scale process counts.
//! * [`report`]: a versioned `RunReport` JSON artifact
//!   ([`world::RunReport::to_json`]) with a parser, text dashboard,
//!   report-vs-report diff, and the exact/ratio regression gate CI runs.
//! * [`trace`]: structured event tracing. A traced run
//!   ([`World::run_traced`]) records begin/end spans for every phase
//!   region, point-to-point send/recv, and collective (with its algorithm
//!   name and payload size) and assembles them into a [`Timeline`]:
//!   exportable as Chrome-trace JSON ([`Timeline::to_chrome_json`], view in
//!   Perfetto) and analyzable with [`Timeline::critical_path`]. With
//!   tracing off ([`World::run`]) every hook is a single untaken branch.
//!
//! # Semantics
//!
//! Sends are *eager* (buffered, never block), so `sendrecv` pairs and shift
//! patterns cannot deadlock. Collectives must be invoked in the same order
//! by every member of a communicator, exactly as in MPI. A panic on any rank
//! propagates out of [`World::run`] and fails the test.
//!
//! This crate has no external dependencies (the channel underneath the
//! mailboxes is in [`mod@chan`]); it builds offline.

pub(crate) mod chan;
pub mod collectives;
pub mod comm;
pub mod metrics;
pub mod persist;
pub mod report;
pub mod sim;
pub mod trace;
pub mod traffic;
pub mod world;

pub use comm::{Comm, Payload, RecvReq, ReduceElem, SendReq};
pub use metrics::{CellCounts, CommMatrix, SizeHistogram};
pub use persist::{JobPanic, PersistentWorld};
pub use report::{GatePolicy, ReportDiff, RunReportDoc};
pub use sim::{SimInfo, SimOptions};
pub use trace::{CriticalPathReport, KernelSpan, PhaseCritical, Span, SpanKind, Timeline};
pub use traffic::{PhaseCounts, TrafficReport};
pub use world::{ComputeProfile, RankCtx, RunOptions, RunReport, World};

/// Locks a mutex, recovering the data if a panicking rank poisoned it (the
/// original panic is what should surface, not a secondary `PoisonError`).
pub(crate) fn lock_mutex<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
