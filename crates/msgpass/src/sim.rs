//! Virtual-time execution: the same rank closures [`crate::World::run`]
//! executes on OS threads, re-timed under a [`netmodel::Machine`] instead of
//! the wall clock.
//!
//! # How it works
//!
//! [`crate::World::run_sim`] spawns the `p` rank threads exactly as a wall
//! run does — the program under test is *executed*, not interpreted — but
//! every rank carries a **virtual clock** (seconds since run start) that
//! advances only when the machine model says time passes:
//!
//! * every **send** is priced by the sender's **NIC pipe**: the transfer
//!   starts at `max(compute clock, NIC clock)`, takes `α + β·bytes` (intra-
//!   or inter-node α/β picked by the placement's node structure), and the
//!   message is stamped with its virtual **arrival time** (the pipe's clock
//!   after the charge). Back-to-back nonblocking sends therefore serialize
//!   on the pipe — overlap cannot fabricate bandwidth. A blocking
//!   [`crate::Comm::send`] additionally advances the compute clock to the
//!   arrival (so for blocking-only programs NIC clock ≡ compute clock and
//!   the charging rule is exactly the historical `α + β·bytes` per send);
//!   a nonblocking [`crate::Comm::isend`] leaves the compute clock alone;
//! * **recv** completes at `max(receiver clock, arrival)`; the excess over
//!   the receiver's clock is recorded as that rank's *virtual* blocked time
//!   (the wall seconds the thread spends parked on its mailbox are
//!   meaningless — the OS interleaves thousands of rank threads);
//! * a **posted receive** ([`crate::Comm::irecv`]) charges nothing at post
//!   time; its `wait` applies the same `max(clock, arrival)` rule *then*.
//!   Compute charged between post and wait therefore hides the transfer:
//!   an overlapped round costs `max(compute, communication)`, not the sum —
//!   the §III-F pipelining rule, and exactly what the cost model's
//!   `overlap: true` branch prices;
//! * **compute** is charged explicitly: the dense-GEMM call sites invoke
//!   [`crate::RankCtx::charge_flops`], which advances the clock by
//!   `flops / flops_per_rank` (γ). When [`SimOptions::execute_compute`] is
//!   false the arithmetic itself is skipped entirely, so paper-scale runs
//!   cost seconds instead of hours;
//! * everything else (local bookkeeping, buffer packing, rank arithmetic)
//!   is **free** — virtual time models the network and the GEMM rate only.
//!
//! Collectives need no special handling: every collective in this runtime is
//! built algorithmically on the same send/recv primitives, so their virtual
//! cost emerges from the messages they actually exchange.
//!
//! # Determinism
//!
//! Virtual timestamps are bit-reproducible regardless of how the OS
//! schedules the threads: each rank's clocks (compute and NIC) are touched
//! only by its own thread in program order; arrival stamps are computed by
//! the sender before the message enters the fabric; message matching is
//! keyed by exact `(source, communicator, tag)` with same-key messages
//! consumed in per-sender program order (`Envelope::seq`), and posted
//! receives match in posting order. `RecvReq::test` deliberately degrades
//! to `wait` under simulation — a genuine poll would leak the OS schedule
//! into virtual time. Two runs with the same program, machine, and
//! placement therefore produce byte-identical `RunReport` artifacts.
//!
//! For the same reason, virtual-time runs never capture `dense::prof`
//! kernel profiles even when `DENSE_GEMM_PROF` is set: the profiler
//! timestamps the wall clock, which simulation makes meaningless (and it
//! would break the byte-identical-artifact guarantee). The `compute` block
//! of a sim report is always absent.

use crate::world::{RunOptions, RunReport, World};
use crate::RankCtx;
use netmodel::{Machine, Placement};
use std::sync::Arc;

/// Options for [`World::run_sim`].
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// How virtual ranks map onto nodes (and the per-rank GEMM rate). When
    /// `None`, the machine's pure-MPI placement (one rank per core) is used.
    pub placement: Option<Placement>,
    /// Actually perform local GEMMs (so results are numerically checkable).
    /// Set to `false` for paper-scale runs where only the timing and
    /// traffic matter: the virtual γ·flops charge is identical either way,
    /// but the real arithmetic is skipped.
    pub execute_compute: bool,
    /// Stack size per rank thread — see [`RunOptions::stack_size`].
    pub stack_size: usize,
    /// Kernel threads per rank for executed GEMMs — see
    /// [`RunOptions::kernel_threads_per_rank`].
    pub kernel_threads_per_rank: Option<usize>,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            placement: None,
            execute_compute: true,
            stack_size: RunOptions::DEFAULT_STACK_SIZE,
            kernel_threads_per_rank: None,
        }
    }
}

/// What a virtual-time run ran on — embedded in the [`RunReport`] (and its
/// schema-v2 JSON `sim` block) so downstream tooling can re-price the
/// analytic model on the same machine.
#[derive(Clone, Debug)]
pub struct SimInfo {
    /// The machine model the run was charged against.
    pub machine: Machine,
    /// The rank→node placement used.
    pub placement: Placement,
    /// Whether local GEMMs were actually executed.
    pub execute_compute: bool,
    /// Virtual makespan: the largest rank clock at rank exit, seconds.
    pub makespan_secs: f64,
}

/// Resolved per-run charging parameters, shared by every rank. Scalars only:
/// α/β are pre-resolved to one intra-node and one inter-node pair so the
/// per-message charge is a branch and a multiply-add, even at p = 3072.
pub(crate) struct SimParams {
    pub(crate) machine: Machine,
    pub(crate) placement: Placement,
    pub(crate) execute_compute: bool,
    alpha_intra: f64,
    alpha_inter: f64,
    beta_intra: f64,
    /// Inverse inter-node bandwidth at the placement's full link share
    /// (`ranks_per_node` concurrent senders — the steady state of the bulk
    /// phases this backend exists to time).
    beta_inter: f64,
    ranks_per_node: usize,
}

impl SimParams {
    pub(crate) fn new(machine: &Machine, placement: Placement, execute_compute: bool) -> SimParams {
        let rpn = placement.ranks_per_node.max(1);
        SimParams {
            alpha_intra: machine.alpha_intra,
            alpha_inter: machine.alpha_inter,
            beta_intra: machine.beta_intra,
            beta_inter: machine.beta_inter(rpn as f64),
            ranks_per_node: rpn,
            machine: machine.clone(),
            placement,
            execute_compute,
        }
    }

    /// Ranks per node of the sim placement (≥ 1) — the node layout exposed
    /// to the topology-aware collectives via [`crate::RankCtx`].
    pub(crate) fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// α + β·bytes for one message between two world ranks, α/β picked by
    /// whether the placement puts them on the same node.
    pub(crate) fn transfer_secs(&self, src_world: usize, dst_world: usize, bytes: u64) -> f64 {
        if src_world / self.ranks_per_node == dst_world / self.ranks_per_node {
            self.alpha_intra + self.beta_intra * bytes as f64
        } else {
            self.alpha_inter + self.beta_inter * bytes as f64
        }
    }

    /// γ: seconds of local compute for `flops` floating-point operations.
    pub(crate) fn compute_secs(&self, flops: f64) -> f64 {
        flops / self.placement.flops_per_rank
    }
}

impl World {
    /// Runs `f` on `p` *virtual* ranks under `machine`, charging virtual
    /// time for every message and every [`RankCtx::charge_flops`] call; the
    /// returned [`RunReport`] carries phase times, wait attribution, and
    /// critical path in **virtual seconds** (`RunReport::sim` is set, and
    /// the JSON artifact says `"time_domain": "virtual"`).
    ///
    /// The closure is the *same* closure a wall-clock [`World::run`] takes;
    /// programs need no changes beyond routing their GEMM calls through
    /// [`RankCtx::charge_flops`] / [`RankCtx::executes_compute`] if they
    /// want compute charged (communication-only programs need nothing).
    pub fn run_sim<R, F>(p: usize, machine: &Machine, opts: SimOptions, f: F) -> (Vec<R>, RunReport)
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        let placement = opts.placement.unwrap_or_else(|| machine.pure_mpi());
        let params = Arc::new(SimParams::new(machine, placement, opts.execute_compute));
        let run_opts = RunOptions {
            trace: false,
            kernel_threads_per_rank: opts.kernel_threads_per_rank,
            stack_size: opts.stack_size,
            // Redundant with the sim params (which win in run_inner), but
            // keeps the options self-describing.
            ranks_per_node: Some(placement.ranks_per_node),
        };
        World::run_inner(p, run_opts, Some(params), f)
    }
}
