//! The world: rank spawning, mailboxes, and the shared fabric.

use crate::comm::Envelope;
use crate::traffic::{RankTraffic, TrafficReport};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Shared, immutable-after-construction communication fabric: one inbound
/// channel per rank plus the traffic accumulators.
pub(crate) struct Fabric {
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) traffic: Vec<RankTraffic>,
    pub(crate) times: Vec<Mutex<BTreeMap<String, f64>>>,
}

/// Everything one rank's thread needs: its identity, its mailbox, and the
/// fabric. All communication operations take `&RankCtx`; the mutable pieces
/// (pending-message buffer, current phase) live in cells because a rank is
/// single-threaded by construction.
pub struct RankCtx {
    world_rank: usize,
    world_size: usize,
    pub(crate) fabric: Arc<Fabric>,
    pub(crate) rx: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv`.
    pub(crate) pending: RefCell<Vec<Envelope>>,
    /// Label attributed to outgoing traffic.
    phase: RefCell<String>,
    /// Wall-clock of the current phase's start (for the per-phase timing
    /// report).
    phase_started: Cell<Instant>,
    /// Monotonic counter used to derive child communicator contexts.
    pub(crate) ctx_seq: Cell<u64>,
}

impl RankCtx {
    /// This rank's index in the world, `0..world_size`.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Number of ranks in the world (the paper's `P`, i.e. `mpirun -np P`).
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Sets the phase label attributed to subsequent sends (for the traffic
    /// report) and to wall time (for the per-phase timing report). Phases
    /// are free-form; algorithms use names like `"replicate_ab"`,
    /// `"cannon_shift"`, `"reduce_c"`, `"redist"`.
    pub fn set_phase(&self, phase: &str) {
        self.flush_phase_time();
        *self.phase.borrow_mut() = phase.to_owned();
    }

    /// Accumulates elapsed wall time into the current phase and restarts
    /// the phase clock. Called on phase switches and at rank exit.
    fn flush_phase_time(&self) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.phase_started.replace(now)).as_secs_f64();
        let label = self.phase.borrow().clone();
        if !label.is_empty() {
            *self.fabric.times[self.world_rank]
                .lock()
                .entry(label)
                .or_insert(0.0) += elapsed;
        }
    }

    /// The current phase label.
    pub fn phase(&self) -> String {
        self.phase.borrow().clone()
    }

    pub(crate) fn record_send(&self, bytes: u64) {
        self.fabric.traffic[self.world_rank].record(&self.phase.borrow(), bytes);
    }
}

/// The `mpirun` of this runtime.
pub struct World;

impl World {
    /// Runs `f` on `p` ranks (threads) and returns the per-rank results in
    /// rank order. Panics on any rank propagate.
    pub fn run<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        Self::run_traced(p, f).0
    }

    /// Like [`World::run`] but also returns the traffic report.
    pub fn run_traced<R, F>(p: usize, f: F) -> (Vec<R>, TrafficReport)
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        assert!(p > 0, "world size must be positive");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let fabric = Arc::new(Fabric {
            senders,
            traffic: (0..p).map(|_| RankTraffic::default()).collect(),
            times: (0..p).map(|_| Mutex::new(BTreeMap::new())).collect(),
        });

        let results: Vec<R> = std::thread::scope(|s| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let fabric = Arc::clone(&fabric);
                    let f = &f;
                    s.spawn(move || {
                        let ctx = RankCtx {
                            world_rank: rank,
                            world_size: p,
                            fabric,
                            rx,
                            pending: RefCell::new(Vec::new()),
                            phase: RefCell::new(String::new()),
                            phase_started: Cell::new(Instant::now()),
                            ctx_seq: Cell::new(0),
                        };
                        let out = f(&ctx);
                        ctx.flush_phase_time();
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(r) => r,
                    Err(e) => {
                        let msg = e
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| e.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!("rank {rank} panicked: {msg}")
                    }
                })
                .collect()
        });

        let report = TrafficReport {
            per_rank: fabric
                .traffic
                .iter()
                .map(|t| t.by_phase.lock().clone())
                .collect(),
            secs_per_rank: fabric.times.iter().map(|t| t.lock().clone()).collect(),
        };
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_identity() {
        let ids = World::run(4, |ctx| (ctx.world_rank(), ctx.world_size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |ctx| ctx.world_rank() + 100);
        assert_eq!(out, vec![100]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_propagates() {
        World::run(4, |ctx| {
            if ctx.world_rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_world_rejected() {
        World::run(0, |_| ());
    }

    #[test]
    fn phase_label_round_trip() {
        World::run(1, |ctx| {
            assert_eq!(ctx.phase(), "");
            ctx.set_phase("cannon_shift");
            assert_eq!(ctx.phase(), "cannon_shift");
        });
    }
}
