//! The world: rank spawning, mailboxes, the shared fabric, and run reports.

use crate::chan::{channel, Receiver, Sender};
use crate::comm::{Envelope, PostedRecv};
use crate::lock_mutex;
use crate::metrics::{CommMatrix, SizeHistogram};
use crate::sim::{SimInfo, SimParams};
use crate::trace::{RawEvent, Recorder, SpanKind, Timeline};
use crate::traffic::{RankTraffic, TrafficReport};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shared, immutable-after-construction communication fabric: one inbound
/// channel per rank plus the traffic accumulators and the trace epoch.
pub(crate) struct Fabric {
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) traffic: Vec<RankTraffic>,
    pub(crate) times: Vec<Mutex<BTreeMap<String, f64>>>,
}

impl Fabric {
    /// A fresh `p`-rank fabric plus each rank's receiving end. One fabric
    /// serves exactly one run (its traffic counters become that run's
    /// report), so persistent worlds build a new one per job.
    pub(crate) fn new(p: usize) -> (Arc<Fabric>, Vec<Receiver<Envelope>>) {
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let fabric = Arc::new(Fabric {
            senders,
            traffic: (0..p).map(|_| RankTraffic::new(p)).collect(),
            times: (0..p).map(|_| Mutex::new(BTreeMap::new())).collect(),
        });
        (fabric, receivers)
    }
}

/// Options for [`World::run_opts`].
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Record a begin/end event for every phase region, point-to-point
    /// send/recv, and collective, and assemble them into
    /// [`RunReport::timeline`]. Off by default: with tracing disabled every
    /// hook is a single branch on a `bool`, so untraced runs pay no
    /// measurable overhead.
    pub trace: bool,
    /// Kernel threads each rank may use for local GEMM calls. Defaults to
    /// `dense::pool::rank_threads_for(p)` — the process-wide budget split
    /// evenly across the `p` ranks (min 1) — so running 16 ranks on a
    /// 16-core host gives every rank one kernel thread instead of 16 ranks
    /// × 16 threads of oversubscription.
    pub kernel_threads_per_rank: Option<usize>,
    /// Stack size of each rank thread, bytes. The platform default (often
    /// 8 MiB) would reserve gigabytes of address space at the virtual-rank
    /// counts the sim backend runs (p = 3072 ⇒ 24 GiB), so rank threads use
    /// a small explicit stack instead; rank closures keep bulk data on the
    /// heap (`Mat`, `Vec`), so [`RunOptions::DEFAULT_STACK_SIZE`] is ample.
    pub stack_size: usize,
    /// Node topology for wall-clock runs: ranks per node under the block
    /// mapping (`node = world_rank / ranks_per_node`). `None` means the
    /// machine layout is unknown, so topology-aware collectives stay on
    /// their flat paths. Virtual-time runs ignore this — the sim's
    /// [`crate::sim::SimOptions::placement`] is authoritative there.
    pub ranks_per_node: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            trace: false,
            kernel_threads_per_rank: None,
            stack_size: RunOptions::DEFAULT_STACK_SIZE,
            ranks_per_node: None,
        }
    }
}

impl RunOptions {
    /// Default per-rank stack: 1 MiB.
    pub const DEFAULT_STACK_SIZE: usize = 1 << 20;

    /// Options with event tracing enabled.
    pub fn traced() -> RunOptions {
        RunOptions {
            trace: true,
            ..RunOptions::default()
        }
    }
}

/// Everything a traced run measured: the per-phase traffic counters and
/// (when [`RunOptions::trace`] was set) the assembled event [`Timeline`].
///
/// Dereferences to [`TrafficReport`], so code written against the older
/// `(results, TrafficReport)` return type keeps working unchanged.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Per-rank, per-phase bytes/messages and seconds — wall seconds for
    /// ordinary runs, **virtual** seconds for [`World::run_sim`] runs.
    pub traffic: TrafficReport,
    /// Per-rank span timeline (empty unless tracing was enabled).
    pub timeline: Timeline,
    /// Set when this report came from a virtual-time run: the machine,
    /// placement, and virtual makespan. `None` means wall time.
    pub sim: Option<SimInfo>,
    /// Per-rank kernel profiles, captured when `dense` GEMM profiling
    /// (`DENSE_GEMM_PROF` / [`dense::prof::set_gemm_profiling`]) was enabled
    /// during a *wall-clock* run. Empty for unprofiled and virtual-time runs
    /// (virtual time makes wall-clock kernel spans meaningless, so sim runs
    /// never capture). Serialized as the schema-v3 `compute` block.
    pub compute: Vec<Option<ComputeProfile>>,
}

impl Deref for RunReport {
    type Target = TrafficReport;

    fn deref(&self) -> &TrafficReport {
        &self.traffic
    }
}

impl RunReport {
    /// Chrome-trace JSON with per-rank *kernel-thread* tracks merged under
    /// the comm timeline, so one Perfetto view shows communication and
    /// compute interleaved. Identical to `self.timeline.to_chrome_json()`
    /// when no rank captured a kernel profile.
    pub fn to_chrome_json(&self) -> String {
        let kernel: Vec<Vec<crate::trace::KernelSpan>> = (0..self.timeline.ranks())
            .map(|rank| {
                self.compute
                    .get(rank)
                    .and_then(Option::as_ref)
                    .map_or_else(Vec::new, ComputeProfile::kernel_spans)
            })
            .collect();
        self.timeline.to_chrome_json_with_kernel(&kernel)
    }
}

/// One rank's captured kernel profile, plus the offset rebasing its span
/// timestamps (nanoseconds since [`dense::prof::epoch`]) onto the run's own
/// epoch (the trace timeline's `t = 0`).
#[derive(Clone, Debug)]
pub struct ComputeProfile {
    /// The aggregated profile (see [`dense::prof::KernelProfile`]).
    pub profile: dense::prof::KernelProfile,
    /// Seconds to add to a span's `t_ns · 1e-9` to express it on the run
    /// epoch.
    pub epoch_offset_secs: f64,
}

impl ComputeProfile {
    /// The profile's retained spans rebased onto the run epoch, ready for
    /// [`Timeline::to_chrome_json_with_kernel`].
    pub fn kernel_spans(&self) -> Vec<crate::trace::KernelSpan> {
        self.profile
            .spans
            .iter()
            .map(|s| crate::trace::KernelSpan {
                thread: s.thread,
                label: s.phase.label(),
                t0: (s.t0_ns as f64 * 1e-9 + self.epoch_offset_secs).max(0.0),
                t1: (s.t1_ns as f64 * 1e-9 + self.epoch_offset_secs).max(0.0),
            })
            .collect()
    }
}

/// Everything one rank's thread needs: its identity, its mailbox, and the
/// fabric. All communication operations take `&RankCtx`; the mutable pieces
/// (pending-message buffer, current phase, trace recorder) live in cells
/// because a rank is single-threaded by construction.
pub struct RankCtx {
    world_rank: usize,
    world_size: usize,
    pub(crate) fabric: Arc<Fabric>,
    pub(crate) rx: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv`.
    pub(crate) pending: RefCell<Vec<Envelope>>,
    /// Nonblocking receives posted by `irecv` and not yet completed by
    /// `wait`/`test`. Invariant: `pending` never holds a message whose
    /// `(src, ctx, tag)` key matches an open (unfilled) entry here — every
    /// arrival is offered to the earliest-posted open entry first.
    pub(crate) posted: RefCell<Vec<PostedRecv>>,
    /// Monotonic counter stamping posting order onto [`PostedRecv::id`] —
    /// MPI's rule that arrivals match posted receives in posting order.
    post_seq: Cell<u64>,
    /// Label attributed to outgoing traffic.
    phase: RefCell<String>,
    /// Wall-clock of the current phase's start (for the per-phase timing
    /// report).
    phase_started: Cell<Instant>,
    /// Virtual-time charging parameters (`None` in wall-clock runs, where
    /// every sim hook reduces to an untaken branch).
    sim: Option<Arc<SimParams>>,
    /// This rank's virtual clock, seconds since run start (sim runs only).
    clock: Cell<f64>,
    /// Virtual time at which this rank's NIC injection pipe frees up (sim
    /// runs only). Sends serialize on the pipe — an `isend` issued while an
    /// earlier transfer is still draining starts when that transfer ends —
    /// but, unlike the compute clock, posting one does not stall the rank.
    nic_clock: Cell<f64>,
    /// Virtual clock at the current phase's start (sim runs only).
    phase_started_v: Cell<f64>,
    /// Monotonic per-rank send counter; stamps [`Envelope::seq`] so
    /// same-key message matching has an explicit program-order tie-break.
    send_seq: Cell<u64>,
    /// Monotonic counter used to derive child communicator contexts.
    pub(crate) ctx_seq: Cell<u64>,
    /// Per-rank trace event recorder (no-op unless the run is traced).
    pub(crate) recorder: Recorder,
    /// The collective algorithm currently executing on this rank (None for
    /// bare point-to-point traffic). Keys the per-algorithm size histograms
    /// to the path the collective actually took.
    coll: Cell<Option<&'static str>>,
    /// Ranks per node under the block mapping, when the machine layout is
    /// known (from the sim placement, or [`RunOptions::ranks_per_node`] in
    /// wall runs). Drives the two-level collective selection.
    topo_rpn: Option<usize>,
}

impl RankCtx {
    /// Builds one rank's context for one run (or one persistent-world job).
    /// `epoch` is the shared trace origin; `sim` carries the virtual-time
    /// parameters (`None` for wall clock).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fresh(
        rank: usize,
        p: usize,
        fabric: Arc<Fabric>,
        rx: Receiver<Envelope>,
        sim: Option<Arc<SimParams>>,
        trace: bool,
        epoch: Instant,
        topo_rpn: Option<usize>,
    ) -> RankCtx {
        RankCtx {
            world_rank: rank,
            world_size: p,
            fabric,
            rx,
            pending: RefCell::new(Vec::new()),
            posted: RefCell::new(Vec::new()),
            post_seq: Cell::new(0),
            phase: RefCell::new(String::new()),
            phase_started: Cell::new(Instant::now()),
            sim,
            clock: Cell::new(0.0),
            nic_clock: Cell::new(0.0),
            phase_started_v: Cell::new(0.0),
            send_seq: Cell::new(0),
            ctx_seq: Cell::new(0),
            recorder: Recorder::new(trace, epoch),
            coll: Cell::new(None),
            topo_rpn,
        }
    }

    /// This rank's index in the world, `0..world_size`.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Number of ranks in the world (the paper's `P`, i.e. `mpirun -np P`).
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Sets the phase label attributed to subsequent sends (for the traffic
    /// report), to wall time (for the per-phase timing report), and to the
    /// trace timeline. Phases are free-form; algorithms use names like
    /// `"replicate_ab"`, `"cannon_shift"`, `"reduce_c"`, `"redist"`.
    ///
    /// The traffic clock and the trace span share one timestamp, so
    /// [`Timeline::phase_secs`] and [`TrafficReport::phase_secs`] agree
    /// exactly (up to float rounding).
    pub fn set_phase(&self, phase: &str) {
        let now = Instant::now();
        self.flush_phase_time(now);
        if self.recorder.enabled() {
            if !self.phase.borrow().is_empty() {
                self.recorder.end_at(now, 0);
            }
            if !phase.is_empty() {
                self.recorder
                    .begin_at(now, SpanKind::Phase(phase.to_owned()), 0);
            }
        }
        *self.phase.borrow_mut() = phase.to_owned();
    }

    /// Accumulates elapsed time into the current phase and restarts the
    /// phase clock. Called on phase switches and at rank exit. Wall runs
    /// use the monotonic clock; sim runs use the rank's virtual clock, so
    /// the per-phase seconds report is in the run's own time domain.
    fn flush_phase_time(&self, now: Instant) {
        let elapsed = if self.sim.is_some() {
            let c = self.clock.get();
            c - self.phase_started_v.replace(c)
        } else {
            now.duration_since(self.phase_started.replace(now))
                .as_secs_f64()
        };
        let label = self.phase.borrow().clone();
        if !label.is_empty() {
            *lock_mutex(&self.fabric.times[self.world_rank])
                .entry(label)
                .or_insert(0.0) += elapsed;
        }
    }

    /// Final bookkeeping when the rank's closure returns: closes the open
    /// phase (clock and trace span) and hands back the raw event stream.
    pub(crate) fn finish(&self) -> Vec<RawEvent> {
        assert!(
            self.posted.borrow().is_empty(),
            "rank {} exited with {} posted receive(s) never waited on",
            self.world_rank,
            self.posted.borrow().len()
        );
        let now = Instant::now();
        self.flush_phase_time(now);
        if self.recorder.enabled() && !self.phase.borrow().is_empty() {
            self.recorder.end_at(now, 0);
        }
        self.recorder.take()
    }

    /// The current phase label.
    pub fn phase(&self) -> String {
        self.phase.borrow().clone()
    }

    /// True when this rank runs under virtual time ([`World::run_sim`]).
    pub fn is_sim(&self) -> bool {
        self.sim.is_some()
    }

    /// Ranks per node under the block mapping (`node = world_rank /
    /// ranks_per_node`), when the run knows its machine layout: virtual-time
    /// runs take it from the sim placement, wall runs from
    /// [`RunOptions::ranks_per_node`]. `None` means no topology is attached
    /// and topology-aware collectives must fall back to their flat paths.
    pub fn ranks_per_node(&self) -> Option<usize> {
        self.topo_rpn.filter(|&rpn| rpn >= 1)
    }

    /// Node index of a world rank under the block mapping, when topology is
    /// known.
    pub fn node_of(&self, world_rank: usize) -> Option<usize> {
        self.ranks_per_node().map(|rpn| world_rank / rpn)
    }

    /// Raw virtual clock value (0.0 in wall-clock runs) — report plumbing.
    pub(crate) fn clock_secs(&self) -> f64 {
        self.clock.get()
    }

    /// This rank's virtual clock, seconds since run start. `None` in
    /// wall-clock runs.
    pub fn virtual_secs(&self) -> Option<f64> {
        self.sim.as_ref().map(|_| self.clock.get())
    }

    /// Charges `flops` floating-point operations of local compute to this
    /// rank's virtual clock (γ·flops). A no-op in wall-clock runs, where
    /// compute costs what it costs. Compute-heavy call sites (the dense
    /// GEMM path) call this *instead of* doing the arithmetic when
    /// [`RankCtx::executes_compute`] is false.
    pub fn charge_flops(&self, flops: f64) {
        if let Some(sim) = &self.sim {
            self.clock.set(self.clock.get() + sim.compute_secs(flops));
        }
    }

    /// Whether compute kernels should actually run. Always true in
    /// wall-clock runs; in sim runs it follows
    /// [`crate::sim::SimOptions::execute_compute`].
    pub fn executes_compute(&self) -> bool {
        self.sim.as_ref().is_none_or(|s| s.execute_compute)
    }

    /// Stamps one *blocking* outgoing message: like [`RankCtx::stamp_isend`]
    /// but the sender's compute clock also advances to the arrival time —
    /// the rank stands still for the α + β·bytes transfer. Because the NIC
    /// pipe and the compute clock coincide whenever only blocking sends are
    /// used, this is exactly the pre-nonblocking charging rule for programs
    /// that never call `isend`.
    pub(crate) fn stamp_send(&self, dst_world: usize, bytes: u64) -> (f64, u64) {
        let (arrival, seq) = self.stamp_isend(dst_world, bytes);
        if self.sim.is_some() {
            self.clock.set(arrival);
        }
        (arrival, seq)
    }

    /// Stamps one *nonblocking* outgoing message: bumps the per-rank send
    /// sequence and, under virtual time, schedules the transfer on the
    /// rank's NIC injection pipe — it starts at `max(clock, nic_clock)`,
    /// occupies the pipe for α + β·bytes, and the returned arrival is when
    /// it lands at the receiver. The compute clock is *not* advanced: the
    /// rank keeps computing while the transfer drains, which is the whole
    /// point of §III-F overlap. Wall runs return arrival 0.0.
    pub(crate) fn stamp_isend(&self, dst_world: usize, bytes: u64) -> (f64, u64) {
        let seq = self.send_seq.get();
        self.send_seq.set(seq + 1);
        let arrival = match &self.sim {
            Some(sim) => {
                let start = self.clock.get().max(self.nic_clock.get());
                let t = start + sim.transfer_secs(self.world_rank, dst_world, bytes);
                self.nic_clock.set(t);
                t
            }
            None => 0.0,
        };
        (arrival, seq)
    }

    /// Reserves the next posting-order id for an `irecv`.
    pub(crate) fn next_post_id(&self) -> u64 {
        let id = self.post_seq.get();
        self.post_seq.set(id + 1);
        id
    }

    /// Virtual-time rendezvous for a matched message: the recv completes at
    /// `max(own clock, arrival)`; advances the clock there and returns the
    /// virtual seconds this rank was blocked. `None` in wall-clock runs.
    pub(crate) fn virtual_recv_wait(&self, arrival: f64) -> Option<f64> {
        self.sim.as_ref()?;
        let now = self.clock.get();
        let done = now.max(arrival);
        self.clock.set(done);
        Some(done - now)
    }

    pub(crate) fn record_send(&self, dst_world: usize, bytes: u64) {
        self.fabric.traffic[self.world_rank].record_send(
            &self.phase.borrow(),
            self.coll.get(),
            dst_world,
            bytes,
        );
    }

    pub(crate) fn record_recv(&self, src_world: usize, bytes: u64, wait_secs: f64) {
        self.fabric.traffic[self.world_rank].record_recv(
            &self.phase.borrow(),
            src_world,
            bytes,
            wait_secs,
        );
    }

    /// Marks `algo` as the collective running on this rank until the guard
    /// drops (restoring the previous marker, so a collective built on
    /// another collective attributes traffic to the *innermost* algorithm —
    /// the path actually taken). Also opens a trace span; the payload-size
    /// closure is evaluated only when tracing is on.
    pub(crate) fn collective_scope(
        &self,
        algo: &'static str,
        bytes: impl FnOnce() -> u64,
    ) -> CollectiveScope<'_> {
        if self.recorder.enabled() {
            self.recorder.begin(SpanKind::Collective(algo), bytes());
        }
        CollectiveScope {
            ctx: self,
            prev: self.coll.replace(Some(algo)),
        }
    }

    /// The rank's trace recorder (for internal instrumentation hooks).
    pub(crate) fn tracer(&self) -> &Recorder {
        &self.recorder
    }
}

/// RAII scope for one collective call: restores the previous algorithm
/// marker and closes the trace span on drop.
pub(crate) struct CollectiveScope<'a> {
    ctx: &'a RankCtx,
    prev: Option<&'static str>,
}

impl Drop for CollectiveScope<'_> {
    fn drop(&mut self) {
        self.ctx.coll.set(self.prev);
        self.ctx.recorder.end(0);
    }
}

/// The `mpirun` of this runtime.
pub struct World;

impl World {
    /// Runs `f` on `p` ranks (threads) and returns the per-rank results in
    /// rank order. Panics on any rank propagate. Tracing is off: the
    /// instrumentation hooks reduce to an untaken branch each.
    pub fn run<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        Self::run_opts(p, RunOptions::default(), f).0
    }

    /// Like [`World::run`] but also returns the [`RunReport`] with the
    /// traffic counters *and* the event timeline (tracing enabled).
    pub fn run_traced<R, F>(p: usize, f: F) -> (Vec<R>, RunReport)
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        Self::run_opts(p, RunOptions::traced(), f)
    }

    /// The general entry point: runs `f` on `p` ranks under `opts`.
    pub fn run_opts<R, F>(p: usize, opts: RunOptions, f: F) -> (Vec<R>, RunReport)
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        Self::run_inner(p, opts, None, f)
    }

    /// Shared engine behind [`World::run_opts`] (wall time, `sim` = `None`)
    /// and [`World::run_sim`] (virtual time, `sim` = charging parameters).
    pub(crate) fn run_inner<R, F>(
        p: usize,
        opts: RunOptions,
        sim: Option<Arc<SimParams>>,
        f: F,
    ) -> (Vec<R>, RunReport)
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        assert!(p > 0, "world size must be positive");
        let (fabric, receivers) = Fabric::new(p);
        // One epoch for the whole world so per-rank timestamps are mutually
        // comparable in the merged timeline.
        let epoch = Instant::now();
        let kernel_threads = opts
            .kernel_threads_per_rank
            .map_or_else(|| dense::pool::rank_threads_for(p), |n| n.max(1));
        // Sim placement is authoritative when present: the collectives must
        // group ranks by the same node boundaries the sim charges β across.
        let topo_rpn = sim
            .as_ref()
            .map(|s| s.ranks_per_node())
            .or(opts.ranks_per_node);

        let mut results = Vec::with_capacity(p);
        let mut streams = Vec::with_capacity(p);
        let mut clocks = Vec::with_capacity(p);
        let mut profiles: Vec<Option<dense::prof::KernelProfile>> = Vec::with_capacity(p);
        std::thread::scope(|s| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let fabric = Arc::clone(&fabric);
                    let sim = sim.clone();
                    let f = &f;
                    std::thread::Builder::new()
                        .stack_size(opts.stack_size.max(64 * 1024))
                        .spawn_scoped(s, move || {
                            // Cap this rank's local-GEMM parallelism so the
                            // world's ranks together stay within the host's
                            // kernel-thread budget (the cap is thread-local
                            // and this thread is fresh, so it cannot leak).
                            dense::pool::set_rank_gemm_threads(Some(kernel_threads));
                            // Kernel profiling only makes sense on wall-clock
                            // runs: under virtual time the rank "compute" is
                            // charged on the sim clock, not executed at the
                            // profiled wall speed.
                            let prof_on = sim.is_none() && dense::prof::profiling_enabled();
                            if prof_on {
                                dense::prof::begin_capture();
                            }
                            let ctx = RankCtx::fresh(
                                rank, p, fabric, rx, sim, opts.trace, epoch, topo_rpn,
                            );
                            let out = f(&ctx);
                            let events = ctx.finish();
                            let profile = if prof_on {
                                dense::prof::end_capture()
                            } else {
                                None
                            };
                            (out, events, ctx.clock.get(), profile)
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((out, events, clock, profile)) => {
                        results.push(out);
                        streams.push(events);
                        clocks.push(clock);
                        profiles.push(profile);
                    }
                    Err(e) => {
                        let msg = e
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| e.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!("rank {rank} panicked: {msg}")
                    }
                }
            }
        });

        let report = assemble_report(&fabric, opts.trace, epoch, sim, streams, clocks, profiles);
        (results, report)
    }
}

/// Aggregates one run's fabric counters, raw trace streams, virtual clocks,
/// and kernel profiles into its [`RunReport`]. Shared by the scoped
/// [`World::run_inner`] and the job-based [`crate::persist::PersistentWorld`].
pub(crate) fn assemble_report(
    fabric: &Fabric,
    trace: bool,
    epoch: Instant,
    sim: Option<Arc<SimParams>>,
    streams: Vec<Vec<RawEvent>>,
    clocks: Vec<f64>,
    profiles: Vec<Option<dense::prof::KernelProfile>>,
) -> RunReport {
    let p = fabric.traffic.len();
    let mut per_rank = Vec::with_capacity(p);
    let mut wait_per_rank = Vec::with_capacity(p);
    let mut matrix = CommMatrix::new(p);
    let mut hist_by_phase: BTreeMap<String, SizeHistogram> = BTreeMap::new();
    let mut hist_by_algo: BTreeMap<String, SizeHistogram> = BTreeMap::new();
    for (rank, t) in fabric.traffic.iter().enumerate() {
        let st = lock_mutex(&t.stats);
        per_rank.push(st.by_phase.clone());
        wait_per_rank.push(st.wait_by_phase.clone());
        matrix.set_send_row(rank, &st.sent_to);
        matrix.set_recv_row(rank, &st.recv_from);
        for (k, h) in &st.hist_by_phase {
            hist_by_phase.entry(k.clone()).or_default().merge(h);
        }
        for (k, h) in &st.hist_by_algo {
            hist_by_algo.entry(k.clone()).or_default().merge(h);
        }
    }
    let traffic = TrafficReport {
        per_rank,
        secs_per_rank: fabric.times.iter().map(|t| lock_mutex(t).clone()).collect(),
        wait_per_rank,
        matrix,
        hist_by_phase,
        hist_by_algo,
    };
    let timeline = if trace {
        Timeline::from_raw(streams)
    } else {
        Timeline::empty(p)
    };
    let sim_info = sim.map(|params| SimInfo {
        machine: params.machine.clone(),
        placement: params.placement,
        execute_compute: params.execute_compute,
        makespan_secs: clocks.iter().copied().fold(0.0, f64::max),
    });
    let compute = if profiles.iter().any(Option::is_some) {
        // Rebase profiler timestamps (ns since the profiler's process-wide
        // epoch) onto this run's epoch. The profiler epoch may pre- or
        // post-date the run epoch depending on which was touched first.
        let prof_epoch = dense::prof::epoch();
        let offset = match epoch.checked_duration_since(prof_epoch) {
            Some(d) => -d.as_secs_f64(),
            None => prof_epoch.duration_since(epoch).as_secs_f64(),
        };
        profiles
            .into_iter()
            .map(|p| {
                p.map(|profile| ComputeProfile {
                    profile,
                    epoch_offset_secs: offset,
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    RunReport {
        traffic,
        timeline,
        sim: sim_info,
        compute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_identity() {
        let ids = World::run(4, |ctx| (ctx.world_rank(), ctx.world_size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |ctx| ctx.world_rank() + 100);
        assert_eq!(out, vec![100]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_propagates() {
        World::run(4, |ctx| {
            if ctx.world_rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_world_rejected() {
        World::run(0, |_| ());
    }

    #[test]
    fn ranks_get_an_even_kernel_thread_split() {
        // Default: the per-rank GEMM width is base/p (min 1), so p ranks
        // never ask for more kernel threads than the process budget.
        let widths = World::run(4, |_| dense::pool::gemm_threads());
        let expect = dense::pool::rank_threads_for(4);
        assert!(widths.iter().all(|&w| w == expect), "widths {widths:?}");

        // Explicit override wins.
        let opts = RunOptions {
            kernel_threads_per_rank: Some(2),
            ..RunOptions::default()
        };
        let (widths, _) = World::run_opts(3, opts, |_| dense::pool::gemm_threads());
        assert_eq!(widths, vec![2, 2, 2]);
    }

    #[test]
    fn phase_label_round_trip() {
        World::run(1, |ctx| {
            assert_eq!(ctx.phase(), "");
            ctx.set_phase("cannon_shift");
            assert_eq!(ctx.phase(), "cannon_shift");
        });
    }

    #[test]
    fn untraced_runs_have_empty_timelines() {
        let (_, report) = World::run_opts(3, RunOptions::default(), |ctx| {
            ctx.set_phase("work");
        });
        assert_eq!(report.timeline.ranks(), 3);
        assert!(report.timeline.is_empty());
        // the traffic side still sees the phase
        assert!(report.traffic.phase_secs(0, "work") >= 0.0);
    }

    #[test]
    fn traced_phase_spans_match_traffic_clock() {
        let (_, report) = World::run_traced(2, |ctx| {
            ctx.set_phase("alpha");
            std::thread::sleep(std::time::Duration::from_millis(5));
            ctx.set_phase("beta");
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        for rank in 0..2 {
            for phase in ["alpha", "beta"] {
                let from_trace = report.timeline.phase_secs(rank, phase);
                let from_clock = report.traffic.phase_secs(rank, phase);
                assert!(from_trace > 0.0, "rank {rank} {phase} span missing");
                assert!(
                    (from_trace - from_clock).abs() < 1e-6,
                    "rank {rank} {phase}: trace {from_trace} vs clock {from_clock}"
                );
            }
        }
        assert_eq!(
            report.timeline.phases(),
            vec!["alpha".to_owned(), "beta".to_owned()]
        );
    }

    #[test]
    fn run_report_derefs_to_traffic() {
        let (_, report) = World::run_traced(1, |ctx| {
            ctx.set_phase("only");
        });
        // methods resolved through Deref<Target = TrafficReport>
        assert_eq!(report.rank_total(0).msgs, 0);
        assert_eq!(report.phases(), vec!["only".to_owned()]);
    }
}
