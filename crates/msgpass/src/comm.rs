//! Communicators and point-to-point messaging.

use crate::trace::SpanKind;
use crate::world::RankCtx;
use std::any::Any;
use std::sync::Arc;

/// Anything that can travel in a message. The only requirement beyond
/// thread-safety is a byte size, which feeds the traffic counters (and,
/// transitively, the model-vs-measured validation tests).
pub trait Payload: Send + 'static {
    /// Wire size of this value in bytes.
    fn nbytes(&self) -> usize;
}

impl<T: Copy + Send + 'static> Payload for Vec<T> {
    fn nbytes(&self) -> usize {
        std::mem::size_of_val(self.as_slice())
    }
}

macro_rules! scalar_payload {
    ($($t:ty),*) => {$(
        impl Payload for $t {
            fn nbytes(&self) -> usize { std::mem::size_of::<$t>() }
        }
    )*};
}
scalar_payload!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    bool,
    ()
);

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes() + self.2.nbytes()
    }
}

/// Element type collectives can reduce: needs `+=` and a zero. Implemented
/// by `f32`/`f64` (and integers, used in tests).
pub trait ReduceElem: Copy + Send + Default + std::ops::AddAssign + 'static {}
impl<T: Copy + Send + Default + std::ops::AddAssign + 'static> ReduceElem for T {}

/// An in-flight message.
pub(crate) struct Envelope {
    pub(crate) src_world: usize,
    pub(crate) ctx: u64,
    pub(crate) tag: u64,
    /// Payload wire size, carried so the receiver's trace span can report
    /// how much data the matched message delivered.
    pub(crate) bytes: u64,
    /// Virtual arrival time (sender's clock after the α + β·bytes charge).
    /// 0.0 in wall-clock runs.
    pub(crate) arrival: f64,
    /// Sender's per-rank send sequence number: the explicit program-order
    /// tie-break when several same-`(src, ctx, tag)` messages are pending,
    /// which makes virtual-time matching deterministic under any OS
    /// thread interleaving.
    pub(crate) seq: u64,
    pub(crate) payload: Box<dyn Any + Send>,
}

/// One receive posted by [`Comm::irecv`] and not yet completed. Lives in
/// the rank's posted-receive table; an arriving message whose
/// `(src, ctx, tag)` key matches an *open* entry (slot empty) fills the
/// earliest-posted one — MPI's posting-order matching rule.
pub(crate) struct PostedRecv {
    pub(crate) src_world: usize,
    pub(crate) ctx: u64,
    pub(crate) tag: u64,
    /// Posting order (from `RankCtx::next_post_id`).
    pub(crate) id: u64,
    /// The matched message, once it has arrived.
    pub(crate) slot: Option<Envelope>,
}

/// SplitMix64 finalizer — used to derive child communicator contexts
/// deterministically (every member computes the same value with no
/// communication).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Highest tag value available to user point-to-point messages; larger tags
/// are reserved for collectives.
pub const MAX_USER_TAG: u64 = 1 << 40;

/// A communicator: an ordered group of world ranks with an isolated tag
/// space. Cheap to clone (the group is shared).
///
/// All operations take the rank's [`RankCtx`] explicitly — a rank may hold
/// any number of communicators simultaneously (row, column, k-task group, …)
/// exactly as an MPI process does.
#[derive(Clone)]
pub struct Comm {
    /// Context id: isolates this communicator's messages from all others.
    ctx_id: u64,
    /// World ranks of the members, in communicator rank order.
    ranks: Arc<Vec<usize>>,
    /// This rank's index within `ranks`.
    my_idx: usize,
    /// Per-communicator collective sequence number (same on all members
    /// because collectives are called in the same order).
    coll_seq: std::cell::Cell<u64>,
}

impl Comm {
    /// The communicator containing every rank of the world, in world order
    /// (`MPI_COMM_WORLD`).
    pub fn world(ctx: &RankCtx) -> Comm {
        Comm {
            ctx_id: mix(0x5EED_0001),
            ranks: Arc::new((0..ctx.world_size()).collect()),
            my_idx: ctx.world_rank(),
            coll_seq: std::cell::Cell::new(0),
        }
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.my_idx
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// World rank of member `idx`.
    pub fn world_rank_of(&self, idx: usize) -> usize {
        self.ranks[idx]
    }

    /// The members' world ranks in communicator order.
    pub fn world_ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Internal: reserve a tag for one collective operation.
    pub(crate) fn next_coll_tag(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        MAX_USER_TAG + s
    }

    /// Sends `payload` to communicator rank `dst` with `tag`
    /// (eager/non-blocking: never waits for the receiver).
    ///
    /// # Panics
    /// If `dst` is out of range or `tag >= MAX_USER_TAG`.
    pub fn send<P: Payload>(&self, ctx: &RankCtx, dst: usize, tag: u64, payload: P) {
        assert!(tag < MAX_USER_TAG, "tag {tag} reserved for collectives");
        self.send_internal(ctx, dst, tag, payload);
    }

    pub(crate) fn send_internal<P: Payload>(
        &self,
        ctx: &RankCtx,
        dst: usize,
        tag: u64,
        payload: P,
    ) {
        let dst_world = self.ranks[dst];
        let bytes = payload.nbytes() as u64;
        ctx.record_send(dst_world, bytes);
        ctx.tracer()
            .begin(SpanKind::Send { peer: dst_world }, bytes);
        // Under virtual time this charges the sender α + β·bytes and stamps
        // when the message lands; in wall runs it only bumps the sequence.
        let (arrival, seq) = ctx.stamp_send(dst_world, bytes);
        let env = Envelope {
            src_world: ctx.world_rank(),
            ctx: self.ctx_id,
            tag,
            bytes,
            arrival,
            seq,
            payload: Box::new(payload),
        };
        ctx.fabric.senders[dst_world]
            .send(env)
            .expect("receiving rank has exited with messages in flight");
        ctx.tracer().end(0);
    }

    /// Receives the message sent by communicator rank `src` with `tag`.
    /// Blocks until it arrives; out-of-order arrivals are buffered.
    ///
    /// # Panics
    /// If the matched message has a different payload type (a protocol bug).
    pub fn recv<P: Payload>(&self, ctx: &RankCtx, src: usize, tag: u64) -> P {
        assert!(tag < MAX_USER_TAG, "tag {tag} reserved for collectives");
        self.recv_internal(ctx, src, tag)
    }

    pub(crate) fn recv_internal<P: Payload>(&self, ctx: &RankCtx, src: usize, tag: u64) -> P {
        let src_world = self.ranks[src];
        // The recv span covers the whole match — including any blocking
        // wait, which is exactly the time the critical-path analysis needs.
        ctx.tracer().begin(SpanKind::Recv { peer: src_world }, 0);
        // First look in the pending buffer. Among several buffered messages
        // with the same (src, ctx, tag) key (e.g. ring-collective steps
        // racing ahead of a slow rank) the one with the smallest sender
        // sequence number wins — per-sender program order, the tie-break
        // that keeps virtual-time matching deterministic.
        {
            let mut pending = ctx.pending.borrow_mut();
            let pos = pending
                .iter()
                .enumerate()
                .filter(|(_, e)| e.src_world == src_world && e.ctx == self.ctx_id && e.tag == tag)
                .min_by_key(|(_, e)| e.seq)
                .map(|(i, _)| i);
            if let Some(pos) = pos {
                let env = pending.remove(pos);
                drop(pending);
                // A buffered message already arrived in wall time (zero
                // blocked seconds), but in virtual time the rendezvous rule
                // still applies: completion is max(clock, arrival).
                let wait = ctx.virtual_recv_wait(env.arrival).unwrap_or(0.0);
                ctx.record_recv(src_world, env.bytes, wait);
                ctx.tracer().end(env.bytes);
                return Self::downcast(env);
            }
        }
        if ctx.is_sim() {
            // Virtual time: the wall seconds this thread spends parked on
            // its mailbox are an artifact of OS scheduling (thousands of
            // rank threads share a few cores) and are discarded; blocked
            // time is computed from the clock rendezvous instead.
            loop {
                let env = ctx
                    .rx
                    .recv()
                    .expect("all senders dropped while waiting for a message");
                let Some(env) = offer_to_posted(ctx, env) else {
                    continue;
                };
                if env.src_world == src_world && env.ctx == self.ctx_id && env.tag == tag {
                    let waited = ctx.virtual_recv_wait(env.arrival).unwrap_or(0.0);
                    ctx.record_recv(src_world, env.bytes, waited);
                    ctx.tracer().end(env.bytes);
                    return Self::downcast(env);
                }
                ctx.pending.borrow_mut().push(env);
            }
        }
        // Then pull from the channel, buffering mismatches. All seconds this
        // call spends blocked on the mailbox — including waits that end in a
        // mismatch we buffer for a later recv — belong to *this* recv's wait
        // attribution: they are wall time this rank could not compute.
        let mut waited = 0.0;
        loop {
            let (env, wait) = ctx
                .rx
                .recv_timed()
                .expect("all senders dropped while waiting for a message");
            waited += wait;
            let Some(env) = offer_to_posted(ctx, env) else {
                continue;
            };
            if env.src_world == src_world && env.ctx == self.ctx_id && env.tag == tag {
                ctx.record_recv(src_world, env.bytes, waited);
                ctx.tracer().end(env.bytes);
                return Self::downcast(env);
            }
            ctx.pending.borrow_mut().push(env);
        }
    }

    fn downcast<P: Payload>(env: Envelope) -> P {
        match env.payload.downcast::<P>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "type confusion: message from world rank {} (ctx {:#x}, tag {}) is not a {}",
                env.src_world,
                env.ctx,
                env.tag,
                std::any::type_name::<P>()
            ),
        }
    }

    /// Simultaneous send to `dst` and receive from `src` (both communicator
    /// ranks) — `MPI_Sendrecv`. Safe against deadlock because sends are
    /// eager.
    pub fn sendrecv<P: Payload>(
        &self,
        ctx: &RankCtx,
        dst: usize,
        src: usize,
        tag: u64,
        payload: P,
    ) -> P {
        self.send(ctx, dst, tag, payload);
        self.recv(ctx, src, tag)
    }

    /// Nonblocking send to communicator rank `dst` — `MPI_Isend`. Sends in
    /// this runtime are eager (buffered by the receiver's mailbox), so the
    /// returned [`SendReq`] is complete the moment this returns; it exists
    /// so call sites keep MPI's post/overlap/wait shape. Under virtual time
    /// the transfer is scheduled on the sender's NIC injection pipe without
    /// advancing the compute clock — the sim counterpart of the copy
    /// proceeding in the background while the rank computes.
    ///
    /// # Panics
    /// If `dst` is out of range or `tag >= MAX_USER_TAG`.
    pub fn isend<P: Payload>(&self, ctx: &RankCtx, dst: usize, tag: u64, payload: P) -> SendReq {
        assert!(tag < MAX_USER_TAG, "tag {tag} reserved for collectives");
        let dst_world = self.ranks[dst];
        let bytes = payload.nbytes() as u64;
        ctx.record_send(dst_world, bytes);
        ctx.tracer()
            .begin(SpanKind::Send { peer: dst_world }, bytes);
        let (arrival, seq) = ctx.stamp_isend(dst_world, bytes);
        let env = Envelope {
            src_world: ctx.world_rank(),
            ctx: self.ctx_id,
            tag,
            bytes,
            arrival,
            seq,
            payload: Box::new(payload),
        };
        ctx.fabric.senders[dst_world]
            .send(env)
            .expect("receiving rank has exited with messages in flight");
        ctx.tracer().end(0);
        SendReq(())
    }

    /// Posts a nonblocking receive for the message from communicator rank
    /// `src` with `tag` — `MPI_Irecv`. The receive may be posted before or
    /// after the message arrives; arrivals match open posted receives in
    /// posting order (per-sender program order breaks same-key ties, as for
    /// [`Comm::recv`]). Complete it with [`RecvReq::wait`] or
    /// [`RecvReq::test`].
    ///
    /// # Panics
    /// If `src` is out of range or `tag >= MAX_USER_TAG`.
    pub fn irecv<P: Payload>(&self, ctx: &RankCtx, src: usize, tag: u64) -> RecvReq<P> {
        assert!(tag < MAX_USER_TAG, "tag {tag} reserved for collectives");
        let src_world = self.ranks[src];
        let id = ctx.next_post_id();
        // Claim an already-buffered match now (smallest sender sequence),
        // so the pending buffer can never hold a message that an open
        // posted receive is waiting for.
        let slot = {
            let mut pending = ctx.pending.borrow_mut();
            pending
                .iter()
                .enumerate()
                .filter(|(_, e)| e.src_world == src_world && e.ctx == self.ctx_id && e.tag == tag)
                .min_by_key(|(_, e)| e.seq)
                .map(|(i, _)| i)
                .map(|i| pending.remove(i))
        };
        ctx.posted.borrow_mut().push(PostedRecv {
            src_world,
            ctx: self.ctx_id,
            tag,
            id,
            slot,
        });
        RecvReq {
            id,
            src_world,
            _payload: std::marker::PhantomData,
        }
    }

    /// Creates sub-communicators from locally known membership: every member
    /// of `self` must call this with the *same* `groups` (a partition or
    /// partial partition of communicator ranks). Returns this rank's new
    /// communicator, or `None` if it belongs to no group.
    ///
    /// No communication is needed because the membership is already global
    /// knowledge — this mirrors `MPI_Comm_create_group` usage in the paper's
    /// artifact where groups are pure rank arithmetic.
    ///
    /// # Panics
    /// If a rank appears twice or is out of range.
    pub fn subgroup(&self, ctx: &RankCtx, groups: &[Vec<usize>]) -> Option<Comm> {
        let seq = ctx.ctx_seq.get();
        ctx.ctx_seq.set(seq + 1);
        let mut seen = vec![false; self.size()];
        let mut mine = None;
        for (gi, group) in groups.iter().enumerate() {
            for (idx, &r) in group.iter().enumerate() {
                assert!(r < self.size(), "subgroup rank {r} out of range");
                assert!(!seen[r], "subgroup rank {r} appears twice");
                seen[r] = true;
                if r == self.my_idx {
                    mine = Some((gi, idx));
                }
            }
        }
        mine.map(|(gi, idx)| Comm {
            ctx_id: mix(self.ctx_id ^ mix((seq << 20) | (gi as u64 + 1))),
            ranks: Arc::new(groups[gi].iter().map(|&r| self.ranks[r]).collect()),
            my_idx: idx,
            coll_seq: std::cell::Cell::new(0),
        })
    }

    /// `MPI_Comm_split`: members pass a `color` (ranks with equal colors end
    /// up together, `None` opts out) and a `key` that orders ranks within
    /// each new communicator (ties broken by old rank). Collective over the
    /// communicator; costs one allgather.
    pub fn split(&self, ctx: &RankCtx, color: Option<u64>, key: u64) -> Option<Comm> {
        // Gather (color, key) from everyone. Encode None as u64::MAX.
        let mine = vec![color.unwrap_or(u64::MAX), key];
        let all = crate::collectives::allgather(self, ctx, mine);
        let seq = ctx.ctx_seq.get();
        ctx.ctx_seq.set(seq + 1);
        let my_color = color?;
        let mut members: Vec<(u64, usize)> = (0..self.size())
            .filter(|&r| all[2 * r] == my_color)
            .map(|r| (all[2 * r + 1], r))
            .collect();
        members.sort();
        let my_idx = members
            .iter()
            .position(|&(_, r)| r == self.my_idx)
            .expect("caller must be in its own color group");
        Some(Comm {
            ctx_id: mix(self.ctx_id ^ mix((seq << 20) ^ my_color.wrapping_add(1))),
            ranks: Arc::new(members.iter().map(|&(_, r)| self.ranks[r]).collect()),
            my_idx,
            coll_seq: std::cell::Cell::new(0),
        })
    }
}

/// Offers a message just pulled off the mailbox to the posted-receive
/// table: the earliest-posted *open* entry with a matching key claims it
/// (returning `None`); otherwise the message is handed back to the caller.
fn offer_to_posted(ctx: &RankCtx, env: Envelope) -> Option<Envelope> {
    let mut posted = ctx.posted.borrow_mut();
    let hit = posted
        .iter_mut()
        .filter(|p| {
            p.slot.is_none() && p.src_world == env.src_world && p.ctx == env.ctx && p.tag == env.tag
        })
        .min_by_key(|p| p.id);
    match hit {
        Some(p) => {
            p.slot = Some(env);
            None
        }
        None => Some(env),
    }
}

/// Handle for a nonblocking send ([`Comm::isend`]). Sends are eager in this
/// runtime, so the request is complete from the moment `isend` returns —
/// `wait` costs nothing and `test` is always true. The handle keeps call
/// sites shaped like their MPI originals (post, overlap, wait).
#[must_use = "wait on the send request (or drop it explicitly)"]
pub struct SendReq(pub(crate) ());

impl SendReq {
    /// Completes the send. A no-op: eager sends are complete at post time.
    pub fn wait(self) {}

    /// Whether the send has completed. Always true (see [`SendReq`]).
    pub fn test(&self) -> bool {
        true
    }
}

/// Handle for a nonblocking receive ([`Comm::irecv`]): an entry in the
/// rank's posted-receive table. Complete it with [`RecvReq::wait`] (blocks
/// for the residual only — time the overlapped compute did not hide) or
/// poll it with [`RecvReq::test`]. Every posted receive must eventually be
/// completed; a rank exiting with open posted receives panics.
#[must_use = "a posted receive must be completed with wait() or test()"]
pub struct RecvReq<P: Payload> {
    /// Posting-order id keying this request's table entry.
    id: u64,
    src_world: usize,
    _payload: std::marker::PhantomData<fn() -> P>,
}

impl<P: Payload> RecvReq<P> {
    /// Blocks until the posted receive completes and returns the payload.
    ///
    /// Wait attribution is the *residual*: only the seconds this call
    /// actually blocks count (wall runs: condvar-blocked time; sim runs:
    /// `max(clock, arrival) − clock`, i.e. the transfer time the compute
    /// issued between post and wait failed to hide). The trace records it
    /// as a `wait←src` span, distinct from a blocking `recv←src`.
    ///
    /// # Panics
    /// If the matched message has a different payload type.
    pub fn wait(self, ctx: &RankCtx) -> P {
        ctx.tracer().begin(
            SpanKind::Wait {
                peer: self.src_world,
            },
            0,
        );
        let mut waited = 0.0;
        let env = loop {
            if let Some(env) = self.take_if_filled(ctx) {
                break env;
            }
            if ctx.is_sim() {
                // Parked wall seconds are OS-scheduling noise under virtual
                // time (see `recv_internal`); blocked time comes from the
                // clock rendezvous below.
                let env = ctx
                    .rx
                    .recv()
                    .expect("all senders dropped while waiting for a posted receive");
                if let Some(env) = offer_to_posted(ctx, env) {
                    ctx.pending.borrow_mut().push(env);
                }
            } else {
                let (env, w) = ctx
                    .rx
                    .recv_timed()
                    .expect("all senders dropped while waiting for a posted receive");
                waited += w;
                if let Some(env) = offer_to_posted(ctx, env) {
                    ctx.pending.borrow_mut().push(env);
                }
            }
        };
        // Sim: completion is max(clock-at-wait, arrival) — compute issued
        // since the post has already advanced the clock, so only the
        // exposed remainder of the transfer is charged (and reported as
        // wait). Wall: the condvar-blocked residual accumulated above.
        let wait = ctx.virtual_recv_wait(env.arrival).unwrap_or(waited);
        ctx.record_recv(self.src_world, env.bytes, wait);
        ctx.tracer().end(env.bytes);
        Comm::downcast(env)
    }

    /// Polls the posted receive: `Ok(payload)` if it can complete now,
    /// `Err(self)` otherwise (wall runs never block here beyond draining
    /// already-queued arrivals).
    ///
    /// Under virtual time `test` *completes like `wait`*: whether a message
    /// has physically arrived at some wall instant is OS-scheduling noise
    /// that must not leak into the deterministic virtual clock, so the sim
    /// answer to "is it done yet" is to advance to when it is done.
    pub fn test(self, ctx: &RankCtx) -> Result<P, RecvReq<P>> {
        if ctx.is_sim() {
            return Ok(self.wait(ctx));
        }
        loop {
            if let Some(env) = self.take_if_filled(ctx) {
                ctx.tracer().begin(
                    SpanKind::Wait {
                        peer: self.src_world,
                    },
                    0,
                );
                ctx.record_recv(self.src_world, env.bytes, 0.0);
                ctx.tracer().end(env.bytes);
                return Ok(Comm::downcast(env));
            }
            match ctx.rx.try_recv() {
                Ok(Some(env)) => {
                    if let Some(env) = offer_to_posted(ctx, env) {
                        ctx.pending.borrow_mut().push(env);
                    }
                }
                // Nothing queued (or all senders gone — the missing message
                // will surface as a panic in `wait`, not here).
                Ok(None) | Err(_) => return Err(self),
            }
        }
    }

    /// Removes this request's table entry and returns the message if the
    /// slot has been filled; leaves the entry in place otherwise.
    fn take_if_filled(&self, ctx: &RankCtx) -> Option<Envelope> {
        let mut posted = ctx.posted.borrow_mut();
        let i = posted
            .iter()
            .position(|p| p.id == self.id)
            .expect("posted receive vanished from the table");
        if posted[i].slot.is_some() {
            posted.remove(i).slot
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn ping_pong() {
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 0 {
                comm.send(ctx, 1, 7, vec![1.0f64, 2.0, 3.0]);
                let back: Vec<f64> = comm.recv(ctx, 1, 8);
                assert_eq!(back, vec![6.0]);
            } else {
                let v: Vec<f64> = comm.recv(ctx, 0, 7);
                comm.send(ctx, 0, 8, vec![v.iter().sum::<f64>()]);
            }
        });
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 0 {
                comm.send(ctx, 1, 1, 10u64);
                comm.send(ctx, 1, 2, 20u64);
                comm.send(ctx, 1, 3, 30u64);
            } else {
                // Receive in reverse order.
                assert_eq!(comm.recv::<u64>(ctx, 0, 3), 30);
                assert_eq!(comm.recv::<u64>(ctx, 0, 2), 20);
                assert_eq!(comm.recv::<u64>(ctx, 0, 1), 10);
            }
        });
    }

    #[test]
    fn sendrecv_ring_shift() {
        let vals = World::run(5, |ctx| {
            let comm = Comm::world(ctx);
            let p = comm.size();
            let me = comm.rank();
            // shift left: everyone passes its rank to (me-1)
            comm.sendrecv(ctx, (me + p - 1) % p, (me + 1) % p, 0, vec![me as u64])[0]
        });
        assert_eq!(vals, vec![1, 2, 3, 4, 0]);
    }

    #[test]
    fn traffic_counters_count_payload_bytes() {
        let (_, report) = World::run_traced(2, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("stage1");
            if comm.rank() == 0 {
                comm.send(ctx, 1, 0, vec![0.0f64; 100]);
            } else {
                let _: Vec<f64> = comm.recv(ctx, 0, 0);
            }
        });
        assert_eq!(report.phase(0, "stage1").bytes, 800);
        assert_eq!(report.phase(0, "stage1").msgs, 1);
        assert_eq!(report.rank_total(1).bytes, 0);
    }

    #[test]
    fn subgroup_even_odd() {
        World::run(6, |ctx| {
            let comm = Comm::world(ctx);
            let groups = vec![vec![0, 2, 4], vec![1, 3, 5]];
            let sub = comm.subgroup(ctx, &groups).unwrap();
            assert_eq!(sub.size(), 3);
            let expected_idx = comm.rank() / 2;
            assert_eq!(sub.rank(), expected_idx);
            // messages in the subgroup do not leak across groups: ring shift
            let me = sub.rank();
            let got = sub.sendrecv(ctx, (me + 1) % 3, (me + 2) % 3, 0, comm.rank() as u64);
            assert_eq!(got as usize % 2, comm.rank() % 2);
        });
    }

    #[test]
    fn subgroup_none_for_excluded_rank() {
        World::run(3, |ctx| {
            let comm = Comm::world(ctx);
            let sub = comm.subgroup(ctx, &[vec![0, 1]]);
            if comm.rank() == 2 {
                assert!(sub.is_none());
            } else {
                assert_eq!(sub.unwrap().size(), 2);
            }
        });
    }

    #[test]
    fn split_by_color_and_key() {
        World::run(6, |ctx| {
            let comm = Comm::world(ctx);
            // color = rank % 2; key reverses order within each group
            let color = Some((comm.rank() % 2) as u64);
            let key = (comm.size() - comm.rank()) as u64;
            let sub = comm.split(ctx, color, key).unwrap();
            assert_eq!(sub.size(), 3);
            // rank 4 has the smallest key among evens {0,2,4} -> idx 0
            if comm.rank() == 4 {
                assert_eq!(sub.rank(), 0);
            }
            if comm.rank() == 0 {
                assert_eq!(sub.rank(), 2);
            }
        });
    }

    #[test]
    fn split_opt_out() {
        World::run(4, |ctx| {
            let comm = Comm::world(ctx);
            let color = if comm.rank() == 3 { None } else { Some(0) };
            let sub = comm.split(ctx, color, comm.rank() as u64);
            if comm.rank() == 3 {
                assert!(sub.is_none());
            } else {
                assert_eq!(sub.unwrap().size(), 3);
            }
        });
    }

    #[test]
    #[should_panic(expected = "type confusion")]
    fn wrong_type_recv_panics() {
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 0 {
                comm.send(ctx, 1, 0, vec![1.0f64]);
            } else {
                let _: Vec<f32> = comm.recv(ctx, 0, 0);
            }
        });
    }

    #[test]
    fn buffered_same_key_messages_stay_fifo() {
        // Regression test: rank 1 first waits on tag 2 (which arrives
        // last), forcing tags-1 messages into the pending buffer; they must
        // still come out in send order.
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 0 {
                comm.send(ctx, 1, 1, 10u64);
                comm.send(ctx, 1, 1, 20u64);
                comm.send(ctx, 1, 1, 30u64);
                comm.send(ctx, 1, 2, 99u64);
            } else {
                assert_eq!(comm.recv::<u64>(ctx, 0, 2), 99);
                assert_eq!(comm.recv::<u64>(ctx, 0, 1), 10);
                assert_eq!(comm.recv::<u64>(ctx, 0, 1), 20);
                assert_eq!(comm.recv::<u64>(ctx, 0, 1), 30);
            }
        });
    }

    #[test]
    fn irecv_posted_before_send() {
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 0 {
                let req = comm.irecv::<u64>(ctx, 1, 5);
                comm.send(ctx, 1, 6, 1u64); // tell rank 1 the post happened
                assert_eq!(req.wait(ctx), 42);
            } else {
                let _: u64 = comm.recv(ctx, 0, 6);
                comm.send(ctx, 0, 5, 42u64);
            }
        });
    }

    #[test]
    fn irecv_posted_after_arrival() {
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 0 {
                comm.send(ctx, 1, 5, 7u64);
                comm.send(ctx, 1, 6, 8u64);
                comm.send(ctx, 1, 7, 0u64); // handshake
            } else {
                // Per-sender FIFO: completing the tag-7 recv forces tags 5
                // and 6 into the pending buffer before any post exists.
                let _: u64 = comm.recv(ctx, 0, 7);
                // Post in reverse tag order: matching is by key, not FIFO.
                let r6 = comm.irecv::<u64>(ctx, 0, 6);
                let r5 = comm.irecv::<u64>(ctx, 0, 5);
                assert_eq!(r6.wait(ctx), 8);
                assert_eq!(r5.wait(ctx), 7);
            }
        });
    }

    #[test]
    fn same_key_irecvs_match_in_posting_order() {
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 0 {
                for v in [10u64, 20, 30] {
                    comm.send(ctx, 1, 1, v);
                }
            } else {
                let r1 = comm.irecv::<u64>(ctx, 0, 1);
                let r2 = comm.irecv::<u64>(ctx, 0, 1);
                let r3 = comm.irecv::<u64>(ctx, 0, 1);
                // Waited out of posting order, yet each request gets the
                // message its posting position earned (sender order).
                assert_eq!(r3.wait(ctx), 30);
                assert_eq!(r1.wait(ctx), 10);
                assert_eq!(r2.wait(ctx), 20);
            }
        });
    }

    #[test]
    fn isend_then_blocking_recv_interoperate() {
        // A posted irecv must not be starved by interleaved blocking recvs,
        // and a blocking recv must not steal the posted receive's message.
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 0 {
                comm.isend(ctx, 1, 3, 111u64).wait();
                comm.send(ctx, 1, 3, 222u64);
            } else {
                let req = comm.irecv::<u64>(ctx, 0, 3); // posted first
                let later: u64 = comm.recv(ctx, 0, 3); // same key, posted second
                assert_eq!(req.wait(ctx), 111);
                assert_eq!(later, 222);
            }
        });
    }

    #[test]
    fn test_completes_or_hands_back() {
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 0 {
                let _: u64 = comm.recv(ctx, 1, 9); // wait for the go-ahead
                comm.send(ctx, 1, 4, 5u64);
            } else {
                let mut req = comm.irecv::<u64>(ctx, 0, 4);
                // Nothing sent yet: test must hand the request back.
                req = match req.test(ctx) {
                    Ok(_) => panic!("nothing was sent"),
                    Err(r) => r,
                };
                comm.send(ctx, 0, 9, 0u64);
                // Poll to completion.
                let got = loop {
                    match req.test(ctx) {
                        Ok(v) => break v,
                        Err(r) => {
                            req = r;
                            std::thread::yield_now();
                        }
                    }
                };
                assert_eq!(got, 5);
            }
        });
    }

    #[test]
    #[should_panic(expected = "posted receive(s) never waited on")]
    fn leaked_posted_receive_panics_at_exit() {
        World::run(2, |ctx| {
            let comm = Comm::world(ctx);
            if comm.rank() == 1 {
                let _ = comm.irecv::<u64>(ctx, 0, 0);
            }
        });
    }

    /// Satellite stress test: 16 ranks, randomized post-before-send and
    /// send-before-post interleavings (plus test()-polling completions),
    /// must neither deadlock nor mismatch. XOR pairing makes every round a
    /// clean pairwise exchange; each endpoint independently draws its own
    /// operation order from a seeded SplitMix64 stream.
    #[test]
    fn randomized_isend_irecv_interleavings_16_ranks() {
        const P: usize = 16;
        const ROUNDS: usize = 24;
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for seed in 0..4u64 {
            World::run(P, |ctx| {
                let comm = Comm::world(ctx);
                let me = comm.rank();
                let mut state = mix(seed.wrapping_mul(0x9E37).wrapping_add(me as u64 + 1));
                let mut draw = || {
                    state = mix(state.wrapping_add(0x9E37_79B9_7F4A_7C15));
                    state
                };
                for round in 0..ROUNDS {
                    let peer = me ^ (1 + (round % (P - 1)));
                    let tag = round as u64;
                    let val = (me * 1000 + round) as u64;
                    let want = (peer * 1000 + round) as u64;
                    let post_first = draw() & 1 == 0;
                    let poll = draw() & 1 == 0;
                    let req = if post_first {
                        let r = comm.irecv::<u64>(ctx, peer, tag);
                        comm.isend(ctx, peer, tag, val).wait();
                        r
                    } else {
                        comm.isend(ctx, peer, tag, val).wait();
                        comm.irecv::<u64>(ctx, peer, tag)
                    };
                    let got = if poll {
                        let mut req = req;
                        loop {
                            match req.test(ctx) {
                                Ok(v) => break v,
                                Err(r) => {
                                    req = r;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    } else {
                        req.wait(ctx)
                    };
                    assert_eq!(got, want, "rank {me} round {round} (seed {seed})");
                }
            });
        }
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(vec![0f64; 3].nbytes(), 24);
        assert_eq!(vec![0f32; 3].nbytes(), 12);
        assert_eq!(7u64.nbytes(), 8);
        assert_eq!((1usize, vec![0u8; 5]).nbytes(), 8 + 5);
    }
}
