//! A minimal unbounded MPSC channel (Mutex + Condvar).
//!
//! Replaces `crossbeam-channel` so the runtime builds with no external
//! dependencies. Semantics match what the fabric needs: many cloned
//! senders, one receiver per rank, unbounded buffering (sends are eager and
//! never block), and disconnect detection on both sides.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// The sending half; clonable, never blocks.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; blocks until a message or sender disconnect.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The receiver was dropped before (or while) the message was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError;

/// Every sender was dropped and the queue is drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Creates a connected sender/receiver pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

// Rank threads panic while holding no channel locks, but a panicking rank
// can poison a mutex between another thread's lock attempts; recovering the
// inner state keeps the error that surfaces the *original* panic.
fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
    shared
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<T> Sender<T> {
    /// Enqueues `value`; fails only if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError> {
        let mut st = lock(&self.shared);
        if !st.receiver_alive {
            return Err(SendError);
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared);
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; fails once all senders are gone and
    /// the queue is empty. The wall-clock fabric uses
    /// [`Receiver::recv_timed`] for wait attribution; this untimed form is
    /// the virtual-time path, where blocked wall seconds are meaningless
    /// and reading the clock for them would be pure overhead.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.recv_timed().map(|(v, _)| v)
    }

    /// Non-blocking poll: pops a queued message if one is present,
    /// returns `Ok(None)` when the queue is empty but senders remain, and
    /// `Err(RecvError)` once every sender is gone and the queue is drained.
    /// This is the primitive behind `RecvReq::test`.
    pub fn try_recv(&self) -> Result<Option<T>, RecvError> {
        let mut st = lock(&self.shared);
        if let Some(v) = st.queue.pop_front() {
            return Ok(Some(v));
        }
        if st.senders == 0 {
            return Err(RecvError);
        }
        Ok(None)
    }

    /// Like [`Receiver::recv`], but also reports how many seconds this call
    /// spent *blocked* on the condvar. A message already queued returns
    /// `0.0` without ever reading the clock, so the fast path stays free of
    /// `Instant` overhead — only calls that actually wait pay for the two
    /// timestamps. This is the primitive behind the runtime's wait-time
    /// attribution.
    pub fn recv_timed(&self) -> Result<(T, f64), RecvError> {
        let mut st = lock(&self.shared);
        if let Some(v) = st.queue.pop_front() {
            return Ok((v, 0.0));
        }
        if st.senders == 0 {
            return Err(RecvError);
        }
        let blocked_from = std::time::Instant::now();
        loop {
            st = self
                .shared
                .ready
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(v) = st.queue.pop_front() {
                return Ok((v, blocked_from.elapsed().as_secs_f64()));
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        lock(&self.shared).receiver_alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1u32).unwrap());
            s.spawn(move || tx2.send(2u32).unwrap());
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            assert_eq!(a + b, 3);
        });
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = channel();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(7u8).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 7);
        });
    }

    #[test]
    fn recv_timed_reports_blocked_seconds_only() {
        let (tx, rx) = channel();
        tx.send(1u8).unwrap();
        // Already queued: zero wait, no clock read.
        assert_eq!(rx.recv_timed().unwrap(), (1, 0.0));
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(2u8).unwrap();
            });
            let (v, wait) = rx.recv_timed().unwrap();
            assert_eq!(v, 2);
            assert!(wait >= 0.010, "expected a measurable block, got {wait}");
        });
    }

    #[test]
    fn disconnect_detection() {
        let (tx, rx) = channel::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1)); // buffered message still delivered
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = channel::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError));
    }
}
