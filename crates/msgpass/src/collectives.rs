//! Collective operations, built algorithmically on point-to-point messages.
//!
//! The implementations follow the MPICH designs described by Thakur,
//! Rabenseifner & Gropp (the paper's reference \[27\]): binomial-tree
//! broadcast, ring allgather/allgatherv, ring reduce-scatter, Rabenseifner
//! allreduce (reduce-scatter + allgather), pairwise-exchange alltoallv, and
//! a dissemination barrier. Ring variants are used for the bandwidth-bound
//! collectives because their *per-rank byte volume is exactly* the
//! `β·n·(P−1)/P` term of the paper's §III-D cost table for any group size —
//! which is what the model-vs-measured tests assert. (Latency terms in the
//! analytic model use the butterfly formulas regardless.)
//!
//! Every collective must be called by all members of the communicator in the
//! same order, as in MPI.

use crate::comm::{Comm, Payload, ReduceElem};
use crate::world::RankCtx;

/// Dissemination barrier: ⌈log₂ P⌉ rounds.
pub fn barrier(comm: &Comm, ctx: &RankCtx) {
    let _span = ctx.collective_scope("dissemination_barrier", || 0);
    let g = comm.size();
    if g == 1 {
        return;
    }
    let tag = comm.next_coll_tag();
    let me = comm.rank();
    let mut dist = 1;
    while dist < g {
        let dst = (me + dist) % g;
        let src = (me + g - dist) % g;
        comm.send_internal(ctx, dst, tag, ());
        let () = comm.recv_internal(ctx, src, tag);
        dist *= 2;
    }
}

/// Binomial-tree broadcast. The root passes `Some(value)`, everyone else
/// `None`; all members return the value.
///
/// # Panics
/// If the root passes `None` or a non-root passes `Some`.
pub fn bcast<P: Payload + Clone>(comm: &Comm, ctx: &RankCtx, root: usize, mine: Option<P>) -> P {
    let _span = ctx.collective_scope("binomial_bcast", || {
        mine.as_ref().map_or(0, |v| v.nbytes() as u64)
    });
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(
        me == root,
        mine.is_some(),
        "exactly the root must provide the broadcast value"
    );
    let tag = comm.next_coll_tag();
    if g == 1 {
        return mine.unwrap();
    }
    let vr = (me + g - root) % g;
    let mut mask = 1usize;
    let mut value = mine;
    while mask < g {
        if vr & mask != 0 {
            let src = (vr - mask + root) % g;
            value = Some(comm.recv_internal(ctx, src, tag));
            break;
        }
        mask <<= 1;
    }
    let value = value.expect("broadcast value must have arrived");
    mask >>= 1;
    // Child ranks in send order (largest subtree first, as in MPICH).
    let mut children = Vec::new();
    while mask > 0 {
        if vr & mask == 0 && vr + mask < g {
            children.push((vr + mask + root) % g);
        }
        mask >>= 1;
    }
    // The final child send consumes the owned buffer instead of cloning it:
    // a non-leaf rank makes exactly one payload copy per child (counting the
    // copy it keeps to return), which is the minimum possible. Leaves copy
    // nothing.
    let Some((&last, rest)) = children.split_last() else {
        return value;
    };
    let keep = value.clone();
    for &dst in rest {
        comm.send_internal(ctx, dst, tag, value.clone());
    }
    comm.send_internal(ctx, last, tag, value);
    keep
}

/// Large-message broadcast: scatter + ring allgather (the van de Geijn
/// algorithm MPICH uses above its broadcast threshold, and the one whose
/// cost is the paper's `T_broadcast = α(log₂P + P−1) + 2βn(P−1)/P`). The
/// root linearly scatters `P` segments, then a ring allgatherv completes
/// the buffer everywhere; per-rank sent volume is ≤ `2n(P−1)/P` (at the
/// root), matching the formula's β term — unlike a binomial tree, whose
/// root sends `log₂(P)·n`.
///
/// The root passes `Some(data)`; everyone returns the full buffer. All
/// ranks must agree on `len` (the total element count).
pub fn bcast_large<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    root: usize,
    mine: Option<Vec<T>>,
    len: usize,
) -> Vec<T> {
    let _span = ctx.collective_scope("vdg_bcast_large", || {
        (len * std::mem::size_of::<T>()) as u64
    });
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(
        me == root,
        mine.is_some(),
        "exactly the root must provide the broadcast value"
    );
    if g == 1 {
        let data = mine.unwrap();
        assert_eq!(data.len(), len, "root data length disagrees with len");
        return data;
    }
    let tag = comm.next_coll_tag();
    let base = len / g;
    let extra = len % g;
    let counts: Vec<usize> = (0..g)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect();
    let offsets: Vec<usize> = counts
        .iter()
        .scan(0, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();
    // Scatter segments from the root.
    let my_seg: Vec<T> = if me == root {
        let mut data = mine.unwrap();
        assert_eq!(data.len(), len, "root data length disagrees with len");
        for r in 0..g {
            if r != root {
                comm.send_internal(
                    ctx,
                    r,
                    tag,
                    data[offsets[r]..offsets[r] + counts[r]].to_vec(),
                );
            }
        }
        // The root's own segment is carved out of the owned buffer in place
        // (truncate the tail, drain the prefix) instead of copied into a
        // fresh allocation.
        data.truncate(offsets[root] + counts[root]);
        data.drain(..offsets[root]);
        data
    } else {
        comm.recv_internal(ctx, root, tag)
    };
    // Complete with a ring allgatherv.
    allgatherv(comm, ctx, my_seg, &counts)
}

/// Ring allgather with equal contribution sizes. Returns the concatenation
/// of every member's `mine` in communicator rank order.
///
/// # Panics
/// If contribution lengths differ across ranks (detected at receipt).
pub fn allgather<T: Copy + Send + 'static>(comm: &Comm, ctx: &RankCtx, mine: Vec<T>) -> Vec<T> {
    let n = mine.len();
    let counts = vec![n; comm.size()];
    allgatherv(comm, ctx, mine, &counts)
}

/// Ring allgather with per-rank contribution sizes `counts` (known to all
/// members, as in `MPI_Allgatherv`). Returns the concatenation in rank
/// order.
pub fn allgatherv<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    mine: Vec<T>,
    counts: &[usize],
) -> Vec<T> {
    let _span = ctx.collective_scope("ring_allgatherv", || {
        (counts.iter().sum::<usize>() * std::mem::size_of::<T>()) as u64
    });
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(counts.len(), g, "counts must have one entry per rank");
    assert_eq!(
        mine.len(),
        counts[me],
        "my contribution length disagrees with counts"
    );
    if g == 1 {
        return mine;
    }
    let tag = comm.next_coll_tag();
    let offsets: Vec<usize> = counts
        .iter()
        .scan(0, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();
    let total: usize = counts.iter().sum();
    let mut out: Vec<T> = Vec::with_capacity(total);
    // Segments arrive out of offset order; stage them and concatenate once
    // all are present.
    let mut segments: Vec<Option<Vec<T>>> = (0..g).map(|_| None).collect();
    segments[me] = Some(mine);

    let right = (me + 1) % g;
    let left = (me + g - 1) % g;
    // At step t we forward the segment that originated at rank (me - t).
    for t in 0..g - 1 {
        let send_seg = (me + g - t) % g;
        let recv_seg = (me + g - t - 1) % g;
        let payload = segments[send_seg]
            .as_ref()
            .expect("segment to forward must be present")
            .clone();
        comm.send_internal(ctx, right, tag, payload);
        let got: Vec<T> = comm.recv_internal(ctx, left, tag);
        assert_eq!(got.len(), counts[recv_seg], "allgatherv count mismatch");
        segments[recv_seg] = Some(got);
    }
    for (s, o) in segments.into_iter().zip(offsets) {
        let s = s.expect("all segments gathered");
        debug_assert!(out.len() == o);
        out.extend_from_slice(&s);
    }
    out
}

/// Ring reduce-scatter: `data` is the full vector (length = Σ counts) of
/// this rank's contribution; returns the elementwise sum over all ranks of
/// segment `rank` (the segment boundaries are given by `counts`).
///
/// Per-rank volume: Σ_{s≠me} counts\[s\] bytes sent — the `β·n·(P−1)/P` of the
/// paper when counts are even.
pub fn reduce_scatter<T: ReduceElem>(
    comm: &Comm,
    ctx: &RankCtx,
    data: Vec<T>,
    counts: &[usize],
) -> Vec<T> {
    let _span = ctx.collective_scope("ring_reduce_scatter", || data.nbytes() as u64);
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(counts.len(), g, "counts must have one entry per rank");
    let total: usize = counts.iter().sum();
    assert_eq!(data.len(), total, "data length must equal sum of counts");
    if g == 1 {
        return data;
    }
    let tag = comm.next_coll_tag();
    let offsets: Vec<usize> = counts
        .iter()
        .scan(0, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();
    let seg = |s: usize| offsets[s]..offsets[s] + counts[s];

    let right = (me + 1) % g;
    let left = (me + g - 1) % g;
    let acc = data;
    // Segment s travels along the ring starting at rank s+1 and is
    // accumulated at each hop; after g−1 steps it is complete at rank s.
    let mut carry: Vec<T> = Vec::new();
    for t in 0..g - 1 {
        let send_seg = (me + 2 * g - 1 - t) % g;
        let recv_seg = (me + 2 * g - 2 - t) % g;
        let payload: Vec<T> = if t == 0 {
            acc[seg(send_seg)].to_vec()
        } else {
            std::mem::take(&mut carry)
        };
        comm.send_internal(ctx, right, tag, payload);
        let got: Vec<T> = comm.recv_internal(ctx, left, tag);
        assert_eq!(got.len(), counts[recv_seg], "reduce_scatter count mismatch");
        // add my contribution for that segment
        let mut sum = got;
        for (s, d) in sum.iter_mut().zip(&acc[seg(recv_seg)]) {
            *s += *d;
        }
        carry = sum;
    }
    carry
}

/// Allreduce (elementwise sum) via Rabenseifner's algorithm: ring
/// reduce-scatter over an even split, then ring allgatherv.
pub fn allreduce<T: ReduceElem>(comm: &Comm, ctx: &RankCtx, data: Vec<T>) -> Vec<T> {
    let _span = ctx.collective_scope("rabenseifner_allreduce", || data.nbytes() as u64);
    let g = comm.size();
    if g == 1 {
        return data;
    }
    let n = data.len();
    let base = n / g;
    let extra = n % g;
    let counts: Vec<usize> = (0..g)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect();
    let mine = reduce_scatter(comm, ctx, data, &counts);
    allgatherv(comm, ctx, mine, &counts)
}

/// Pairwise-exchange all-to-all with per-destination payloads: `sends[j]`
/// goes to communicator rank `j`; returns `recvs` where `recvs[i]` came from
/// rank `i`. Empty vectors are exchanged too (zero-byte messages), exactly
/// like `MPI_Alltoallv` with zero counts.
pub fn alltoallv<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    mut sends: Vec<Vec<T>>,
) -> Vec<Vec<T>> {
    let _span = ctx.collective_scope("pairwise_alltoallv", || {
        sends.iter().map(|v| v.nbytes() as u64).sum()
    });
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(sends.len(), g, "need one send buffer per rank");
    let tag = comm.next_coll_tag();
    let mut recvs: Vec<Vec<T>> = (0..g).map(|_| Vec::new()).collect();
    recvs[me] = std::mem::take(&mut sends[me]);
    for off in 1..g {
        let dst = (me + off) % g;
        let src = (me + g - off) % g;
        comm.send_internal(ctx, dst, tag, std::mem::take(&mut sends[dst]));
        recvs[src] = comm.recv_internal(ctx, src, tag);
    }
    recvs
}

/// Gather with per-rank sizes: every member sends `mine` to `root`, which
/// returns `Some(vec of contributions in rank order)`; others get `None`.
pub fn gatherv<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    mine: Vec<T>,
    root: usize,
) -> Option<Vec<Vec<T>>> {
    let _span = ctx.collective_scope("linear_gatherv", || mine.nbytes() as u64);
    let g = comm.size();
    let me = comm.rank();
    let tag = comm.next_coll_tag();
    if me == root {
        let mut out: Vec<Vec<T>> = (0..g).map(|_| Vec::new()).collect();
        out[root] = mine;
        for (r, slot) in out.iter_mut().enumerate() {
            if r != root {
                *slot = comm.recv_internal(ctx, r, tag);
            }
        }
        Some(out)
    } else {
        comm.send_internal(ctx, root, tag, mine);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn barrier_all_sizes() {
        for p in [1usize, 2, 3, 5, 8] {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                barrier(&comm, ctx);
                barrier(&comm, ctx);
            });
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for p in [1usize, 2, 4, 7] {
            for root in 0..p {
                World::run(p, |ctx| {
                    let comm = Comm::world(ctx);
                    let mine = (comm.rank() == root).then(|| vec![root as f64, 42.0]);
                    let got = bcast(&comm, ctx, root, mine);
                    assert_eq!(got, vec![root as f64, 42.0]);
                });
            }
        }
    }

    #[test]
    fn bcast_large_from_each_root() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                World::run(p, |ctx| {
                    let comm = Comm::world(ctx);
                    let want: Vec<u64> = (0..23).collect();
                    let mine = (comm.rank() == root).then(|| want.clone());
                    let got = bcast_large(&comm, ctx, root, mine, 23);
                    assert_eq!(got, want);
                });
            }
        }
    }

    #[test]
    fn bcast_large_volume_matches_formula() {
        // root sends at most 2n(g-1)/g elements
        let p = 4;
        let n = 64usize;
        let (_, report) = World::run_traced(p, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("bc");
            let mine = (comm.rank() == 0).then(|| vec![1.0f64; n]);
            let _ = bcast_large(&comm, ctx, 0, mine, n);
        });
        // root: scatter (n*(g-1)/g) + ring allgather ((g-1) * n/g)
        let want = (n * (p - 1) / p + (p - 1) * (n / p)) * 8;
        assert_eq!(report.phase(0, "bc").bytes as usize, want);
        // non-roots only pay the allgather part
        for r in 1..p {
            assert_eq!(report.phase(r, "bc").bytes as usize, (p - 1) * (n / p) * 8);
        }
    }

    #[test]
    fn bcast_large_short_buffer() {
        // len < g: some segments empty
        World::run(6, |ctx| {
            let comm = Comm::world(ctx);
            let mine = (comm.rank() == 2).then(|| vec![7u8, 8, 9]);
            let got = bcast_large(&comm, ctx, 2, mine, 3);
            assert_eq!(got, vec![7, 8, 9]);
        });
    }

    #[test]
    fn allgather_orders_by_rank() {
        for p in [1usize, 3, 4, 6] {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                let got = allgather(&comm, ctx, vec![comm.rank() as u64 * 10, 1]);
                let want: Vec<u64> = (0..p as u64).flat_map(|r| [r * 10, 1]).collect();
                assert_eq!(got, want);
            });
        }
    }

    #[test]
    fn allgatherv_uneven() {
        World::run(4, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let counts = [3usize, 0, 2, 1];
            let mine: Vec<u32> = (0..counts[me]).map(|i| (me * 100 + i) as u32).collect();
            let got = allgatherv(&comm, ctx, mine, &counts);
            assert_eq!(got, vec![0, 1, 2, 200, 201, 300]);
        });
    }

    #[test]
    fn reduce_scatter_sums_segments() {
        for p in [2usize, 3, 5] {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                let counts: Vec<usize> = (0..p).map(|i| i + 1).collect();
                let total: usize = counts.iter().sum();
                // rank r contributes value (r+1) everywhere
                let data = vec![(comm.rank() + 1) as f64; total];
                let got = reduce_scatter(&comm, ctx, data, &counts);
                let expected = (p * (p + 1) / 2) as f64;
                assert_eq!(got.len(), counts[comm.rank()]);
                assert!(got.iter().all(|&v| v == expected));
            });
        }
    }

    #[test]
    fn reduce_scatter_distinct_segments() {
        // Verify each rank gets *its own* segment: contribution at global
        // index i from rank r is r * 1000 + i.
        World::run(3, |ctx| {
            let comm = Comm::world(ctx);
            let counts = [2usize, 2, 2];
            let data: Vec<f64> = (0..6).map(|i| (comm.rank() * 1000 + i) as f64).collect();
            let got = reduce_scatter(&comm, ctx, data, &counts);
            let me = comm.rank();
            for (k, &v) in got.iter().enumerate() {
                let i = me * 2 + k;
                let want = (1000 + 2000 + 3 * i) as f64;
                assert_eq!(v, want, "segment value at {i}");
            }
        });
    }

    #[test]
    fn allreduce_matches_serial_sum() {
        for p in [1usize, 2, 4, 5] {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                let data: Vec<f64> = (0..7)
                    .map(|i| (comm.rank() + 1) as f64 * i as f64)
                    .collect();
                let got = allreduce(&comm, ctx, data);
                let scale: f64 = (1..=p).map(|r| r as f64).sum();
                for (i, &v) in got.iter().enumerate() {
                    assert!((v - scale * i as f64).abs() < 1e-12);
                }
            });
        }
    }

    #[test]
    fn alltoallv_permutes() {
        World::run(4, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            // send to each rank j a vector [me, j] of length j (empty to 0)
            let sends: Vec<Vec<u64>> = (0..4).map(|j| vec![(me * 10 + j) as u64; j]).collect();
            let recvs = alltoallv(&comm, ctx, sends);
            for (i, r) in recvs.iter().enumerate() {
                assert_eq!(r.len(), me);
                assert!(r.iter().all(|&v| v == (i * 10 + me) as u64));
            }
        });
    }

    #[test]
    fn gatherv_collects_at_root() {
        World::run(3, |ctx| {
            let comm = Comm::world(ctx);
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            let got = gatherv(&comm, ctx, mine, 1);
            if comm.rank() == 1 {
                let got = got.unwrap();
                assert_eq!(got, vec![vec![0], vec![1, 1], vec![2, 2, 2]]);
            } else {
                assert!(got.is_none());
            }
        });
    }

    #[test]
    fn allgather_volume_matches_ring_formula() {
        // Per-rank sent bytes of ring allgather = (P-1) * block_bytes.
        let p = 5;
        let block = 16usize; // u64 elements
        let (_, report) = World::run_traced(p, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("ag");
            let _ = allgather(&comm, ctx, vec![0u64; block]);
        });
        for r in 0..p {
            assert_eq!(report.phase(r, "ag").bytes as usize, (p - 1) * block * 8);
            assert_eq!(report.phase(r, "ag").msgs as usize, p - 1);
        }
    }

    #[test]
    fn reduce_scatter_volume_matches_ring_formula() {
        let p = 4;
        let seg = 8usize;
        let (_, report) = World::run_traced(p, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("rs");
            let counts = vec![seg; p];
            let _ = reduce_scatter(&comm, ctx, vec![1.0f64; seg * p], &counts);
        });
        for r in 0..p {
            assert_eq!(report.phase(r, "rs").bytes as usize, (p - 1) * seg * 8);
        }
    }

    #[test]
    fn collectives_on_subgroups_do_not_interfere() {
        World::run(6, |ctx| {
            let comm = Comm::world(ctx);
            let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
            let sub = comm.subgroup(ctx, &groups).unwrap();
            // run different collectives concurrently in the two groups
            if comm.rank() < 3 {
                let v = allgather(&sub, ctx, vec![sub.rank() as u64]);
                assert_eq!(v, vec![0, 1, 2]);
            } else {
                let v = allreduce(&sub, ctx, vec![1.0f64; 5]);
                assert!(v.iter().all(|&x| x == 3.0));
            }
            barrier(&comm, ctx);
        });
    }
}
