//! Collective operations, built algorithmically on point-to-point messages.
//!
//! The implementations follow the MPICH designs described by Thakur,
//! Rabenseifner & Gropp (the paper's reference \[27\]): binomial-tree
//! broadcast, ring allgather/allgatherv, ring reduce-scatter, Rabenseifner
//! allreduce (reduce-scatter + allgather), pairwise-exchange alltoallv, and
//! a dissemination barrier. Ring variants are used for the bandwidth-bound
//! collectives because their *per-rank byte volume is exactly* the
//! `β·n·(P−1)/P` term of the paper's §III-D cost table for any group size —
//! which is what the model-vs-measured tests assert. (Latency terms in the
//! analytic model use the butterfly formulas regardless.)
//!
//! Every collective must be called by all members of the communicator in the
//! same order, as in MPI.

use crate::comm::{Comm, Payload, ReduceElem};
use crate::world::RankCtx;

/// Dissemination barrier: ⌈log₂ P⌉ rounds.
pub fn barrier(comm: &Comm, ctx: &RankCtx) {
    let _span = ctx.collective_scope("dissemination_barrier", || 0);
    let g = comm.size();
    if g == 1 {
        return;
    }
    let tag = comm.next_coll_tag();
    let me = comm.rank();
    let mut dist = 1;
    while dist < g {
        let dst = (me + dist) % g;
        let src = (me + g - dist) % g;
        comm.send_internal(ctx, dst, tag, ());
        let () = comm.recv_internal(ctx, src, tag);
        dist *= 2;
    }
}

/// Binomial-tree broadcast. The root passes `Some(value)`, everyone else
/// `None`; all members return the value.
///
/// # Panics
/// If the root passes `None` or a non-root passes `Some`.
pub fn bcast<P: Payload + Clone>(comm: &Comm, ctx: &RankCtx, root: usize, mine: Option<P>) -> P {
    let _span = ctx.collective_scope("binomial_bcast", || {
        mine.as_ref().map_or(0, |v| v.nbytes() as u64)
    });
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(
        me == root,
        mine.is_some(),
        "exactly the root must provide the broadcast value"
    );
    let tag = comm.next_coll_tag();
    if g == 1 {
        return mine.unwrap();
    }
    let vr = (me + g - root) % g;
    let mut mask = 1usize;
    let mut value = mine;
    while mask < g {
        if vr & mask != 0 {
            let src = (vr - mask + root) % g;
            value = Some(comm.recv_internal(ctx, src, tag));
            break;
        }
        mask <<= 1;
    }
    let value = value.expect("broadcast value must have arrived");
    mask >>= 1;
    // Child ranks in send order (largest subtree first, as in MPICH).
    let mut children = Vec::new();
    while mask > 0 {
        if vr & mask == 0 && vr + mask < g {
            children.push((vr + mask + root) % g);
        }
        mask >>= 1;
    }
    // The final child send consumes the owned buffer instead of cloning it:
    // a non-leaf rank makes exactly one payload copy per child (counting the
    // copy it keeps to return), which is the minimum possible. Leaves copy
    // nothing.
    let Some((&last, rest)) = children.split_last() else {
        return value;
    };
    let keep = value.clone();
    for &dst in rest {
        comm.send_internal(ctx, dst, tag, value.clone());
    }
    comm.send_internal(ctx, last, tag, value);
    keep
}

/// Large-message broadcast: scatter + ring allgather (the van de Geijn
/// algorithm MPICH uses above its broadcast threshold, and the one whose
/// cost is the paper's `T_broadcast = α(log₂P + P−1) + 2βn(P−1)/P`). The
/// root linearly scatters `P` segments, then a ring allgatherv completes
/// the buffer everywhere; per-rank sent volume is ≤ `2n(P−1)/P` (at the
/// root), matching the formula's β term — unlike a binomial tree, whose
/// root sends `log₂(P)·n`.
///
/// The root passes `Some(data)`; everyone returns the full buffer. All
/// ranks must agree on `len` (the total element count).
pub fn bcast_large<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    root: usize,
    mine: Option<Vec<T>>,
    len: usize,
) -> Vec<T> {
    let _span = ctx.collective_scope("vdg_bcast_large", || {
        (len * std::mem::size_of::<T>()) as u64
    });
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(
        me == root,
        mine.is_some(),
        "exactly the root must provide the broadcast value"
    );
    if g == 1 {
        let data = mine.unwrap();
        assert_eq!(data.len(), len, "root data length disagrees with len");
        return data;
    }
    let tag = comm.next_coll_tag();
    let base = len / g;
    let extra = len % g;
    let counts: Vec<usize> = (0..g)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect();
    let offsets: Vec<usize> = counts
        .iter()
        .scan(0, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();
    // Scatter segments from the root.
    let my_seg: Vec<T> = if me == root {
        let mut data = mine.unwrap();
        assert_eq!(data.len(), len, "root data length disagrees with len");
        for r in 0..g {
            if r != root {
                comm.send_internal(
                    ctx,
                    r,
                    tag,
                    data[offsets[r]..offsets[r] + counts[r]].to_vec(),
                );
            }
        }
        // The root's own segment is carved out of the owned buffer in place
        // (truncate the tail, drain the prefix) instead of copied into a
        // fresh allocation.
        data.truncate(offsets[root] + counts[root]);
        data.drain(..offsets[root]);
        data
    } else {
        comm.recv_internal(ctx, root, tag)
    };
    // Complete with a ring allgatherv.
    allgatherv(comm, ctx, my_seg, &counts)
}

/// Ring allgather with equal contribution sizes. Returns the concatenation
/// of every member's `mine` in communicator rank order.
///
/// # Panics
/// If contribution lengths differ across ranks (detected at receipt).
pub fn allgather<T: Copy + Send + 'static>(comm: &Comm, ctx: &RankCtx, mine: Vec<T>) -> Vec<T> {
    let n = mine.len();
    let counts = vec![n; comm.size()];
    allgatherv(comm, ctx, mine, &counts)
}

/// Ring allgather with per-rank contribution sizes `counts` (known to all
/// members, as in `MPI_Allgatherv`). Returns the concatenation in rank
/// order.
pub fn allgatherv<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    mine: Vec<T>,
    counts: &[usize],
) -> Vec<T> {
    let _span = ctx.collective_scope("ring_allgatherv", || {
        (counts.iter().sum::<usize>() * std::mem::size_of::<T>()) as u64
    });
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(counts.len(), g, "counts must have one entry per rank");
    assert_eq!(
        mine.len(),
        counts[me],
        "my contribution length disagrees with counts"
    );
    if g == 1 {
        return mine;
    }
    let tag = comm.next_coll_tag();
    let offsets: Vec<usize> = counts
        .iter()
        .scan(0, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();
    let total: usize = counts.iter().sum();
    let mut out: Vec<T> = Vec::with_capacity(total);
    // Segments arrive out of offset order; stage them and concatenate once
    // all are present.
    let mut segments: Vec<Option<Vec<T>>> = (0..g).map(|_| None).collect();
    segments[me] = Some(mine);

    let right = (me + 1) % g;
    let left = (me + g - 1) % g;
    // At step t we forward the segment that originated at rank (me - t).
    for t in 0..g - 1 {
        let send_seg = (me + g - t) % g;
        let recv_seg = (me + g - t - 1) % g;
        let payload = segments[send_seg]
            .as_ref()
            .expect("segment to forward must be present")
            .clone();
        comm.send_internal(ctx, right, tag, payload);
        let got: Vec<T> = comm.recv_internal(ctx, left, tag);
        assert_eq!(got.len(), counts[recv_seg], "allgatherv count mismatch");
        segments[recv_seg] = Some(got);
    }
    for (s, o) in segments.into_iter().zip(offsets) {
        let s = s.expect("all segments gathered");
        debug_assert!(out.len() == o);
        out.extend_from_slice(&s);
    }
    out
}

/// Ring reduce-scatter: `data` is the full vector (length = Σ counts) of
/// this rank's contribution; returns the elementwise sum over all ranks of
/// segment `rank` (the segment boundaries are given by `counts`).
///
/// Per-rank volume: Σ_{s≠me} counts\[s\] bytes sent — the `β·n·(P−1)/P` of the
/// paper when counts are even.
pub fn reduce_scatter<T: ReduceElem>(
    comm: &Comm,
    ctx: &RankCtx,
    data: Vec<T>,
    counts: &[usize],
) -> Vec<T> {
    let _span = ctx.collective_scope("ring_reduce_scatter", || data.nbytes() as u64);
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(counts.len(), g, "counts must have one entry per rank");
    let total: usize = counts.iter().sum();
    assert_eq!(data.len(), total, "data length must equal sum of counts");
    if g == 1 {
        return data;
    }
    let tag = comm.next_coll_tag();
    let offsets: Vec<usize> = counts
        .iter()
        .scan(0, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();
    let seg = |s: usize| offsets[s]..offsets[s] + counts[s];

    let right = (me + 1) % g;
    let left = (me + g - 1) % g;
    let acc = data;
    // Segment s travels along the ring starting at rank s+1 and is
    // accumulated at each hop; after g−1 steps it is complete at rank s.
    let mut carry: Vec<T> = Vec::new();
    for t in 0..g - 1 {
        let send_seg = (me + 2 * g - 1 - t) % g;
        let recv_seg = (me + 2 * g - 2 - t) % g;
        let payload: Vec<T> = if t == 0 {
            acc[seg(send_seg)].to_vec()
        } else {
            std::mem::take(&mut carry)
        };
        comm.send_internal(ctx, right, tag, payload);
        let got: Vec<T> = comm.recv_internal(ctx, left, tag);
        assert_eq!(got.len(), counts[recv_seg], "reduce_scatter count mismatch");
        // add my contribution for that segment
        let mut sum = got;
        for (s, d) in sum.iter_mut().zip(&acc[seg(recv_seg)]) {
            *s += *d;
        }
        carry = sum;
    }
    carry
}

/// Allreduce (elementwise sum) via Rabenseifner's algorithm: ring
/// reduce-scatter over an even split, then ring allgatherv.
pub fn allreduce<T: ReduceElem>(comm: &Comm, ctx: &RankCtx, data: Vec<T>) -> Vec<T> {
    let _span = ctx.collective_scope("rabenseifner_allreduce", || data.nbytes() as u64);
    let g = comm.size();
    if g == 1 {
        return data;
    }
    let n = data.len();
    let base = n / g;
    let extra = n % g;
    let counts: Vec<usize> = (0..g)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect();
    let mine = reduce_scatter(comm, ctx, data, &counts);
    allgatherv(comm, ctx, mine, &counts)
}

/// Pairwise-exchange all-to-all with per-destination payloads: `sends[j]`
/// goes to communicator rank `j`; returns `recvs` where `recvs[i]` came from
/// rank `i`. Empty vectors are exchanged too (zero-byte messages), exactly
/// like `MPI_Alltoallv` with zero counts.
pub fn alltoallv<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    mut sends: Vec<Vec<T>>,
) -> Vec<Vec<T>> {
    let _span = ctx.collective_scope("pairwise_alltoallv", || {
        sends.iter().map(|v| v.nbytes() as u64).sum()
    });
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(sends.len(), g, "need one send buffer per rank");
    let tag = comm.next_coll_tag();
    let mut recvs: Vec<Vec<T>> = (0..g).map(|_| Vec::new()).collect();
    recvs[me] = std::mem::take(&mut sends[me]);
    for off in 1..g {
        let dst = (me + off) % g;
        let src = (me + g - off) % g;
        comm.send_internal(ctx, dst, tag, std::mem::take(&mut sends[dst]));
        recvs[src] = comm.recv_internal(ctx, src, tag);
    }
    recvs
}

/// Gather with per-rank sizes: every member sends `mine` to `root`, which
/// returns `Some(vec of contributions in rank order)`; others get `None`.
pub fn gatherv<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    mine: Vec<T>,
    root: usize,
) -> Option<Vec<Vec<T>>> {
    let _span = ctx.collective_scope("linear_gatherv", || mine.nbytes() as u64);
    let g = comm.size();
    let me = comm.rank();
    let tag = comm.next_coll_tag();
    if me == root {
        let mut out: Vec<Vec<T>> = (0..g).map(|_| Vec::new()).collect();
        out[root] = mine;
        for (r, slot) in out.iter_mut().enumerate() {
            if r != root {
                *slot = comm.recv_internal(ctx, r, tag);
            }
        }
        Some(out)
    } else {
        comm.send_internal(ctx, root, tag, mine);
        None
    }
}

// ---------------------------------------------------------------------------
// Two-level (node-aware) collectives.
//
// When the run knows its node layout ([`RankCtx::ranks_per_node`], set by the
// sim placement or by `RunOptions::ranks_per_node`), the `*_hier` entry
// points below route each collective through a node-leader structure:
// members send to their node's leader over the (cheap) intra-node fabric,
// the leaders run the inter-node stage among themselves — one ring or tree
// over *nodes* instead of *ranks* — and the leaders fan results back out
// intra-node. Inter-node message count per group drops from Θ(P) to
// Θ(#nodes), which is the latency tier the flat rings pay at scale.
//
// Selection is structural and identical on every member (it is a pure
// function of the communicator's world ranks and the topology), so a
// communicator never splits between the two paths: hier engages only when
// the group spans ≥ 2 nodes AND at least one node holds ≥ 2 members.
// Otherwise the flat algorithm is the right one already — a single-node
// group never crosses the network, and an all-singleton group gains nothing
// from leaders (every rank *is* its node's leader) — so the flat path runs
// and the traffic is attributed to the flat algorithm name.

/// Node-grouped view of a communicator: which members share nodes, under the
/// block `node = world_rank / ranks_per_node` mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeMap {
    /// Communicator rank indices grouped by node, nodes in first-appearance
    /// order of the comm rank order, members ascending. `nodes[j][0]` is
    /// node `j`'s leader.
    pub nodes: Vec<Vec<usize>>,
    /// Index into `nodes` of the calling rank's node.
    pub my_node: usize,
    /// The calling rank's position within its node group (0 = leader).
    pub my_slot: usize,
}

impl NodeMap {
    /// Number of nodes the communicator spans.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Largest number of members any node holds.
    pub fn max_members(&self) -> usize {
        self.nodes.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The two-level selection rule: `Some(map)` when the hierarchical path
/// engages for this communicator, `None` when the flat algorithms should run
/// (no topology attached, single-node communicator, or all nodes holding a
/// single member). Every member computes the same answer.
pub fn node_map(comm: &Comm, ctx: &RankCtx) -> Option<NodeMap> {
    let rpn = ctx.ranks_per_node()?;
    let g = comm.size();
    let me = comm.rank();
    let mut node_ids: Vec<usize> = Vec::new();
    let mut nodes: Vec<Vec<usize>> = Vec::new();
    let mut my_node = 0;
    let mut my_slot = 0;
    for idx in 0..g {
        let node = comm.world_rank_of(idx) / rpn;
        let j = match node_ids.iter().position(|&n| n == node) {
            Some(j) => j,
            None => {
                node_ids.push(node);
                nodes.push(Vec::new());
                nodes.len() - 1
            }
        };
        if idx == me {
            my_node = j;
            my_slot = nodes[j].len();
        }
        nodes[j].push(idx);
    }
    if nodes.len() < 2 || nodes.iter().all(|v| v.len() == 1) {
        return None;
    }
    Some(NodeMap {
        nodes,
        my_node,
        my_slot,
    })
}

/// Prefix offsets of `counts`.
fn offsets_of(counts: &[usize]) -> Vec<usize> {
    counts
        .iter()
        .scan(0, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect()
}

/// Two-level allgather with equal contribution sizes: hierarchical when the
/// topology engages ([`node_map`]), flat ring otherwise.
pub fn allgather_hier<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    mine: Vec<T>,
) -> Vec<T> {
    let counts = vec![mine.len(); comm.size()];
    allgatherv_hier(comm, ctx, mine, &counts)
}

/// Two-level allgatherv: members ship their piece to the node leader, the
/// leaders ring-exchange whole node blocks (one inter-node message per ring
/// step instead of one per member), and each leader hands the assembled
/// buffer back to its members. Falls back to the flat ring when [`node_map`]
/// declines.
pub fn allgatherv_hier<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    mine: Vec<T>,
    counts: &[usize],
) -> Vec<T> {
    let Some(map) = node_map(comm, ctx) else {
        return allgatherv(comm, ctx, mine, counts);
    };
    let _span = ctx.collective_scope("hier_allgatherv", || {
        (counts.iter().sum::<usize>() * std::mem::size_of::<T>()) as u64
    });
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(counts.len(), g, "counts must have one entry per rank");
    assert_eq!(
        mine.len(),
        counts[me],
        "my contribution length disagrees with counts"
    );
    let t_up = comm.next_coll_tag();
    let t_ring = comm.next_coll_tag();
    let t_down = comm.next_coll_tag();
    let members = &map.nodes[map.my_node];
    let leader = members[0];
    if me != leader {
        comm.send_internal(ctx, leader, t_up, mine);
        return comm.recv_internal(ctx, leader, t_down);
    }
    // Leader: collect the node's segments, then ring over leaders with one
    // packed block per node per step.
    let mut segments: Vec<Option<Vec<T>>> = (0..g).map(|_| None).collect();
    segments[me] = Some(mine);
    for &m in &members[1..] {
        let got: Vec<T> = comm.recv_internal(ctx, m, t_up);
        assert_eq!(got.len(), counts[m], "allgatherv count mismatch");
        segments[m] = Some(got);
    }
    let l = map.my_node;
    let lc = map.nodes.len();
    let right = map.nodes[(l + 1) % lc][0];
    let left = map.nodes[(l + lc - 1) % lc][0];
    for t in 0..lc - 1 {
        let send_node = (l + lc - t) % lc;
        let recv_node = (l + lc - t - 1) % lc;
        let mut block: Vec<T> = Vec::new();
        for &m in &map.nodes[send_node] {
            block.extend_from_slice(segments[m].as_ref().expect("block to forward present"));
        }
        comm.send_internal(ctx, right, t_ring, block);
        let got: Vec<T> = comm.recv_internal(ctx, left, t_ring);
        let mut off = 0;
        for &m in &map.nodes[recv_node] {
            segments[m] = Some(got[off..off + counts[m]].to_vec());
            off += counts[m];
        }
        assert_eq!(off, got.len(), "node block length mismatch");
    }
    // Assemble in comm rank order and fan out to the node's members.
    let total: usize = counts.iter().sum();
    let mut out: Vec<T> = Vec::with_capacity(total);
    for s in segments {
        out.extend_from_slice(&s.expect("all segments gathered"));
    }
    for &m in &members[1..] {
        comm.send_internal(ctx, m, t_down, out.clone());
    }
    out
}

/// Two-level reduce-scatter: members ship their full contribution to the
/// node leader, which pre-reduces intra-node; the leaders then ring
/// reduce-scatter whole node blocks (already node-combined, so each block
/// crosses the network once per ring hop instead of once per member), and
/// each leader scatters its node's finished segments back. Falls back to the
/// flat ring when [`node_map`] declines.
pub fn reduce_scatter_hier<T: ReduceElem>(
    comm: &Comm,
    ctx: &RankCtx,
    data: Vec<T>,
    counts: &[usize],
) -> Vec<T> {
    let Some(map) = node_map(comm, ctx) else {
        return reduce_scatter(comm, ctx, data, counts);
    };
    let _span = ctx.collective_scope("hier_reduce_scatter", || data.nbytes() as u64);
    let g = comm.size();
    let me = comm.rank();
    assert_eq!(counts.len(), g, "counts must have one entry per rank");
    let total: usize = counts.iter().sum();
    assert_eq!(data.len(), total, "data length must equal sum of counts");
    let t_up = comm.next_coll_tag();
    let t_ring = comm.next_coll_tag();
    let t_down = comm.next_coll_tag();
    let offsets = offsets_of(counts);
    let members = &map.nodes[map.my_node];
    let leader = members[0];
    if me != leader {
        comm.send_internal(ctx, leader, t_up, data);
        return comm.recv_internal(ctx, leader, t_down);
    }
    // Leader: pre-reduce the node's contributions elementwise.
    let mut acc = data;
    for &m in &members[1..] {
        let got: Vec<T> = comm.recv_internal(ctx, m, t_up);
        assert_eq!(got.len(), acc.len(), "reduce_scatter length mismatch");
        for (s, d) in acc.iter_mut().zip(&got) {
            *s += *d;
        }
    }
    // Ring reduce-scatter over node blocks among the leaders; the block of
    // node `b` is the concatenation of its members' segments.
    let l = map.my_node;
    let lc = map.nodes.len();
    let right = map.nodes[(l + 1) % lc][0];
    let left = map.nodes[(l + lc - 1) % lc][0];
    let pack = |acc: &[T], node: usize| -> Vec<T> {
        let mut block = Vec::new();
        for &m in &map.nodes[node] {
            block.extend_from_slice(&acc[offsets[m]..offsets[m] + counts[m]]);
        }
        block
    };
    let mut carry: Vec<T> = Vec::new();
    for t in 0..lc - 1 {
        let send_node = (l + 2 * lc - 1 - t) % lc;
        let recv_node = (l + 2 * lc - 2 - t) % lc;
        let payload: Vec<T> = if t == 0 {
            pack(&acc, send_node)
        } else {
            std::mem::take(&mut carry)
        };
        comm.send_internal(ctx, right, t_ring, payload);
        let mut sum: Vec<T> = comm.recv_internal(ctx, left, t_ring);
        // Add my node's (pre-reduced) contribution for that block.
        let mut off = 0;
        for &m in &map.nodes[recv_node] {
            for (s, d) in sum[off..off + counts[m]]
                .iter_mut()
                .zip(&acc[offsets[m]..offsets[m] + counts[m]])
            {
                *s += *d;
            }
            off += counts[m];
        }
        assert_eq!(off, sum.len(), "node block length mismatch");
        carry = sum;
    }
    // `carry` is the fully reduced block of my node: scatter the segments.
    let mut off = 0;
    let mut mine_out: Vec<T> = Vec::new();
    for &m in members {
        let piece = &carry[off..off + counts[m]];
        if m == me {
            mine_out = piece.to_vec();
        } else {
            comm.send_internal(ctx, m, t_down, piece.to_vec());
        }
        off += counts[m];
    }
    mine_out
}

/// Two-level broadcast: binomial tree among node representatives (the root
/// for its own node, the leader elsewhere) — so each node receives the
/// payload over the network exactly once — then a linear intra-node fan-out.
/// Falls back to the flat binomial tree when [`node_map`] declines.
pub fn bcast_hier<P: Payload + Clone>(
    comm: &Comm,
    ctx: &RankCtx,
    root: usize,
    mine: Option<P>,
) -> P {
    let Some(map) = node_map(comm, ctx) else {
        return bcast(comm, ctx, root, mine);
    };
    let _span = ctx.collective_scope("hier_bcast", || {
        mine.as_ref().map_or(0, |v| v.nbytes() as u64)
    });
    let me = comm.rank();
    assert_eq!(
        me == root,
        mine.is_some(),
        "exactly the root must provide the broadcast value"
    );
    let t_inter = comm.next_coll_tag();
    let t_down = comm.next_coll_tag();
    // Node representatives: the root stands in for its node so the payload
    // never makes an extra intra-node hop before going out.
    let root_node = map
        .nodes
        .iter()
        .position(|v| v.contains(&root))
        .expect("root is in some node");
    let rep = |node: usize| -> usize {
        if node == root_node {
            root
        } else {
            map.nodes[node][0]
        }
    };
    let my_rep = rep(map.my_node);
    let lc = map.nodes.len();
    let mut value: Option<P> = mine;
    if me == my_rep {
        // Binomial over node indices, rooted at root_node (MPICH child
        // order: largest subtree first).
        let vr = (map.my_node + lc - root_node) % lc;
        let mut mask = 1usize;
        while mask < lc {
            if vr & mask != 0 {
                let src = rep((vr - mask + root_node) % lc);
                value = Some(comm.recv_internal(ctx, src, t_inter));
                break;
            }
            mask <<= 1;
        }
        let got = value.expect("broadcast value must have arrived");
        mask >>= 1;
        let mut children = Vec::new();
        while mask > 0 {
            if vr & mask == 0 && vr + mask < lc {
                children.push(rep((vr + mask + root_node) % lc));
            }
            mask >>= 1;
        }
        for &dst in &children {
            comm.send_internal(ctx, dst, t_inter, got.clone());
        }
        // Intra-node fan-out.
        for &m in &map.nodes[map.my_node] {
            if m != me {
                comm.send_internal(ctx, m, t_down, got.clone());
            }
        }
        got
    } else {
        comm.recv_internal(ctx, my_rep, t_down)
    }
}

/// Two-level large-message broadcast: same leader structure as
/// [`bcast_hier`] (the vector crosses the network once per node). Falls back
/// to the van de Geijn scatter+allgather when [`node_map`] declines.
pub fn bcast_large_hier<T: Copy + Send + 'static>(
    comm: &Comm,
    ctx: &RankCtx,
    root: usize,
    mine: Option<Vec<T>>,
    len: usize,
) -> Vec<T> {
    if node_map(comm, ctx).is_some() {
        if let Some(data) = &mine {
            assert_eq!(data.len(), len, "root data length disagrees with len");
        }
        bcast_hier(comm, ctx, root, mine)
    } else {
        bcast_large(comm, ctx, root, mine, len)
    }
}

/// Two-level allreduce: Rabenseifner's decomposition over the hierarchical
/// primitives — node-combining reduce-scatter, then node-block allgather.
/// Falls back to the flat pair when [`node_map`] declines.
pub fn allreduce_hier<T: ReduceElem>(comm: &Comm, ctx: &RankCtx, data: Vec<T>) -> Vec<T> {
    let g = comm.size();
    if g == 1 {
        return data;
    }
    let n = data.len();
    let base = n / g;
    let extra = n % g;
    let counts: Vec<usize> = (0..g)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect();
    let mine = reduce_scatter_hier(comm, ctx, data, &counts);
    allgatherv_hier(comm, ctx, mine, &counts)
}

/// Which collective algorithm family a program requests. `Hier` routes the
/// bandwidth-bound collectives through the two-level node-aware entry
/// points, which themselves fall back to the flat algorithms whenever
/// [`node_map`] declines — so `Hier` is always safe to request, and `Flat`
/// exists to force the topology-oblivious baselines (the ablation control).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Collectives {
    /// Single-level ring/tree algorithms, regardless of topology.
    #[default]
    Flat,
    /// Two-level node-aware algorithms where the communicator spans ≥ 2
    /// nodes with ≥ 2 ranks on one of them; flat otherwise.
    Hier,
}

impl Collectives {
    /// Canonical lowercase name, as written to report `meta` blocks and
    /// accepted by the CLI `--collectives` flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Collectives::Flat => "flat",
            Collectives::Hier => "hier",
        }
    }

    /// Parses [`Collectives::as_str`] output.
    pub fn parse(s: &str) -> Option<Collectives> {
        match s {
            "flat" => Some(Collectives::Flat),
            "hier" => Some(Collectives::Hier),
            _ => None,
        }
    }
}

/// [`allgatherv`] or [`allgatherv_hier`], by mode.
pub fn allgatherv_mode<T: Copy + Send + 'static>(
    mode: Collectives,
    comm: &Comm,
    ctx: &RankCtx,
    mine: Vec<T>,
    counts: &[usize],
) -> Vec<T> {
    match mode {
        Collectives::Flat => allgatherv(comm, ctx, mine, counts),
        Collectives::Hier => allgatherv_hier(comm, ctx, mine, counts),
    }
}

/// [`reduce_scatter`] or [`reduce_scatter_hier`], by mode.
pub fn reduce_scatter_mode<T: ReduceElem>(
    mode: Collectives,
    comm: &Comm,
    ctx: &RankCtx,
    data: Vec<T>,
    counts: &[usize],
) -> Vec<T> {
    match mode {
        Collectives::Flat => reduce_scatter(comm, ctx, data, counts),
        Collectives::Hier => reduce_scatter_hier(comm, ctx, data, counts),
    }
}

/// [`bcast_large`] or [`bcast_large_hier`], by mode.
pub fn bcast_large_mode<T: Copy + Send + 'static>(
    mode: Collectives,
    comm: &Comm,
    ctx: &RankCtx,
    root: usize,
    mine: Option<Vec<T>>,
    len: usize,
) -> Vec<T> {
    match mode {
        Collectives::Flat => bcast_large(comm, ctx, root, mine, len),
        Collectives::Hier => bcast_large_hier(comm, ctx, root, mine, len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn barrier_all_sizes() {
        for p in [1usize, 2, 3, 5, 8] {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                barrier(&comm, ctx);
                barrier(&comm, ctx);
            });
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for p in [1usize, 2, 4, 7] {
            for root in 0..p {
                World::run(p, |ctx| {
                    let comm = Comm::world(ctx);
                    let mine = (comm.rank() == root).then(|| vec![root as f64, 42.0]);
                    let got = bcast(&comm, ctx, root, mine);
                    assert_eq!(got, vec![root as f64, 42.0]);
                });
            }
        }
    }

    #[test]
    fn bcast_large_from_each_root() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                World::run(p, |ctx| {
                    let comm = Comm::world(ctx);
                    let want: Vec<u64> = (0..23).collect();
                    let mine = (comm.rank() == root).then(|| want.clone());
                    let got = bcast_large(&comm, ctx, root, mine, 23);
                    assert_eq!(got, want);
                });
            }
        }
    }

    #[test]
    fn bcast_large_volume_matches_formula() {
        // root sends at most 2n(g-1)/g elements
        let p = 4;
        let n = 64usize;
        let (_, report) = World::run_traced(p, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("bc");
            let mine = (comm.rank() == 0).then(|| vec![1.0f64; n]);
            let _ = bcast_large(&comm, ctx, 0, mine, n);
        });
        // root: scatter (n*(g-1)/g) + ring allgather ((g-1) * n/g)
        let want = (n * (p - 1) / p + (p - 1) * (n / p)) * 8;
        assert_eq!(report.phase(0, "bc").bytes as usize, want);
        // non-roots only pay the allgather part
        for r in 1..p {
            assert_eq!(report.phase(r, "bc").bytes as usize, (p - 1) * (n / p) * 8);
        }
    }

    #[test]
    fn bcast_large_short_buffer() {
        // len < g: some segments empty
        World::run(6, |ctx| {
            let comm = Comm::world(ctx);
            let mine = (comm.rank() == 2).then(|| vec![7u8, 8, 9]);
            let got = bcast_large(&comm, ctx, 2, mine, 3);
            assert_eq!(got, vec![7, 8, 9]);
        });
    }

    #[test]
    fn allgather_orders_by_rank() {
        for p in [1usize, 3, 4, 6] {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                let got = allgather(&comm, ctx, vec![comm.rank() as u64 * 10, 1]);
                let want: Vec<u64> = (0..p as u64).flat_map(|r| [r * 10, 1]).collect();
                assert_eq!(got, want);
            });
        }
    }

    #[test]
    fn allgatherv_uneven() {
        World::run(4, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let counts = [3usize, 0, 2, 1];
            let mine: Vec<u32> = (0..counts[me]).map(|i| (me * 100 + i) as u32).collect();
            let got = allgatherv(&comm, ctx, mine, &counts);
            assert_eq!(got, vec![0, 1, 2, 200, 201, 300]);
        });
    }

    #[test]
    fn reduce_scatter_sums_segments() {
        for p in [2usize, 3, 5] {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                let counts: Vec<usize> = (0..p).map(|i| i + 1).collect();
                let total: usize = counts.iter().sum();
                // rank r contributes value (r+1) everywhere
                let data = vec![(comm.rank() + 1) as f64; total];
                let got = reduce_scatter(&comm, ctx, data, &counts);
                let expected = (p * (p + 1) / 2) as f64;
                assert_eq!(got.len(), counts[comm.rank()]);
                assert!(got.iter().all(|&v| v == expected));
            });
        }
    }

    #[test]
    fn reduce_scatter_distinct_segments() {
        // Verify each rank gets *its own* segment: contribution at global
        // index i from rank r is r * 1000 + i.
        World::run(3, |ctx| {
            let comm = Comm::world(ctx);
            let counts = [2usize, 2, 2];
            let data: Vec<f64> = (0..6).map(|i| (comm.rank() * 1000 + i) as f64).collect();
            let got = reduce_scatter(&comm, ctx, data, &counts);
            let me = comm.rank();
            for (k, &v) in got.iter().enumerate() {
                let i = me * 2 + k;
                let want = (1000 + 2000 + 3 * i) as f64;
                assert_eq!(v, want, "segment value at {i}");
            }
        });
    }

    #[test]
    fn allreduce_matches_serial_sum() {
        for p in [1usize, 2, 4, 5] {
            World::run(p, |ctx| {
                let comm = Comm::world(ctx);
                let data: Vec<f64> = (0..7)
                    .map(|i| (comm.rank() + 1) as f64 * i as f64)
                    .collect();
                let got = allreduce(&comm, ctx, data);
                let scale: f64 = (1..=p).map(|r| r as f64).sum();
                for (i, &v) in got.iter().enumerate() {
                    assert!((v - scale * i as f64).abs() < 1e-12);
                }
            });
        }
    }

    #[test]
    fn alltoallv_permutes() {
        World::run(4, |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            // send to each rank j a vector [me, j] of length j (empty to 0)
            let sends: Vec<Vec<u64>> = (0..4).map(|j| vec![(me * 10 + j) as u64; j]).collect();
            let recvs = alltoallv(&comm, ctx, sends);
            for (i, r) in recvs.iter().enumerate() {
                assert_eq!(r.len(), me);
                assert!(r.iter().all(|&v| v == (i * 10 + me) as u64));
            }
        });
    }

    #[test]
    fn gatherv_collects_at_root() {
        World::run(3, |ctx| {
            let comm = Comm::world(ctx);
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            let got = gatherv(&comm, ctx, mine, 1);
            if comm.rank() == 1 {
                let got = got.unwrap();
                assert_eq!(got, vec![vec![0], vec![1, 1], vec![2, 2, 2]]);
            } else {
                assert!(got.is_none());
            }
        });
    }

    #[test]
    fn allgather_volume_matches_ring_formula() {
        // Per-rank sent bytes of ring allgather = (P-1) * block_bytes.
        let p = 5;
        let block = 16usize; // u64 elements
        let (_, report) = World::run_traced(p, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("ag");
            let _ = allgather(&comm, ctx, vec![0u64; block]);
        });
        for r in 0..p {
            assert_eq!(report.phase(r, "ag").bytes as usize, (p - 1) * block * 8);
            assert_eq!(report.phase(r, "ag").msgs as usize, p - 1);
        }
    }

    #[test]
    fn reduce_scatter_volume_matches_ring_formula() {
        let p = 4;
        let seg = 8usize;
        let (_, report) = World::run_traced(p, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("rs");
            let counts = vec![seg; p];
            let _ = reduce_scatter(&comm, ctx, vec![1.0f64; seg * p], &counts);
        });
        for r in 0..p {
            assert_eq!(report.phase(r, "rs").bytes as usize, (p - 1) * seg * 8);
        }
    }

    #[test]
    fn collectives_on_subgroups_do_not_interfere() {
        World::run(6, |ctx| {
            let comm = Comm::world(ctx);
            let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
            let sub = comm.subgroup(ctx, &groups).unwrap();
            // run different collectives concurrently in the two groups
            if comm.rank() < 3 {
                let v = allgather(&sub, ctx, vec![sub.rank() as u64]);
                assert_eq!(v, vec![0, 1, 2]);
            } else {
                let v = allreduce(&sub, ctx, vec![1.0f64; 5]);
                assert!(v.iter().all(|&x| x == 3.0));
            }
            barrier(&comm, ctx);
        });
    }

    use crate::world::RunOptions;

    /// Run options with a node layout attached (wall-clock run).
    fn topo(rpn: usize) -> RunOptions {
        RunOptions {
            ranks_per_node: Some(rpn),
            ..RunOptions::default()
        }
    }

    fn topo_traced(rpn: usize) -> RunOptions {
        RunOptions {
            trace: true,
            ranks_per_node: Some(rpn),
            ..RunOptions::default()
        }
    }

    #[test]
    fn node_map_selection_rules() {
        // No topology attached → flat.
        World::run(4, |ctx| {
            let comm = Comm::world(ctx);
            assert!(node_map(&comm, ctx).is_none());
        });
        // All nodes singleton (1 rank per node) → flat.
        World::run_opts(4, topo(1), |ctx| {
            let comm = Comm::world(ctx);
            assert!(node_map(&comm, ctx).is_none());
        });
        // Whole communicator inside one node → flat.
        World::run_opts(4, topo(8), |ctx| {
            let comm = Comm::world(ctx);
            assert!(node_map(&comm, ctx).is_none());
        });
        // 3 nodes × 2 members → hier, leaders are the even ranks.
        World::run_opts(6, topo(2), |ctx| {
            let comm = Comm::world(ctx);
            let map = node_map(&comm, ctx).expect("hier engages");
            assert_eq!(map.nodes, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
            assert_eq!(map.my_node, comm.rank() / 2);
            assert_eq!(map.my_slot, comm.rank() % 2);
            assert_eq!(map.node_count(), 3);
            assert_eq!(map.max_members(), 2);
        });
        // Subgroups see their own layout: {0,1,4} on 4-rank nodes spans two
        // nodes with one multi-member node → hier; {0,2} (both on node 0 of
        // 4-rank nodes) → flat.
        World::run_opts(6, topo(4), |ctx| {
            let comm = Comm::world(ctx);
            let groups = vec![vec![0, 1, 4], vec![2, 3, 5]];
            let sub = comm.subgroup(ctx, &groups).unwrap();
            let map = node_map(&sub, ctx);
            if comm.rank() == 0 || comm.rank() == 1 || comm.rank() == 4 {
                let map = map.expect("hier engages on {0,1,4}");
                assert_eq!(map.nodes, vec![vec![0, 1], vec![2]]);
            } else {
                // {2,3,5}: members on node 0 (ranks 2,3) and node 1 (rank 5).
                let map = map.expect("hier engages on {2,3,5}");
                assert_eq!(map.nodes, vec![vec![0, 1], vec![2]]);
            }
        });
    }

    #[test]
    fn hier_matches_flat_results() {
        // 3 nodes × 2 ranks: every hierarchical collective must produce the
        // same values the flat one does.
        World::run_opts(6, topo(2), |ctx| {
            let comm = Comm::world(ctx);
            let me = comm.rank();
            let p = comm.size();

            // allgatherv, uneven counts (one empty contribution).
            let counts = [3usize, 0, 2, 1, 4, 2];
            let mine: Vec<u32> = (0..counts[me]).map(|i| (me * 100 + i) as u32).collect();
            let want: Vec<u32> = (0..p)
                .flat_map(|r| (0..counts[r]).map(move |i| (r * 100 + i) as u32))
                .collect();
            assert_eq!(allgatherv_hier(&comm, ctx, mine, &counts), want);

            // reduce_scatter, distinct segments, integer-valued f64 so the
            // association order cannot change bits.
            let counts = [2usize, 2, 2, 2, 2, 2];
            let data: Vec<f64> = (0..12).map(|i| (me * 1000 + i) as f64).collect();
            let got = reduce_scatter_hier(&comm, ctx, data, &counts);
            let rank_sum = (0..p).map(|r| r * 1000).sum::<usize>() as f64;
            for (k, &v) in got.iter().enumerate() {
                let i = me * 2 + k;
                assert_eq!(v, rank_sum + (p * i) as f64, "segment value at {i}");
            }

            // bcast from a non-leader root, and bcast_large.
            for root in [0usize, 3] {
                let mine = (me == root).then(|| vec![root as u64, 77]);
                assert_eq!(bcast_hier(&comm, ctx, root, mine), vec![root as u64, 77]);
                let want: Vec<u64> = (0..23).collect();
                let mine = (me == root).then(|| want.clone());
                assert_eq!(bcast_large_hier(&comm, ctx, root, mine, 23), want);
            }

            // allreduce.
            let data: Vec<f64> = (0..7).map(|i| ((me + 1) * i) as f64).collect();
            let got = allreduce_hier(&comm, ctx, data);
            let scale = (p * (p + 1) / 2) as f64;
            for (i, &v) in got.iter().enumerate() {
                assert_eq!(v, scale * i as f64);
            }
        });
    }

    #[test]
    fn hier_without_topology_is_flat() {
        // The *_hier entry points are safe defaults: with no node layout they
        // run the flat algorithms (same results, flat attribution).
        let (_, report) = World::run_traced(4, |ctx| {
            let comm = Comm::world(ctx);
            let v = allgather_hier(&comm, ctx, vec![comm.rank() as u64]);
            assert_eq!(v, vec![0, 1, 2, 3]);
        });
        assert!(report.hist_by_algo.contains_key("ring_allgatherv"));
        assert!(!report.hist_by_algo.contains_key("hier_allgatherv"));
    }

    #[test]
    fn hier_allgather_volume_matches_leader_formula() {
        // 3 nodes × 2 ranks, even blocks of B elements: a member sends its
        // own block up (B); a leader sends L−1 ring blocks (total − next
        // node's block = 6B − 2B = 4B) plus the assembled buffer down to its
        // member (6B) — 10B. Message counts: member 1, leader (L−1)+(m−1)=3.
        let b = 16usize;
        let (_, report) = World::run_opts(6, topo_traced(2), |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("ag");
            let _ = allgather_hier(&comm, ctx, vec![0u64; b]);
        });
        for r in 0..6 {
            let c = report.phase(r, "ag");
            if r % 2 == 0 {
                assert_eq!(c.bytes as usize, 10 * b * 8, "leader {r}");
                assert_eq!(c.msgs, 3, "leader {r}");
            } else {
                assert_eq!(c.bytes as usize, b * 8, "member {r}");
                assert_eq!(c.msgs, 1, "member {r}");
            }
        }
        assert!(report.hist_by_algo.contains_key("hier_allgatherv"));
        assert!(!report.hist_by_algo.contains_key("ring_allgatherv"));
    }

    #[test]
    fn hier_reduce_scatter_volume_matches_leader_formula() {
        // 3 nodes × 2 ranks, segments of S elements (total 6S): a member
        // sends its whole vector up (6S, 1 msg); a leader sends L−1 ring
        // blocks (total − own node block = 6S − 2S = 4S) plus its member's
        // segment down (S) — 5S, (L−1)+(m−1) = 3 msgs.
        let s = 8usize;
        let (_, report) = World::run_opts(6, topo_traced(2), |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("rs");
            let counts = vec![s; 6];
            let _ = reduce_scatter_hier(&comm, ctx, vec![1.0f64; 6 * s], &counts);
        });
        for r in 0..6 {
            let c = report.phase(r, "rs");
            if r % 2 == 0 {
                assert_eq!(c.bytes as usize, 5 * s * 8, "leader {r}");
                assert_eq!(c.msgs, 3, "leader {r}");
            } else {
                assert_eq!(c.bytes as usize, 6 * s * 8, "member {r}");
                assert_eq!(c.msgs, 1, "member {r}");
            }
        }
        assert!(report.hist_by_algo.contains_key("hier_reduce_scatter"));
    }
}
