//! A reusable world: long-lived rank threads that run many jobs.
//!
//! [`crate::World::run`] spawns and joins `p` scoped threads per call —
//! right for tests, wasteful for a daemon that multiplies thousands of
//! times. A [`PersistentWorld`] spawns its rank workers **once**; each
//! [`PersistentWorld::run_job`] hands every worker one closure over a fresh
//! per-job fabric, so jobs are fully isolated from each other (separate
//! mailboxes, traffic counters, and [`RunReport`]s) while the threads — and
//! the warmed kernel pool underneath them — persist.
//!
//! # Panic containment
//!
//! A rank panic inside a job is caught (`catch_unwind`) and surfaced as
//! [`JobPanic`] instead of crashing the process, and the workers survive to
//! take the next job. The same caveat as [`crate::World::run`] applies: if
//! a panic fires on *some* ranks only, the others may block forever waiting
//! for messages that will never come — so callers (the `ca3dmm-serve`
//! request path) must validate inputs up front, leaving only
//! deterministic-across-ranks panics possible inside a job.

use crate::chan::Receiver;
use crate::comm::Envelope;
use crate::trace::RawEvent;
use crate::world::{assemble_report, Fabric, RankCtx, RunOptions, RunReport};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// One rank of one job: runs on the worker thread owning that rank slot.
type Job = Box<dyn FnOnce() + Send>;

/// What one rank sends back for one job: its closure result plus the trace
/// stream, clock, and kernel profile the report assembler needs — or the
/// stringified panic payload.
type RankOutcome<R> = Result<(R, Vec<RawEvent>, f64, Option<dense::prof::KernelProfile>), String>;

/// A rank panicked inside a [`PersistentWorld::run_job`] job.
#[derive(Clone, Debug)]
pub struct JobPanic {
    /// Lowest-numbered rank that panicked.
    pub rank: usize,
    /// Its panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message)
    }
}

impl std::error::Error for JobPanic {}

struct Worker {
    tx: mpsc::Sender<Job>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// `p` long-lived rank threads, fed one [`Job`] per rank per
/// [`PersistentWorld::run_job`]. Dropping the world closes the job channels
/// and joins the workers.
pub struct PersistentWorld {
    p: usize,
    workers: Vec<Worker>,
    /// Stack size the workers were built with (per-job options cannot
    /// change it, so [`PersistentWorld::run_job`] ignores
    /// [`RunOptions::stack_size`]).
    stack_size: usize,
    /// Serializes jobs: two concurrent `run_job` calls on one world would
    /// interleave their rank closures across the same worker set and
    /// deadlock. Held for the full duration of a job.
    gate: Mutex<()>,
}

impl PersistentWorld {
    /// Spawns `p` rank workers with the default stack size.
    pub fn new(p: usize) -> PersistentWorld {
        PersistentWorld::with_stack_size(p, RunOptions::DEFAULT_STACK_SIZE)
    }

    /// Spawns `p` rank workers with an explicit per-thread stack size.
    pub fn with_stack_size(p: usize, stack_size: usize) -> PersistentWorld {
        assert!(p > 0, "world size must be positive");
        let stack_size = stack_size.max(64 * 1024);
        let workers = (0..p)
            .map(|rank| {
                let (tx, rx) = mpsc::channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("pworld-rank-{rank}"))
                    .stack_size(stack_size)
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn persistent rank worker");
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        PersistentWorld {
            p,
            workers,
            stack_size,
            gate: Mutex::new(()),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Stack size of the rank workers, bytes.
    pub fn stack_size(&self) -> usize {
        self.stack_size
    }

    /// Runs `f` once per rank over a fresh fabric, like
    /// [`crate::World::run_opts`], but on the persistent workers. Returns
    /// the per-rank results in rank order plus the job's own [`RunReport`].
    ///
    /// Jobs on one world serialize (an internal gate); give concurrent
    /// streams their own `PersistentWorld` each. `opts.stack_size` is
    /// ignored — the workers' stacks were sized at construction.
    ///
    /// # Errors
    /// [`JobPanic`] if any rank's closure panicked; the workers remain
    /// usable for subsequent jobs.
    pub fn run_job<R, F>(&self, opts: RunOptions, f: F) -> Result<(Vec<R>, RunReport), JobPanic>
    where
        R: Send + 'static,
        F: Fn(&RankCtx) -> R + Send + Sync + 'static,
    {
        let _job = crate::lock_mutex(&self.gate);
        let p = self.p;
        let (fabric, receivers) = Fabric::new(p);
        let epoch = Instant::now();
        let kernel_threads = opts
            .kernel_threads_per_rank
            .map_or_else(|| dense::pool::rank_threads_for(p), |n| n.max(1));
        let topo_rpn = opts.ranks_per_node;
        let f = Arc::new(f);

        let (res_tx, res_rx) = mpsc::channel::<(usize, RankOutcome<R>)>();
        for (rank, rx) in receivers.into_iter().enumerate() {
            let fabric = Arc::clone(&fabric);
            let f = Arc::clone(&f);
            let res_tx = res_tx.clone();
            let job: Job = Box::new(move || {
                run_rank_job(
                    rank,
                    p,
                    fabric,
                    rx,
                    kernel_threads,
                    opts,
                    epoch,
                    topo_rpn,
                    f,
                    res_tx,
                );
            });
            self.workers[rank]
                .tx
                .send(job)
                .expect("persistent rank worker died");
        }
        drop(res_tx);

        let mut slots: Vec<Option<R>> = (0..p).map(|_| None).collect();
        let mut streams: Vec<Vec<RawEvent>> = vec![Vec::new(); p];
        let mut clocks = vec![0.0; p];
        let mut profiles: Vec<Option<dense::prof::KernelProfile>> = vec![None; p];
        let mut first_panic: Option<JobPanic> = None;
        for _ in 0..p {
            let (rank, out) = res_rx.recv().expect("rank worker dropped its result");
            match out {
                Ok((r, events, clock, profile)) => {
                    slots[rank] = Some(r);
                    streams[rank] = events;
                    clocks[rank] = clock;
                    profiles[rank] = profile;
                }
                Err(message) => {
                    let candidate = JobPanic { rank, message };
                    if first_panic.as_ref().is_none_or(|p| candidate.rank < p.rank) {
                        first_panic = Some(candidate);
                    }
                }
            }
        }
        if let Some(panic) = first_panic {
            return Err(panic);
        }
        let results: Vec<R> = slots
            .into_iter()
            .map(|r| r.expect("every rank reported ok"))
            .collect();
        let report = assemble_report(&fabric, opts.trace, epoch, None, streams, clocks, profiles);
        Ok((results, report))
    }
}

impl Drop for PersistentWorld {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop.
        for w in &mut self.workers {
            let (dead_tx, _) = mpsc::channel();
            w.tx = dead_tx;
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// One rank's execution of one job, on its worker thread.
#[allow(clippy::too_many_arguments)]
fn run_rank_job<R, F>(
    rank: usize,
    p: usize,
    fabric: Arc<Fabric>,
    rx: Receiver<Envelope>,
    kernel_threads: usize,
    opts: RunOptions,
    epoch: Instant,
    topo_rpn: Option<usize>,
    f: Arc<F>,
    res_tx: mpsc::Sender<(usize, RankOutcome<R>)>,
) where
    R: Send + 'static,
    F: Fn(&RankCtx) -> R + Send + Sync + 'static,
{
    // Re-assert the per-job kernel budget every job: the thread persists,
    // so the cap set by the previous job (possibly a different width) is
    // still in place.
    dense::pool::set_rank_gemm_threads(Some(kernel_threads));
    let prof_on = dense::prof::profiling_enabled();
    if prof_on {
        dense::prof::begin_capture();
    }
    let out = catch_unwind(AssertUnwindSafe(|| {
        let ctx = RankCtx::fresh(rank, p, fabric, rx, None, opts.trace, epoch, topo_rpn);
        let r = f(&ctx);
        let events = ctx.finish();
        let clock = ctx.clock_secs();
        (r, events, clock)
    }));
    // Always close the capture so a panicking job cannot leak an open
    // capture into the next job on this thread.
    let profile = if prof_on {
        dense::prof::end_capture()
    } else {
        None
    };
    let msg = match out {
        Ok((r, events, clock)) => Ok((r, events, clock, profile)),
        Err(e) => Err(e
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| e.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>")
            .to_owned()),
    };
    // The receiver may be gone if the caller bailed early; nothing to do.
    let _ = res_tx.send((rank, msg));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Comm;

    #[test]
    fn jobs_reuse_the_same_workers() {
        let w = PersistentWorld::new(4);
        let (ids_a, _) = w
            .run_job(RunOptions::default(), |_ctx| {
                std::thread::current().name().map(str::to_owned)
            })
            .unwrap();
        let (ids_b, _) = w
            .run_job(RunOptions::default(), |ctx| {
                let _ = ctx.world_rank();
                std::thread::current().name().map(str::to_owned)
            })
            .unwrap();
        assert_eq!(ids_a, ids_b);
        assert_eq!(ids_a[2].as_deref(), Some("pworld-rank-2"));
    }

    #[test]
    fn jobs_communicate_and_report_independently() {
        let w = PersistentWorld::new(3);
        for round in 0..3u64 {
            let (sums, report) = w
                .run_job(RunOptions::default(), move |ctx| {
                    ctx.set_phase("ring");
                    let world = Comm::world(ctx);
                    let me = world.rank();
                    let p = world.size();
                    let payload = vec![round + me as u64];
                    let got: Vec<u64> =
                        world.sendrecv(ctx, (me + 1) % p, (me + p - 1) % p, 7, payload);
                    got[0]
                })
                .unwrap();
            let expect: Vec<u64> = (0..3).map(|me| round + ((me + 2) % 3) as u64).collect();
            assert_eq!(sums, expect);
            // each job's report counts only its own traffic: 3 sends of 8 bytes
            assert_eq!(report.phase_total("ring").msgs, 3);
            assert_eq!(report.phase_total("ring").bytes, 3 * 8);
        }
    }

    #[test]
    fn panics_are_contained_and_workers_survive() {
        let w = PersistentWorld::new(2);
        let err = w
            .run_job(RunOptions::default(), |_ctx| {
                panic!("deterministic validation failure");
            })
            .map(|_| ())
            .unwrap_err();
        assert!(err.message.contains("deterministic validation failure"));
        assert_eq!(err.rank, 0, "lowest panicking rank wins");
        // the world still works
        let (vals, _) = w
            .run_job(RunOptions::default(), |ctx| ctx.world_rank() * 10)
            .unwrap();
        assert_eq!(vals, vec![0, 10]);
    }

    #[test]
    fn kernel_budget_is_reasserted_per_job() {
        let w = PersistentWorld::new(2);
        let opts = RunOptions {
            kernel_threads_per_rank: Some(3),
            ..RunOptions::default()
        };
        let (widths, _) = w.run_job(opts, |_| dense::pool::gemm_threads()).unwrap();
        assert_eq!(widths, vec![3, 3]);
        let (widths, _) = w
            .run_job(RunOptions::default(), |_| dense::pool::gemm_threads())
            .unwrap();
        let expect = dense::pool::rank_threads_for(2);
        assert_eq!(widths, vec![expect, expect]);
    }

    #[test]
    fn traced_jobs_build_timelines() {
        let w = PersistentWorld::new(2);
        let (_, report) = w
            .run_job(RunOptions::traced(), |ctx| {
                ctx.set_phase("work");
            })
            .unwrap();
        assert_eq!(report.timeline.ranks(), 2);
        assert!(report.timeline.phase_secs(0, "work") >= 0.0);
        assert_eq!(report.timeline.phases(), vec!["work".to_owned()]);
    }
}
