//! The versioned `RunReport` JSON artifact and its consumers.
//!
//! [`crate::RunReport::to_json`] serializes everything one run measured —
//! per-phase traffic (both directions), the rank×rank communication matrix,
//! message-size histograms, wait-time attribution, and (for traced runs)
//! the critical path — under an explicit `schema_version`, so reports
//! written by different builds can be compared mechanically.
//! [`RunReportDoc`] parses and validates the artifact back;
//! [`RunReportDoc::render_dashboard`] turns one into a text dashboard,
//! [`diff_reports`] compares two measured runs with a percentage threshold,
//! and [`gate`] is the CI regression gate.
//!
//! # Gate policy: exact vs ratio
//!
//! Byte counts, message counts, matrix cells, and histogram buckets are
//! deterministic functions of the algorithm, the problem, and the grid
//! search — the same on every machine — so the gate compares them for
//! **exact equality**: a single extra byte is a real algorithmic change.
//! Wall and wait seconds depend on the host, so they are gated only by a
//! **ratio** bound when the policy asks for one, and never across machines.

use crate::metrics::{bucket_label, fmt_bytes, CellCounts, CommMatrix, SizeHistogram};
use crate::world::RunReport;
use jsonlite::Json;
use netmodel::{Machine, Placement};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the RunReport JSON schema this build writes. Version history:
///
/// * **v1** — wall-clock only; the comm matrix is four dense `p×p` grids.
/// * **v2** — adds `time_domain` (`"wall"` or `"virtual"`) and, for
///   virtual-time runs, a `sim` block (machine, placement, makespan); the
///   matrix switches to sparse cell lists (dense grids are ~75 MB of JSON
///   at p = 3072). The parser still reads v1, implying `"wall"`.
/// * **v3** — adds the `compute` block: per-rank kernel profiles (GEMM
///   phase split, pack-volume bound, roofline, pool telemetry) captured
///   when `DENSE_GEMM_PROF` was on during a wall-clock run; `null` when
///   profiling was off. Aggregates only — raw spans stay in the Chrome
///   trace. The parser still reads v1/v2, implying no compute block, and
///   [`gate`] refuses to compare compute across schema versions.
pub const SCHEMA_VERSION: u64 = 3;

/// Oldest schema version [`RunReportDoc::parse`] still reads.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// The `kind` discriminator of RunReport documents.
pub const REPORT_KIND: &str = "ca3dmm_run_report";

fn num_u(n: u64) -> Json {
    Json::Num(n as f64)
}

fn num_f(f: f64) -> Json {
    Json::Num(f)
}

fn hist_json(h: &SizeHistogram) -> Json {
    Json::obj([
        ("msgs", num_u(h.msgs)),
        ("bytes", num_u(h.bytes)),
        (
            "buckets",
            Json::Arr(
                h.nonzero()
                    .into_iter()
                    .map(|(b, c)| Json::Arr(vec![num_u(b as u64), num_u(c)]))
                    .collect(),
            ),
        ),
    ])
}

fn sparse_cells(cells: Vec<(usize, usize, CellCounts)>) -> Json {
    Json::Arr(
        cells
            .into_iter()
            .map(|(row, col, c)| {
                Json::Arr(vec![
                    num_u(row as u64),
                    num_u(col as u64),
                    num_u(c.bytes),
                    num_u(c.msgs),
                ])
            })
            .collect(),
    )
}

impl RunReport {
    /// Serializes this run's measurements as a schema-versioned JSON
    /// document. `meta` is caller-provided context (problem name, m/n/k/p,
    /// grid, …) stored verbatim under `"meta"` — the report layer does not
    /// interpret it beyond carrying it along.
    pub fn to_json(&self, meta: Json) -> Json {
        let t = &self.traffic;
        let p = t.per_rank.len();
        let phases: Vec<Json> = t
            .phases()
            .into_iter()
            .map(|ph| {
                let total = t.phase_total(&ph);
                let max_sent = (0..p).map(|r| t.phase(r, &ph).bytes).max().unwrap_or(0);
                let max_msgs = (0..p).map(|r| t.phase(r, &ph).msgs).max().unwrap_or(0);
                let secs_sum: f64 = (0..p).map(|r| t.phase_secs(r, &ph)).sum();
                let wait_sum: f64 = (0..p).map(|r| t.wait_secs(r, &ph)).sum();
                Json::obj([
                    ("phase", Json::Str(ph.clone())),
                    ("sent_bytes", num_u(total.bytes)),
                    ("sent_msgs", num_u(total.msgs)),
                    ("recv_bytes", num_u(total.recv_bytes)),
                    ("recv_msgs", num_u(total.recv_msgs)),
                    ("max_rank_sent_bytes", num_u(max_sent)),
                    ("max_rank_sent_msgs", num_u(max_msgs)),
                    ("secs_max", num_f(t.phase_secs_max(&ph))),
                    ("secs_sum", num_f(secs_sum)),
                    ("wait_max", num_f(t.wait_secs_max(&ph))),
                    ("wait_sum", num_f(wait_sum)),
                ])
            })
            .collect();
        let hists = |m: &BTreeMap<String, SizeHistogram>| {
            Json::Obj(m.iter().map(|(k, h)| (k.clone(), hist_json(h))).collect())
        };
        let critical_path = if !self.timeline.is_empty() {
            Json::Arr(
                self.timeline
                    .critical_path()
                    .phases
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("phase", Json::Str(c.phase.clone())),
                            ("crit_secs", num_f(c.crit_secs)),
                            ("crit_rank", num_u(c.crit_rank as u64)),
                            ("comm_secs", num_f(c.comm_secs)),
                            ("comp_secs", num_f(c.comp_secs)),
                            ("mean_secs", num_f(c.mean_secs)),
                        ])
                    })
                    .collect(),
            )
        } else if self.sim.is_some() {
            // Virtual-time runs carry no event trace (spans would measure
            // the meaningless wall clock), but the per-rank virtual phase
            // clocks determine the critical path exactly: the slowest rank
            // of each phase, with its blocked (rendezvous) seconds as the
            // communication share.
            Json::Arr(
                t.phases()
                    .into_iter()
                    .map(|ph| {
                        let (crit_rank, crit_secs) =
                            (0..p).map(|r| (r, t.phase_secs(r, &ph))).fold(
                                (0, f64::MIN),
                                |best, cur| {
                                    if cur.1 > best.1 {
                                        cur
                                    } else {
                                        best
                                    }
                                },
                            );
                        let active: Vec<f64> = (0..p)
                            .map(|r| t.phase_secs(r, &ph))
                            .filter(|&s| s > 0.0)
                            .collect();
                        let mean_secs = if active.is_empty() {
                            0.0
                        } else {
                            active.iter().sum::<f64>() / active.len() as f64
                        };
                        let comm_secs = t.wait_secs(crit_rank, &ph);
                        Json::obj([
                            ("phase", Json::Str(ph.clone())),
                            ("crit_secs", num_f(crit_secs)),
                            ("crit_rank", num_u(crit_rank as u64)),
                            ("comm_secs", num_f(comm_secs)),
                            ("comp_secs", num_f(crit_secs - comm_secs)),
                            ("mean_secs", num_f(mean_secs)),
                        ])
                    })
                    .collect(),
            )
        } else {
            Json::Null
        };
        let sim_block = match &self.sim {
            None => Json::Null,
            Some(s) => Json::obj([
                ("machine", s.machine.to_json()),
                ("placement", s.placement.to_json()),
                ("execute_compute", Json::Bool(s.execute_compute)),
                ("makespan_secs", num_f(s.makespan_secs)),
            ]),
        };
        let time_domain = if self.sim.is_some() {
            "virtual"
        } else {
            "wall"
        };
        // Aggregates only: spans are deliberately NOT serialized (they go to
        // the Chrome trace instead; a profiled run retains up to
        // threads × RING_CAPACITY of them).
        let compute = if self.compute.iter().any(Option::is_some) {
            Json::Arr(
                self.compute
                    .iter()
                    .map(|c| match c {
                        None => Json::Null,
                        Some(cp) => {
                            let k = &cp.profile;
                            Json::obj([
                                ("gemm_calls", num_u(k.gemm_calls)),
                                ("flops", num_f(k.flops)),
                                ("gemm_wall_secs", num_f(k.gemm_wall_secs)),
                                ("thread_secs", num_f(k.thread_secs)),
                                ("pack_a_secs", num_f(k.pack_a_secs)),
                                ("pack_b_secs", num_f(k.pack_b_secs)),
                                ("compute_secs", num_f(k.compute_secs)),
                                ("idle_secs", num_f(k.idle_secs)),
                                ("pack_bytes", num_u(k.pack_bytes)),
                                ("pack_bound_bytes", num_u(k.pack_bound_bytes)),
                                ("achieved_gflops", num_f(k.achieved_gflops)),
                                ("kernel", Json::Str(k.kernel.to_owned())),
                                ("peak_gflops", num_f(k.peak_gflops)),
                                ("max_width", num_u(k.max_width as u64)),
                                ("imbalance", num_f(k.imbalance)),
                                ("coverage", num_f(k.coverage)),
                                ("dropped_spans", num_u(k.dropped_spans)),
                                (
                                    "pool",
                                    Json::obj([
                                        ("queue_depth_hwm", num_u(k.pool.queue_depth_hwm)),
                                        ("submit_wake_secs", num_f(k.pool.submit_wake_secs)),
                                        ("jobs", num_u(k.pool.jobs)),
                                        ("regions", num_u(k.pool.regions)),
                                        (
                                            "jobs_per_worker",
                                            Json::Arr(
                                                k.pool
                                                    .jobs_per_worker
                                                    .iter()
                                                    .map(|&j| num_u(j))
                                                    .collect(),
                                            ),
                                        ),
                                    ]),
                                ),
                            ])
                        }
                    })
                    .collect(),
            )
        } else {
            Json::Null
        };
        Json::obj([
            ("schema_version", num_u(SCHEMA_VERSION)),
            ("kind", Json::Str(REPORT_KIND.to_owned())),
            ("time_domain", Json::Str(time_domain.to_owned())),
            ("sim", sim_block),
            ("meta", meta),
            (
                "machine",
                Json::obj([
                    ("arch", Json::Str(std::env::consts::ARCH.to_owned())),
                    ("os", Json::Str(std::env::consts::OS.to_owned())),
                    (
                        "host_parallelism",
                        num_u(std::thread::available_parallelism().map_or(1, |n| n.get()) as u64),
                    ),
                    (
                        "kernel_thread_budget",
                        num_u(dense::pool::base_gemm_threads() as u64),
                    ),
                    (
                        "gemm_kernel",
                        Json::Str(dense::kernel::gemm_kernel().name().to_owned()),
                    ),
                ]),
            ),
            ("ranks", num_u(p as u64)),
            ("phases", Json::Arr(phases)),
            (
                "totals",
                Json::obj([
                    ("sent_bytes", num_u(t.total_bytes())),
                    (
                        "sent_msgs",
                        num_u((0..p).map(|r| t.rank_total(r).msgs).sum()),
                    ),
                    ("max_rank_bytes", num_u(t.max_rank_bytes())),
                    ("max_rank_msgs", num_u(t.max_rank_msgs())),
                ]),
            ),
            (
                "matrix",
                Json::obj([
                    ("format", Json::Str("sparse".to_owned())),
                    ("send", sparse_cells(t.matrix.nonzero_send())),
                    ("recv", sparse_cells(t.matrix.nonzero_recv())),
                ]),
            ),
            (
                "histograms",
                Json::obj([
                    ("by_phase", hists(&t.hist_by_phase)),
                    ("by_algo", hists(&t.hist_by_algo)),
                ]),
            ),
            (
                "wait_per_rank",
                Json::Arr(
                    t.wait_per_rank
                        .iter()
                        .map(|m| Json::Obj(m.iter().map(|(k, &v)| (k.clone(), num_f(v))).collect()))
                        .collect(),
                ),
            ),
            ("critical_path", critical_path),
            ("compute", compute),
        ])
    }
}

/// One phase row of a parsed report.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// Phase label.
    pub phase: String,
    /// Bytes sent by all ranks during the phase.
    pub sent_bytes: u64,
    /// Messages sent by all ranks.
    pub sent_msgs: u64,
    /// Bytes matched in `recv` by all ranks.
    pub recv_bytes: u64,
    /// Messages matched in `recv`.
    pub recv_msgs: u64,
    /// The busiest single rank's sent bytes (the paper's per-phase `Q`).
    pub max_rank_sent_bytes: u64,
    /// The busiest single rank's sent messages (the paper's per-phase `L`);
    /// 0 in artifacts written before this field existed.
    pub max_rank_sent_msgs: u64,
    /// Slowest rank's wall seconds in the phase.
    pub secs_max: f64,
    /// Sum over ranks of wall seconds.
    pub secs_sum: f64,
    /// Slowest rank's seconds blocked in `recv` during the phase.
    pub wait_max: f64,
    /// Sum over ranks of blocked seconds.
    pub wait_sum: f64,
}

/// One critical-path row of a parsed (traced) report.
#[derive(Clone, Debug, PartialEq)]
pub struct CritRow {
    /// Phase label.
    pub phase: String,
    /// Wall seconds on the slowest rank.
    pub crit_secs: f64,
    /// The slowest rank.
    pub crit_rank: usize,
    /// Communication seconds on the slowest rank.
    pub comm_secs: f64,
    /// Compute seconds on the slowest rank.
    pub comp_secs: f64,
    /// Mean over ranks that entered the phase.
    pub mean_secs: f64,
}

/// Run-wide totals of a parsed report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Bytes sent by all ranks.
    pub sent_bytes: u64,
    /// Messages sent by all ranks.
    pub sent_msgs: u64,
    /// The busiest rank's sent bytes (the paper's `Q`).
    pub max_rank_bytes: u64,
    /// The busiest rank's message count (the paper's `L`).
    pub max_rank_msgs: u64,
}

/// The parsed `sim` block of a virtual-time report: what machine the run
/// was simulated on. Lets `ca3dmm-report netdiff` price the analytic model
/// on the same machine the measurement used.
#[derive(Clone, Debug)]
pub struct SimBlock {
    /// The machine model the run was charged against.
    pub machine: Machine,
    /// The rank→node placement used.
    pub placement: Placement,
    /// Whether local GEMMs were actually executed.
    pub execute_compute: bool,
    /// Virtual makespan (largest rank clock at exit), seconds.
    pub makespan_secs: f64,
}

/// One rank's parsed `compute` entry: the kernel profiler's aggregates for
/// that rank's local GEMMs (schema v3+, profiled wall-clock runs only).
#[derive(Clone, Debug, PartialEq)]
pub struct ComputeRow {
    /// Number of `dense::gemm` calls folded into this profile.
    pub gemm_calls: u64,
    /// Useful floating-point operations (2·m·n·k summed over calls).
    pub flops: f64,
    /// Wall seconds inside `dense::gemm` on the rank thread.
    pub gemm_wall_secs: f64,
    /// Σ over calls of `width × wall` — the thread-seconds the kernel had
    /// available. `pack_a + pack_b + compute + idle` reconciles to this.
    pub thread_secs: f64,
    /// Thread-seconds packing A macro-tiles.
    pub pack_a_secs: f64,
    /// Thread-seconds packing B strips.
    pub pack_b_secs: f64,
    /// Thread-seconds in the microkernel macro-tile loop.
    pub compute_secs: f64,
    /// Derived idle thread-seconds (`thread_secs − busy`), clamped ≥ 0.
    pub idle_secs: f64,
    /// Bytes actually written into pack buffers.
    pub pack_bytes: u64,
    /// The O(MC·KC + KC·NC)-per-slab packing bound for the same calls.
    pub pack_bound_bytes: u64,
    /// `flops / compute_secs / 1e9` — per-busy-core achieved rate.
    pub achieved_gflops: f64,
    /// The dispatched microkernel's name (`"portable"`/`"avx2"`/`"avx512"`;
    /// empty for reports written before the field existed).
    pub kernel: String,
    /// The autotuner's probed microkernel peak for the element width *and
    /// dispatched kernel*.
    pub peak_gflops: f64,
    /// Widest parallel region seen during the capture.
    pub max_width: u64,
    /// Max-over-mean per-thread busy seconds (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Fraction of exact busy seconds retained as spans (ring truncation
    /// drops the oldest spans first; aggregates are always exact).
    pub coverage: f64,
    /// Span writes that overwrote unharvested ring entries.
    pub dropped_spans: u64,
    /// Pool telemetry for the capture.
    pub pool: PoolRow,
}

/// The parsed `compute[].pool` telemetry block.
#[derive(Clone, Debug, PartialEq)]
pub struct PoolRow {
    /// Deepest the submit queue got during the capture.
    pub queue_depth_hwm: u64,
    /// Σ submit→wake latency over pool jobs, seconds.
    pub submit_wake_secs: f64,
    /// Pool jobs executed for the capture.
    pub jobs: u64,
    /// `parallel_chunks` regions entered.
    pub regions: u64,
    /// Jobs executed per profiled worker slot (trailing zeros trimmed).
    pub jobs_per_worker: Vec<u64>,
}

impl ComputeRow {
    /// Percentage split of `thread_secs` into pack / compute / idle.
    pub fn pct_split(&self) -> (f64, f64, f64) {
        if self.thread_secs <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let s = 100.0 / self.thread_secs;
        (
            (self.pack_a_secs + self.pack_b_secs) * s,
            self.compute_secs * s,
            self.idle_secs * s,
        )
    }

    /// Achieved fraction of the probed microkernel peak.
    pub fn roofline_frac(&self) -> f64 {
        if self.peak_gflops > 0.0 {
            self.achieved_gflops / self.peak_gflops
        } else {
            0.0
        }
    }
}

/// A parsed, shape-validated RunReport document.
#[derive(Clone, Debug)]
pub struct RunReportDoc {
    /// Schema version the file declared (between [`MIN_SCHEMA_VERSION`] and
    /// [`SCHEMA_VERSION`] after a successful parse).
    pub schema_version: u64,
    /// `"wall"` or `"virtual"` — which clock the report's seconds are in.
    /// Schema-v1 files imply `"wall"`.
    pub time_domain: String,
    /// The simulation block (`Some` exactly when `time_domain` is
    /// `"virtual"`).
    pub sim: Option<SimBlock>,
    /// Caller-provided context, verbatim.
    pub meta: Json,
    /// Machine block, verbatim (arch, os, parallelism).
    pub machine: Json,
    /// World size.
    pub ranks: usize,
    /// Per-phase rows in the file's order.
    pub phases: Vec<PhaseRow>,
    /// Run-wide totals.
    pub totals: Totals,
    /// The reconstructed communication matrix.
    pub matrix: CommMatrix,
    /// Size histograms by sender phase.
    pub hist_by_phase: BTreeMap<String, SizeHistogram>,
    /// Size histograms by collective algorithm.
    pub hist_by_algo: BTreeMap<String, SizeHistogram>,
    /// Per-rank blocked seconds per phase.
    pub wait_per_rank: Vec<BTreeMap<String, f64>>,
    /// Critical-path rows (None for untraced runs).
    pub critical_path: Option<Vec<CritRow>>,
    /// Per-rank kernel profiles (None for v1/v2 artifacts and unprofiled
    /// runs; entries are None for ranks that ran no profiled GEMM).
    pub compute: Option<Vec<Option<ComputeRow>>>,
}

fn want_u64(v: &Json, what: &str) -> Result<u64, String> {
    let f = v
        .as_f64()
        .ok_or_else(|| format!("{what} is not a number"))?;
    if f < 0.0 || f.fract() != 0.0 {
        return Err(format!("{what} = {f} is not a non-negative integer"));
    }
    Ok(f as u64)
}

fn field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what} is missing field {key:?}"))
}

fn field_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    want_u64(field(obj, key, what)?, &format!("{what}.{key}"))
}

fn field_f64(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    field(obj, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}.{key} is not a number"))
}

fn parse_grid(v: &Json, p: usize, what: &str) -> Result<Vec<Vec<u64>>, String> {
    let rows = v
        .as_arr()
        .ok_or_else(|| format!("{what} is not an array"))?;
    if rows.len() != p {
        return Err(format!("{what} has {} rows, expected {p}", rows.len()));
    }
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let cells = row
                .as_arr()
                .ok_or_else(|| format!("{what}[{i}] is not an array"))?;
            if cells.len() != p {
                return Err(format!(
                    "{what}[{i}] has {} cells, expected {p}",
                    cells.len()
                ));
            }
            cells
                .iter()
                .enumerate()
                .map(|(j, c)| want_u64(c, &format!("{what}[{i}][{j}]")))
                .collect()
        })
        .collect()
}

/// Parses one sparse cell list: an array of `[row, col, bytes, msgs]`
/// quads with both indices in `0..p`.
fn parse_sparse_cells(
    v: &Json,
    p: usize,
    what: &str,
) -> Result<Vec<(usize, usize, CellCounts)>, String> {
    v.as_arr()
        .ok_or_else(|| format!("{what} is not an array"))?
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let quad = e
                .as_arr()
                .filter(|a| a.len() == 4)
                .ok_or_else(|| format!("{what}[{i}] is not a [row, col, bytes, msgs] quad"))?;
            let row = want_u64(&quad[0], &format!("{what}[{i}] row"))? as usize;
            let col = want_u64(&quad[1], &format!("{what}[{i}] col"))? as usize;
            if row >= p || col >= p {
                return Err(format!(
                    "{what}[{i}] indexes rank ({row},{col}) beyond p={p}"
                ));
            }
            Ok((
                row,
                col,
                CellCounts {
                    bytes: want_u64(&quad[2], &format!("{what}[{i}] bytes"))?,
                    msgs: want_u64(&quad[3], &format!("{what}[{i}] msgs"))?,
                },
            ))
        })
        .collect()
}

fn parse_hists(v: &Json, what: &str) -> Result<BTreeMap<String, SizeHistogram>, String> {
    let obj = v
        .as_obj()
        .ok_or_else(|| format!("{what} is not an object"))?;
    obj.iter()
        .map(|(k, h)| {
            let what = format!("{what}.{k}");
            let msgs = field_u64(h, "msgs", &what)?;
            let bytes = field_u64(h, "bytes", &what)?;
            let buckets = field(h, "buckets", &what)?
                .as_arr()
                .ok_or_else(|| format!("{what}.buckets is not an array"))?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .ok_or_else(|| format!("{what}: bucket entry is not a pair"))?;
                    if pair.len() != 2 {
                        return Err(format!("{what}: bucket entry is not a [bucket,count] pair"));
                    }
                    Ok((
                        want_u64(&pair[0], &format!("{what} bucket index"))? as usize,
                        want_u64(&pair[1], &format!("{what} bucket count"))?,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?;
            let hist =
                SizeHistogram::from_parts(&buckets, bytes).map_err(|e| format!("{what}: {e}"))?;
            if hist.msgs != msgs {
                return Err(format!(
                    "{what}: declared {msgs} msgs but buckets sum to {}",
                    hist.msgs
                ));
            }
            Ok((k.clone(), hist))
        })
        .collect()
}

impl RunReportDoc {
    /// Parses and shape-validates a RunReport JSON document. Every
    /// structural invariant the writer guarantees is re-checked here, so a
    /// hand-edited or truncated file fails loudly rather than gating
    /// against garbage.
    pub fn parse(text: &str) -> Result<RunReportDoc, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = field_u64(&doc, "schema_version", "report")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema_version {version} (this build reads \
                 {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let kind = field(&doc, "kind", "report")?
            .as_str()
            .ok_or("kind is not a string")?;
        if kind != REPORT_KIND {
            return Err(format!("kind {kind:?} is not {REPORT_KIND:?}"));
        }
        // v1 predates the field and was always wall time.
        let time_domain = match doc.get("time_domain") {
            None => "wall".to_owned(),
            Some(v) => {
                let s = v.as_str().ok_or("time_domain is not a string")?;
                if s != "wall" && s != "virtual" {
                    return Err(format!(
                        "time_domain {s:?} is neither \"wall\" nor \"virtual\""
                    ));
                }
                s.to_owned()
            }
        };
        let sim = match doc.get("sim") {
            None | Some(Json::Null) => None,
            Some(v) => Some(SimBlock {
                machine: Machine::from_json(field(v, "machine", "sim")?)
                    .map_err(|e| format!("sim.machine: {e}"))?,
                placement: Placement::from_json(field(v, "placement", "sim")?)
                    .map_err(|e| format!("sim.placement: {e}"))?,
                execute_compute: field(v, "execute_compute", "sim")?
                    .as_bool()
                    .ok_or("sim.execute_compute is not a boolean")?,
                makespan_secs: field_f64(v, "makespan_secs", "sim")?,
            }),
        };
        if (time_domain == "virtual") != sim.is_some() {
            return Err(format!(
                "time_domain {time_domain:?} disagrees with the sim block being {}",
                if sim.is_some() { "present" } else { "absent" }
            ));
        }
        let ranks = field_u64(&doc, "ranks", "report")? as usize;
        if ranks == 0 {
            return Err("ranks must be positive".to_owned());
        }

        let phases = field(&doc, "phases", "report")?
            .as_arr()
            .ok_or("phases is not an array")?
            .iter()
            .enumerate()
            .map(|(i, ph)| {
                let what = format!("phases[{i}]");
                Ok(PhaseRow {
                    phase: field(ph, "phase", &what)?
                        .as_str()
                        .ok_or_else(|| format!("{what}.phase is not a string"))?
                        .to_owned(),
                    sent_bytes: field_u64(ph, "sent_bytes", &what)?,
                    sent_msgs: field_u64(ph, "sent_msgs", &what)?,
                    recv_bytes: field_u64(ph, "recv_bytes", &what)?,
                    recv_msgs: field_u64(ph, "recv_msgs", &what)?,
                    max_rank_sent_bytes: field_u64(ph, "max_rank_sent_bytes", &what)?,
                    // absent in artifacts written before the message-count
                    // tier existed
                    max_rank_sent_msgs: if ph.get("max_rank_sent_msgs").is_some() {
                        field_u64(ph, "max_rank_sent_msgs", &what)?
                    } else {
                        0
                    },
                    secs_max: field_f64(ph, "secs_max", &what)?,
                    secs_sum: field_f64(ph, "secs_sum", &what)?,
                    wait_max: field_f64(ph, "wait_max", &what)?,
                    wait_sum: field_f64(ph, "wait_sum", &what)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        let totals_json = field(&doc, "totals", "report")?;
        let totals = Totals {
            sent_bytes: field_u64(totals_json, "sent_bytes", "totals")?,
            sent_msgs: field_u64(totals_json, "sent_msgs", "totals")?,
            max_rank_bytes: field_u64(totals_json, "max_rank_bytes", "totals")?,
            max_rank_msgs: field_u64(totals_json, "max_rank_msgs", "totals")?,
        };

        let mj = field(&doc, "matrix", "report")?;
        let matrix = if mj.get("send").is_some() {
            // v2 sparse cell lists.
            let send = parse_sparse_cells(field(mj, "send", "matrix")?, ranks, "matrix.send")?;
            let recv = parse_sparse_cells(field(mj, "recv", "matrix")?, ranks, "matrix.recv")?;
            CommMatrix::from_sparse(ranks, &send, &recv)
        } else {
            // v1 dense p×p grids.
            let sb = parse_grid(
                field(mj, "send_bytes", "matrix")?,
                ranks,
                "matrix.send_bytes",
            )?;
            let sm = parse_grid(field(mj, "send_msgs", "matrix")?, ranks, "matrix.send_msgs")?;
            let rb = parse_grid(
                field(mj, "recv_bytes", "matrix")?,
                ranks,
                "matrix.recv_bytes",
            )?;
            let rm = parse_grid(field(mj, "recv_msgs", "matrix")?, ranks, "matrix.recv_msgs")?;
            CommMatrix::from_grids(&sb, &sm, &rb, &rm)
        };

        let hj = field(&doc, "histograms", "report")?;
        let hist_by_phase =
            parse_hists(field(hj, "by_phase", "histograms")?, "histograms.by_phase")?;
        let hist_by_algo = parse_hists(field(hj, "by_algo", "histograms")?, "histograms.by_algo")?;

        let wait_per_rank = field(&doc, "wait_per_rank", "report")?
            .as_arr()
            .ok_or("wait_per_rank is not an array")?
            .iter()
            .enumerate()
            .map(|(r, m)| {
                m.as_obj()
                    .ok_or_else(|| format!("wait_per_rank[{r}] is not an object"))?
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|s| (k.clone(), s))
                            .ok_or_else(|| format!("wait_per_rank[{r}].{k} is not a number"))
                    })
                    .collect::<Result<BTreeMap<_, _>, String>>()
            })
            .collect::<Result<Vec<_>, String>>()?;
        if wait_per_rank.len() != ranks {
            return Err(format!(
                "wait_per_rank has {} entries, expected {ranks}",
                wait_per_rank.len()
            ));
        }

        let critical_path = match field(&doc, "critical_path", "report")? {
            Json::Null => None,
            Json::Arr(rows) => Some(
                rows.iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let what = format!("critical_path[{i}]");
                        Ok(CritRow {
                            phase: field(c, "phase", &what)?
                                .as_str()
                                .ok_or_else(|| format!("{what}.phase is not a string"))?
                                .to_owned(),
                            crit_secs: field_f64(c, "crit_secs", &what)?,
                            crit_rank: field_u64(c, "crit_rank", &what)? as usize,
                            comm_secs: field_f64(c, "comm_secs", &what)?,
                            comp_secs: field_f64(c, "comp_secs", &what)?,
                            mean_secs: field_f64(c, "mean_secs", &what)?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            ),
            _ => return Err("critical_path is neither null nor an array".to_owned()),
        };

        // v1/v2 predate the compute block; in v3 it is `null` unless the run
        // was profiled.
        let compute = match doc.get("compute") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(rows)) => {
                if rows.len() != ranks {
                    return Err(format!(
                        "compute has {} entries, expected {ranks}",
                        rows.len()
                    ));
                }
                Some(
                    rows.iter()
                        .enumerate()
                        .map(|(r, c)| {
                            if matches!(c, Json::Null) {
                                return Ok(None);
                            }
                            let what = format!("compute[{r}]");
                            let pool = field(c, "pool", &what)?;
                            let pwhat = format!("{what}.pool");
                            let row = ComputeRow {
                                gemm_calls: field_u64(c, "gemm_calls", &what)?,
                                flops: field_f64(c, "flops", &what)?,
                                gemm_wall_secs: field_f64(c, "gemm_wall_secs", &what)?,
                                thread_secs: field_f64(c, "thread_secs", &what)?,
                                pack_a_secs: field_f64(c, "pack_a_secs", &what)?,
                                pack_b_secs: field_f64(c, "pack_b_secs", &what)?,
                                compute_secs: field_f64(c, "compute_secs", &what)?,
                                idle_secs: field_f64(c, "idle_secs", &what)?,
                                pack_bytes: field_u64(c, "pack_bytes", &what)?,
                                pack_bound_bytes: field_u64(c, "pack_bound_bytes", &what)?,
                                achieved_gflops: field_f64(c, "achieved_gflops", &what)?,
                                // Lenient: absent in pre-kernel-dispatch
                                // reports; those parse as "".
                                kernel: c
                                    .get("kernel")
                                    .and_then(Json::as_str)
                                    .unwrap_or_default()
                                    .to_owned(),
                                peak_gflops: field_f64(c, "peak_gflops", &what)?,
                                max_width: field_u64(c, "max_width", &what)?,
                                imbalance: field_f64(c, "imbalance", &what)?,
                                coverage: field_f64(c, "coverage", &what)?,
                                dropped_spans: field_u64(c, "dropped_spans", &what)?,
                                pool: PoolRow {
                                    queue_depth_hwm: field_u64(pool, "queue_depth_hwm", &pwhat)?,
                                    submit_wake_secs: field_f64(pool, "submit_wake_secs", &pwhat)?,
                                    jobs: field_u64(pool, "jobs", &pwhat)?,
                                    regions: field_u64(pool, "regions", &pwhat)?,
                                    jobs_per_worker: field(pool, "jobs_per_worker", &pwhat)?
                                        .as_arr()
                                        .ok_or_else(|| {
                                            format!("{pwhat}.jobs_per_worker is not an array")
                                        })?
                                        .iter()
                                        .enumerate()
                                        .map(|(i, j)| {
                                            want_u64(j, &format!("{pwhat}.jobs_per_worker[{i}]"))
                                        })
                                        .collect::<Result<Vec<_>, String>>()?,
                                },
                            };
                            // The profiler derives idle as the remainder, so
                            // the four shares must rebuild thread_secs; a
                            // larger gap means the file was hand-edited.
                            let rebuilt = row.pack_a_secs
                                + row.pack_b_secs
                                + row.compute_secs
                                + row.idle_secs;
                            if (rebuilt - row.thread_secs).abs() > 0.05 * row.thread_secs.max(1e-12)
                            {
                                return Err(format!(
                                    "{what}: pack+compute+idle = {rebuilt:.6}s does not \
                                     reconcile with thread_secs = {:.6}s (±5%)",
                                    row.thread_secs
                                ));
                            }
                            Ok(Some(row))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                )
            }
            Some(_) => return Err("compute is neither null nor an array".to_owned()),
        };
        if compute.is_some() && time_domain != "wall" {
            return Err("compute block present on a virtual-time report".to_owned());
        }

        let parsed = RunReportDoc {
            schema_version: version,
            time_domain,
            sim,
            meta: field(&doc, "meta", "report")?.clone(),
            machine: field(&doc, "machine", "report")?.clone(),
            ranks,
            phases,
            totals,
            matrix,
            hist_by_phase,
            hist_by_algo,
            wait_per_rank,
            critical_path,
            compute,
        };
        parsed.check_internal_consistency()?;
        Ok(parsed)
    }

    /// The redundant views of the traffic must agree with each other: phase
    /// rows vs totals, phase rows vs matrix, phase rows vs histograms.
    fn check_internal_consistency(&self) -> Result<(), String> {
        let sent_bytes: u64 = self.phases.iter().map(|p| p.sent_bytes).sum();
        let sent_msgs: u64 = self.phases.iter().map(|p| p.sent_msgs).sum();
        if sent_bytes != self.totals.sent_bytes || sent_msgs != self.totals.sent_msgs {
            return Err(format!(
                "phase rows sum to ({sent_bytes} B, {sent_msgs} msgs) but totals say ({}, {})",
                self.totals.sent_bytes, self.totals.sent_msgs
            ));
        }
        let matrix_bytes: u64 = (0..self.ranks)
            .map(|r| self.matrix.send_row_total(r).bytes)
            .sum();
        if matrix_bytes != self.totals.sent_bytes {
            return Err(format!(
                "matrix cells sum to {matrix_bytes} B but totals say {}",
                self.totals.sent_bytes
            ));
        }
        for row in &self.phases {
            if let Some(h) = self.hist_by_phase.get(&row.phase) {
                if h.msgs != row.sent_msgs || h.bytes != row.sent_bytes {
                    return Err(format!(
                        "phase {:?}: histogram ({} msgs, {} B) disagrees with row ({}, {})",
                        row.phase, h.msgs, h.bytes, row.sent_msgs, row.sent_bytes
                    ));
                }
            } else if row.sent_msgs > 0 {
                return Err(format!(
                    "phase {:?} sent {} msgs but has no histogram",
                    row.phase, row.sent_msgs
                ));
            }
        }
        Ok(())
    }

    /// The `meta.name` string, if the producer recorded one.
    pub fn name(&self) -> Option<&str> {
        self.meta.get("name").and_then(Json::as_str)
    }

    /// Renders the report as a text dashboard: run header, per-phase table
    /// (traffic, times, wait share), the matrix heatmap, per-algorithm size
    /// histograms, and a skew/bottleneck summary.
    pub fn render_dashboard(&self) -> String {
        let mut out = String::new();
        let name = self.name().unwrap_or("<unnamed>");
        let arch = self
            .machine
            .get("arch")
            .and_then(Json::as_str)
            .unwrap_or("?");
        let os = self.machine.get("os").and_then(Json::as_str).unwrap_or("?");
        let _ = writeln!(
            out,
            "RunReport {name} · schema v{} · {} ranks · {arch}/{os} · {} time",
            self.schema_version, self.ranks, self.time_domain
        );
        if let Some(sim) = &self.sim {
            let _ = writeln!(
                out,
                "VIRTUAL-TIME RUN: simulated on {} · {} ranks/node · makespan {:.6} s · compute {}",
                sim.machine.name,
                sim.placement.ranks_per_node,
                sim.makespan_secs,
                if sim.execute_compute {
                    "executed"
                } else {
                    "charged only"
                }
            );
        }
        let _ = writeln!(
            out,
            "totals: {} sent in {} msgs · busiest rank {} / {} msgs\n",
            fmt_bytes(self.totals.sent_bytes),
            self.totals.sent_msgs,
            fmt_bytes(self.totals.max_rank_bytes),
            self.totals.max_rank_msgs
        );

        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>8} {:>12} {:>10} {:>10} {:>6}",
            "phase", "sent", "msgs", "max rank", "secs max", "wait max", "wait%"
        );
        for p in &self.phases {
            let wait_pct = if p.secs_max > 0.0 {
                100.0 * p.wait_max / p.secs_max
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>8} {:>12} {:>10.6} {:>10.6} {:>5.1}%",
                p.phase,
                fmt_bytes(p.sent_bytes),
                p.sent_msgs,
                fmt_bytes(p.max_rank_sent_bytes),
                p.secs_max,
                p.wait_max,
                wait_pct
            );
        }

        if let Some(compute) = &self.compute {
            let _ = writeln!(out, "\ncompute attribution (kernel profiler):");
            let _ = writeln!(
                out,
                "{:<5} {:>6} {:>8} {:>9} {:>7} {:>6} {:>6} {:>6} {:>6} {:>9}",
                "rank",
                "calls",
                "kernel",
                "gflop/s",
                "peak%",
                "pack%",
                "comp%",
                "idle%",
                "imbal",
                "wake ms"
            );
            for (rank, row) in compute.iter().enumerate() {
                match row {
                    None => {
                        let _ = writeln!(out, "{rank:<5} {:>6}", "-");
                    }
                    Some(c) => {
                        let (pack, comp, idle) = c.pct_split();
                        let kernel = if c.kernel.is_empty() { "?" } else { &c.kernel };
                        let _ = writeln!(
                            out,
                            "{:<5} {:>6} {:>8} {:>9.2} {:>6.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>6.2} {:>9.3}",
                            rank,
                            c.gemm_calls,
                            kernel,
                            c.achieved_gflops,
                            100.0 * c.roofline_frac(),
                            pack,
                            comp,
                            idle,
                            c.imbalance,
                            1e3 * c.pool.submit_wake_secs
                        );
                    }
                }
            }
        }

        let _ = writeln!(out, "\ncommunication matrix:");
        out.push_str(&self.matrix.render_heatmap());

        let _ = writeln!(out, "\nmessage sizes by collective algorithm:");
        for (algo, h) in &self.hist_by_algo {
            let _ = writeln!(out, " {algo} ({} msgs, {}):", h.msgs, fmt_bytes(h.bytes));
            out.push_str(&h.render_bars(40));
        }

        out.push_str(&self.render_summary());
        out
    }

    /// The skew/bottleneck closing lines of the dashboard.
    fn render_summary(&self) -> String {
        let mut out = String::new();
        if let Some(bottleneck) = self
            .phases
            .iter()
            .max_by(|a, b| a.secs_max.total_cmp(&b.secs_max))
        {
            let _ = writeln!(
                out,
                "\nbottleneck phase: {} ({:.6} s slowest rank, {:.6} s of it blocked in recv)",
                bottleneck.phase, bottleneck.secs_max, bottleneck.wait_max
            );
        }
        if let Some(cp) = &self.critical_path {
            for c in cp {
                let skew = if c.mean_secs > 0.0 {
                    c.crit_secs / c.mean_secs
                } else {
                    1.0
                };
                if skew >= 1.5 {
                    let _ = writeln!(
                        out,
                        "skew: phase {} is {skew:.2}x its mean on rank {}",
                        c.phase, c.crit_rank
                    );
                }
            }
        }
        // Matrix skew: flag the busiest sender if it is far above the mean.
        let totals: Vec<u64> = (0..self.ranks)
            .map(|r| self.matrix.send_row_total(r).bytes)
            .collect();
        let max = totals.iter().copied().max().unwrap_or(0);
        let mean = totals.iter().sum::<u64>() as f64 / self.ranks as f64;
        if mean > 0.0 && max as f64 / mean >= 1.5 {
            let busiest = totals.iter().position(|&b| b == max).unwrap_or(0);
            let _ = writeln!(
                out,
                "traffic skew: rank {busiest} sent {} ({:.2}x the mean)",
                fmt_bytes(max),
                max as f64 / mean
            );
        }
        out
    }
}

/// One phase's comparison in a [`ReportDiff`].
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Phase label.
    pub phase: String,
    /// Reference (sent_bytes, sent_msgs, secs_max); zeros if absent.
    pub a: (u64, u64, f64),
    /// Subject (sent_bytes, sent_msgs, secs_max); zeros if absent.
    pub b: (u64, u64, f64),
}

impl DiffRow {
    /// Percentage change of subject bytes over reference bytes.
    pub fn bytes_delta_pct(&self) -> f64 {
        delta_pct(self.a.0 as f64, self.b.0 as f64)
    }

    /// Percentage change of subject slowest-rank seconds over reference.
    pub fn secs_delta_pct(&self) -> f64 {
        delta_pct(self.a.2, self.b.2)
    }
}

fn delta_pct(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (b - a) / a
    }
}

/// The result of [`diff_reports`]: per-phase traffic and time comparison
/// between two measured runs.
#[derive(Clone, Debug)]
pub struct ReportDiff {
    /// Per-phase rows (union of both reports' phases).
    pub rows: Vec<DiffRow>,
    /// The percentage threshold used by [`ReportDiff::exceeded`].
    pub threshold_pct: f64,
}

impl ReportDiff {
    /// Phases whose byte volume or slowest-rank seconds moved by more than
    /// the threshold (in either direction).
    pub fn exceeded(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| {
                r.bytes_delta_pct().abs() > self.threshold_pct
                    || r.secs_delta_pct().abs() > self.threshold_pct
            })
            .collect()
    }

    /// Human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8}",
            "phase", "bytes A", "bytes B", "Δbytes", "secs A", "secs B", "Δsecs"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>12} {:>7.1}% {:>10.6} {:>10.6} {:>7.1}%",
                r.phase,
                fmt_bytes(r.a.0),
                fmt_bytes(r.b.0),
                r.bytes_delta_pct(),
                r.a.2,
                r.b.2,
                r.secs_delta_pct()
            );
        }
        let over = self.exceeded();
        if over.is_empty() {
            let _ = writeln!(out, "all phases within ±{}%", self.threshold_pct);
        } else {
            for r in over {
                let _ = writeln!(
                    out,
                    "OVER THRESHOLD: {} (bytes {:+.1}%, secs {:+.1}%)",
                    r.phase,
                    r.bytes_delta_pct(),
                    r.secs_delta_pct()
                );
            }
        }
        out
    }
}

/// Compares two measured reports phase by phase. `threshold_pct` bounds the
/// acceptable relative movement for [`ReportDiff::exceeded`].
pub fn diff_reports(a: &RunReportDoc, b: &RunReportDoc, threshold_pct: f64) -> ReportDiff {
    let mut order: Vec<String> = a.phases.iter().map(|p| p.phase.clone()).collect();
    for p in &b.phases {
        if !order.contains(&p.phase) {
            order.push(p.phase.clone());
        }
    }
    let find = |doc: &RunReportDoc, name: &str| {
        doc.phases
            .iter()
            .find(|p| p.phase == name)
            .map_or((0, 0, 0.0), |p| (p.sent_bytes, p.sent_msgs, p.secs_max))
    };
    ReportDiff {
        rows: order
            .into_iter()
            .map(|phase| DiffRow {
                a: find(a, &phase),
                b: find(b, &phase),
                phase,
            })
            .collect(),
        threshold_pct,
    }
}

/// How [`gate`] treats the non-deterministic (time) side of a report.
#[derive(Clone, Copy, Debug)]
pub struct GatePolicy {
    /// If set, each phase's subject `secs_max` may be at most this multiple
    /// of the reference's (checked only for phases where the reference time
    /// is ≥ [`GatePolicy::min_gated_secs`]). `None` ignores times entirely —
    /// the right policy when reference and subject ran on different
    /// machines, where only the deterministic traffic is comparable.
    pub max_time_ratio: Option<f64>,
    /// Phases faster than this on the reference are never time-gated
    /// (scheduler noise dominates sub-millisecond phases).
    pub min_gated_secs: f64,
}

impl Default for GatePolicy {
    fn default() -> GatePolicy {
        GatePolicy {
            max_time_ratio: None,
            min_gated_secs: 1e-3,
        }
    }
}

/// The CI regression gate: compares `subject` against `reference`.
///
/// Deterministic quantities — per-phase bytes/msgs (both directions), run
/// totals, every matrix cell, every histogram bucket — must match
/// **exactly**; any drift means the algorithm's communication pattern
/// changed and the reference must be consciously regenerated. Times are
/// checked only by ratio, per [`GatePolicy`]. Returns every violation, not
/// just the first.
pub fn gate(
    reference: &RunReportDoc,
    subject: &RunReportDoc,
    policy: &GatePolicy,
) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    if reference.time_domain != subject.time_domain {
        errs.push(format!(
            "time_domain: reference {:?} vs subject {:?} — a wall-clock run must never be \
             gated against a virtual-time run",
            reference.time_domain, subject.time_domain
        ));
        return Err(errs);
    }
    // Compute blocks carry machine-specific timings and only exist from
    // schema v3 on, so they are never numerically gated — but comparing a
    // profiled report against a reference whose schema predates the block
    // (or vice versa) silently ignores the entire compute side. Refuse.
    if (reference.compute.is_some() || subject.compute.is_some())
        && reference.schema_version != subject.schema_version
    {
        errs.push(format!(
            "compute: cannot compare across schema versions (reference v{}, subject v{}) \
             when either side carries a compute block — regenerate the reference",
            reference.schema_version, subject.schema_version
        ));
        return Err(errs);
    }
    if reference.compute.is_some() != subject.compute.is_some() {
        errs.push(format!(
            "compute block {} in reference but {} in subject — profiled and unprofiled \
             runs are not comparable",
            if reference.compute.is_some() {
                "present"
            } else {
                "absent"
            },
            if subject.compute.is_some() {
                "present"
            } else {
                "absent"
            }
        ));
        return Err(errs);
    }
    if reference.ranks != subject.ranks {
        errs.push(format!(
            "ranks: reference {} vs subject {}",
            reference.ranks, subject.ranks
        ));
        return Err(errs);
    }
    if reference.totals != subject.totals {
        errs.push(format!(
            "totals differ: reference {:?} vs subject {:?}",
            reference.totals, subject.totals
        ));
    }

    let ref_phases: BTreeMap<&str, &PhaseRow> = reference
        .phases
        .iter()
        .map(|p| (p.phase.as_str(), p))
        .collect();
    let sub_phases: BTreeMap<&str, &PhaseRow> = subject
        .phases
        .iter()
        .map(|p| (p.phase.as_str(), p))
        .collect();
    for (name, r) in &ref_phases {
        let Some(s) = sub_phases.get(name) else {
            errs.push(format!("phase {name:?} missing from subject"));
            continue;
        };
        let traffic = |p: &PhaseRow| {
            (
                p.sent_bytes,
                p.sent_msgs,
                p.recv_bytes,
                p.recv_msgs,
                p.max_rank_sent_bytes,
                p.max_rank_sent_msgs,
            )
        };
        if traffic(r) != traffic(s) {
            errs.push(format!(
                "phase {name:?} traffic: reference {:?} vs subject {:?}",
                traffic(r),
                traffic(s)
            ));
        }
        if let Some(max_ratio) = policy.max_time_ratio {
            if r.secs_max >= policy.min_gated_secs {
                let ratio = s.secs_max / r.secs_max;
                // `partial_cmp` keeps the NaN-must-fail semantics explicit.
                if ratio.partial_cmp(&max_ratio) != Some(std::cmp::Ordering::Less)
                    && ratio != max_ratio
                {
                    errs.push(format!(
                        "phase {name:?} time: {:.6}s vs reference {:.6}s is {ratio:.2}x (limit {max_ratio}x)",
                        s.secs_max, r.secs_max
                    ));
                }
            }
        }
    }
    for name in sub_phases.keys() {
        if !ref_phases.contains_key(name) {
            errs.push(format!("phase {name:?} not present in reference"));
        }
    }

    if reference.matrix != subject.matrix {
        let p = reference.ranks;
        let mut reported = 0;
        'cells: for i in 0..p {
            for j in 0..p {
                let (a, b) = (reference.matrix.sent(i, j), subject.matrix.sent(i, j));
                let (c, d) = (
                    reference.matrix.received(i, j),
                    subject.matrix.received(i, j),
                );
                if a != b || c != d {
                    errs.push(format!(
                        "matrix[{i}][{j}]: send {a:?}→{b:?}, recv {c:?}→{d:?}"
                    ));
                    reported += 1;
                    if reported >= 5 {
                        errs.push("… more matrix cells differ".to_owned());
                        break 'cells;
                    }
                }
            }
        }
    }

    for (label, a, b) in [
        ("by_phase", &reference.hist_by_phase, &subject.hist_by_phase),
        ("by_algo", &reference.hist_by_algo, &subject.hist_by_algo),
    ] {
        if a != b {
            let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
            for k in keys {
                match (a.get(k), b.get(k)) {
                    (Some(x), Some(y)) if x == y => {}
                    (Some(x), Some(y)) => errs.push(format!(
                        "histogram {label}/{k}: {} msgs {} B vs {} msgs {} B (or bucket shape)",
                        x.msgs, x.bytes, y.msgs, y.bytes
                    )),
                    (Some(_), None) => {
                        errs.push(format!("histogram {label}/{k} missing from subject"))
                    }
                    (None, Some(_)) => errs.push(format!("histogram {label}/{k} new in subject")),
                    (None, None) => unreachable!(),
                }
            }
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Formats gate violations for CI logs.
pub fn render_gate_failures(errs: &[String]) -> String {
    let mut out = String::from("report-gate FAILED:\n");
    for e in errs {
        let _ = writeln!(out, "  - {e}");
    }
    out
}

/// Formats the histogram comparison between two docs (used by the diff
/// subcommand's verbose mode); bucket labels come from the metrics layer.
pub fn render_hist_side_by_side(a: &SizeHistogram, b: &SizeHistogram) -> String {
    let mut out = String::new();
    let buckets: std::collections::BTreeSet<usize> = a
        .nonzero()
        .into_iter()
        .chain(b.nonzero())
        .map(|(k, _)| k)
        .collect();
    let _ = writeln!(out, "  {:<16} {:>10} {:>10}", "size", "A", "B");
    for k in buckets {
        let _ = writeln!(
            out,
            "  {:<16} {:>10} {:>10}",
            bucket_label(k),
            a.count(k),
            b.count(k)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::world::World;

    fn sample_report() -> RunReport {
        let (_, report) = World::run_traced(2, |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("stage");
            if comm.rank() == 0 {
                comm.send(ctx, 1, 0, vec![1.0f64; 64]);
            } else {
                let _: Vec<f64> = comm.recv(ctx, 0, 0);
            }
            crate::collectives::barrier(&comm, ctx);
        });
        report
    }

    fn sample_doc() -> RunReportDoc {
        let report = sample_report();
        let meta = Json::obj([("name", Json::Str("sample".into()))]);
        RunReportDoc::parse(&report.to_json(meta).to_string_pretty()).expect("round trip")
    }

    #[test]
    fn report_round_trips_through_json() {
        let doc = sample_doc();
        assert_eq!(doc.schema_version, SCHEMA_VERSION);
        assert_eq!(doc.ranks, 2);
        assert_eq!(doc.name(), Some("sample"));
        let stage = doc.phases.iter().find(|p| p.phase == "stage").unwrap();
        assert_eq!(stage.sent_bytes, 512); // 64 f64 payload; barrier msgs are 0 B
        assert_eq!(stage.recv_bytes, 512);
        assert_eq!(stage.sent_msgs, 3); // payload + 2 barrier rounds... (1 each)
        assert!(doc.critical_path.is_some());
        assert_eq!(doc.matrix.sent(0, 1).bytes, 512);
        assert_eq!(doc.matrix.received(1, 0).bytes, 512);
        assert!(doc.hist_by_algo.contains_key("dissemination_barrier"));
        assert!(doc.hist_by_algo.contains_key("p2p"));
    }

    #[test]
    fn dashboard_renders_all_sections() {
        let doc = sample_doc();
        let dash = doc.render_dashboard();
        assert!(dash.contains("RunReport sample"));
        assert!(dash.contains("stage"));
        assert!(dash.contains("communication matrix"));
        assert!(dash.contains("dissemination_barrier"));
        assert!(dash.contains("bottleneck phase"));
    }

    #[test]
    fn gate_passes_self_and_fails_perturbed() {
        let doc = sample_doc();
        assert!(gate(&doc, &doc, &GatePolicy::default()).is_ok());

        // Perturb one byte count end to end through the JSON (as the CI
        // negative test does) and the gate must fail.
        let report = sample_report();
        let text = report
            .to_json(Json::obj([("name", Json::Str("sample".into()))]))
            .to_string_pretty();
        let perturbed = text.replacen("512", "513", 1);
        assert_ne!(text, perturbed, "fixture must contain the byte count");
        match RunReportDoc::parse(&perturbed) {
            // Either the internal consistency check already rejects the
            // tampered file, or the gate must flag it.
            Err(_) => {}
            Ok(doc2) => {
                let errs = gate(&doc, &doc2, &GatePolicy::default()).unwrap_err();
                assert!(!errs.is_empty());
                assert!(render_gate_failures(&errs).contains("report-gate FAILED"));
            }
        }
    }

    #[test]
    fn gate_time_ratio_policy() {
        let mut a = sample_doc();
        let mut b = a.clone();
        a.phases[0].secs_max = 1.0;
        b.phases[0].secs_max = 10.0;
        // Times ignored by default.
        assert!(gate(&a, &b, &GatePolicy::default()).is_ok());
        // Ratio-gated when asked.
        let policy = GatePolicy {
            max_time_ratio: Some(2.0),
            min_gated_secs: 1e-3,
        };
        let errs = gate(&a, &b, &policy).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("time")), "{errs:?}");
        // Sub-threshold reference times are never gated.
        a.phases[0].secs_max = 1e-6;
        b.phases[0].secs_max = 1.0;
        assert!(gate(&a, &b, &policy).is_ok());
    }

    #[test]
    fn diff_reports_flags_moved_phases() {
        let a = sample_doc();
        let mut b = a.clone();
        b.phases[0].sent_bytes = a.phases[0].sent_bytes * 3;
        let d = diff_reports(&a, &b, 10.0);
        assert_eq!(d.exceeded().len(), 1);
        assert!(d.render().contains("OVER THRESHOLD"));
        let clean = diff_reports(&a, &a, 10.0);
        assert!(clean.exceeded().is_empty());
        assert!(clean.render().contains("within"));
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        assert!(RunReportDoc::parse("not json").is_err());
        assert!(RunReportDoc::parse("{}").is_err());
        let wrong_version = Json::obj([
            ("schema_version", Json::Num(99.0)),
            ("kind", Json::Str(REPORT_KIND.into())),
        ]);
        let e = RunReportDoc::parse(&wrong_version.to_string()).unwrap_err();
        assert!(e.contains("schema_version"), "{e}");
    }

    #[test]
    fn virtual_report_round_trips_with_sim_block() {
        let machine = netmodel::Machine::uniform();
        let (_, report) = World::run_sim(2, &machine, crate::SimOptions::default(), |ctx| {
            let comm = Comm::world(ctx);
            ctx.set_phase("pp");
            if comm.rank() == 0 {
                comm.send(ctx, 1, 0, vec![1.0f64; 64]);
                let _: Vec<f64> = comm.recv(ctx, 1, 1);
            } else {
                let v: Vec<f64> = comm.recv(ctx, 0, 0);
                comm.send(ctx, 0, 1, v);
            }
        });
        let sim = report.sim.as_ref().expect("sim info");
        assert!(sim.makespan_secs > 0.0);
        let text = report
            .to_json(Json::obj([("name", Json::Str("sim-pp".into()))]))
            .to_string_pretty();
        let doc = RunReportDoc::parse(&text).expect("virtual report parses");
        assert_eq!(doc.time_domain, "virtual");
        let block = doc.sim.as_ref().expect("sim block survives the round trip");
        assert_eq!(block.machine.name, "uniform");
        assert_eq!(block.makespan_secs, sim.makespan_secs);
        // Untraced, but the virtual clocks synthesize a critical path.
        let cp = doc
            .critical_path
            .as_ref()
            .expect("synthesized critical path");
        assert!(cp.iter().any(|c| c.phase == "pp" && c.crit_secs > 0.0));
        assert_eq!(doc.matrix.sent(0, 1).bytes, 512);
    }

    #[test]
    fn v1_dense_report_still_parses_as_wall() {
        // A minimal hand-built schema-v1 document: no time_domain, no sim,
        // dense matrix grids. Older committed references must stay readable.
        let v1 = r#"{
            "schema_version": 1,
            "kind": "ca3dmm_run_report",
            "meta": {"name": "legacy"},
            "machine": {"arch": "x86_64", "os": "linux"},
            "ranks": 1,
            "phases": [],
            "totals": {"sent_bytes": 0, "sent_msgs": 0,
                       "max_rank_bytes": 0, "max_rank_msgs": 0},
            "matrix": {"send_bytes": [[0]], "send_msgs": [[0]],
                       "recv_bytes": [[0]], "recv_msgs": [[0]]},
            "histograms": {"by_phase": {}, "by_algo": {}},
            "wait_per_rank": [{}],
            "critical_path": null
        }"#;
        let doc = RunReportDoc::parse(v1).expect("v1 parses");
        assert_eq!(doc.schema_version, 1);
        assert_eq!(doc.time_domain, "wall");
        assert!(doc.sim.is_none());
    }

    #[test]
    fn profiled_report_round_trips_compute_block() {
        dense::set_gemm_profiling(true);
        let (_, report) = World::run_traced(2, |ctx| {
            ctx.set_phase("mult");
            let a = dense::random::random_mat::<f64>(96, 96, 7);
            let b = dense::random::random_mat::<f64>(96, 96, 8);
            let mut c = dense::Mat::<f64>::zeros(96, 96);
            dense::gemm(
                dense::GemmOp::NoTrans,
                dense::GemmOp::NoTrans,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
            );
            crate::collectives::barrier(&Comm::world(ctx), ctx);
        });
        dense::set_gemm_profiling(false);
        assert_eq!(report.compute.len(), 2, "both ranks captured");
        let text = report
            .to_json(Json::obj([("name", Json::Str("prof".into()))]))
            .to_string_pretty();
        let doc = RunReportDoc::parse(&text).expect("profiled report parses");
        assert_eq!(doc.schema_version, SCHEMA_VERSION);
        let compute = doc.compute.as_ref().expect("compute block survives");
        assert_eq!(compute.len(), 2);
        for row in compute
            .iter()
            .map(|r| r.as_ref().expect("both ranks ran a gemm"))
        {
            assert!(row.gemm_calls >= 1);
            assert!(row.flops >= 2.0 * 96.0 * 96.0 * 96.0);
            let rebuilt = row.pack_a_secs + row.pack_b_secs + row.compute_secs + row.idle_secs;
            assert!(
                (rebuilt - row.thread_secs).abs() <= 0.05 * row.thread_secs,
                "split {rebuilt} vs thread_secs {}",
                row.thread_secs
            );
            assert!(row.pack_bytes <= row.pack_bound_bytes);
            assert!(row.peak_gflops > 0.0);
            assert_eq!(row.kernel, dense::kernel::gemm_kernel().name());
            let (pack, comp, idle) = row.pct_split();
            assert!((pack + comp + idle - 100.0).abs() < 1e-6);
        }
        let dash = doc.render_dashboard();
        assert!(dash.contains("compute attribution"), "{dash}");
        // Self-gate passes with compute on both sides.
        assert!(gate(&doc, &doc, &GatePolicy::default()).is_ok());
    }

    #[test]
    fn v2_artifact_still_parses_without_compute() {
        // A minimal schema-v2 document (no `compute` key at all), as written
        // by the previous build. It must keep parsing, implying no compute.
        let v2 = r#"{
            "schema_version": 2,
            "kind": "ca3dmm_run_report",
            "time_domain": "wall",
            "sim": null,
            "meta": {"name": "v2-legacy"},
            "machine": {"arch": "x86_64", "os": "linux"},
            "ranks": 1,
            "phases": [],
            "totals": {"sent_bytes": 0, "sent_msgs": 0,
                       "max_rank_bytes": 0, "max_rank_msgs": 0},
            "matrix": {"format": "sparse", "send": [], "recv": []},
            "histograms": {"by_phase": {}, "by_algo": {}},
            "wait_per_rank": [{}],
            "critical_path": null
        }"#;
        let doc = RunReportDoc::parse(v2).expect("v2 parses");
        assert_eq!(doc.schema_version, 2);
        assert!(doc.compute.is_none());
        // The dashboard simply omits the compute table.
        assert!(!doc.render_dashboard().contains("compute attribution"));
    }

    #[test]
    fn gate_refuses_cross_schema_compute_comparison() {
        let doc = sample_doc();
        let mut profiled = doc.clone();
        profiled.compute = Some(vec![None, None]);

        // Same schema, compute present on one side only → refused.
        let errs = gate(&doc, &profiled, &GatePolicy::default()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("compute block")), "{errs:?}");

        // Compute present but schema versions differ → refused before any
        // field comparison.
        let mut old = doc.clone();
        old.schema_version = 2;
        let errs = gate(&old, &profiled, &GatePolicy::default()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("schema versions")),
            "{errs:?}"
        );
    }

    #[test]
    fn parse_rejects_tampered_compute_split() {
        // A compute row whose shares cannot rebuild thread_secs is a
        // hand-edited artifact; the parser must reject it.
        let bad = r#"{
            "schema_version": 3,
            "kind": "ca3dmm_run_report",
            "time_domain": "wall",
            "sim": null,
            "meta": {"name": "tampered"},
            "machine": {"arch": "x86_64", "os": "linux"},
            "ranks": 1,
            "phases": [],
            "totals": {"sent_bytes": 0, "sent_msgs": 0,
                       "max_rank_bytes": 0, "max_rank_msgs": 0},
            "matrix": {"format": "sparse", "send": [], "recv": []},
            "histograms": {"by_phase": {}, "by_algo": {}},
            "wait_per_rank": [{}],
            "critical_path": null,
            "compute": [{
                "gemm_calls": 1, "flops": 1000.0,
                "gemm_wall_secs": 1.0, "thread_secs": 4.0,
                "pack_a_secs": 0.1, "pack_b_secs": 0.1,
                "compute_secs": 0.5, "idle_secs": 0.5,
                "pack_bytes": 10, "pack_bound_bytes": 20,
                "achieved_gflops": 1.0, "peak_gflops": 2.0,
                "max_width": 4, "imbalance": 1.0, "coverage": 1.0,
                "dropped_spans": 0,
                "pool": {"queue_depth_hwm": 0, "submit_wake_secs": 0.0,
                         "jobs": 0, "regions": 0, "jobs_per_worker": []}
            }]
        }"#;
        let e = RunReportDoc::parse(bad).unwrap_err();
        assert!(e.contains("reconcile"), "{e}");
    }

    #[test]
    fn gate_refuses_cross_domain_comparison() {
        let wall = sample_doc();
        let mut fake_virtual = wall.clone();
        fake_virtual.time_domain = "virtual".to_owned();
        let errs = gate(&wall, &fake_virtual, &GatePolicy::default()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("time_domain")), "{errs:?}");
    }

    #[test]
    fn hist_side_by_side_renders() {
        let mut a = SizeHistogram::new();
        a.record(100);
        let mut b = SizeHistogram::new();
        b.record(1000);
        let s = render_hist_side_by_side(&a, &b);
        assert!(s.contains("64 B"));
    }
}
