//! Structured event tracing: per-rank span streams, the assembled
//! [`Timeline`], the Chrome-trace exporter, and the critical-path analyzer.
//!
//! Every rank records begin/end events for its phases (labelled with
//! [`crate::RankCtx::set_phase`]), every collective (with its algorithm
//! name and payload size), and every point-to-point send/recv — into a
//! plain per-thread `Vec`, so recording is append-only and lock-free during
//! the run. When tracing is disabled (the default for [`crate::World::run`])
//! every hook reduces to a single branch on a `bool`, which is what makes
//! the runtime's zero-overhead-when-off guarantee hold.
//!
//! After the ranks join, [`crate::World::run_traced`] assembles the streams
//! into a [`Timeline`]: properly nested [`Span`]s per rank, exportable as
//! Chrome-trace JSON (open in Perfetto / `chrome://tracing`) and analyzable
//! with [`Timeline::critical_path`] — the measured counterpart of the
//! paper's Fig. 5 per-phase breakdown.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

/// What a span represents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A `set_phase` region (depth 0): "redist", "replicate_ab", ….
    Phase(String),
    /// One point-to-point send; `peer` is the destination world rank.
    Send {
        /// Destination world rank.
        peer: usize,
    },
    /// One point-to-point receive (the span covers any blocking wait);
    /// `peer` is the source world rank.
    Recv {
        /// Source world rank.
        peer: usize,
    },
    /// The completion wait of a nonblocking receive
    /// (`RecvReq::wait`); `peer` is the source world rank. Unlike
    /// [`SpanKind::Recv`], the span covers only the *residual* blocking
    /// after whatever compute overlapped the transfer — the exposed
    /// communication the §III-F pipeline failed to hide.
    Wait {
        /// Source world rank.
        peer: usize,
    },
    /// A collective operation, named after its algorithm
    /// ("ring_allgatherv", "rabenseifner_allreduce", …).
    Collective(&'static str),
}

impl SpanKind {
    /// Display name for trace viewers.
    pub fn label(&self) -> String {
        match self {
            SpanKind::Phase(name) => name.clone(),
            SpanKind::Send { peer } => format!("send→{peer}"),
            SpanKind::Recv { peer } => format!("recv←{peer}"),
            SpanKind::Wait { peer } => format!("wait←{peer}"),
            SpanKind::Collective(algo) => (*algo).to_owned(),
        }
    }

    /// Chrome-trace category.
    pub fn category(&self) -> &'static str {
        match self {
            SpanKind::Phase(_) => "phase",
            SpanKind::Send { .. } | SpanKind::Recv { .. } | SpanKind::Wait { .. } => "p2p",
            SpanKind::Collective(_) => "collective",
        }
    }

    /// True for communication spans (anything but a phase region).
    pub fn is_comm(&self) -> bool {
        !matches!(self, SpanKind::Phase(_))
    }
}

/// One raw begin/end event as recorded by a rank.
#[derive(Clone, Debug)]
pub(crate) enum RawEvent {
    Begin { t: f64, kind: SpanKind, bytes: u64 },
    End { t: f64, bytes: u64 },
}

/// A completed span on one rank's timeline.
#[derive(Clone, Debug)]
pub struct Span {
    /// What this span is.
    pub kind: SpanKind,
    /// Start, seconds since the world's epoch.
    pub t0: f64,
    /// End, seconds since the world's epoch.
    pub t1: f64,
    /// Payload bytes attributed to the span (0 for phases).
    pub bytes: u64,
    /// Nesting depth: phases are 0, collectives and bare p2p 1, p2p inside
    /// a collective 2.
    pub depth: usize,
}

impl Span {
    /// Span duration in seconds.
    pub fn secs(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// The per-rank recorder embedded in `RankCtx`. Only the owning thread
/// touches it; the `RefCell` is never contended.
pub(crate) struct Recorder {
    enabled: bool,
    epoch: Instant,
    events: RefCell<Vec<RawEvent>>,
}

impl Recorder {
    pub(crate) fn new(enabled: bool, epoch: Instant) -> Recorder {
        Recorder {
            enabled,
            epoch,
            events: RefCell::new(Vec::new()),
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    fn stamp(&self, at: Instant) -> f64 {
        at.duration_since(self.epoch).as_secs_f64()
    }

    /// Opens a span now. No-op when tracing is off.
    #[inline]
    pub(crate) fn begin(&self, kind: SpanKind, bytes: u64) {
        if self.enabled {
            self.begin_at(Instant::now(), kind, bytes);
        }
    }

    /// Closes the innermost open span now. No-op when tracing is off.
    #[inline]
    pub(crate) fn end(&self, bytes: u64) {
        if self.enabled {
            self.end_at(Instant::now(), bytes);
        }
    }

    /// Opens a span at an externally taken timestamp (used by `set_phase`
    /// so the phase span boundaries coincide exactly with the per-phase
    /// wall-time accounting).
    pub(crate) fn begin_at(&self, at: Instant, kind: SpanKind, bytes: u64) {
        if self.enabled {
            let t = self.stamp(at);
            self.events
                .borrow_mut()
                .push(RawEvent::Begin { t, kind, bytes });
        }
    }

    /// Closes the innermost open span at an externally taken timestamp.
    pub(crate) fn end_at(&self, at: Instant, bytes: u64) {
        if self.enabled {
            let t = self.stamp(at);
            self.events.borrow_mut().push(RawEvent::End { t, bytes });
        }
    }

    /// Takes the recorded stream (called once, after the rank's closure
    /// returns).
    pub(crate) fn take(&self) -> Vec<RawEvent> {
        self.events.take()
    }
}

/// The merged per-rank event timeline of one traced run.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// `per_rank[r]` holds rank `r`'s completed spans in begin order.
    per_rank: Vec<Vec<Span>>,
}

impl Timeline {
    /// Assembles per-rank raw streams into nested spans. Unclosed spans
    /// (possible only if a rank panicked) are closed at the stream's last
    /// timestamp.
    pub(crate) fn from_raw(streams: Vec<Vec<RawEvent>>) -> Timeline {
        let per_rank = streams
            .into_iter()
            .map(|events| {
                let last_t = events
                    .iter()
                    .map(|e| match e {
                        RawEvent::Begin { t, .. } | RawEvent::End { t, .. } => *t,
                    })
                    .fold(0.0, f64::max);
                let mut spans: Vec<Span> = Vec::new();
                let mut stack: Vec<usize> = Vec::new();
                for ev in events {
                    match ev {
                        RawEvent::Begin { t, kind, bytes } => {
                            let depth = stack.len();
                            stack.push(spans.len());
                            spans.push(Span {
                                kind,
                                t0: t,
                                t1: f64::NAN,
                                bytes,
                                depth,
                            });
                        }
                        RawEvent::End { t, bytes } => {
                            let idx = stack
                                .pop()
                                .expect("trace end event without a matching begin");
                            spans[idx].t1 = t;
                            spans[idx].bytes += bytes;
                        }
                    }
                }
                for idx in stack {
                    spans[idx].t1 = last_t;
                }
                spans
            })
            .collect();
        Timeline { per_rank }
    }

    /// An empty timeline for `p` ranks (what an untraced run reports).
    pub(crate) fn empty(p: usize) -> Timeline {
        Timeline {
            per_rank: vec![Vec::new(); p],
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// Rank `r`'s spans in begin order.
    pub fn spans(&self, rank: usize) -> &[Span] {
        &self.per_rank[rank]
    }

    /// Total span count across all ranks.
    pub fn span_count(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }

    /// True when no rank recorded anything (tracing was off, or nothing
    /// ran).
    pub fn is_empty(&self) -> bool {
        self.span_count() == 0
    }

    /// Phase labels in order of first appearance (rank order breaks ties).
    pub fn phases(&self) -> Vec<String> {
        let mut seen: Vec<String> = Vec::new();
        for spans in &self.per_rank {
            for s in spans {
                if let SpanKind::Phase(name) = &s.kind {
                    if !seen.contains(name) {
                        seen.push(name.clone());
                    }
                }
            }
        }
        seen
    }

    /// Wall seconds rank `r` spent in `phase` (sum over that phase's
    /// spans). Agrees with [`crate::TrafficReport::phase_secs`] because both
    /// are driven by the same `set_phase` timestamps.
    pub fn phase_secs(&self, rank: usize, phase: &str) -> f64 {
        self.per_rank[rank]
            .iter()
            .filter(|s| matches!(&s.kind, SpanKind::Phase(name) if name == phase))
            .map(Span::secs)
            .sum()
    }

    /// Maximum over ranks of [`Timeline::phase_secs`].
    pub fn phase_secs_max(&self, phase: &str) -> f64 {
        (0..self.ranks())
            .map(|r| self.phase_secs(r, phase))
            .fold(0.0, f64::max)
    }

    /// Seconds rank `r` spent inside communication spans that are direct
    /// children of `phase` (collectives and bare p2p; nested p2p inside a
    /// collective is already covered by its parent).
    pub fn phase_comm_secs(&self, rank: usize, phase: &str) -> f64 {
        let spans = &self.per_rank[rank];
        let mut total = 0.0;
        let mut in_phase = false;
        for s in spans {
            match &s.kind {
                SpanKind::Phase(name) if s.depth == 0 => in_phase = name == phase,
                k if in_phase && s.depth == 1 && k.is_comm() => total += s.secs(),
                _ => {}
            }
        }
        total
    }

    /// Bytes sent by rank `r` within `phase` according to the trace (sum
    /// over `Send` spans; cross-checks the traffic counters).
    pub fn phase_sent_bytes(&self, rank: usize, phase: &str) -> u64 {
        let spans = &self.per_rank[rank];
        let mut total = 0;
        let mut in_phase = false;
        for s in spans {
            match &s.kind {
                SpanKind::Phase(name) if s.depth == 0 => in_phase = name == phase,
                SpanKind::Send { .. } if in_phase => total += s.bytes,
                _ => {}
            }
        }
        total
    }

    /// Renders the timeline as Chrome-trace JSON ("JSON Array Format" with
    /// an object envelope), loadable in Perfetto or `chrome://tracing`.
    /// Spans become `B`/`E` duration-event pairs (one `tid` per rank);
    /// thread-name metadata events label each rank.
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_json_with_kernel(&[])
    }

    /// [`Timeline::to_chrome_json`] plus per-rank *kernel-thread* tracks:
    /// `kernel[rank]` holds that rank's GEMM profiler spans (see
    /// `msgpass::ComputeProfile::kernel_spans`), rendered as extra threads
    /// `tid = 1000·(rank+1) + track` under the same process so Perfetto
    /// shows communication and compute interleaved. Ranks beyond
    /// `kernel.len()`, and empty span lists, get no kernel tracks.
    pub fn to_chrome_json_with_kernel(&self, kernel: &[Vec<KernelSpan>]) -> String {
        let mut events = String::new();
        for rank in 0..self.ranks() {
            if !events.is_empty() {
                events.push(',');
            }
            let _ = write!(
                events,
                r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{rank},"args":{{"name":"rank {rank}"}}}}"#
            );
            // Re-interleave begin/end records: spans are stored in begin
            // order, and single-threaded ranks guarantee proper nesting, so
            // an open span either contains the next span or ended before it.
            let mut open: Vec<&Span> = Vec::new();
            for s in &self.per_rank[rank] {
                while open.last().is_some_and(|top| top.t1 <= s.t0) {
                    let top = open.pop().unwrap();
                    push_end(&mut events, rank, top.t1);
                }
                push_begin(&mut events, rank, s);
                open.push(s);
            }
            while let Some(top) = open.pop() {
                push_end(&mut events, rank, top.t1);
            }
            if let Some(spans) = kernel.get(rank) {
                push_kernel_tracks(&mut events, rank, spans);
            }
        }
        format!(
            r#"{{"traceEvents":[{events}],"displayTimeUnit":"ms","otherData":{{"producer":"msgpass","ranks":{}}}}}"#,
            self.ranks()
        )
    }

    /// Per-phase critical-path analysis: the slowest rank per phase and its
    /// communication/computation split.
    pub fn critical_path(&self) -> CriticalPathReport {
        let phases = self
            .phases()
            .into_iter()
            .map(|phase| {
                let mut crit_rank = 0;
                let mut crit_secs = 0.0;
                let mut sum = 0.0;
                let mut entered = 0usize;
                for r in 0..self.ranks() {
                    let secs = self.phase_secs(r, &phase);
                    if secs > 0.0 {
                        entered += 1;
                        sum += secs;
                    }
                    if secs > crit_secs {
                        crit_secs = secs;
                        crit_rank = r;
                    }
                }
                let comm_secs = self.phase_comm_secs(crit_rank, &phase).min(crit_secs);
                PhaseCritical {
                    phase,
                    crit_secs,
                    crit_rank,
                    comm_secs,
                    comp_secs: crit_secs - comm_secs,
                    mean_secs: if entered > 0 {
                        sum / entered as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        CriticalPathReport { phases }
    }
}

/// A kernel-profiler span rebased onto the run epoch, ready to render as a
/// kernel-thread track under a rank in the Chrome export. `thread` is the
/// profiler's worker-slot id (0 = the span was recorded on the rank thread
/// itself or the first pool slot it touched — slots are process-global, so
/// the ids are opaque labels, not pool indices).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelSpan {
    /// Profiler worker-slot id the span was recorded on.
    pub thread: usize,
    /// Phase label (`pack_a`, `pack_b`, `compute`, `wake`, `barrier`).
    pub label: &'static str,
    /// Span start, seconds on the run epoch.
    pub t0: f64,
    /// Span end, seconds on the run epoch.
    pub t1: f64,
}

/// Emits one flat `B`/`E` track per distinct kernel thread seen in `spans`,
/// as `tid = 1000·(rank+1) + track` (track = order of first appearance, so
/// tids stay compact regardless of which process-global pool slots the rank
/// happened to use). Wake spans start at *enqueue* time and can overlap the
/// same worker's previous span, so each track is sorted by `t0` and clamped
/// to be non-overlapping (spans fully swallowed by a predecessor are
/// dropped).
fn push_kernel_tracks(out: &mut String, rank: usize, spans: &[KernelSpan]) {
    let mut tracks: Vec<(usize, Vec<KernelSpan>)> = Vec::new();
    for s in spans {
        match tracks.iter_mut().find(|(slot, _)| *slot == s.thread) {
            Some((_, v)) => v.push(*s),
            None => tracks.push((s.thread, vec![*s])),
        }
    }
    for (track, (slot, mut spans)) in tracks.into_iter().enumerate() {
        let tid = 1000 * (rank + 1) + track;
        let _ = write!(
            out,
            r#",{{"name":"thread_name","ph":"M","pid":0,"tid":{tid},"args":{{"name":"rank {rank} kern {slot}"}}}}"#
        );
        spans.sort_by(|a, b| a.t0.total_cmp(&b.t0));
        let mut prev_t1 = f64::NEG_INFINITY;
        for s in spans {
            let t0 = s.t0.max(prev_t1);
            if s.t1 <= t0 {
                continue;
            }
            let name = jsonlite::Json::Str(s.label.to_string()).to_string();
            let _ = write!(
                out,
                r#",{{"name":{name},"cat":"kernel","ph":"B","ts":{},"pid":0,"tid":{tid}}},{{"ph":"E","ts":{},"pid":0,"tid":{tid}}}"#,
                micros(t0),
                micros(s.t1)
            );
            prev_t1 = s.t1;
        }
    }
}

fn push_begin(out: &mut String, rank: usize, s: &Span) {
    let name = jsonlite::Json::Str(s.kind.label()).to_string();
    let _ = write!(
        out,
        r#",{{"name":{name},"cat":"{}","ph":"B","ts":{},"pid":0,"tid":{rank},"args":{{"bytes":{}}}}}"#,
        s.kind.category(),
        micros(s.t0),
        s.bytes
    );
}

fn push_end(out: &mut String, rank: usize, t1: f64) {
    let _ = write!(
        out,
        r#",{{"ph":"E","ts":{},"pid":0,"tid":{rank}}}"#,
        micros(t1)
    );
}

/// Chrome trace timestamps are microseconds; keep sub-microsecond detail.
fn micros(secs: f64) -> f64 {
    (secs * 1e6 * 1e3).round() / 1e3
}

/// One phase's entry in the critical-path report.
#[derive(Clone, Debug)]
pub struct PhaseCritical {
    /// Phase label.
    pub phase: String,
    /// Wall seconds on the slowest rank.
    pub crit_secs: f64,
    /// The slowest rank.
    pub crit_rank: usize,
    /// Communication seconds on the slowest rank (direct children of the
    /// phase span: collectives, sends, blocking receives).
    pub comm_secs: f64,
    /// Remainder of the slowest rank's phase time (local compute).
    pub comp_secs: f64,
    /// Mean phase seconds over the ranks that entered the phase.
    pub mean_secs: f64,
}

impl PhaseCritical {
    /// Skew of the slowest rank over the mean (1.0 = perfectly balanced).
    pub fn skew(&self) -> f64 {
        if self.mean_secs > 0.0 {
            self.crit_secs / self.mean_secs
        } else {
            1.0
        }
    }
}

/// The [`Timeline::critical_path`] result: phases in execution order.
#[derive(Clone, Debug)]
pub struct CriticalPathReport {
    /// Per-phase entries in order of first appearance.
    pub phases: Vec<PhaseCritical>,
}

impl CriticalPathReport {
    /// The phase with the largest critical (slowest-rank) time.
    pub fn bottleneck(&self) -> Option<&PhaseCritical> {
        self.phases
            .iter()
            .max_by(|a, b| a.crit_secs.total_cmp(&b.crit_secs))
    }

    /// Sum over phases of the slowest-rank time: a lower bound on the
    /// run's makespan under the phase barrier structure.
    pub fn critical_total_secs(&self) -> f64 {
        self.phases.iter().map(|p| p.crit_secs).sum()
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>6} {:>10} {:>10} {:>6}",
            "phase", "crit (s)", "rank", "comm (s)", "comp (s)", "skew"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<16} {:>10.6} {:>6} {:>10.6} {:>10.6} {:>6.2}",
                p.phase,
                p.crit_secs,
                p.crit_rank,
                p.comm_secs,
                p.comp_secs,
                p.skew()
            );
        }
        if let Some(b) = self.bottleneck() {
            let _ = writeln!(
                out,
                "bottleneck: {} ({:.6} s on rank {})",
                b.phase, b.crit_secs, b.crit_rank
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_begin(t: f64, kind: SpanKind) -> RawEvent {
        RawEvent::Begin { t, kind, bytes: 0 }
    }

    fn raw_end(t: f64, bytes: u64) -> RawEvent {
        RawEvent::End { t, bytes }
    }

    #[test]
    fn spans_nest_and_order() {
        // phase [0,10] containing a collective [1,5] containing a send
        // [2,3], then a second phase [10,12].
        let stream = vec![
            raw_begin(0.0, SpanKind::Phase("a".into())),
            raw_begin(1.0, SpanKind::Collective("ring_allgatherv")),
            raw_begin(2.0, SpanKind::Send { peer: 1 }),
            raw_end(3.0, 64),
            raw_end(5.0, 0),
            raw_end(10.0, 0),
            raw_begin(10.0, SpanKind::Phase("b".into())),
            raw_end(12.0, 0),
        ];
        let tl = Timeline::from_raw(vec![stream]);
        let spans = tl.spans(0);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].depth, 2);
        assert_eq!(spans[3].depth, 0);
        assert_eq!(spans[2].bytes, 64);
        // begin order is preserved
        assert!(spans.windows(2).all(|w| w[0].t0 <= w[1].t0));
        assert_eq!(tl.phases(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(tl.phase_secs(0, "a"), 10.0);
        assert_eq!(tl.phase_secs(0, "b"), 2.0);
        // comm under "a" counts the collective (4 s), not its inner send
        assert_eq!(tl.phase_comm_secs(0, "a"), 4.0);
        assert_eq!(tl.phase_comm_secs(0, "b"), 0.0);
    }

    #[test]
    fn unclosed_spans_are_closed_at_stream_end() {
        let stream = vec![
            raw_begin(0.0, SpanKind::Phase("p".into())),
            raw_begin(1.0, SpanKind::Recv { peer: 0 }),
            raw_end(4.0, 8),
        ];
        let tl = Timeline::from_raw(vec![stream]);
        assert_eq!(tl.spans(0)[0].t1, 4.0); // closed at last event time
    }

    #[test]
    fn critical_path_finds_slowest_rank() {
        let mk = |secs: f64| {
            vec![
                raw_begin(0.0, SpanKind::Phase("x".into())),
                raw_end(secs, 0),
            ]
        };
        let tl = Timeline::from_raw(vec![mk(1.0), mk(5.0), mk(2.0)]);
        let report = tl.critical_path();
        assert_eq!(report.phases.len(), 1);
        let p = &report.phases[0];
        assert_eq!(p.crit_rank, 1);
        assert_eq!(p.crit_secs, 5.0);
        assert!((p.mean_secs - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.bottleneck().unwrap().phase, "x");
        assert_eq!(report.critical_total_secs(), 5.0);
        assert!(report.render().contains("bottleneck: x"));
    }

    #[test]
    fn chrome_export_merges_kernel_tracks() {
        let stream = vec![
            raw_begin(0.0, SpanKind::Phase("mult".into())),
            raw_end(4.0, 0),
        ];
        let tl = Timeline::from_raw(vec![stream.clone(), stream]);
        // Rank 0: two kernel threads, with a wake span overlapping slot 3's
        // previous span (starts at enqueue time) and one fully-swallowed
        // span. Rank 1: none.
        let kernel = vec![
            vec![
                KernelSpan {
                    thread: 3,
                    label: "compute",
                    t0: 1.0,
                    t1: 2.0,
                },
                KernelSpan {
                    thread: 3,
                    label: "wake",
                    t0: 1.5,
                    t1: 2.5,
                },
                KernelSpan {
                    thread: 3,
                    label: "pack_a",
                    t0: 1.2,
                    t1: 1.8,
                },
                KernelSpan {
                    thread: 7,
                    label: "pack_b",
                    t0: 0.5,
                    t1: 1.0,
                },
            ],
            Vec::new(),
        ];
        let text = tl.to_chrome_json_with_kernel(&kernel);
        let doc = jsonlite::Json::parse(&text).expect("exported trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Compact track ids under rank 0: slots {3, 7} → tids 1000, 1001.
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.get("tid").and_then(|t| t.as_f64()))
            .map(|t| t as u64)
            .collect();
        assert!(tids.contains(&1000) && tids.contains(&1001), "{tids:?}");
        assert!(!tids.contains(&2000), "rank 1 has no kernel spans");
        let track_label = events
            .iter()
            .find(|e| {
                e.get("tid").and_then(|t| t.as_f64()) == Some(1000.0)
                    && e.get("ph").and_then(|p| p.as_str()) == Some("M")
            })
            .and_then(|e| e.get("args")?.get("name")?.as_str().map(str::to_owned));
        assert_eq!(track_label.as_deref(), Some("rank 0 kern 3"));
        let names: Vec<&str> = events
            .iter()
            .filter(|e| {
                e.get("tid").and_then(|t| t.as_f64()) == Some(1000.0)
                    && e.get("ph").and_then(|p| p.as_str()) == Some("B")
            })
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        // The pack_a span (1.2..1.8) is swallowed by compute (1.0..2.0) and
        // dropped; the wake span is clamped to start at compute's end.
        assert!(names.contains(&"compute") && names.contains(&"wake"));
        assert!(!names.contains(&"pack_a"));
        // Per kernel tid the flat B/E pairs are balanced and monotone.
        for tid in [1000.0, 1001.0] {
            let mut depth = 0i64;
            let mut last_ts = f64::MIN;
            for ev in events {
                if ev.get("tid").and_then(|t| t.as_f64()) != Some(tid) {
                    continue;
                }
                match ev.get("ph").and_then(|p| p.as_str()) {
                    Some("B") => depth += 1,
                    Some("E") => depth -= 1,
                    _ => continue,
                }
                let ts = ev.get("ts").unwrap().as_f64().unwrap();
                assert!(ts >= last_ts, "kernel timestamps must be monotone");
                last_ts = ts;
                assert!((0..=1).contains(&depth), "kernel tracks are flat");
            }
            assert_eq!(depth, 0);
        }
        // Without kernel spans the export is byte-identical to the plain one.
        assert_eq!(tl.to_chrome_json(), tl.to_chrome_json_with_kernel(&[]));
    }

    #[test]
    fn chrome_export_balances_b_and_e() {
        let stream = vec![
            raw_begin(0.0, SpanKind::Phase("a".into())),
            raw_begin(1.0, SpanKind::Collective("barrier")),
            raw_end(2.0, 0),
            raw_end(3.0, 0),
            raw_begin(3.0, SpanKind::Phase("b".into())),
            raw_end(4.0, 0),
        ];
        let tl = Timeline::from_raw(vec![stream.clone(), stream]);
        let text = tl.to_chrome_json();
        let doc = jsonlite::Json::parse(&text).expect("exported trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let b = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .count();
        let e = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("E"))
            .count();
        assert_eq!(b, 6);
        assert_eq!(e, 6);
        // per tid, B/E interleave as a valid stack with ts monotone
        for rank in 0..2 {
            let mut depth = 0i64;
            let mut last_ts = f64::MIN;
            for ev in events {
                if ev.get("tid").and_then(|t| t.as_f64()) != Some(rank as f64) {
                    continue;
                }
                match ev.get("ph").and_then(|p| p.as_str()) {
                    Some("B") => depth += 1,
                    Some("E") => depth -= 1,
                    _ => continue,
                }
                let ts = ev.get("ts").unwrap().as_f64().unwrap();
                assert!(ts >= last_ts, "timestamps must be monotone");
                last_ts = ts;
                assert!(depth >= 0);
            }
            assert_eq!(depth, 0);
        }
    }

    #[test]
    fn chrome_export_escapes_hostile_phase_names() {
        // A phase name with quotes, backslashes, and control characters must
        // not break the exported JSON (span names are routed through the
        // jsonlite string writer, never raw format! interpolation).
        let hostile = "evil \"phase\"\\ with \n newline and \u{7} bell";
        let stream = vec![
            raw_begin(0.0, SpanKind::Phase(hostile.into())),
            raw_end(1.0, 0),
        ];
        let tl = Timeline::from_raw(vec![stream]);
        let text = tl.to_chrome_json();
        let doc = jsonlite::Json::parse(&text).expect("hostile name must stay valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let name = events
            .iter()
            .find_map(|e| {
                (e.get("ph").and_then(|p| p.as_str()) == Some("B"))
                    .then(|| e.get("name").unwrap().as_str().unwrap().to_owned())
            })
            .expect("begin event present");
        assert_eq!(name, hostile, "name must round-trip exactly");
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline::empty(4);
        assert_eq!(tl.ranks(), 4);
        assert!(tl.is_empty());
        assert!(tl.phases().is_empty());
        let doc = jsonlite::Json::parse(&tl.to_chrome_json()).unwrap();
        assert!(doc.get("traceEvents").is_some());
    }

    #[test]
    fn sent_bytes_by_phase() {
        let stream = vec![
            raw_begin(0.0, SpanKind::Phase("p".into())),
            raw_begin(1.0, SpanKind::Send { peer: 2 }),
            raw_end(1.1, 100),
            raw_begin(2.0, SpanKind::Collective("ring_allgatherv")),
            raw_begin(2.1, SpanKind::Send { peer: 1 }),
            raw_end(2.2, 50),
            raw_end(3.0, 0),
            raw_end(4.0, 0),
        ];
        let tl = Timeline::from_raw(vec![stream]);
        // counts both the bare send and the one inside the collective
        assert_eq!(tl.phase_sent_bytes(0, "p"), 150);
    }
}
