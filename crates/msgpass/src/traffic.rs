//! Per-rank, per-phase traffic accounting.
//!
//! Algorithms label their stages with [`crate::RankCtx::set_phase`]
//! ("replicate_ab", "cannon_shift", "reduce_c", "redist", …); every
//! point-to-point send is attributed to the sender's current phase. The
//! resulting [`TrafficReport`] is the measured counterpart of the analytic
//! schedule evaluator in the `netmodel` crate.

use crate::lock_mutex;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Bytes and message count for one phase on one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounts {
    /// Payload bytes sent.
    pub bytes: u64,
    /// Messages sent.
    pub msgs: u64,
}

impl PhaseCounts {
    /// Accumulate another count into this one.
    pub fn add(&mut self, other: PhaseCounts) {
        self.bytes += other.bytes;
        self.msgs += other.msgs;
    }
}

/// Accumulator owned by the fabric, one per rank. Sends are recorded by the
/// owning thread only, but the final report is read after the threads join,
/// so a mutex (uncontended in practice) keeps this simple and safe.
#[derive(Default)]
pub(crate) struct RankTraffic {
    pub(crate) by_phase: Mutex<BTreeMap<String, PhaseCounts>>,
}

impl RankTraffic {
    pub(crate) fn record(&self, phase: &str, bytes: u64) {
        let mut map = lock_mutex(&self.by_phase);
        let e = map.entry(phase.to_owned()).or_default();
        e.bytes += bytes;
        e.msgs += 1;
    }
}

/// Traffic measured during one [`crate::World::run_traced`], indexed by
/// `[rank][phase]`.
#[derive(Clone, Debug, Default)]
pub struct TrafficReport {
    /// `per_rank[r]` maps phase name → counts for world rank `r`.
    pub per_rank: Vec<BTreeMap<String, PhaseCounts>>,
    /// `secs_per_rank[r]` maps phase name → wall seconds spent in the phase
    /// on rank `r` (communication *and* computation while the phase label
    /// was active).
    pub secs_per_rank: Vec<BTreeMap<String, f64>>,
}

impl TrafficReport {
    /// Total counts for one rank across all phases.
    pub fn rank_total(&self, rank: usize) -> PhaseCounts {
        let mut t = PhaseCounts::default();
        for c in self.per_rank[rank].values() {
            t.add(*c);
        }
        t
    }

    /// The maximum per-rank byte count — the paper's communication size `Q`
    /// (§III-D), in bytes.
    pub fn max_rank_bytes(&self) -> u64 {
        (0..self.per_rank.len())
            .map(|r| self.rank_total(r).bytes)
            .max()
            .unwrap_or(0)
    }

    /// The maximum per-rank message count — the paper's latency `L`.
    pub fn max_rank_msgs(&self) -> u64 {
        (0..self.per_rank.len())
            .map(|r| self.rank_total(r).msgs)
            .max()
            .unwrap_or(0)
    }

    /// Sum of bytes over all ranks (total data exchanged).
    pub fn total_bytes(&self) -> u64 {
        (0..self.per_rank.len())
            .map(|r| self.rank_total(r).bytes)
            .sum()
    }

    /// Counts for a single phase on one rank (zero if the phase never ran).
    pub fn phase(&self, rank: usize, phase: &str) -> PhaseCounts {
        self.per_rank[rank].get(phase).copied().unwrap_or_default()
    }

    /// Sums one phase across all ranks.
    pub fn phase_total(&self, phase: &str) -> PhaseCounts {
        let mut t = PhaseCounts::default();
        for r in 0..self.per_rank.len() {
            t.add(self.phase(r, phase));
        }
        t
    }

    /// Wall seconds one rank spent in one phase (0 if never entered).
    pub fn phase_secs(&self, rank: usize, phase: &str) -> f64 {
        self.secs_per_rank
            .get(rank)
            .and_then(|m| m.get(phase))
            .copied()
            .unwrap_or(0.0)
    }

    /// Maximum over ranks of the wall seconds spent in one phase — the
    /// critical-path estimate the artifact's per-phase report prints.
    pub fn phase_secs_max(&self, phase: &str) -> f64 {
        (0..self.secs_per_rank.len())
            .map(|r| self.phase_secs(r, phase))
            .fold(0.0, f64::max)
    }

    /// All phase labels seen on any rank, sorted.
    pub fn phases(&self) -> Vec<String> {
        let mut set: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for m in &self.per_rank {
            set.extend(m.keys().cloned());
        }
        for m in &self.secs_per_rank {
            set.extend(m.keys().cloned());
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let rt = RankTraffic::default();
        rt.record("a", 100);
        rt.record("a", 50);
        rt.record("b", 1);
        let map = crate::lock_mutex(&rt.by_phase).clone();
        assert_eq!(
            map["a"],
            PhaseCounts {
                bytes: 150,
                msgs: 2
            }
        );
        assert_eq!(map["b"], PhaseCounts { bytes: 1, msgs: 1 });

        let report = TrafficReport {
            per_rank: vec![map, BTreeMap::new()],
            secs_per_rank: vec![BTreeMap::new(), BTreeMap::new()],
        };
        assert_eq!(report.rank_total(0).bytes, 151);
        assert_eq!(report.rank_total(1).msgs, 0);
        assert_eq!(report.max_rank_bytes(), 151);
        assert_eq!(report.max_rank_msgs(), 3);
        assert_eq!(report.total_bytes(), 151);
        assert_eq!(report.phase(0, "a").msgs, 2);
        assert_eq!(report.phase(0, "missing"), PhaseCounts::default());
        assert_eq!(report.phase_total("a").bytes, 150);
    }
}
